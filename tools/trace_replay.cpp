// trace_replay: record a detection run as binary observation traces
// (.mtrace, detect/trace.hpp) and re-run the detectors offline from those
// files — the CLI face of the streaming detection path.
//
// Modes (--mode=):
//   record  Run a live simulation with the given scenario/monitor flags,
//           write one .mtrace per monitoring node into --dir, and emit the
//           canonical results text.
//   replay  Read every .mtrace in --dir (sorted by file name, which is the
//           recorded monitor-creation order) and run the same monitor
//           configs over them. The canonical results text is byte-identical
//           to the recording run's — scripts/check.sh diffs the two.
//   info    Dump one trace file's header and event census (--file).
//
// The monitor configuration is NOT stored in a trace (a trace is pure
// observation: what the node heard, not what anyone concluded from it), so
// a replay must be given the same --sample_sizes/--detectors/--alpha/
// --margin/--gap_bound/--warmup flags as the recording run.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "detect/experiment.hpp"
#include "detect/replay.hpp"
#include "detect/sequential.hpp"
#include "detect/trace.hpp"
#include "flag_set.hpp"

using namespace manet;

namespace {

/// The deterministic slice of a MultiDetectionResult, one line-oriented
/// record per monitor config. Excludes measured_rho (live-only: replay has
/// no ground-truth channel to measure) and wall-clock fields.
void emit_results(std::FILE* out, const detect::MultiDetectionResult& result) {
  std::fprintf(out, "handoffs %llu\nmonitor_nodes %llu\n",
               static_cast<unsigned long long>(result.handoffs),
               static_cast<unsigned long long>(result.monitor_nodes));
  for (std::size_t i = 0; i < result.per_config.size(); ++i) {
    const auto& r = result.per_config[i];
    const auto& s = r.stats;
    std::fprintf(out, "config %zu windows %llu flagged %llu statistical %llu\n",
                 i, static_cast<unsigned long long>(r.windows),
                 static_cast<unsigned long long>(r.flagged),
                 static_cast<unsigned long long>(r.flagged_statistical));
    std::fprintf(
        out,
        "config %zu stats rts %llu samples %llu windows %llu flagged %llu "
        "seqoff %llu attempt %llu impossible %llu no_anchor %llu "
        "long_window %llu queue_gap %llu resyncs %llu lost %llu "
        "impaired %llu first_flag %lld ordinal %llu\n",
        i, static_cast<unsigned long long>(s.rts_observed),
        static_cast<unsigned long long>(s.samples),
        static_cast<unsigned long long>(s.windows),
        static_cast<unsigned long long>(s.flagged_windows),
        static_cast<unsigned long long>(s.seq_off_violations),
        static_cast<unsigned long long>(s.attempt_violations),
        static_cast<unsigned long long>(s.impossible_backoff),
        static_cast<unsigned long long>(s.skipped_no_anchor),
        static_cast<unsigned long long>(s.skipped_long_window),
        static_cast<unsigned long long>(s.skipped_queue_gap),
        static_cast<unsigned long long>(s.seq_off_resyncs),
        static_cast<unsigned long long>(s.frames_lost),
        static_cast<unsigned long long>(s.windows_discarded_impaired),
        static_cast<long long>(s.first_flag_time),
        static_cast<unsigned long long>(s.windows_to_first_flag));

    // FNV-1a over the full window decision stream: one hex digest stands
    // in for every (at, p_less, flags) tuple, so a single changed window
    // anywhere flips the canonical text.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xFF;
        h *= 1099511628211ull;
      }
    };
    for (const detect::WindowResult& w : r.window_log) {
      mix(static_cast<std::uint64_t>(w.at));
      std::uint64_t bits = 0;
      static_assert(sizeof bits == sizeof w.p_less);
      __builtin_memcpy(&bits, &w.p_less, sizeof bits);
      mix(bits);
      mix((w.statistical_flag ? 2u : 0u) | (w.deterministic_flag ? 1u : 0u));
    }
    std::fprintf(out, "config %zu window_digest %016" PRIx64 " over %zu\n", i,
                 h, r.window_log.size());
  }
}

std::vector<detect::MonitorConfig> monitors_from_flags(
    const bench::FlagSet& flags) {
  std::vector<detect::MonitorConfig> monitors;
  for (const std::string& name : flags.get_name_list("detectors")) {
    const detect::DetectorKind kind = detect::detector_from_name(name);
    for (double ss : flags.get_double_list("sample_sizes")) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(ss);
      m.alpha = flags.get_double("alpha");
      m.margin_fraction = flags.get_double("margin");
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
      m.fixed_contenders = 20.0;
      m.rts_gap_bound = flags.get_int("gap_bound") != 0;
      m.detector = kind;
      monitors.push_back(m);
    }
  }
  return monitors;
}

std::FILE* open_results(const std::string& path) {
  if (path.empty()) return stdout;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "trace_replay: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  return f;
}

int run_record(const bench::FlagSet& flags) {
  detect::MultiDetectionConfig cfg;
  cfg.scenario.sim_seconds = flags.get_double("sim_time");
  cfg.scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.rate_pps = flags.get_double("rate");
  cfg.pm = flags.get_double("pm");
  cfg.warmup_s = flags.get_double("warmup");
  cfg.collect_windows = true;
  if (flags.get_int("mobile") != 0) {
    cfg.scenario.mobility = net::MobilityKind::kRandomWaypoint;
    cfg.scenario.max_speed_mps = flags.get_double("max_speed");
    cfg.scenario.pause_s = flags.get_double("pause");
    cfg.mobile_handoff = true;
  }
  cfg.monitors = monitors_from_flags(flags);

  detect::TraceRecorder recorder;
  cfg.trace = &recorder;
  const auto result = detect::run_multi_detection_experiment(cfg);

  const std::filesystem::path dir(flags.get("dir"));
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < recorder.writers().size(); ++i) {
    const detect::TraceWriter& writer = *recorder.writers()[i];
    char name[64];
    std::snprintf(name, sizeof name, "trace_%03zu_node%u.mtrace", i,
                  writer.header().node);
    writer.write_file((dir / name).string());
    std::fprintf(stderr, "recorded %s (%zu events)\n", (dir / name).c_str(),
                 writer.events_recorded());
  }

  std::FILE* out = open_results(flags.get("results"));
  emit_results(out, result);
  if (out != stdout) std::fclose(out);
  return 0;
}

int run_replay(const bench::FlagSet& flags) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(flags.get("dir"))) {
    if (entry.path().extension() == ".mtrace") paths.push_back(entry.path());
  }
  if (paths.empty()) {
    std::fprintf(stderr, "trace_replay: no .mtrace files in %s\n",
                 flags.get("dir").c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());  // recorded creation order

  std::vector<std::unique_ptr<detect::FileTraceReader>> readers;
  std::vector<detect::MemoryTraceReader*> ptrs;
  for (const auto& path : paths) {
    readers.push_back(std::make_unique<detect::FileTraceReader>(path.string()));
    ptrs.push_back(readers.back().get());
  }

  const auto result =
      detect::replay_detection(ptrs, monitors_from_flags(flags),
                               flags.get_double("warmup"),
                               /*collect_windows=*/true);
  std::FILE* out = open_results(flags.get("results"));
  emit_results(out, result);
  if (out != stdout) std::fclose(out);
  return 0;
}

int run_info(const bench::FlagSet& flags) {
  const detect::FileTraceReader reader(flags.get("file"));
  const detect::TraceHeader& h = reader.header();
  std::printf("node %u  start %lld  targets", h.node,
              static_cast<long long>(h.start_time));
  for (NodeId t : h.targets) std::printf(" %u", t);
  std::printf("\nslot %lld us  cw %u..%u  seq_off_modulo %u\n",
              static_cast<long long>(h.params.slot_time / kMicrosecond),
              h.params.cw_min, h.params.cw_max, h.params.seq_off_modulo);
  std::size_t counts[4] = {0, 0, 0, 0};
  SimTime last = h.start_time;
  for (const detect::ObservationEvent& ev : reader.events()) {
    ++counts[static_cast<std::size_t>(ev.kind)];
    last = ev.at;
  }
  std::printf("events %zu: %zu frames, %zu carrier edges, %zu outages, "
              "%zu markers\nlast event at %lld (%.3f s span)\n",
              reader.event_count(), counts[0], counts[1], counts[2], counts[3],
              static_cast<long long>(last),
              time_to_seconds(last - h.start_time));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Record detection runs as binary .mtrace observation traces and "
      "replay the detectors offline from them (byte-identical results).");
  flags.add_string("mode", "replay", "record | replay | info");
  flags.add_string("dir", "traces", "trace directory (written by record, read by replay)");
  flags.add_string("file", "", "one .mtrace file to describe (info mode)");
  flags.add_string("results", "",
                   "write the canonical results text here (default stdout)");
  flags.add_double("sim_time", 30, "simulated seconds (record)");
  flags.add_int("seed", 101, "random seed (record)");
  flags.add_double("rate", 25, "per-flow packet rate, packets/s (record)");
  flags.add_double("pm", 65, "percentage of misbehavior of the tagged node (record)");
  flags.add_int("mobile", 0, "1 = random waypoint + monitor handoff (record)");
  flags.add_double("max_speed", 20, "random waypoint max speed, m/s (record)");
  flags.add_double("pause", 0, "random waypoint pause time, s (record)");
  flags.add_double_list("sample_sizes", "10,25", "Wilcoxon/sequential window sizes");
  flags.add_name_list("detectors", "wilcoxon",
                      "detector kinds (wilcoxon, cusum, sprt); one monitor "
                      "config per detector x sample size");
  flags.add_double("alpha", 0.01, "significance level");
  flags.add_double("margin", 0.10, "permissible deficit fraction");
  flags.add_int("gap_bound", 0, "1 = enable the anchorless RTS-gap bound");
  flags.add_double("warmup", 3, "seconds excluded from window readout");
  flags.parse_or_exit(argc, argv);

  const std::string& mode = flags.get("mode");
  try {
    if (mode == "record") return run_record(flags);
    if (mode == "replay") return run_replay(flags);
    if (mode == "info") return run_info(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_replay: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "flag error: --mode must be record, replay, or info\n");
  return 1;
}
