// sweep_merge: validate and merge sharded sweep artifacts (.mcol).
//
//   sweep_merge [--json=OUT] shard0.mcol shard1.mcol ... shardN-1.mcol
//
// Reads every shard artifact (order on the command line does not matter),
// validates that
//   * each file is intact (magic, version, per-block CRCs, in-range and
//     monotone cell indices — read_columnar_file throws on any defect),
//   * all shards come from the SAME sweep (identical sweep fingerprint,
//     bench, and total cell count),
//   * the shard cell ranges tile [0, total_cells) exactly — no gaps, no
//     overlaps,
// and then concatenates the records in cell order. With --json=OUT the
// merged records are rendered exactly like exp::JsonFileSink renders a
// serial run, so
//
//   bench --shard=i/N --columnar=shard_i.mcol   (for i in 0..N-1)
//   sweep_merge --json=merged.json shard_*.mcol
//
// produces a merged.json byte-identical to `bench --json=merged.json`
// run in one process (modulo the wall-clock fields; bench/perf_pr10.sh
// strips those before diffing). Without --json the tool just validates
// and prints a summary. Exit status: 0 on success, 1 on any validation
// failure (message on stderr).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/columnar.hpp"
#include "exp/sink.hpp"

using namespace manet;

namespace {

int usage(int status) {
  std::fprintf(
      status == 0 ? stdout : stderr,
      "usage: sweep_merge [--json=OUT] shard0.mcol ... shardN-1.mcol\n"
      "  Validates sharded sweep artifacts (integrity, matching sweep\n"
      "  fingerprint, gap/overlap-free cell coverage) and optionally\n"
      "  renders the merged records as the canonical JSON artifact.\n");
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
      if (json_out.empty()) {
        std::fprintf(stderr, "sweep_merge: --json needs a path\n");
        return 1;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sweep_merge: unknown flag %s\n", arg.c_str());
      return usage(1);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "sweep_merge: no shard files given\n");
    return usage(1);
  }

  // Read + per-file validation.
  std::vector<exp::ColumnarFile> shards;
  for (const std::string& path : inputs) {
    try {
      shards.push_back(exp::read_columnar_file(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep_merge: %s\n", e.what());
      return 1;
    }
  }

  // Cross-file validation: one sweep, one bench, one total.
  const exp::ColumnarMeta& first = shards.front().meta;
  for (const exp::ColumnarFile& shard : shards) {
    const exp::ColumnarMeta& m = shard.meta;
    if (m.sweep != first.sweep) {
      std::fprintf(stderr,
                   "sweep_merge: sweep config mismatch:\n  %s\n  vs\n  %s\n"
                   "(shards were produced by different sweeps)\n",
                   first.sweep.c_str(), m.sweep.c_str());
      return 1;
    }
    if (m.bench != first.bench || m.total_cells != first.total_cells) {
      std::fprintf(stderr,
                   "sweep_merge: bench/total-cells mismatch (%s: %llu vs %s: "
                   "%llu)\n",
                   first.bench.c_str(),
                   static_cast<unsigned long long>(first.total_cells),
                   m.bench.c_str(),
                   static_cast<unsigned long long>(m.total_cells));
      return 1;
    }
  }

  // Coverage: the declared ranges must tile [0, total_cells) exactly.
  std::vector<std::size_t> order(shards.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shards[a].meta.cell_begin < shards[b].meta.cell_begin ||
           (shards[a].meta.cell_begin == shards[b].meta.cell_begin &&
            shards[a].meta.cell_end < shards[b].meta.cell_end);
  });
  std::uint64_t expect = 0;
  for (std::size_t idx : order) {
    const exp::ColumnarMeta& m = shards[idx].meta;
    if (m.cell_begin > expect) {
      std::fprintf(stderr,
                   "sweep_merge: coverage gap: cells [%llu, %llu) are in no "
                   "shard\n",
                   static_cast<unsigned long long>(expect),
                   static_cast<unsigned long long>(m.cell_begin));
      return 1;
    }
    if (m.cell_begin < expect) {
      std::fprintf(stderr,
                   "sweep_merge: overlapping shards: cell %llu is claimed "
                   "twice (shard %s)\n",
                   static_cast<unsigned long long>(m.cell_begin),
                   m.shard.c_str());
      return 1;
    }
    expect = m.cell_end;
  }
  if (expect != first.total_cells) {
    std::fprintf(stderr,
                 "sweep_merge: coverage gap: cells [%llu, %llu) are in no "
                 "shard\n",
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(first.total_cells));
    return 1;
  }

  // Merge: shard ranges are disjoint and per-file records are already in
  // cell order, so concatenation in range order IS the serial order.
  std::size_t total_records = 0;
  for (const exp::ColumnarFile& shard : shards) {
    total_records += shard.records.size();
  }

  if (!json_out.empty()) {
    std::FILE* out = std::fopen(json_out.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "sweep_merge: cannot open %s\n", json_out.c_str());
      return 1;
    }
    std::string buffer = "[\n";
    bool first_record = true;
    for (std::size_t idx : order) {
      for (const auto& [cell, record] : shards[idx].records) {
        (void)cell;
        if (!first_record) buffer += ",\n";
        first_record = false;
        buffer += record.to_json();
        if (buffer.size() >= 64 * 1024) {
          std::fwrite(buffer.data(), 1, buffer.size(), out);
          buffer.clear();
        }
      }
    }
    buffer += "\n]\n";
    std::fwrite(buffer.data(), 1, buffer.size(), out);
    std::fclose(out);
  }

  std::printf("sweep_merge: OK: %zu shard(s), %llu cells, %zu records (%s)\n",
              shards.size(),
              static_cast<unsigned long long>(first.total_cells),
              total_records, first.bench.c_str());
  return 0;
}
