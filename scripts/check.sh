#!/usr/bin/env bash
# Full verification: plain build + tests, then the same suite under
# AddressSanitizer + UBSan (-DMANET_SANITIZE=ON).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== ASan + UBSan build =="
cmake -B build-asan -S . -DMANET_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "All checks passed."
