#!/usr/bin/env bash
# Full verification: plain build + tests, then the same suite under
# AddressSanitizer + UBSan (-DMANET_SANITIZE=ON), then a multi-threaded
# short-sweep bench smoke under the sanitizers (races / UB in the
# experiment engine's parallel trial fan-out would surface here).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== ASan + UBSan build =="
# A build-asan dir configured without sanitizers (e.g. a copied plain build)
# would silently run the entire "sanitized" suite uninstrumented. Refuse it.
if [[ -f build-asan/CMakeCache.txt ]] && \
   ! grep -q '^MANET_SANITIZE:BOOL=ON' build-asan/CMakeCache.txt; then
  echo "error: build-asan exists but was not configured with -DMANET_SANITIZE=ON" >&2
  echo "       (stale or non-sanitized cache — remove it and re-run:" >&2
  echo "        rm -rf build-asan && scripts/check.sh)" >&2
  exit 1
fi
cmake -B build-asan -S . -DMANET_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== multi-threaded sweep smoke (ASan + UBSan) =="
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./build-asan/bench/fig5_detection_static \
    --loads=0.6 --pms=0,50 --sim_time=20 --runs=4 --threads=4 \
    --json="$smoke_dir/fig5.json" >/dev/null
./build-asan/bench/fig3_cond_prob_grid \
    --rates=10,40 --measure_time=5 --threads=4 \
    --json="$smoke_dir/fig3.json" >/dev/null
# The JSON artifacts must be non-empty arrays.
for f in "$smoke_dir"/fig5.json "$smoke_dir"/fig3.json; do
  grep -q '^{' "$f" || { echo "empty JSON sink output: $f"; exit 1; }
done
# Determinism: the same sweep serially must produce the identical artifact.
./build-asan/bench/fig5_detection_static \
    --loads=0.6 --pms=0,50 --sim_time=20 --runs=4 --threads=1 \
    --json="$smoke_dir/fig5_serial.json" >/dev/null
strip_timing() {  # wall-clock and thread count are the only fields allowed to differ
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "threads": [0-9]+//' "$1"
}
diff <(strip_timing "$smoke_dir/fig5.json") \
     <(strip_timing "$smoke_dir/fig5_serial.json") \
  || { echo "parallel sweep output differs from serial"; exit 1; }

echo "== perf smoke (ASan + UBSan) =="
# The spatial-index / link-cache fast path must not change results: the
# serial-vs-parallel diff above already ran on the optimized kernel; here a
# fixed-iteration pass over the micro benches walks the optimized EventQueue,
# CsTimeline sweep, and channel grid under the sanitizers.
./build-asan/bench/micro_sim_components \
    --benchmark_min_time=0 \
    --benchmark_filter='BM_FullDcfExchange|BM_Table1NetworkSimSecond' >/dev/null
./build-asan/bench/micro_event_queue \
    --benchmark_min_time=0 \
    --benchmark_filter='BM_ScheduleAndPop/1024|BM_CancelChurnSteadyState' >/dev/null

echo "== detection pipeline smoke (ASan + UBSan) =="
# The batched SoA pipeline (the default) must match the per-view hub
# pipeline and the private-per-monitor reference bit for bit on the
# all-pairs workload, serially and across the engine's workers. (This is
# the quick sanitized gate; bench/perf_pr8.sh is the full measurement
# flow — degree-8 headline, all artifacts, BENCH_PR8.json.)
ap_flags=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=2)
./build-asan/bench/fig_allpairs_monitoring "${ap_flags[@]}" --threads=1 \
    --monitor_impl=batch --json="$smoke_dir/ap_batch_t1.json" >/dev/null
./build-asan/bench/fig_allpairs_monitoring "${ap_flags[@]}" --threads=4 \
    --monitor_impl=batch --json="$smoke_dir/ap_batch_t4.json" >/dev/null
./build-asan/bench/fig_allpairs_monitoring "${ap_flags[@]}" --threads=1 \
    --monitor_impl=hub --json="$smoke_dir/ap_hub_t1.json" >/dev/null
./build-asan/bench/fig_allpairs_monitoring "${ap_flags[@]}" --threads=1 \
    --monitor_impl=reference --json="$smoke_dir/ap_ref_t1.json" >/dev/null
diff <(strip_timing "$smoke_dir/ap_batch_t1.json") \
     <(strip_timing "$smoke_dir/ap_batch_t4.json") \
  || { echo "all-pairs batch output differs across thread counts"; exit 1; }
diff <(strip_timing "$smoke_dir/ap_batch_t1.json") \
     <(strip_timing "$smoke_dir/ap_hub_t1.json") \
  || { echo "all-pairs batch output differs from hub pipeline"; exit 1; }
diff <(strip_timing "$smoke_dir/ap_batch_t1.json") \
     <(strip_timing "$smoke_dir/ap_ref_t1.json") \
  || { echo "all-pairs batch output differs from reference pipeline"; exit 1; }
echo "== adversary zoo / ROC harness smoke (ASan + UBSan) =="
# Every v2 attacker (colluding schedule, adaptive probation, sybil alias
# plumbing, RTS flooder + gap bound) exercised under the sanitizers, and
# the scored ROC/TTD artifact must be bit-identical across thread counts.
roc_flags=(--attackers=pm90,colluding,adaptive,sybil,rts_flood
           --thresholds=0.001,0.01,0.1 --sim_time=15 --runs=2)
./build-asan/bench/fig_roc_adversaries "${roc_flags[@]}" --threads=4 \
    --json="$smoke_dir/roc_t4.json" >/dev/null
./build-asan/bench/fig_roc_adversaries "${roc_flags[@]}" --threads=1 \
    --json="$smoke_dir/roc_t1.json" >/dev/null
grep -q '^{' "$smoke_dir/roc_t4.json" \
  || { echo "empty JSON sink output: roc_t4.json"; exit 1; }
diff <(strip_timing "$smoke_dir/roc_t1.json") \
     <(strip_timing "$smoke_dir/roc_t4.json") \
  || { echo "ROC harness output differs across thread counts"; exit 1; }

# Short pass over the detection micro benches: the batched lane dispatch,
# window-accounting memo, and batched/scalar Wilcoxon under the sanitizers.
./build-asan/bench/micro_monitor --filter=allpairs_batch_4 --reps=0.5 \
    >/dev/null
./build-asan/bench/micro_wilcoxon --filter=_n10 --reps=0.02 >/dev/null

echo "== trace record/replay equivalence (ASan + UBSan) =="
# The streaming detection path: record a live run (static + mobile-handoff,
# all three detectors) to binary .mtrace files, replay them through the
# identical detection code, and require the canonical results text to be
# byte-identical. A drift in the wire format, the replay world
# reconstruction, or the detectors themselves shows up as a diff here.
tr_flags=(--sim_time=20 --sample_sizes=10,25 --detectors=wilcoxon,cusum,sprt)
./build-asan/tools/trace_replay --mode=record "${tr_flags[@]}" \
    --dir="$smoke_dir/traces_static" --results="$smoke_dir/live_static.txt" \
    2>/dev/null
./build-asan/tools/trace_replay --mode=replay "${tr_flags[@]}" \
    --dir="$smoke_dir/traces_static" --results="$smoke_dir/replay_static.txt"
diff "$smoke_dir/live_static.txt" "$smoke_dir/replay_static.txt" \
  || { echo "static replay differs from the live run"; exit 1; }
./build-asan/tools/trace_replay --mode=record "${tr_flags[@]}" --mobile=1 \
    --pm=0 \
    --dir="$smoke_dir/traces_mobile" --results="$smoke_dir/live_mobile.txt" \
    2>/dev/null
./build-asan/tools/trace_replay --mode=replay "${tr_flags[@]}" \
    --dir="$smoke_dir/traces_mobile" --results="$smoke_dir/replay_mobile.txt"
diff "$smoke_dir/live_mobile.txt" "$smoke_dir/replay_mobile.txt" \
  || { echo "mobile-handoff replay differs from the live run"; exit 1; }

# Short pass over the trace codec and replay ingest loop (CRC framing,
# event decode, batched hub consume) under the sanitizers.
./build-asan/bench/micro_ingest \
    --filter=replay_batch_wilcoxon --reps=0.1 >/dev/null

echo "== sharded sweep fabric (ASan + UBSan) =="
# The fig5 sweep as 3 independent shard processes writing binary columnar
# artifacts; sweep_merge validates the set and renders the canonical JSON,
# which must be byte-identical to the serial single-process artifact from
# the determinism stage above.
fig5_flags=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=4 --threads=1)
for i in 0 1 2; do
  ./build-asan/bench/fig5_detection_static "${fig5_flags[@]}" \
      --shard="$i/3" --columnar="$smoke_dir/fab_$i.mcol" >/dev/null
done
./build-asan/tools/sweep_merge --json="$smoke_dir/fab_merged.json" \
    "$smoke_dir"/fab_{0,1,2}.mcol >/dev/null
diff <(strip_timing "$smoke_dir/fab_merged.json") \
     <(strip_timing "$smoke_dir/fig5_serial.json") \
  || { echo "sharded merge differs from the serial artifact"; exit 1; }
# The merge tool must REFUSE defective shard sets: a missing shard (gap),
# a doubled shard (overlap), a shard from a different sweep (fingerprint
# mismatch), and a corrupted artifact (CRC).
expect_merge_failure() {  # $1 description, then sweep_merge args...
  local what=$1
  shift
  if ./build-asan/tools/sweep_merge "$@" >/dev/null 2>"$smoke_dir/merge_err"; then
    echo "sweep_merge accepted a defective shard set ($what)"; exit 1
  fi
  echo "  sweep_merge refused $what: $(head -1 "$smoke_dir/merge_err")"
}
expect_merge_failure "a coverage gap" "$smoke_dir"/fab_{0,2}.mcol
expect_merge_failure "an overlap" "$smoke_dir"/fab_{0,1,1,2}.mcol
./build-asan/bench/fig5_detection_static --loads=0.6 --pms=0,25 \
    --sim_time=20 --runs=4 --threads=1 --shard=2/3 \
    --columnar="$smoke_dir/fab_other.mcol" >/dev/null
expect_merge_failure "a sweep fingerprint mismatch" \
    "$smoke_dir"/fab_{0,1}.mcol "$smoke_dir/fab_other.mcol"
cp "$smoke_dir/fab_1.mcol" "$smoke_dir/fab_bad.mcol"
printf '\x5a' | dd of="$smoke_dir/fab_bad.mcol" bs=1 seek=200 conv=notrunc \
    status=none
expect_merge_failure "a CRC-corrupt artifact" \
    "$smoke_dir/fab_0.mcol" "$smoke_dir/fab_bad.mcol" "$smoke_dir/fab_2.mcol"

echo "== checkpoint/resume (ASan + UBSan) =="
# Kill a checkpointing shard mid-run (SIGKILL: no destructors, the sink
# keeps a partial tail past the journal offset), rerun the identical
# command to resume, and require the artifact to match the serial JSON.
# If the machine is fast enough that the first attempt finishes before
# the kill, the rerun is a fresh complete run — the comparison still holds.
ck_flags=("${fig5_flags[@]}" --checkpoint_cells=1
          --columnar="$smoke_dir/ck.mcol" --checkpoint="$smoke_dir/ck.journal")
timeout -s KILL 3 ./build-asan/bench/fig5_detection_static \
    "${ck_flags[@]}" >/dev/null || true
./build-asan/bench/fig5_detection_static "${ck_flags[@]}" >/dev/null
[[ ! -e "$smoke_dir/ck.journal" ]] \
  || { echo "checkpoint journal not removed after completion"; exit 1; }
./build-asan/tools/sweep_merge --json="$smoke_dir/ck.json" \
    "$smoke_dir/ck.mcol" >/dev/null
diff <(strip_timing "$smoke_dir/ck.json") \
     <(strip_timing "$smoke_dir/fig5_serial.json") \
  || { echo "resumed run differs from the serial artifact"; exit 1; }

echo "== scale kernel smoke (ASan + UBSan) =="
# 1k mobile nodes through the incremental spatial index: cell migrations,
# the predicted-position prefilter, the parked-pair cache, and the
# timeline hard budgets all run instrumented.
./build-asan/bench/fig_scale_sweep --nodes=1000 --sim_time=2 \
    --index=incremental --cache_stats=1 \
    --json="$smoke_dir/scale_1k.json" >/dev/null
grep -q '^{' "$smoke_dir/scale_1k.json" \
  || { echo "empty JSON sink output: scale_1k.json"; exit 1; }
# Incremental-vs-reference index diff: the receiver-lookup path must be
# invisible to the workload — every request/response and AODV counter
# identical between the incremental index and the full-scan reference
# (only the index name and wall-clock fields may differ).
strip_scale() {
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "sim_s_per_wall_s": [^,}]+//;
          s/"index": "[a-z]+", //' "$1"
}
scale_flags=(--nodes=400 --sim_time=3 --seed=7)
./build-asan/bench/fig_scale_sweep "${scale_flags[@]}" --index=incremental \
    --json="$smoke_dir/scale_inc.json" >/dev/null
./build-asan/bench/fig_scale_sweep "${scale_flags[@]}" --index=scan \
    --json="$smoke_dir/scale_scan.json" >/dev/null
diff <(strip_scale "$smoke_dir/scale_inc.json") \
     <(strip_scale "$smoke_dir/scale_scan.json") \
  || { echo "incremental index output differs from full-scan reference"; exit 1; }

echo "== ThreadSanitizer: engine fan-out, sinks, fabric =="
# TSan build scoped to the concurrency-bearing layer: the exp engine's
# worker pool, the (mutex-guarded) result sinks, the fabric, and a
# multi-threaded sweep driving them all. ASan and TSan cannot share a
# build, hence the third tree.
if [[ -f build-tsan/CMakeCache.txt ]] && \
   ! grep -q '^MANET_TSAN:BOOL=ON' build-tsan/CMakeCache.txt; then
  echo "error: build-tsan exists but was not configured with -DMANET_TSAN=ON" >&2
  echo "       (stale or non-TSan cache — remove it and re-run:" >&2
  echo "        rm -rf build-tsan && scripts/check.sh)" >&2
  exit 1
fi
cmake -B build-tsan -S . -DMANET_TSAN=ON >/dev/null
cmake --build build-tsan -j "$jobs" \
    --target exp_test fabric_test fig5_detection_static
./build-tsan/tests/exp_test >/dev/null
./build-tsan/tests/fabric_test >/dev/null
./build-tsan/bench/fig5_detection_static --loads=0.6 --pms=0,50 \
    --sim_time=10 --runs=4 --threads=4 \
    --json="$smoke_dir/tsan_fig5.json" >/dev/null
grep -q '^{' "$smoke_dir/tsan_fig5.json" \
  || { echo "empty JSON sink output under TSan"; exit 1; }

echo "All checks passed."
