// A zoo of MAC-layer cheaters and the checks that catch them.
//
// Four stations on a line build a classic hidden-terminal setup:
//
//   S(0m) ---- R(200m) .... C(600m) -- D(800m)
//
// S streams to R; C streams to D. S and C cannot sense each other (600 m >
// 550 m sensing range), so their transmissions collide at R and S is forced
// into retransmissions — the habitat of the retry-based cheats. R monitors
// S with the full framework. One attacker per row:
//   * PM attacker             -> impossible back-off + Wilcoxon
//   * constant tiny back-off  -> impossible back-off + Wilcoxon
//   * no exponential back-off -> impossible back-off on retries
//   * frozen SeqOff#          -> deterministic SeqOff continuity check
//   * stuck Attempt# (+ no CW doubling: the "retry cheater")
//                             -> deterministic MD5/Attempt check
// plus one non-attacker: an honest sender observed through 15% frame loss,
// which must trip zero deterministic checks (misses resync, not violate).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detect/monitor.hpp"
#include "mac/dcf.hpp"
#include "phy/channel.hpp"
#include "phy/cs_timeline.hpp"
#include "phy/impairments.hpp"
#include "sim/simulator.hpp"

using namespace manet;

namespace {

struct FixedPositions : phy::PositionProvider {
  geom::Vec2 position(NodeId node, SimTime) const override {
    static constexpr double xs[] = {0, 200, 600, 800};
    return {xs[node], 0};
  }
};

struct ZooEntry {
  std::string name;
  std::function<void(mac::DcfMac&)> install;
  phy::FaultPlan faults = {};  // disabled by default
};

void run(const ZooEntry& entry) {
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, /*shadowing_seed=*/1);
  FixedPositions positions;
  phy::Channel channel(sim, prop, positions);
  phy::FaultInjector faults(entry.faults, /*seed=*/1);
  faults.set_corruptor(mac::corrupt_rts_fields);

  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<phy::CsTimeline>> timelines;
  for (NodeId i = 0; i < 4; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(i, channel));
    macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
    timelines.push_back(std::make_unique<phy::CsTimeline>());
    radios.back()->add_listener(timelines.back().get());
  }
  const NodeId s = 0, r = 1, c = 2;
  entry.install(*macs[s]);
  if (entry.faults.enabled()) channel.install_faults(faults);

  detect::MonitorConfig mc;
  mc.sample_size = 10;
  mc.separation_m = 200;
  detect::Monitor monitor(sim, *macs[r], *timelines[r], s, mc);

  // Keep S saturated and C moderately loaded (a saturated hidden terminal
  // would jam R completely).
  const SimTime stop = seconds_to_time(60);
  std::uint64_t next_id = 1;
  std::function<void()> feeder = [&] {
    while (macs[s]->queue_length() < 20) macs[s]->enqueue(r, 512, next_id++);
    macs[c]->enqueue(3, 512, next_id++);
    if (sim.now() < stop) sim.after(25 * kMillisecond, feeder);
  };
  sim.at(0, feeder);
  sim.run_until(stop);

  const detect::MonitorStats& st = monitor.stats();
  std::uint64_t stat_flags = 0;
  for (const auto& w : monitor.windows()) stat_flags += w.statistical_flag;

  std::printf("%-16s windows %4llu  flagged %5.1f%%  | wilcoxon %4llu  "
              "impossible %4llu  seqoff %4llu  attempt %4llu  resyncs %4llu  "
              "(S retries %llu)\n",
              entry.name.c_str(), static_cast<unsigned long long>(st.windows),
              100.0 * monitor.flag_rate(),
              static_cast<unsigned long long>(stat_flags),
              static_cast<unsigned long long>(st.impossible_backoff),
              static_cast<unsigned long long>(st.seq_off_violations),
              static_cast<unsigned long long>(st.attempt_violations),
              static_cast<unsigned long long>(st.seq_off_resyncs),
              static_cast<unsigned long long>(macs[s]->stats().retries));
}

}  // namespace

int main() {
  std::printf("MAC misbehavior zoo: hidden-terminal line S-R...C-D, monitor at R\n\n");
  const ZooEntry entries[] = {
      {"honest", [](mac::DcfMac&) {}},
      {"pm_50",
       [](mac::DcfMac& m) {
         m.set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(50));
       }},
      {"pm_90",
       [](mac::DcfMac& m) {
         m.set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(90));
       }},
      {"constant_1",
       [](mac::DcfMac& m) {
         m.set_backoff_policy(std::make_unique<mac::ConstantBackoff>(1));
       }},
      {"no_exp_backoff",
       [](mac::DcfMac& m) {
         m.set_backoff_policy(std::make_unique<mac::NoExponentialBackoff>(31));
       }},
      {"frozen_seq_off",
       [](mac::DcfMac& m) {
         m.set_announce_policy(std::make_unique<mac::FrozenSeqOffAnnounce>(3));
       }},
      // The realistic retry cheater: never doubles its contention window
      // AND always announces Attempt #1 so the timing matches the
      // announcement. Only the MD5/Attempt retransmission check can see it.
      {"retry_cheater",
       [](mac::DcfMac& m) {
         m.set_backoff_policy(std::make_unique<mac::NoExponentialBackoff>(31));
         m.set_announce_policy(std::make_unique<mac::StuckAttemptAnnounce>());
       }},
      // Honest sender behind a 15% lossy channel: the monitor misses RTSs
      // but must resynchronize, not accuse — zero deterministic flags and a
      // flag rate no worse than the significance level allows.
      {"lossy_honest_15", [](mac::DcfMac&) {},
       [] {
         phy::FaultPlan plan;
         plan.loss_probability = 0.15;
         return plan;
       }()},
  };
  for (const auto& e : entries) run(e);
  std::printf("\nEvery cheating strategy trips at least one check; the honest "
              "node trips none — even when 15%% of its frames are lost.\n");
  return 0;
}
