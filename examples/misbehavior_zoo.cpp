// A zoo of MAC-layer cheaters and the checks that catch them.
//
// Four stations on a line build a classic hidden-terminal setup:
//
//   S(0m) ---- R(200m) .... C(600m) -- D(800m)
//
// S streams to R; C streams to D. S and C cannot sense each other (600 m >
// 550 m sensing range), so their transmissions collide at R and S is forced
// into retransmissions — the habitat of the retry-based cheats. R monitors
// S with the full framework. One attacker per row:
//   * PM attacker             -> impossible back-off + Wilcoxon
//   * constant tiny back-off  -> impossible back-off + Wilcoxon
//   * no exponential back-off -> impossible back-off on retries
//   * frozen SeqOff#          -> deterministic SeqOff continuity check
//   * stuck Attempt# (+ no CW doubling: the "retry cheater")
//                             -> deterministic MD5/Attempt check
// plus the adversary zoo v2 (src/mac/attackers.hpp):
//   * colluding member        -> Wilcoxon, slower (honest turns dilute it)
//   * adaptive cheater        -> Wilcoxon, only after its probation ends
//   * sybil (3 identities)    -> per-identity Wilcoxon, one monitor each
//   * RTS flood DoS           -> anchorless RTS-gap bound (deterministic)
// plus one non-attacker: an honest sender observed through 15% frame loss,
// which must trip zero deterministic checks (misses resync, not violate).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detect/monitor.hpp"
#include "mac/attackers.hpp"
#include "mac/dcf.hpp"
#include "phy/channel.hpp"
#include "phy/cs_timeline.hpp"
#include "phy/impairments.hpp"
#include "sim/simulator.hpp"

using namespace manet;

namespace {

struct FixedPositions : phy::PositionProvider {
  geom::Vec2 position(NodeId node, SimTime) const override {
    static constexpr double xs[] = {0, 200, 600, 800};
    return {xs[node], 0};
  }
};

/// Handed to each entry's install hook: the attacker's MAC/radio plus the
/// knobs the v2 attackers need (extra monitored identities, a flooder slot,
/// whether the attacker still sources DATA traffic).
struct ZooContext {
  sim::Simulator& sim;
  mac::DcfMac& attacker;
  phy::Radio& radio;
  const mac::DcfParams& params;
  NodeId monitor_node;             // R: who watches (and gets flooded)
  SimTime stop;                    // end of the run
  std::vector<NodeId> targets;     // identities R monitors (default {S})
  bool feed_attacker = true;       // false: S sends no DATA (pure flood)
  bool gap_bound = false;          // monitors enable the RTS-gap bound
  std::unique_ptr<mac::RtsFlooder> flooder;  // kept alive for the run
};

struct ZooEntry {
  std::string name;
  std::function<void(ZooContext&)> install;
  phy::FaultPlan faults = {};  // disabled by default
};

void run(const ZooEntry& entry) {
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, /*shadowing_seed=*/1);
  FixedPositions positions;
  phy::Channel channel(sim, prop, positions);
  phy::FaultInjector faults(entry.faults, /*seed=*/1);
  faults.set_corruptor(mac::corrupt_rts_fields);

  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<phy::CsTimeline>> timelines;
  for (NodeId i = 0; i < 4; ++i) {
    radios.push_back(std::make_unique<phy::Radio>(i, channel));
    macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
    timelines.push_back(std::make_unique<phy::CsTimeline>());
    radios.back()->add_listener(timelines.back().get());
  }
  const NodeId s = 0, r = 1, c = 2;
  const SimTime stop = seconds_to_time(60);
  ZooContext ctx{sim,  *macs[s], *radios[s], params,
                 r,    stop,     {s},        /*feed_attacker=*/true};
  entry.install(ctx);
  if (entry.faults.enabled()) channel.install_faults(faults);

  // One monitor per claimed identity (one for everyone except the sybil).
  detect::MonitorConfig mc;
  mc.sample_size = 10;
  mc.separation_m = 200;
  mc.rts_gap_bound = ctx.gap_bound;
  detect::MonitorFactory factory(sim, *macs[r], *timelines[r]);
  factory.with_config(mc);
  std::vector<std::unique_ptr<detect::Monitor>> monitors;
  for (NodeId target : ctx.targets) {
    monitors.push_back(factory.watch(target));
  }

  // Keep S saturated and C moderately loaded (a saturated hidden terminal
  // would jam R completely).
  std::uint64_t next_id = 1;
  std::function<void()> feeder = [&] {
    if (ctx.feed_attacker) {
      while (macs[s]->queue_length() < 20) macs[s]->enqueue(r, 512, next_id++);
    }
    macs[c]->enqueue(3, 512, next_id++);
    if (sim.now() < stop) sim.after(25 * kMillisecond, feeder);
  };
  sim.at(0, feeder);
  sim.run_until(stop);

  // Sum the per-identity monitors; the first flag is the earliest any of
  // them raised (the relevant time-to-detection for a sybil).
  detect::MonitorStats st;
  std::uint64_t stat_flags = 0, windows = 0, flagged = 0;
  for (const auto& monitor : monitors) {
    const detect::MonitorStats& ms = monitor->stats();
    st.impossible_backoff += ms.impossible_backoff;
    st.seq_off_violations += ms.seq_off_violations;
    st.attempt_violations += ms.attempt_violations;
    st.seq_off_resyncs += ms.seq_off_resyncs;
    if (ms.first_flag_time < st.first_flag_time) {
      st.first_flag_time = ms.first_flag_time;
    }
    windows += ms.windows;
    flagged += ms.flagged_windows;
    for (const auto& w : monitor->windows()) stat_flags += w.statistical_flag;
  }
  const double flag_rate = windows ? 100.0 * flagged / windows : 0.0;

  char first_flag[16] = "   -  ";
  if (st.first_flag_time != kTimeNever) {
    std::snprintf(first_flag, sizeof first_flag, "%5.1fs",
                  time_to_seconds(st.first_flag_time));
  }
  std::printf("%-16s windows %4llu  flagged %5.1f%%  first %s  | wilcoxon %4llu  "
              "impossible %4llu  seqoff %4llu  attempt %4llu  resyncs %4llu  "
              "(S retries %llu)\n",
              entry.name.c_str(), static_cast<unsigned long long>(windows),
              flag_rate, first_flag,
              static_cast<unsigned long long>(stat_flags),
              static_cast<unsigned long long>(st.impossible_backoff),
              static_cast<unsigned long long>(st.seq_off_violations),
              static_cast<unsigned long long>(st.attempt_violations),
              static_cast<unsigned long long>(st.seq_off_resyncs),
              static_cast<unsigned long long>(macs[s]->stats().retries));
}

}  // namespace

int main() {
  std::printf("MAC misbehavior zoo: hidden-terminal line S-R...C-D, monitor at R\n\n");
  const ZooEntry entries[] = {
      {"honest", [](ZooContext&) {}},
      {"pm_50",
       [](ZooContext& z) {
         z.attacker.set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(50));
       }},
      {"pm_90",
       [](ZooContext& z) {
         z.attacker.set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(90));
       }},
      {"constant_1",
       [](ZooContext& z) {
         z.attacker.set_backoff_policy(std::make_unique<mac::ConstantBackoff>(1));
       }},
      {"no_exp_backoff",
       [](ZooContext& z) {
         z.attacker.set_backoff_policy(std::make_unique<mac::NoExponentialBackoff>(31));
       }},
      {"frozen_seq_off",
       [](ZooContext& z) {
         z.attacker.set_announce_policy(std::make_unique<mac::FrozenSeqOffAnnounce>(3));
       }},
      // The realistic retry cheater: never doubles its contention window
      // AND always announces Attempt #1 so the timing matches the
      // announcement. Only the MD5/Attempt retransmission check can see it.
      {"retry_cheater",
       [](ZooContext& z) {
         z.attacker.set_backoff_policy(std::make_unique<mac::NoExponentialBackoff>(31));
         z.attacker.set_announce_policy(std::make_unique<mac::StuckAttemptAnnounce>());
       }},
      // Colluding member: one of a group of two that takes turns cheating
      // (2 s turns), so only half its windows carry the PM-90 signature —
      // same Wilcoxon check, later first flag than solo pm_90.
      {"colluding_1of2",
       [](ZooContext& z) {
         auto schedule = std::make_shared<mac::CollusionSchedule>();
         schedule->group_size = 2;
         schedule->phase = 2 * kSecond;
         z.attacker.set_backoff_policy(
             std::make_unique<mac::ColludingBackoff>(schedule, 0, 90));
       }},
      // Adaptive cheater: honest for a 30 s probation (half the run), then
      // PM-90. The first flag can only land in the second half.
      {"adaptive_30s",
       [](ZooContext& z) {
         auto policy = std::make_unique<mac::AdaptiveBackoff>(
             90, seconds_to_time(30), /*vigilance=*/0,
             std::vector<NodeId>{z.monitor_node});
         z.attacker.add_observer(policy.get());
         z.attacker.set_backoff_policy(std::move(policy));
       }},
      // Sybil: one radio, three claimed identities, PM-90 against each
      // claimed identity's own verifiable PRS. R runs one monitor per
      // claimed identity; each accumulates windows at a third of the rate.
      {"sybil_3ids",
       [](ZooContext& z) {
         std::vector<NodeId> aliases;
         for (NodeId i = 0; i < 3; ++i) aliases.push_back(mac::kSybilAliasBase + i);
         for (NodeId alias : aliases) z.attacker.add_identity_alias(alias);
         auto state = std::make_shared<mac::SybilState>(aliases, z.params);
         z.attacker.set_backoff_policy(std::make_unique<mac::SybilBackoff>(state, 90));
         z.attacker.set_announce_policy(std::make_unique<mac::SybilAnnounce>(state));
         z.targets = aliases;
       }},
      // RTS flood DoS: S sources no DATA at all; a flooder on S's radio
      // sprays bogus RTSes at R. Without an exchange there is never an
      // anchor, so only the anchorless RTS-gap bound can see it.
      {"rts_flood",
       [](ZooContext& z) {
         z.feed_attacker = false;
         z.gap_bound = true;
         mac::RtsFloodConfig fc;
         fc.victim = z.monitor_node;
         fc.seed = 7;
         z.flooder = std::make_unique<mac::RtsFlooder>(z.sim, z.radio, z.params, fc);
         z.flooder->start(0, z.stop);
       }},
      // Honest sender behind a 15% lossy channel: the monitor misses RTSs
      // but must resynchronize, not accuse — zero deterministic flags and a
      // flag rate no worse than the significance level allows.
      {"lossy_honest_15", [](ZooContext&) {},
       [] {
         phy::FaultPlan plan;
         plan.loss_probability = 0.15;
         return plan;
       }()},
  };
  for (const auto& e : entries) run(e);
  std::printf("\nEvery cheating strategy trips at least one check; the honest "
              "node trips none — even when 15%% of its frames are lost.\n");
  return 0;
}
