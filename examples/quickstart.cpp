// Quickstart: the smallest complete use of the library.
//
// Two stations share a channel: S streams packets to R, and R runs a
// Monitor that knows S's verifiable back-off sequence (seeded by S's MAC
// address, as the paper requires). We run the pair twice — once honest,
// once with S counting down only 20% of its dictated back-off (PM = 80) —
// and print what the monitor concluded.
//
//   ./quickstart            # default PM = 80 for the second run
//   ./quickstart 35         # try a subtler attacker
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "detect/monitor.hpp"
#include "detect/report.hpp"
#include "net/network.hpp"

using namespace manet;

namespace {

void run_pair(double pm) {
  // A scenario is a Table-1 style configuration; shrink it to two nodes.
  net::ScenarioConfig scenario;
  scenario.grid_rows = 1;
  scenario.grid_cols = 2;
  scenario.num_flows = 0;
  scenario.sim_seconds = 20;
  scenario.seed = 7;

  net::Network net(scenario);
  const NodeId s = 0, r = 1;

  // S streams 512-byte packets to R fast enough to stay backlogged.
  net.add_flow(s, r, /*packets_per_second=*/300);

  // Misbehavior is just a back-off policy on S's MAC.
  if (pm > 0) {
    net.mac(s).set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(pm));
  }

  // R monitors S: it recomputes S's dictated back-offs from the announced
  // SeqOff#/Attempt# fields and tests the observed countdowns.
  detect::MonitorConfig mc;
  mc.sample_size = 10;
  const auto monitor =
      detect::MonitorFactory(net.simulator(), net.mac(r), net.timeline(r))
          .watch(s, mc);

  const SimTime stop = seconds_to_time(scenario.sim_seconds);
  net.start_traffic(0, stop);
  net.run_until(stop);

  std::printf("--- PM = %.0f%% ---\n%s\n", pm,
              detect::render_report(*monitor).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const double pm = argc > 1 ? std::atof(argv[1]) : 80.0;
  std::printf("Back-off timer violation detection, two-station quickstart\n\n");
  run_pair(0);    // honest: no windows should flag
  run_pair(pm);   // misbehaving: windows flag
  std::printf("\nAn honest station is never flagged; a station that counts "
              "down only\n(100-PM)%% of its dictated back-off is.\n");
  return 0;
}
