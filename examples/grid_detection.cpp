// The paper's flagship scenario end to end: a 7x8 grid (56 nodes, Table 1),
// 30 one-hop Poisson flows, a misbehaving node at the grid center and its
// receiver monitoring it with the full deterministic + statistical
// framework.
//
//   ./grid_detection                      # PM=50 at ~load 0.6
//   ./grid_detection --pm=25 --rate=8     # subtler attacker, lighter load
//   ./grid_detection --runs=8 --threads=4 # aggregate parallel trials
#include <cstdio>

#include "detect/experiment.hpp"
#include "exp/engine.hpp"
#include "util/config.hpp"
#include "util/flags.hpp"

using namespace manet;

int main(int argc, char** argv) {
  util::Config config;
  config.declare("pm", "50", "percentage of misbehavior of the tagged node");
  config.declare("rate", "14", "per-flow packet rate (pkt/s); 14 ~ load 0.6");
  config.declare("sim_time", "120", "simulated seconds");
  config.declare("sample_size", "10", "Wilcoxon window size");
  config.declare("seed", "42", "base random seed");
  config.declare("runs", "1", "independent trials aggregated (seeds seed..seed+runs-1)");
  config.declare("threads", "0",
                 "worker threads for the trials (0 = all hardware threads)");
  try {
    const auto parsed = util::parse_flags(argc, argv, config);
    if (parsed.help) {
      std::printf("Grid detection demo.\n\nFlags:\n%s", config.render().c_str());
      return 0;
    }
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  detect::DetectionConfig cfg;
  cfg.scenario.sim_seconds = config.get_double("sim_time");
  cfg.scenario.seed = static_cast<std::uint64_t>(config.get_int("seed"));
  cfg.rate_pps = config.get_double("rate");
  cfg.pm = config.get_double("pm");
  cfg.monitor.sample_size = static_cast<std::size_t>(config.get_int("sample_size"));
  cfg.monitor.fixed_n = cfg.monitor.fixed_k = 5.0;  // the paper's grid setting
  cfg.monitor.fixed_m = cfg.monitor.fixed_j = 5.0;
  cfg.monitor.fixed_contenders = 20.0;

  const int runs = static_cast<int>(config.get_int("runs"));
  exp::Engine engine(static_cast<unsigned>(config.get_int("threads")));

  std::printf("7x8 grid, 30 one-hop flows, tagged node at the grid center "
              "(PM=%.0f%%, %d run%s)\n\n", cfg.pm, runs, runs == 1 ? "" : "s");
  const detect::DetectionResult r = detect::run_detection_trials(cfg, runs, engine);

  std::printf("measured traffic intensity at the monitor : %.3f\n", r.measured_rho);
  std::printf("RTS frames observed from the tagged node  : %llu\n",
              static_cast<unsigned long long>(r.stats.rts_observed));
  std::printf("back-off samples accepted                 : %llu\n",
              static_cast<unsigned long long>(r.stats.samples));
  std::printf("windows tested                            : %llu\n",
              static_cast<unsigned long long>(r.windows));
  std::printf("windows flagged (any path)                : %llu  (%.1f%%)\n",
              static_cast<unsigned long long>(r.flagged),
              100 * r.detection_rate);
  std::printf("  via Wilcoxon rank-sum                   : %llu\n",
              static_cast<unsigned long long>(r.flagged_statistical));
  std::printf("  impossible back-off events              : %llu\n",
              static_cast<unsigned long long>(r.stats.impossible_backoff));
  std::printf("  SeqOff / Attempt violations             : %llu / %llu\n",
              static_cast<unsigned long long>(r.stats.seq_off_violations),
              static_cast<unsigned long long>(r.stats.attempt_violations));
  std::printf("\nVerdict: the tagged node %s\n",
              r.detection_rate > 0.5
                  ? "was detected misbehaving"
                  : (cfg.pm > 0 ? "evaded detection in this run"
                                : "is (correctly) considered well behaved"));
  return 0;
}
