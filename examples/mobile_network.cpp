// Mobile scenario: 112 nodes under random waypoint motion (0-20 m/s,
// Table 1). The monitoring role follows the misbehaving node: whenever the
// current monitor drifts out of transmission range, the nearest one-hop
// neighbor takes over, exactly as in the paper's Figure 5(d)/6(b) setup.
//
//   ./mobile_network --pm=65 --pause=100
#include <cstdio>

#include "detect/experiment.hpp"
#include "util/config.hpp"
#include "util/flags.hpp"

using namespace manet;

int main(int argc, char** argv) {
  util::Config config;
  config.declare("pm", "65", "percentage of misbehavior of the tagged node");
  config.declare("rate", "14", "per-flow packet rate (pkt/s)");
  config.declare("sim_time", "180", "simulated seconds");
  config.declare("max_speed", "20", "random waypoint max speed (m/s)");
  config.declare("pause", "0", "random waypoint pause time (s)");
  config.declare("sample_size", "10", "Wilcoxon window size");
  config.declare("seed", "17", "random seed");
  try {
    const auto parsed = util::parse_flags(argc, argv, config);
    if (parsed.help) {
      std::printf("Mobile network demo.\n\nFlags:\n%s", config.render().c_str());
      return 0;
    }
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  detect::DetectionConfig cfg;
  cfg.scenario.mobility = net::MobilityKind::kRandomWaypoint;
  cfg.scenario.max_speed_mps = config.get_double("max_speed");
  cfg.scenario.pause_s = config.get_double("pause");
  cfg.scenario.sim_seconds = config.get_double("sim_time");
  cfg.scenario.seed = static_cast<std::uint64_t>(config.get_int("seed"));
  cfg.rate_pps = config.get_double("rate");
  cfg.pm = config.get_double("pm");
  cfg.mobile_handoff = true;
  cfg.monitor.sample_size = static_cast<std::size_t>(config.get_int("sample_size"));
  cfg.monitor.fixed_n = cfg.monitor.fixed_k = 5.0;
  cfg.monitor.fixed_m = cfg.monitor.fixed_j = 5.0;
  cfg.monitor.fixed_contenders = 20.0;

  std::printf("Random waypoint, 0-%.0f m/s, pause %.0f s, tagged node PM=%.0f%%\n\n",
              cfg.scenario.max_speed_mps, cfg.scenario.pause_s, cfg.pm);
  const detect::DetectionResult r = detect::run_detection_experiment(cfg);

  std::printf("monitor handoffs (range losses)  : %llu\n",
              static_cast<unsigned long long>(r.handoffs));
  std::printf("back-off samples collected       : %llu\n",
              static_cast<unsigned long long>(r.stats.samples));
  std::printf("windows tested / flagged         : %llu / %llu  (%.1f%%)\n",
              static_cast<unsigned long long>(r.windows),
              static_cast<unsigned long long>(r.flagged),
              100 * r.detection_rate);
  std::printf("measured traffic intensity       : %.3f\n", r.measured_rho);
  std::printf("\nMobility costs samples (the paper reports roughly twice as "
              "many are\nneeded), but violations are still discovered.\n");
  return 0;
}
