// Multi-hop routing demo: AODV over the Table-1 grid.
//
// A corner-to-corner flow (13+ hops on the 7x8 grid) is routed by AODV;
// the demo prints the discovered route, per-hop forwarding counters,
// end-to-end delivery/latency statistics, and — with --trace=true — the
// first frames the destination heard, in ns-2-style trace lines.
//
//   ./multihop_route
//   ./multihop_route --rate=20 --trace=true
#include <cstdio>

#include "net/flow_stats.hpp"
#include "net/network.hpp"
#include "net/tracer.hpp"
#include "util/config.hpp"
#include "util/flags.hpp"

using namespace manet;

int main(int argc, char** argv) {
  util::Config config;
  config.declare("rate", "10", "packets per second on the corner flow");
  config.declare("sim_time", "30", "simulated seconds");
  config.declare("trace", "false", "print the destination's frame trace head");
  config.declare("seed", "3", "random seed");
  try {
    const auto parsed = util::parse_flags(argc, argv, config);
    if (parsed.help) {
      std::printf("AODV multi-hop demo.\n\nFlags:\n%s", config.render().c_str());
      return 0;
    }
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  net::ScenarioConfig cfg;
  cfg.routing = net::RoutingKind::kAodv;
  cfg.flow_pattern = net::FlowPattern::kAny;
  cfg.num_flows = 0;
  cfg.sim_seconds = config.get_double("sim_time");
  cfg.seed = static_cast<std::uint64_t>(config.get_int("seed"));
  net::Network net(cfg);

  const NodeId src = 0;
  const NodeId dst = static_cast<NodeId>(net.size() - 1);

  // End-to-end statistics: wrap the source's sink, listen at the dest.
  net::EndToEndStats e2e(net.simulator());
  auto recording = e2e.wrap(net.sink(src));
  net.router(dst)->set_listener(&e2e);

  net::FrameTracer tracer(dst, 2000);
  net.mac(dst).add_observer(&tracer);

  // Drive the flow through the recording sink.
  const double rate = config.get_double("rate");
  const SimTime stop = seconds_to_time(cfg.sim_seconds);
  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    recording.submit(dst, 512, id++);
    if (net.simulator().now() < stop) {
      net.simulator().after(seconds_to_time(1.0 / rate), feeder);
    }
  };
  net.simulator().at(0, feeder);
  net.run_until(stop);

  std::printf("corner-to-corner flow %u -> %u on the 7x8 grid\n\n", src, dst);
  const auto route = net.router(src)->routes().lookup(dst, net.simulator().now());
  if (route) {
    std::printf("route at source : next hop %u, %u hops, seq %u\n",
                route->next_hop, route->hop_count, route->dest_seq);
  } else {
    std::printf("route at source : (expired)\n");
  }

  std::uint64_t rreqs = 0, forwards = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    rreqs += net.router(i)->stats().rreq_sent;
    forwards += net.router(i)->stats().forwarded;
  }
  std::printf("discovery cost  : %llu RREQ transmissions network-wide\n",
              static_cast<unsigned long long>(rreqs));
  std::printf("forwarding      : %llu relay transmissions\n",
              static_cast<unsigned long long>(forwards));
  std::printf("delivery        : %llu / %llu (%.1f%%)\n",
              static_cast<unsigned long long>(e2e.delivered()),
              static_cast<unsigned long long>(e2e.submitted()),
              100 * e2e.delivery_ratio());
  std::printf("latency         : mean %.1f ms, max %.1f ms over %zu packets\n",
              1e3 * e2e.delay().mean(), 1e3 * e2e.delay().max(),
              e2e.delay().count());

  if (config.get_bool("trace")) {
    std::printf("\nfirst frames heard at the destination:\n");
    std::size_t shown = 0;
    for (const auto& line : tracer.lines()) {
      if (++shown > 12) break;
      std::printf("  %s\n", line.c_str());
    }
  }
  return 0;
}
