// Figure 6(b): probability of misdiagnosis vs sample size with mobility
// (random waypoint, load 0.6). All nodes well behaved; monitor handoff on
// range loss as in Figure 5(d). The independent runs fan out across the
// experiment engine (--threads).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"
#include "util/stats.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 6(b): probability of misdiagnosis with "
                       "mobility, load 0.6.");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_double_list("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  flags.add_double("sim_time", 300, "simulated seconds per run");
  flags.add_int("runs", 3, "independent runs (consecutive seeds)");
  flags.add_int("seed", 401, "base random seed");
  flags.add_double("alpha", 0.01, "significance level");
  flags.add_double("margin", 0.10, "permissible deficit fraction");
  flags.add_double("max_speed", 20, "random waypoint max speed (m/s)");
  flags.add_double("pause", 0, "random waypoint pause time (s)");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.parse_or_exit(argc, argv);

  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const int runs = static_cast<int>(flags.get_int("runs"));

  bench::print_header(
      "Figure 6(b): probability of misdiagnosis with mobility (load 0.6)",
      "a sample size of 50 keeps the false-alarm probability below 0.2%");

  net::ScenarioConfig scenario;
  scenario.mobility = net::MobilityKind::kRandomWaypoint;
  scenario.max_speed_mps = flags.get_double("max_speed");
  scenario.pause_s = flags.get_double("pause");
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(flags.get_double("load"));

  detect::MultiDetectionConfig cfg;
  cfg.scenario = scenario;
  cfg.rate_pps = rate;
  cfg.pm = 0.0;
  cfg.mobile_handoff = true;
  cfg.pipeline = flags.pipeline();
  for (double ss : sample_sizes) {
    detect::MonitorConfig m;
    m.sample_size = static_cast<std::size_t>(ss);
    m.alpha = flags.get_double("alpha");
    m.margin_fraction = flags.get_double("margin");
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
    m.fixed_contenders = 20.0;
    cfg.monitors.push_back(m);
  }

  const auto result = detect::run_multi_detection_trials(cfg, runs, engine);

  std::printf("  %-6s %-9s %-9s %-12s %-10s\n", "ss", "windows", "flagged",
              "P(misdiag)", "95%% upper");
  for (std::size_t i = 0; i < sample_sizes.size(); ++i) {
    const auto& r = result.per_config[i];
    util::ProportionEstimator p;
    for (std::uint64_t w = 0; w < r.windows; ++w) p.add(w < r.flagged);
    std::printf("  %-6.0f %-9llu %-9llu %-12.4f %-10.4f\n", sample_sizes[i],
                static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.flagged), r.detection_rate,
                p.wilson_upper());

    exp::Record rec;
    rec.add("bench", "fig6b_misdiagnosis_mobile")
        .add("load", flags.get_double("load"))
        .add("sample_size", sample_sizes[i])
        .add("rate_pps", rate)
        .add("runs", runs)
        .add("sim_time_s", flags.get_double("sim_time"))
        .add("windows", r.windows)
        .add("flagged", r.flagged)
        .add("misdiagnosis_rate", r.detection_rate)
        .add("wilson_upper_95", p.wilson_upper())
        .add("intensity", result.measured_rho)
        .add("handoffs", result.handoffs)
        .add("wall_seconds", result.wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  std::printf("  handoffs: %llu, measured intensity: %.3f\n",
              static_cast<unsigned long long>(result.handoffs),
              result.measured_rho);
  sink->flush();
  return 0;
}
