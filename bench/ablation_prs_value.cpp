// Ablation: what does the verifiable PRS buy?
//
// The paper's central modification is making back-off values *verifiable*
// (PRS seeded by the MAC address, SeqOff#/Attempt#/MD announced per RTS).
// This bench runs the identical channel history past two monitors:
//   * full      — the paper's framework (deterministic checks + rank-sum
//                 against the dictated values), and
//   * baseline  — a PRS-unaware watcher that only knows the protocol's
//                 back-off *distribution* (rank-sum against uniform
//                 quantiles; no deterministic checks possible),
// and reports detection (PM sweep) and false alarms (PM=0) for both.
// PM points x runs fan out across the experiment engine (--threads).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Ablation: verifiable-PRS monitor vs PRS-unaware "
                       "baseline watcher.");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_double_list("pms", "0,10,25,50,90", "PM values swept");
  flags.add_double("sim_time", 240, "simulated seconds per PM point");
  flags.add_int("sample_size", 10, "Wilcoxon window size");
  flags.add_int("runs", 2, "independent runs per point");
  flags.add_int("seed", 801, "base random seed");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Ablation: value of the verifiable PRS",
      "without dictated values a watcher loses the deterministic checks and "
      "most statistical power");

  net::ScenarioConfig scenario;
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(flags.get_double("load"));
  const auto pms = flags.get_double_list("pms");
  const int runs = static_cast<int>(flags.get_int("runs"));

  std::vector<detect::MultiDetectionConfig> points;
  for (double pm : pms) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.rate_pps = rate;
    cfg.pm = pm;
    for (bool prs_aware : {true, false}) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(flags.get_int("sample_size"));
      m.prs_aware = prs_aware;
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
      m.fixed_contenders = 20.0;
      cfg.monitors.push_back(m);
    }
    points.push_back(cfg);
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = detect::run_multi_detection_sweep(points, runs, engine);
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::printf("  %-5s %-26s %-26s\n", "PM", "full (rate, windows)",
              "baseline (rate, windows)");
  for (std::size_t i = 0; i < pms.size(); ++i) {
    const auto& result = results[i];
    const auto& full = result.per_config[0];
    const auto& base = result.per_config[1];
    std::printf("  %-5.0f %6.3f (%5llu windows)     %6.3f (%5llu windows)\n",
                pms[i], full.detection_rate,
                static_cast<unsigned long long>(full.windows),
                base.detection_rate,
                static_cast<unsigned long long>(base.windows));
    std::fflush(stdout);

    exp::Record rec;
    rec.add("bench", "ablation_prs_value")
        .add("pm", pms[i])
        .add("load", flags.get_double("load"))
        .add("rate_pps", rate)
        .add("runs", runs)
        .add("sim_time_s", flags.get_double("sim_time"))
        .add("full_windows", full.windows)
        .add("full_rate", full.detection_rate)
        .add("baseline_windows", base.windows)
        .add("baseline_rate", base.detection_rate)
        .add("wall_seconds", result.wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  sink->flush();
  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %zu points x %d runs)\n",
              sweep_wall, engine.threads(), points.size(), runs);
  return 0;
}
