// Robustness: detection and false-alarm rates vs monitor frame loss.
//
// The paper evaluates detection over a clean channel; this sweep injects
// i.i.d. decode failures (plus a trickle of field corruption) between the
// tagged sender and its monitor and asks two questions:
//  * does an honest sender stay unflagged when the monitor misses frames
//    (false-alarm rate bounded near alpha)?
//  * how gracefully does detection of a PM attacker degrade as the monitor
//    sees fewer and fewer of its RTSs?
//
// The loss=0 row runs with no fault plan installed at all, so the clean
// baseline is bit-identical to the pre-impairment pipeline. Each loss
// point spawns an honest and an attacker sweep point; all trials share
// the experiment engine's work queue (--threads).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Robustness: detection / false-alarm rate vs monitor frame loss.");
  flags.add_double_list("losses", "0,0.05,0.1,0.2,0.3", "frame decode-failure probabilities swept");
  flags.add_double("pm", 50, "attacker percentage of misbehavior");
  flags.add_double("corrupt", 0.02, "field-corruption probability (applied whenever loss > 0)");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_int("sample_size", 50, "Wilcoxon window size");
  flags.add_double("sim_time", 200, "simulated seconds per point");
  flags.add_int("runs", 2, "independent runs per point (consecutive seeds)");
  flags.add_int("seed", 401, "base random seed");
  flags.add_double("alpha", 0.01, "significance level for rejecting H0");
  flags.add_double("margin", 0.10, "permissible back-off deficit (fraction of expected mean)");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  const auto losses = flags.get_double_list("losses");
  const double pm = flags.get_double("pm");
  const double corrupt = flags.get_double("corrupt");
  const int runs = static_cast<int>(flags.get_int("runs"));

  bench::print_header(
      "Robustness: detection under lossy observation",
      "honest false alarms stay near alpha at every loss rate; PM detection "
      "degrades gracefully (within ~10 points of clean at 10% loss)");

  net::ScenarioConfig scenario;  // Table-1 grid defaults
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(flags.get_double("load"));

  // Two sweep points per loss value: honest (PM=0) and attacker.
  std::vector<detect::MultiDetectionConfig> points;
  for (double loss : losses) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    if (loss > 0.0) {
      cfg.scenario.faults.loss_probability = loss;
      cfg.scenario.faults.corrupt_probability = corrupt;
    }
    cfg.rate_pps = rate;
    detect::MonitorConfig m;
    m.sample_size = static_cast<std::size_t>(flags.get_int("sample_size"));
    m.alpha = flags.get_double("alpha");
    m.margin_fraction = flags.get_double("margin");
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
    m.fixed_contenders = 20.0;
    cfg.monitors = {m};

    cfg.pm = 0.0;
    points.push_back(cfg);  // honest
    cfg.pm = pm;
    points.push_back(cfg);  // attacker
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = detect::run_multi_detection_sweep(points, runs, engine);
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::printf("\n  %-6s  %-22s  %-22s  %s\n", "loss",
              "honest FA rate (win)", "pm detect rate (win)",
              "resyncs/lost/viol (attacker)");

  for (std::size_t i = 0; i < losses.size(); ++i) {
    const auto& honest = results[2 * i].per_config.at(0);
    const auto& attacker = results[2 * i + 1].per_config.at(0);
    std::printf("  %-6.2f  %6.3f (%4llu)         %6.3f (%4llu)         "
                "%llu/%llu/%llu\n",
                losses[i], honest.detection_rate,
                static_cast<unsigned long long>(honest.windows),
                attacker.detection_rate,
                static_cast<unsigned long long>(attacker.windows),
                static_cast<unsigned long long>(attacker.stats.seq_off_resyncs),
                static_cast<unsigned long long>(attacker.stats.frames_lost),
                static_cast<unsigned long long>(
                    attacker.stats.seq_off_violations +
                    attacker.stats.attempt_violations));
    std::fflush(stdout);

    exp::Record rec;
    rec.add("bench", "robustness_loss_sweep")
        .add("loss", losses[i])
        .add("corrupt", losses[i] > 0.0 ? corrupt : 0.0)
        .add("pm", pm)
        .add("load", flags.get_double("load"))
        .add("rate_pps", rate)
        .add("runs", runs)
        .add("sim_time_s", flags.get_double("sim_time"))
        .add("honest_windows", honest.windows)
        .add("honest_false_alarm_rate", honest.detection_rate)
        .add("attacker_windows", attacker.windows)
        .add("attacker_detection_rate", attacker.detection_rate)
        .add("attacker_seq_off_resyncs", attacker.stats.seq_off_resyncs)
        .add("attacker_frames_lost", attacker.stats.frames_lost)
        .add("attacker_violations", attacker.stats.seq_off_violations +
                                        attacker.stats.attempt_violations)
        .add("wall_seconds",
             results[2 * i].wall_seconds + results[2 * i + 1].wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  sink->flush();
  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %zu points x %d runs)\n",
              sweep_wall, engine.threads(), points.size(), runs);
  return 0;
}
