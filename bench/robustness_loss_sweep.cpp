// Robustness: detection and false-alarm rates vs monitor frame loss.
//
// The paper evaluates detection over a clean channel; this sweep injects
// i.i.d. decode failures (plus a trickle of field corruption) between the
// tagged sender and its monitor and asks two questions:
//  * does an honest sender stay unflagged when the monitor misses frames
//    (false-alarm rate bounded near alpha)?
//  * how gracefully does detection of a PM attacker degrade as the monitor
//    sees fewer and fewer of its RTSs?
//
// The loss=0 row runs with no fault plan installed at all, so the clean
// baseline is bit-identical to the pre-impairment pipeline.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  util::Config config;
  config.declare("losses", "0,0.05,0.1,0.2,0.3",
                 "frame decode-failure probabilities swept");
  config.declare("pm", "50", "attacker percentage of misbehavior");
  config.declare("corrupt", "0.02",
                 "field-corruption probability (applied whenever loss > 0)");
  config.declare("load", "0.6", "target traffic intensity");
  config.declare("sample_size", "50", "Wilcoxon window size");
  config.declare("sim_time", "200", "simulated seconds per point");
  config.declare("runs", "2", "independent runs per point (consecutive seeds)");
  config.declare("seed", "401", "base random seed");
  config.declare("alpha", "0.01", "significance level for rejecting H0");
  config.declare("margin", "0.10",
                 "permissible back-off deficit (fraction of expected mean)");
  bench::parse_or_exit(
      argc, argv, config,
      "Robustness: detection / false-alarm rate vs monitor frame loss.");

  const auto losses = bench::parse_double_list(config.get("losses"));
  const double pm = config.get_double("pm");
  const double corrupt = config.get_double("corrupt");
  const int runs = static_cast<int>(config.get_int("runs"));

  bench::print_header(
      "Robustness: detection under lossy observation",
      "honest false alarms stay near alpha at every loss rate; PM detection "
      "degrades gracefully (within ~10 points of clean at 10% loss)");

  net::ScenarioConfig scenario;  // Table-1 grid defaults
  scenario.sim_seconds = config.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(config.get_int("seed"));
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(config.get_double("load"));

  std::printf("\n  %-6s  %-22s  %-22s  %s\n", "loss",
              "honest FA rate (win)", "pm detect rate (win)",
              "resyncs/lost/viol (attacker)");

  for (double loss : losses) {
    detect::DetectionConfig cfg;
    cfg.scenario = scenario;
    if (loss > 0.0) {
      cfg.scenario.faults.loss_probability = loss;
      cfg.scenario.faults.corrupt_probability = corrupt;
    }
    cfg.rate_pps = rate;
    cfg.monitor.sample_size = static_cast<std::size_t>(config.get_int("sample_size"));
    cfg.monitor.alpha = config.get_double("alpha");
    cfg.monitor.margin_fraction = config.get_double("margin");
    cfg.monitor.fixed_n = cfg.monitor.fixed_k = cfg.monitor.fixed_m =
        cfg.monitor.fixed_j = 5.0;  // grid, Section 5
    cfg.monitor.fixed_contenders = 20.0;

    cfg.pm = 0.0;
    const auto honest = detect::run_detection_trials(cfg, runs);
    cfg.pm = pm;
    const auto attacker = detect::run_detection_trials(cfg, runs);

    std::printf("  %-6.2f  %6.3f (%4llu)         %6.3f (%4llu)         "
                "%llu/%llu/%llu\n",
                loss, honest.detection_rate,
                static_cast<unsigned long long>(honest.windows),
                attacker.detection_rate,
                static_cast<unsigned long long>(attacker.windows),
                static_cast<unsigned long long>(attacker.stats.seq_off_resyncs),
                static_cast<unsigned long long>(attacker.stats.frames_lost),
                static_cast<unsigned long long>(
                    attacker.stats.seq_off_violations +
                    attacker.stats.attempt_violations));
    std::fflush(stdout);
  }
  return 0;
}
