// Microbenchmarks of the streaming detection path (detect/trace.hpp,
// detect/replay.hpp): how fast a recorded observation trace moves through
// the wire format and through the full offline detection pipeline.
//
//  * BM_TraceDecode      — parse + CRC-check a serialized .mtrace image
//                          into ObservationEvents (MemoryTraceReader).
//  * BM_TraceSerialize   — the writer side: frame, block, and checksum a
//                          recorded event stream back into wire bytes.
//  * BM_ReplayIngest/... — reconstruct the monitor world and pump every
//                          event through ObservationHub::consume with the
//                          given detector closing the windows. This is the
//                          number the streaming redesign is judged by:
//                          frames_per_s must clear 1M/s (items are decoded
//                          frames, the unit detection latency is quoted in;
//                          events_per_s counts carrier edges too).
//
// The workload trace is recorded once per process from a fig5-style
// static-grid run (PM 65, saturating rate) — the same shape the
// live-vs-replay equivalence tests pin down byte-for-byte.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/experiment.hpp"
#include "detect/replay.hpp"
#include "detect/sequential.hpp"
#include "detect/trace.hpp"

namespace {

using namespace manet;

/// Records the workload trace once and caches the wire image.
const std::vector<std::uint8_t>& workload_trace() {
  static const std::vector<std::uint8_t> bytes = [] {
    detect::MultiDetectionConfig cfg;
    cfg.scenario.grid_rows = 3;
    cfg.scenario.grid_cols = 3;
    cfg.scenario.num_flows = 8;
    cfg.scenario.sim_seconds = 20;
    cfg.scenario.seed = 1301;
    cfg.rate_pps = 40.0;
    cfg.pm = 65.0;
    detect::MonitorConfig m;
    m.sample_size = 10;
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
    m.fixed_contenders = 20.0;
    cfg.monitors.push_back(m);
    detect::TraceRecorder recorder;
    cfg.trace = &recorder;
    detect::run_multi_detection_experiment(cfg);
    return recorder.writers().front()->serialize();
  }();
  return bytes;
}

struct TraceCensus {
  std::size_t events = 0;
  std::size_t frames = 0;
};

TraceCensus census(const detect::MemoryTraceReader& reader) {
  TraceCensus c;
  c.events = reader.event_count();
  for (const auto& ev : reader.events()) {
    if (ev.kind == detect::ObservationKind::kFrame) ++c.frames;
  }
  return c;
}

void BM_TraceDecode(benchmark::State& state) {
  const auto& bytes = workload_trace();
  std::size_t events = 0;
  for (auto _ : state) {
    detect::MemoryTraceReader reader(bytes);
    events = reader.event_count();
    benchmark::DoNotOptimize(reader.events().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
  state.counters["events"] = static_cast<double>(events);
}

void BM_TraceSerialize(benchmark::State& state) {
  const detect::MemoryTraceReader reader(workload_trace());
  for (auto _ : state) {
    detect::TraceWriter writer(reader.header());
    for (const auto& ev : reader.events()) writer.record(ev);
    const auto bytes = writer.serialize();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reader.event_count()));
}

/// The acceptance benchmark: full offline detection over the trace.
void run_ingest(benchmark::State& state, detect::DetectorKind kind) {
  detect::MemoryTraceReader reader(workload_trace());
  const TraceCensus c = census(reader);
  detect::MonitorConfig m;
  m.sample_size = 10;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
  m.fixed_contenders = 20.0;
  m.detector = kind;
  const std::vector<detect::MonitorConfig> monitors{m};

  std::uint64_t windows = 0;
  for (auto _ : state) {
    detect::ReplaySession session(reader.header(), monitors);
    reader.rewind();
    session.run(reader);
    windows = session.views().front()->stats().windows;
    benchmark::DoNotOptimize(windows);
  }
  // items = decoded frames: "frames per second" is the acceptance metric.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.frames));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * c.events),
      benchmark::Counter::kIsRate);
  state.counters["frames"] = static_cast<double>(c.frames);
  state.counters["windows"] = static_cast<double>(windows);
}

void BM_ReplayIngestWilcoxon(benchmark::State& state) {
  run_ingest(state, detect::DetectorKind::kWilcoxon);
}
BENCHMARK(BM_ReplayIngestWilcoxon)->Unit(benchmark::kMillisecond);

void BM_ReplayIngestCusum(benchmark::State& state) {
  run_ingest(state, detect::DetectorKind::kCusum);
}
BENCHMARK(BM_ReplayIngestCusum)->Unit(benchmark::kMillisecond);

void BM_ReplayIngestSprt(benchmark::State& state) {
  run_ingest(state, detect::DetectorKind::kSprt);
}
BENCHMARK(BM_ReplayIngestSprt)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceSerialize)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
