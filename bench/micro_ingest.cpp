// Microbenchmarks of the streaming detection path (detect/trace.hpp,
// detect/replay.hpp): how fast a recorded observation trace moves through
// the wire format and through the full offline detection pipeline.
//
//  * trace_decode     — parse + CRC-check a serialized .mtrace image
//                       into ObservationEvents (MemoryTraceReader).
//  * trace_serialize  — the writer side: frame, block, and checksum a
//                       recorded event stream back into wire bytes.
//  * replay_batch_*   — reconstruct the monitor world and pump every
//                       event through ObservationHub::consume with the
//                       batched pipeline and the given detector closing
//                       windows. This is the number the streaming path is
//                       judged by: frames/s (ops are decoded frames, the
//                       unit detection latency is quoted in) must clear
//                       1M/s; the per-record `events` field counts
//                       carrier edges too.
//  * replay_*_wilcoxon_x16 — the same replay evaluating a 16-config
//                       (sample size x margin) monitor grid over the one
//                       recorded stream; batch_x16/hub_x16 is the
//                       ingest-side speedup perf_pr8.sh records (the
//                       single-config replay_hub_wilcoxon twin shows the
//                       lane indirection is noise when nothing shares).
//
// The workload trace is recorded once per process from a fig5-style
// static-grid run (PM 65, saturating rate) — the same shape the
// live-vs-replay equivalence tests pin down byte-for-byte.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/experiment.hpp"
#include "detect/replay.hpp"
#include "detect/sequential.hpp"
#include "detect/trace.hpp"
#include "micro_common.hpp"

namespace {

using namespace manet;

/// Records the workload trace once and caches the wire image.
const std::vector<std::uint8_t>& workload_trace() {
  static const std::vector<std::uint8_t> bytes = [] {
    detect::MultiDetectionConfig cfg;
    cfg.scenario.grid_rows = 3;
    cfg.scenario.grid_cols = 3;
    cfg.scenario.num_flows = 8;
    cfg.scenario.sim_seconds = 20;
    cfg.scenario.seed = 1301;
    cfg.rate_pps = 40.0;
    cfg.pm = 65.0;
    detect::MonitorConfig m;
    m.sample_size = 10;
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
    m.fixed_contenders = 20.0;
    cfg.monitors.push_back(m);
    detect::TraceRecorder recorder;
    cfg.trace = &recorder;
    detect::run_multi_detection_experiment(cfg);
    return recorder.writers().front()->serialize();
  }();
  return bytes;
}

struct TraceCensus {
  std::size_t events = 0;
  std::size_t frames = 0;
};

TraceCensus census(const detect::MemoryTraceReader& reader) {
  TraceCensus c;
  c.events = reader.event_count();
  for (const auto& ev : reader.events()) {
    if (ev.kind == detect::ObservationKind::kFrame) ++c.frames;
  }
  return c;
}

/// Full offline detection over the trace; ops = decoded frames replayed.
/// `configs` > 1 replays a (sample size x margin) monitor grid over the
/// one recorded stream — the shape the batched lanes exist for.
void run_replay(bench::MicroHarness& h, const std::string& name,
                detect::PipelineImpl impl, detect::DetectorKind kind,
                std::size_t configs, std::size_t base_reps) {
  if (!h.enabled(name)) return;
  detect::MemoryTraceReader reader(workload_trace());
  const TraceCensus c = census(reader);
  std::vector<detect::MonitorConfig> monitors;
  const std::size_t sample_sizes[] = {10, 25, 50, 100};
  for (std::size_t i = 0; i < configs; ++i) {
    detect::MonitorConfig m;
    m.sample_size = sample_sizes[i % 4];
    m.margin_fraction = 0.05 + 0.01 * static_cast<double>(i / 4);
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
    m.fixed_contenders = 20.0;
    m.detector = kind;
    monitors.push_back(m);
  }

  const std::size_t reps = h.reps(base_reps);
  std::uint64_t windows = 0;
  h.run_case(
      name,
      [&] {
        for (std::size_t i = 0; i < reps; ++i) {
          detect::ReplaySession session(reader.header(), monitors, impl);
          reader.rewind();
          session.run(reader);
          windows = session.views().front()->stats().windows;
          bench::keep(windows);
        }
        return static_cast<std::uint64_t>(reps * c.frames);
      },
      [&](exp::Record& rec) {
        rec.add("frames", c.frames)
            .add("events", c.events)
            .add("configs", configs)
            .add("windows", windows);
      });
}

}  // namespace

int main(int argc, char** argv) {
  bench::MicroHarness h(
      "micro_ingest",
      "Streaming detection path: trace wire-format decode/serialize and "
      "full offline replay through the batched and hub pipelines.",
      argc, argv);

  if (h.enabled("trace_decode")) {
    const auto& bytes = workload_trace();
    const std::size_t reps = h.reps(50);
    std::size_t events = 0;
    h.run_case(
        "trace_decode",
        [&] {
          std::uint64_t total = 0;
          for (std::size_t i = 0; i < reps; ++i) {
            detect::MemoryTraceReader reader(bytes);
            events = reader.event_count();
            total += events;
            bench::keep(reader.events().data());
          }
          return total;  // ops = events decoded
        },
        [&](exp::Record& rec) {
          rec.add("events", events).add("trace_bytes", bytes.size());
        });
  }

  if (h.enabled("trace_serialize")) {
    const detect::MemoryTraceReader reader(workload_trace());
    const std::size_t reps = h.reps(50);
    h.run_case(
        "trace_serialize",
        [&] {
          std::uint64_t total = 0;
          for (std::size_t i = 0; i < reps; ++i) {
            detect::TraceWriter writer(reader.header());
            for (const auto& ev : reader.events()) writer.record(ev);
            const auto bytes = writer.serialize();
            total += reader.event_count();
            bench::keep(bytes.data());
          }
          return total;  // ops = events serialized
        },
        [&](exp::Record& rec) { rec.add("events", reader.event_count()); });
  }

  run_replay(h, "replay_batch_wilcoxon", detect::PipelineImpl::kBatch,
             detect::DetectorKind::kWilcoxon, 1, 20);
  run_replay(h, "replay_batch_cusum", detect::PipelineImpl::kBatch,
             detect::DetectorKind::kCusum, 1, 20);
  run_replay(h, "replay_batch_sprt", detect::PipelineImpl::kBatch,
             detect::DetectorKind::kSprt, 1, 20);
  run_replay(h, "replay_hub_wilcoxon", detect::PipelineImpl::kHub,
             detect::DetectorKind::kWilcoxon, 1, 20);
  run_replay(h, "replay_batch_wilcoxon_x16", detect::PipelineImpl::kBatch,
             detect::DetectorKind::kWilcoxon, 16, 10);
  run_replay(h, "replay_hub_wilcoxon_x16", detect::PipelineImpl::kHub,
             detect::DetectorKind::kWilcoxon, 16, 10);
  return 0;
}
