// Microbenchmark of the result-sink encodings (exp/sink.hpp vs
// exp/columnar.hpp): how fast a sweep can emit records, and how big the
// artifact gets.
//
//  * render_json          — Record::to_json alone (the CPU cost the JSON
//                           sink pays per record: snprintf %.17g per
//                           double, key text repeated every record).
//  * json_sink_write      — JsonFileSink end-to-end: render + buffer +
//                           stream to disk.
//  * columnar_sink_write  — ColumnarFileSink end-to-end: per-column
//                           encode (raw 8-byte doubles, varints,
//                           dictionary strings) + CRC framing + stream.
//                           The fabric's high-rate path; perf_pr10.sh
//                           quotes columnar-vs-JSON write speedup (target
//                           >= 10x) and artifact size ratio (~5x).
//  * columnar_read        — read_columnar_file: full validation (CRCs,
//                           schema refs, cell ordering) + record
//                           reconstruction of the written artifact.
//
// The workload records mirror a fig5 sweep row: 15 fields, mostly
// doubles, two dictionary-friendly strings, a few counters.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/columnar.hpp"
#include "exp/sink.hpp"
#include "micro_common.hpp"

namespace {

using namespace manet;

exp::Record make_record(std::uint64_t i) {
  const double x = static_cast<double>(i);
  exp::Record rec;
  rec.add("bench", "fig5_detection_static")
      .add("load", 0.3 + 0.3 * static_cast<double>(i % 3))
      .add("pm", 10.0 + static_cast<double>(i % 8) * 12.5)
      .add("sample_size", 10.0 * static_cast<double>(1 + i % 4))
      .add("rate_pps", 17.25 + x * 1e-3)
      .add("runs", static_cast<std::int64_t>(2))
      .add("sim_time_s", 300.0)
      .add("windows", static_cast<std::uint64_t>(100 + i % 57))
      .add("flagged", static_cast<std::uint64_t>(i % 41))
      .add("flagged_statistical", static_cast<std::uint64_t>(i % 37))
      .add("detection_rate", 1.0 / (1.0 + x))
      .add("statistical_rate", 1.0 / (2.0 + x))
      .add("intensity", 0.5921 + 1e-7 * x)
      .add("wall_seconds", 1.25 + 1e-5 * x)
      .add("threads", static_cast<std::uint64_t>(8));
  return rec;
}

std::uint64_t file_size(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<std::uint64_t>(size);
}

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir && *dir ? dir : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  bench::MicroHarness harness(
      "micro_sink", "Result-sink encodings: JSON vs binary columnar.", argc,
      argv);

  const std::size_t records = harness.reps(200000);
  // Pre-built record pool: the cases measure the SINK (render/encode +
  // stream), not Record construction, which both encodings share. 1024
  // distinct records cycle so dictionaries and value streams still vary.
  std::vector<exp::Record> pool;
  pool.reserve(1024);
  for (std::uint64_t i = 0; i < 1024; ++i) pool.push_back(make_record(i));
  const auto pooled = [&](std::uint64_t i) -> const exp::Record& {
    return pool[i & 1023];
  };
  const std::string json_path = temp_path("micro_sink.json");
  const std::string mcol_path = temp_path("micro_sink.mcol");
  exp::ColumnarMeta meta;
  meta.sweep = "micro_sink";
  meta.bench = "micro_sink";
  meta.total_cells = records;
  meta.cell_begin = 0;
  meta.cell_end = records;

  harness.run_case("render_json", [&] {
    std::size_t bytes = 0;
    for (std::uint64_t i = 0; i < records; ++i) {
      bytes += pooled(i).to_json().size();
    }
    bench::keep(bytes);
    return records;
  });

  double json_wall = 0.0;
  double mcol_wall = 0.0;
  harness.run_case(
      "json_sink_write",
      [&] {
        const auto start = std::chrono::steady_clock::now();
        {
          exp::JsonFileSink sink(json_path);
          for (std::uint64_t i = 0; i < records; ++i) {
            sink.record(pooled(i));
          }
        }
        json_wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        return records;
      },
      [&](exp::Record& rec) { rec.add("bytes", file_size(json_path)); });

  harness.run_case(
      "columnar_sink_write",
      [&] {
        const auto start = std::chrono::steady_clock::now();
        {
          exp::ColumnarFileSink sink(mcol_path, meta);
          for (std::uint64_t i = 0; i < records; ++i) {
            sink.begin_cell(i);
            sink.record(pooled(i));
          }
        }
        mcol_wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        return records;
      },
      [&](exp::Record& rec) { rec.add("bytes", file_size(mcol_path)); });

  harness.run_case("columnar_read", [&] {
    const exp::ColumnarFile file = exp::read_columnar_file(mcol_path);
    bench::keep(file.records.size());
    return records;
  });

  // Headline comparison, one record so perf_pr10.sh (and humans) get the
  // ratios without re-deriving them from the per-case rows.
  const std::uint64_t json_bytes = file_size(json_path);
  const std::uint64_t mcol_bytes = file_size(mcol_path);
  const double write_speedup = mcol_wall > 0.0 ? json_wall / mcol_wall : 0.0;
  const double size_ratio =
      mcol_bytes > 0 ? static_cast<double>(json_bytes) /
                           static_cast<double>(mcol_bytes)
                     : 0.0;
  harness.run_case(
      "columnar_vs_json",
      [&] {
        std::printf("    columnar write speedup: %.1fx, artifact size: "
                    "%.1fx smaller (%llu -> %llu bytes)\n",
                    write_speedup, size_ratio,
                    static_cast<unsigned long long>(json_bytes),
                    static_cast<unsigned long long>(mcol_bytes));
        return static_cast<std::uint64_t>(1);
      },
      [&](exp::Record& rec) {
        rec.add("write_speedup", write_speedup)
            .add("size_ratio", size_ratio)
            .add("json_bytes", json_bytes)
            .add("columnar_bytes", mcol_bytes);
      });

  std::remove(json_path.c_str());
  std::remove(mcol_path.c_str());
  return 0;
}
