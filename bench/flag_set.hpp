// Declarative command-line flags for the figure-reproduction benches.
//
// bench::FlagSet wraps util::Config with typed registration: each flag is
// declared once with its type, default, and help text, and parse() then
//   * rejects unknown --flags (util::parse_flags),
//   * eagerly validates every typed flag's value (a bad --alpha=x fails at
//     startup, not minutes into a sweep when the getter first runs),
//   * renders --help from the declarations.
// parse_or_exit() is the main() wrapper: help exits 0, any flag error
// prints "flag error: ..." and exits 1. Typed getters after a successful
// parse cannot throw.
//
// The engine/monitor flag groups shared by the sweep benches (--threads,
// --json, --monitor_impl) register with one call and come with their
// factories (make_engine, make_sink, pipeline).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "detect/monitor.hpp"
#include "exp/engine.hpp"
#include "exp/fabric.hpp"
#include "exp/shard.hpp"
#include "exp/sink.hpp"
#include "util/config.hpp"
#include "util/flags.hpp"

namespace manet::bench {

/// Parses a comma-separated list of doubles ("0.3,0.6,0.9"). Rejects
/// malformed entries ("0.3,x", "1.2.3") with util::ConfigError instead of
/// letting std::stod terminate the process.
inline std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::string token;
  auto flush_token = [&out](const std::string& tok) {
    if (tok.empty()) return;
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(tok, &consumed);
    } catch (const std::exception&) {
      throw util::ConfigError("'" + tok + "' is not a number");
    }
    if (consumed != tok.size()) {
      throw util::ConfigError("'" + tok + "' has trailing characters");
    }
    out.push_back(value);
  };
  for (char c : text) {
    if (c == ',') {
      flush_token(token);
      token.clear();
    } else if (c != ' ' && c != '\t') {
      token.push_back(c);
    }
  }
  flush_token(token);
  return out;
}

/// Parses a comma-separated list of identifiers ("pm50,colluding"): each
/// token must be [A-Za-z0-9_]+; whitespace around tokens is ignored.
/// Rejects anything else with util::ConfigError (strict, like
/// parse_double_list).
inline std::vector<std::string> parse_name_list(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  auto flush_token = [&out](const std::string& tok) {
    if (tok.empty()) return;
    for (char c : tok) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      if (!ok) {
        throw util::ConfigError("'" + tok + "' is not an identifier");
      }
    }
    out.push_back(tok);
  };
  for (char c : text) {
    if (c == ',') {
      flush_token(token);
      token.clear();
    } else if (c != ' ' && c != '\t') {
      token.push_back(c);
    }
  }
  flush_token(token);
  return out;
}

class FlagSet {
 public:
  explicit FlagSet(std::string description)
      : description_(std::move(description)) {}

  // --- typed registration (chainable) ---------------------------------------

  FlagSet& add_string(const std::string& name, const std::string& default_value,
                      const std::string& help) {
    declare(name, default_value, help, Kind::kString);
    return *this;
  }

  FlagSet& add_int(const std::string& name, long long default_value,
                   const std::string& help) {
    declare(name, std::to_string(default_value), help, Kind::kInt);
    return *this;
  }

  FlagSet& add_double(const std::string& name, double default_value,
                      const std::string& help) {
    declare(name, format_double(default_value), help, Kind::kDouble);
    return *this;
  }

  /// Comma-separated doubles; the default is given in flag syntax ("5,10,25").
  FlagSet& add_double_list(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
    declare(name, default_value, help, Kind::kDoubleList);
    return *this;
  }

  /// Comma-separated identifiers ([A-Za-z0-9_]+).
  FlagSet& add_name_list(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
    declare(name, default_value, help, Kind::kNameList);
    return *this;
  }

  /// The experiment-engine flags every sweep bench shares.
  FlagSet& add_engine_flags() {
    add_int("threads", 0,
            "worker threads for trial fan-out (0 = all hardware threads)");
    add_string("json", "", "write one JSON record per sweep point to this file");
    has_engine_flags_ = true;
    return *this;
  }

  /// Just --json, for single-run benches that don't fan out trials.
  FlagSet& add_json_flag(const std::string& help =
                             "write one JSON record per result to this file") {
    add_string("json", "", help);
    return *this;
  }

  /// --monitor_impl for detection benches: "batch" (SoA config-group lanes
  /// over a shared ObservationHub, the optimized pipeline), "hub" (one
  /// HubView per monitor over a shared hub), or "reference" (private hub
  /// per monitor, structurally the pre-hub pipeline). Results are
  /// bit-identical across all three — perf_pr5.sh/perf_pr8.sh diff them —
  /// so the flag is deliberately NOT part of the JSON records.
  FlagSet& add_monitor_impl_flag() {
    add_string("monitor_impl", "batch",
               "detection pipeline: batch (SoA lanes over a shared "
               "observation hub), hub (one view per monitor), or reference "
               "(private per-monitor state; perf baseline)");
    has_monitor_impl_flag_ = true;
    return *this;
  }

  /// The distributed-fabric flags of the sharded sweep benches: --shard
  /// i/N picks a contiguous cell range (exp/shard.hpp), --columnar writes
  /// the binary artifact, --checkpoint/--checkpoint_cells add durable
  /// resume. Pair with add_engine_flags() (--json stays the canonical
  /// text artifact).
  FlagSet& add_fabric_flags() {
    add_string("shard", "0/1",
               "compute the i-th of N contiguous shard cell ranges (i/N); "
               "concatenating all N artifacts reproduces the serial run");
    add_string("columnar", "",
               "write the compact binary columnar artifact (.mcol) to this "
               "file (sweep_merge turns shards back into the JSON artifact)");
    add_string("checkpoint", "",
               "durable progress journal for this shard: an interrupted run "
               "resumes at the last committed chunk (requires --columnar, "
               "excludes --json)");
    add_int("checkpoint_cells", 16,
            "cells per durability commit (sink flush + fsync + journal)");
    has_fabric_flags_ = true;
    return *this;
  }

  // --- parsing --------------------------------------------------------------

  /// Parses --key=value flags and eagerly validates every registered flag.
  /// Returns true when --help was passed. Throws util::ConfigError on
  /// unknown flags or values that fail their declared type.
  bool parse(int argc, char** argv) {
    const auto parsed = util::parse_flags(argc, argv, config_);
    if (parsed.help) return true;
    validate();
    return false;
  }

  /// parse() for main(): --help prints the flag table and exits 0; any flag
  /// error prints "flag error: ..." to stderr and exits 1.
  void parse_or_exit(int argc, char** argv) {
    try {
      if (parse(argc, argv)) {
        std::printf("%s\n\nFlags (--key=value):\n%s", description_.c_str(),
                    config_.render().c_str());
        std::exit(0);
      }
    } catch (const util::ConfigError& e) {
      std::fprintf(stderr, "flag error: %s\n", e.what());
      std::exit(1);
    }
  }

  // --- typed getters (cannot throw after a successful parse) ----------------

  const std::string& get(const std::string& name) const {
    return config_.get(name);
  }

  double get_double(const std::string& name) const {
    return config_.get_double(name);
  }

  long long get_int(const std::string& name) const {
    return config_.get_int(name);
  }

  std::vector<double> get_double_list(const std::string& name) const {
    return parse_double_list(config_.get(name));
  }

  std::vector<std::string> get_name_list(const std::string& name) const {
    return parse_name_list(config_.get(name));
  }

  // --- registered-group factories -------------------------------------------

  /// The --threads trial-fan-out engine (requires add_engine_flags()).
  exp::Engine make_engine() const {
    return exp::Engine(static_cast<unsigned>(config_.get_int("threads")));
  }

  /// The --json sink (NullSink when the flag is empty).
  std::shared_ptr<exp::ResultSink> make_sink() const {
    const std::string& path = config_.get("json");
    if (path.empty()) return std::make_shared<exp::NullSink>();
    try {
      return std::make_shared<exp::JsonFileSink>(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "flag error: --json: %s\n", e.what());
      std::exit(1);
    }
  }

  /// PipelineImpl value of --monitor_impl (requires add_monitor_impl_flag()).
  detect::PipelineImpl pipeline() const {
    return detect::pipeline_from_name(config_.get("monitor_impl"));
  }

  /// Shard-independent fingerprint of the sweep this invocation computes:
  /// the bench name plus every registered flag that changes record
  /// CONTENT. Flags that only change how/where the sweep executes
  /// (--threads, --shard, sink paths, checkpointing, --monitor_impl — all
  /// documented bit-identical) are excluded, so all shards of one sweep
  /// agree on the fingerprint and sweep_merge can verify they belong
  /// together.
  std::string sweep_fingerprint(const std::string& bench) const {
    static constexpr const char* kExecutionFlags[] = {
        "threads", "json",  "columnar",     "checkpoint",
        "shard",   "trace", "monitor_impl", "checkpoint_cells"};
    std::string fp = "sweep1|" + bench;
    for (const std::string& key : config_.keys()) {
      bool execution_only = false;
      for (const char* ex : kExecutionFlags) {
        if (key == ex) {
          execution_only = true;
          break;
        }
      }
      if (!execution_only) fp += "|" + key + "=" + config_.get(key);
    }
    return fp;
  }

  /// The --shard spec (requires add_fabric_flags()).
  exp::ShardSpec shard() const {
    return exp::ShardSpec::parse(config_.get("shard"));
  }

  /// The sharded sweep driver wired from the fabric + engine flags
  /// (requires add_fabric_flags()). Exits with "flag error: ..." on
  /// invalid combinations, like parse_or_exit.
  std::unique_ptr<exp::SweepFabric> make_fabric(
      std::uint64_t total_cells, const std::string& bench) const {
    try {
      exp::FabricConfig fc;
      fc.total_cells = total_cells;
      fc.shard = shard();
      fc.sweep_fingerprint = sweep_fingerprint(bench);
      fc.bench = bench;
      fc.json_path = config_.get("json");
      fc.columnar_path = config_.get("columnar");
      fc.checkpoint_path = config_.get("checkpoint");
      fc.checkpoint_cells =
          static_cast<std::uint64_t>(config_.get_int("checkpoint_cells"));
      return std::make_unique<exp::SweepFabric>(std::move(fc));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "flag error: %s\n", e.what());
      std::exit(1);
    }
  }

  /// The underlying store, for benches that render or forward it wholesale
  /// (table1_parameters prints the full declaration table).
  util::Config& config() { return config_; }
  const util::Config& config() const { return config_; }

 private:
  enum class Kind { kString, kInt, kDouble, kDoubleList, kNameList };

  void declare(const std::string& name, const std::string& default_value,
               const std::string& help, Kind kind) {
    config_.declare(name, default_value, help);
    typed_.emplace_back(name, kind);
  }

  static std::string format_double(double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", value);
    return buf;
  }

  /// Re-parses every registered flag so type errors surface at startup with
  /// the flag name attached.
  void validate() const {
    for (const auto& [name, kind] : typed_) {
      try {
        switch (kind) {
          case Kind::kString:
            break;
          case Kind::kInt:
            config_.get_int(name);
            break;
          case Kind::kDouble:
            config_.get_double(name);
            break;
          case Kind::kDoubleList:
            parse_double_list(config_.get(name));
            break;
          case Kind::kNameList:
            parse_name_list(config_.get(name));
            break;
        }
      } catch (const util::ConfigError& e) {
        throw util::ConfigError("--" + name + ": " + e.what());
      }
    }
    if (has_engine_flags_ && config_.get_int("threads") < 0) {
      throw util::ConfigError("--threads must be >= 0");
    }
    if (has_monitor_impl_flag_) {
      const std::string& impl = config_.get("monitor_impl");
      if (impl != "batch" && impl != "hub" && impl != "reference") {
        throw util::ConfigError("--monitor_impl must be batch, hub, or reference");
      }
    }
    if (has_fabric_flags_) {
      try {
        exp::ShardSpec::parse(config_.get("shard"));
      } catch (const util::ConfigError& e) {
        throw util::ConfigError("--shard: " + std::string(e.what()));
      }
      if (config_.get_int("checkpoint_cells") < 1) {
        throw util::ConfigError("--checkpoint_cells must be >= 1");
      }
    }
  }

  util::Config config_;
  std::string description_;
  std::vector<std::pair<std::string, Kind>> typed_;
  bool has_engine_flags_ = false;
  bool has_monitor_impl_flag_ = false;
  bool has_fabric_flags_ = false;
};

}  // namespace manet::bench
