// All-pairs monitoring workload: every node within transmission range of
// the tagged node runs the full monitor set (instead of only the nearest
// neighbor). The default scenario is a dense 3x3 grid — one contention
// domain, the Table-1 spacing/ranges — so the 4 orthogonal neighbors of
// the center each run the (sample size x margin) configuration grid:
// 4 nodes x 12 configs = 48 monitors per simulation. That is the scaling
// workload the shared ObservationHub exists for: per monitoring node the
// decoded-frame ring, density estimator, ARMA tracker, and window
// interval sets are built once instead of once per monitor.
//
// Not a figure from the paper; it extends the Figure-5 setup to the
// paper's remark that every neighbor of a sender can monitor it
// independently. Detection rates are per-monitor-config aggregates over
// all monitoring nodes. --monitor_impl picks the pipeline: batch (SoA
// config-group lanes, the default), hub (one view per monitor), or
// reference (private per-monitor state, the pre-hub pipeline) — all three
// bit-identical, and the batch/hub wall-clock ratio at --grid_spacing=170
// (degree-8 center) is the headline of bench/perf_pr8.sh.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "All-pairs monitoring: every in-range neighbor of the "
                       "tagged node runs the full monitor set, static grid.");
  flags.add_double_list("loads", "0.6", "target traffic intensities");
  flags.add_double_list("pms", "0,50", "percentages of misbehavior swept");
  flags.add_double_list("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  flags.add_double_list("margins", "0.05,0.10,0.15", "permissible deficit fractions (configs = sizes x margins)");
  flags.add_int("grid_rows", 3, "grid rows (3x3 = one contention domain)");
  flags.add_int("grid_cols", 3, "grid columns");
  flags.add_double("grid_spacing", 240,
                   "one-hop neighbor spacing (m); below ~176 the 3x3 grid's "
                   "diagonals come in tx range and all-pairs monitoring "
                   "reaches degree 8 at the center");
  flags.add_int("num_flows", 8, "one-hop flows");
  flags.add_double("sim_time", 120, "simulated seconds per (load, PM) point");
  flags.add_int("runs", 2, "independent runs per point (consecutive seeds)");
  flags.add_int("seed", 501, "base random seed");
  flags.add_double("alpha", 0.01, "significance level for rejecting H0");
  flags.add_string("channel_index", "auto",
                   "channel receiver lookup: auto | incremental | rebuild | scan");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.parse_or_exit(argc, argv);

  const auto loads = flags.get_double_list("loads");
  const auto pms = flags.get_double_list("pms");
  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const auto margins = flags.get_double_list("margins");
  const int runs = static_cast<int>(flags.get_int("runs"));

  bench::print_header(
      "All-pairs monitoring workload (dense static grid)",
      "every neighbor of a sender can verify its back-off independently; "
      "the shared observation hub makes the per-node cost monitor-count "
      "insensitive");

  net::ScenarioConfig scenario;  // Table-1 spacing/ranges, smaller grid
  scenario.grid_rows = static_cast<std::size_t>(flags.get_int("grid_rows"));
  scenario.grid_cols = static_cast<std::size_t>(flags.get_int("grid_cols"));
  scenario.num_flows = static_cast<std::size_t>(flags.get_int("num_flows"));
  scenario.grid_spacing_m = flags.get_double("grid_spacing");
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  scenario.channel_index = flags.get("channel_index");

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);

  const std::vector<double> load_rates =
      engine.map(loads.size(), [&](std::size_t i) { return rates.rate_for(loads[i]); });

  std::vector<detect::MultiDetectionConfig> points;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (double pm : pms) {
      detect::MultiDetectionConfig cfg;
      cfg.scenario = scenario;
      cfg.rate_pps = load_rates[li];
      cfg.pm = pm;
      cfg.all_pairs = true;
      cfg.pipeline = flags.pipeline();
      for (double margin : margins) {
        for (double ss : sample_sizes) {
          detect::MonitorConfig m;
          m.sample_size = static_cast<std::size_t>(ss);
          m.alpha = flags.get_double("alpha");
          m.margin_fraction = margin;
          m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
          m.fixed_contenders = 20.0;
          cfg.monitors.push_back(m);
        }
      }
      points.push_back(cfg);
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = detect::run_multi_detection_sweep(points, runs, engine);
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::size_t point = 0;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::printf(
        "\n## Load = %.1f  (columns: all-paths rate / statistical-only rate "
        "(windows), summed over monitoring nodes)\n",
        loads[li]);
    std::printf("  %-5s %-7s", "PM", "margin");
    for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
    std::printf("  nodes  intensity\n");

    for (double pm : pms) {
      const auto& result = results[point++];
      for (std::size_t mi = 0; mi < margins.size(); ++mi) {
        std::printf("  %-5.0f %-7.2f", pm, margins[mi]);
        for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
          const auto& r = result.per_config[mi * sample_sizes.size() + si];
          std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate,
                      r.statistical_rate,
                      static_cast<unsigned long long>(r.windows));
        }
        std::printf("  %-5llu  %.3f\n",
                    static_cast<unsigned long long>(result.monitor_nodes),
                    result.measured_rho);
        std::fflush(stdout);

        for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
          const auto& r = result.per_config[mi * sample_sizes.size() + si];
          exp::Record rec;
          rec.add("bench", "fig_allpairs_monitoring")
              .add("load", loads[li])
              .add("pm", pm)
              .add("sample_size", sample_sizes[si])
              .add("margin", margins[mi])
              .add("rate_pps", load_rates[li])
              .add("runs", runs)
              .add("sim_time_s", flags.get_double("sim_time"))
              .add("monitor_nodes", result.monitor_nodes)
              .add("monitors", result.monitor_nodes * margins.size() *
                                   sample_sizes.size())
              .add("windows", r.windows)
              .add("flagged", r.flagged)
              .add("flagged_statistical", r.flagged_statistical)
              .add("detection_rate", r.detection_rate)
              .add("statistical_rate", r.statistical_rate)
              .add("intensity", result.measured_rho)
              .add("wall_seconds", result.wall_seconds)
              .add("threads", engine.threads());
          sink->record(rec);
        }
      }
    }
  }
  sink->flush();
  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %zu points x %d runs)\n",
              sweep_wall, engine.threads(), points.size(), runs);
  return 0;
}
