#!/usr/bin/env bash
# Before/after measurement flow for the PR-4 kernel optimizations
# (EventQueue slot/generation scheme, CsTimeline single-sweep accounting,
# Channel spatial index + link-budget cache).
#
# Runs the fig5/fig3 sweeps and the micro benches against two builds and
# writes one BENCH_PR4.json capturing, for each side:
#   * wall-clock per sweep point (the per-record wall_seconds fields),
#   * kernel events/sec and transmissions/sec (BM_Table1NetworkSimSecond),
#   * the key micro-bench latencies/throughputs,
# plus the computed speedups.
#
# It also enforces the determinism contract: the fig5 sweep artifacts from
# both builds must be byte-identical (timing fields stripped) at --threads=1
# AND --threads=4, each side calibrating from a fresh rate cache. Any
# behavioral difference introduced by the optimizations fails the script.
#
# Usage:
#   bench/perf_pr4.sh <before_build_dir> <after_build_dir> [output_json]
#
# Both build dirs should be built with the `bench` preset (Release, -O3,
# IPO): cmake --preset bench && cmake --build --preset bench -j
set -euo pipefail
cd "$(dirname "$0")/.."

before=${1:?usage: bench/perf_pr4.sh <before_build_dir> <after_build_dir> [out]}
after=${2:?usage: bench/perf_pr4.sh <before_build_dir> <after_build_dir> [out]}
out_json=${3:-BENCH_PR4.json}

for d in "$before" "$after"; do
  [[ -x "$d/bench/fig5_detection_static" ]] || {
    echo "error: $d/bench/fig5_detection_static not built" >&2; exit 1; }
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

FIG5_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=4)
FIG3_FLAGS=(--rates=10,40 --measure_time=5 --threads=1)
MICRO_FILTER='BM_FullDcfExchange|BM_Table1NetworkSimSecond|BM_SaturatedPairSimSecond'
QUEUE_FILTER='BM_ScheduleAndPop/16384|BM_CancelChurnSteadyState'

measure() {  # $1 = side label, $2 = build dir
  local side=$1 dir=$2
  echo "== measuring $side ($dir) ==" >&2
  # Fresh rate cache per side: calibration is part of the determinism claim.
  MANET_RATE_CACHE="$work/$side.rates" "$dir/bench/fig5_detection_static" \
      "${FIG5_FLAGS[@]}" --threads=1 --json="$work/$side.fig5_t1.json" >/dev/null
  MANET_RATE_CACHE="$work/$side.rates" "$dir/bench/fig5_detection_static" \
      "${FIG5_FLAGS[@]}" --threads=4 --json="$work/$side.fig5_t4.json" >/dev/null
  MANET_RATE_CACHE="$work/$side.rates" "$dir/bench/fig3_cond_prob_grid" \
      "${FIG3_FLAGS[@]}" --json="$work/$side.fig3.json" >/dev/null
  "$dir/bench/micro_sim_components" --benchmark_filter="$MICRO_FILTER" \
      --benchmark_format=json >"$work/$side.micro_sim.json" 2>/dev/null
  "$dir/bench/micro_event_queue" --benchmark_filter="$QUEUE_FILTER" \
      --benchmark_format=json >"$work/$side.micro_queue.json" 2>/dev/null
}

measure before "$before"
measure after "$after"

strip_timing() {  # wall-clock and thread count are the only fields allowed to differ
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "threads": [0-9]+//' "$1"
}
for t in t1 t4; do
  diff <(strip_timing "$work/before.fig5_$t.json") \
       <(strip_timing "$work/after.fig5_$t.json") >/dev/null || {
    echo "FAIL: fig5 ($t) results differ between builds — optimization changed behavior" >&2
    exit 1
  }
done
diff <(strip_timing "$work/before.fig3.json") \
     <(strip_timing "$work/after.fig3.json") >/dev/null || {
  echo "FAIL: fig3 results differ between builds — optimization changed behavior" >&2
  exit 1
}
echo "determinism: fig5 (threads 1 and 4) and fig3 artifacts byte-identical" >&2

python3 - "$work" "$out_json" <<'EOF'
import json, sys
work, out_path = sys.argv[1], sys.argv[2]

def sweep_walls(path, key):
    """Per-sweep-point wall_seconds: one entry per distinct sweep key."""
    points = {}
    for rec in json.load(open(path)):
        points.setdefault(rec[key], rec["wall_seconds"])
    return points

def micro(path):
    out = {}
    for b in json.load(open(path))["benchmarks"]:
        entry = {"real_time_ns": b["real_time"]}
        for counter in ("events_per_s", "tx_per_s", "items_per_second"):
            if counter in b:
                entry[counter] = b[counter]
        out[b["name"]] = entry
    return out

result = {}
for side in ("before", "after"):
    fig5_t1 = sweep_walls(f"{work}/{side}.fig5_t1.json", "pm")
    fig5_t4 = sweep_walls(f"{work}/{side}.fig5_t4.json", "pm")
    fig3 = sweep_walls(f"{work}/{side}.fig3.json", "rate_pps")
    result[side] = {
        "fig5_static_wall_s_per_pm_threads1": fig5_t1,
        "fig5_static_wall_s_per_pm_threads4": fig5_t4,
        "fig5_static_sweep_wall_s_threads1": sum(fig5_t1.values()),
        "fig3_grid_wall_s_per_rate": fig3,
        "micro": micro(f"{work}/{side}.micro_sim.json") | micro(f"{work}/{side}.micro_queue.json"),
    }

def ratio(b, a):
    return round(b / a, 3) if a else None

speedup = {
    "fig5_static_sweep_threads1": ratio(
        result["before"]["fig5_static_sweep_wall_s_threads1"],
        result["after"]["fig5_static_sweep_wall_s_threads1"]),
    "fig3_grid_sweep": ratio(
        sum(result["before"]["fig3_grid_wall_s_per_rate"].values()),
        sum(result["after"]["fig3_grid_wall_s_per_rate"].values())),
}
for name, b in result["before"]["micro"].items():
    a = result["after"]["micro"].get(name)
    if a:
        speedup[name] = ratio(b["real_time_ns"], a["real_time_ns"])

doc = {
    "description": "PR-4 kernel optimizations: before/after measurement "
                   "(fig5/fig3 sweep wall-clock per point; events/sec and "
                   "transmissions/sec from BM_Table1NetworkSimSecond)",
    "determinism": "fig5 artifacts byte-identical before/after at "
                   "--threads=1 and --threads=4 (timing fields stripped)",
    "before": result["before"],
    "after": result["after"],
    "speedup": speedup,
}
json.dump(doc, open(out_path, "w"), indent=1)
open(out_path, "a").write("\n")
print(json.dumps(speedup, indent=1))
EOF

echo "wrote $out_json" >&2
