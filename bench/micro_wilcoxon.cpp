// Microbenchmark: Wilcoxon rank-sum test cost per monitor window.
// The monitor runs one test per completed window; at sample size 10 the
// exact permutation DP must stay in the tens of microseconds.
//
// The *Reference variants run the retained pre-optimization implementation
// (fresh allocations, full-range DP rows, second tie-group sort) on the
// same inputs; the speedup of the scratch-reused path over them is the
// number bench/perf_pr5.sh reports.
#include <benchmark/benchmark.h>

#include <vector>

#include "detect/wilcoxon.hpp"
#include "util/rng.hpp"

namespace {

using manet::detect::wilcoxon_rank_sum;
using manet::detect::wilcoxon_rank_sum_reference;
using manet::detect::WilcoxonOptions;
using manet::detect::WilcoxonScratch;

std::vector<double> sample(std::size_t n, double scale, std::uint64_t seed) {
  manet::util::Xoshiro256ss rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(0, 32) * scale;
  return out;
}

void BM_WilcoxonExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = sample(n, 1.0, 1);
  const auto y = sample(n, 0.7, 2);
  WilcoxonOptions opts;
  opts.exact_max_total = 2 * n;  // force the exact path
  WilcoxonScratch scratch;       // reused across iterations, like a monitor
  for (auto _ : state) {
    benchmark::DoNotOptimize(wilcoxon_rank_sum(x, y, opts, scratch).p_less);
  }
}
BENCHMARK(BM_WilcoxonExact)->Arg(5)->Arg(10)->Arg(15)->Arg(20);

void BM_WilcoxonExactReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = sample(n, 1.0, 1);
  const auto y = sample(n, 0.7, 2);
  WilcoxonOptions opts;
  opts.exact_max_total = 2 * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wilcoxon_rank_sum_reference(x, y, opts).p_less);
  }
}
BENCHMARK(BM_WilcoxonExactReference)->Arg(5)->Arg(10)->Arg(15)->Arg(20);

void BM_WilcoxonApprox(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = sample(n, 1.0, 3);
  const auto y = sample(n, 0.7, 4);
  WilcoxonOptions opts;
  opts.exact_max_total = 0;  // force the normal approximation
  WilcoxonScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wilcoxon_rank_sum(x, y, opts, scratch).p_less);
  }
}
BENCHMARK(BM_WilcoxonApprox)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(500);

void BM_WilcoxonApproxReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = sample(n, 1.0, 3);
  const auto y = sample(n, 0.7, 4);
  WilcoxonOptions opts;
  opts.exact_max_total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wilcoxon_rank_sum_reference(x, y, opts).p_less);
  }
}
BENCHMARK(BM_WilcoxonApproxReference)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
