// Microbenchmark: Wilcoxon rank-sum test cost per monitor window.
// The monitor runs one test per completed window; at sample size 10 the
// exact permutation DP must stay in the tens of microseconds.
//
// Case families (select with --filter):
//  * exact_fast_n* / approx_fast_n*   — the scratch-reused scalar path.
//  * exact_reference_n* / ...         — the retained pre-optimization
//    implementation (fresh allocations, full-range DP rows, second
//    tie-group sort); fast/reference is the perf_pr5.sh speedup.
//  * exact_batch_n* / approx_batch_n* — wilcoxon_rank_sum_batch over a
//    64-item batch of same-size tests, the shape MonitorBatch closes
//    windows in; per-op cost relative to the scalar fast path shows the
//    scheduling + shared-scratch effect in isolation.
#include <cstdint>
#include <vector>

#include "detect/wilcoxon.hpp"
#include "micro_common.hpp"
#include "util/rng.hpp"

namespace {

using namespace manet;
using detect::RankSumResult;
using detect::wilcoxon_rank_sum;
using detect::wilcoxon_rank_sum_batch;
using detect::wilcoxon_rank_sum_reference;
using detect::WilcoxonBatchItem;
using detect::WilcoxonOptions;
using detect::WilcoxonScratch;

std::vector<double> sample(std::size_t n, double scale, std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(0, 32) * scale;
  return out;
}

constexpr std::size_t kBatchItems = 64;

void run_family(bench::MicroHarness& h, const char* family, std::size_t n,
                bool exact, std::size_t base_reps) {
  WilcoxonOptions opts;
  opts.exact_max_total = exact ? 2 * n : 0;

  const std::string suffix = "_n" + std::to_string(n);
  const std::string fast_name = std::string(family) + "_fast" + suffix;
  const std::string ref_name = std::string(family) + "_reference" + suffix;
  const std::string batch_name = std::string(family) + "_batch" + suffix;

  {
    const auto x = sample(n, 1.0, 1);
    const auto y = sample(n, 0.7, 2);
    WilcoxonScratch scratch;  // reused across iterations, like a monitor
    const std::size_t reps = h.reps(base_reps);
    h.run_case(fast_name, [&] {
      for (std::size_t i = 0; i < reps; ++i) {
        bench::keep(wilcoxon_rank_sum(x, y, opts, scratch).p_less);
      }
      return static_cast<std::uint64_t>(reps);
    });
  }
  {
    const auto x = sample(n, 1.0, 1);
    const auto y = sample(n, 0.7, 2);
    // The reference is an order of magnitude slower; trim its rep count.
    const std::size_t reps = h.reps(base_reps / 4 + 1);
    h.run_case(ref_name, [&] {
      for (std::size_t i = 0; i < reps; ++i) {
        bench::keep(wilcoxon_rank_sum_reference(x, y, opts).p_less);
      }
      return static_cast<std::uint64_t>(reps);
    });
  }
  {
    // One batched close of kBatchItems same-size lanes (distinct data per
    // lane, a shared margin shift) — ops = individual tests evaluated.
    std::vector<std::vector<double>> xs, ys;
    std::vector<WilcoxonBatchItem> items;
    for (std::size_t i = 0; i < kBatchItems; ++i) {
      xs.push_back(sample(n, 1.0, 100 + 2 * i));
      ys.push_back(sample(n, 0.7, 101 + 2 * i));
    }
    for (std::size_t i = 0; i < kBatchItems; ++i) {
      WilcoxonBatchItem item;
      item.x = xs[i];
      item.y = ys[i];
      item.shift = 0.05;
      item.options = opts;
      items.push_back(item);
    }
    std::vector<RankSumResult> results(items.size());
    WilcoxonScratch scratch;
    const std::size_t rounds = h.reps(base_reps) / kBatchItems + 1;
    h.run_case(
        batch_name,
        [&] {
          for (std::size_t r = 0; r < rounds; ++r) {
            wilcoxon_rank_sum_batch(items, results, scratch);
            bench::keep(results.front().p_less);
          }
          return static_cast<std::uint64_t>(rounds * kBatchItems);
        },
        [&](exp::Record& rec) { rec.add("lanes", kBatchItems); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::MicroHarness h("micro_wilcoxon",
                        "Wilcoxon rank-sum cost per closed monitor window: "
                        "scalar fast path vs retained reference vs batched "
                        "close, exact-DP and normal-approximation branches.",
                        argc, argv);
  for (std::size_t n : {5u, 10u, 15u, 20u}) {
    run_family(h, "exact", n, /*exact=*/true, 4000);
  }
  for (std::size_t n : {10u, 25u, 50u, 100u, 500u}) {
    run_family(h, "approx", n, /*exact=*/false, 40000);
  }
  return 0;
}
