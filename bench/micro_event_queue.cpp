// Microbenchmark: discrete-event kernel throughput — the floor under every
// simulation second this library runs.
#include <benchmark/benchmark.h>

#include <functional>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using manet::sim::EventQueue;
using manet::sim::Simulator;

void BM_ScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  manet::util::Xoshiro256ss rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.schedule(static_cast<manet::SimTime>(rng.uniform_int(1u << 20)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleAndPop)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_ScheduleCancel(benchmark::State& state) {
  // The MAC cancels timers constantly; cancel must be O(1)-ish.
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1024; ++i) {
      const auto id = q.schedule(i, [] {});
      q.cancel(id);
    }
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ScheduleCancel);

void BM_CancelChurnSteadyState(benchmark::State& state) {
  // The MAC's steady-state pattern: a standing population of timers where
  // almost every scheduled event is cancelled and replaced before firing.
  // Exercises slot reuse and the dead-entry compaction bound.
  EventQueue q;
  manet::util::Xoshiro256ss rng(7);
  std::vector<manet::sim::EventId> live(512, manet::sim::kInvalidEvent);
  manet::SimTime t = 0;
  for (auto& id : live) id = q.schedule(++t, [] {});
  for (auto _ : state) {
    const std::size_t i = rng.uniform_int(512);
    q.cancel(live[i]);
    live[i] = q.schedule(++t, [] {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["heap_entries"] =
      static_cast<double>(q.heap_entries());
  state.counters["live"] = static_cast<double>(q.size());
}
BENCHMARK(BM_CancelChurnSteadyState);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // A single self-rescheduling timer: the pattern of per-node periodic work.
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.after(20, tick);
    };
    sim.at(0, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

}  // namespace

BENCHMARK_MAIN();
