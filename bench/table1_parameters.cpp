// Table 1: "Parameters used in simulations".
//
// Prints the full scenario parameter table from the library's declared
// defaults and verifies, row by row, that the defaults match the paper.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "net/scenario.hpp"

using namespace manet;

namespace {

int failures = 0;

void row(const char* paper_name, const char* paper_value,
         const std::string& ours, bool match) {
  std::printf("  %-42s %-26s %-22s %s\n", paper_name, paper_value, ours.c_str(),
              match ? "OK" : "MISMATCH");
  if (!match) ++failures;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagSet flags("Reproduces Table 1 (simulation parameters).");
  net::ScenarioConfig::declare(flags.config());
  flags.parse_or_exit(argc, argv);
  const net::ScenarioConfig s = net::ScenarioConfig::from_config(flags.config());

  bench::print_header("Table 1: Parameters used in simulations",
                      "defaults reproduce the paper's setup exactly");
  std::printf("  %-42s %-26s %-22s %s\n", "parameter (paper)", "paper value",
              "this library", "");

  row("Simulator", "NS2 (version 2.26)", "built-in event-driven DES", true);
  row("Topology types", "Grid, Random", "grid | random", true);
  row("Total number of nodes (grid)", "56",
      std::to_string(s.grid_rows * s.grid_cols), s.grid_rows * s.grid_cols == 56);
  row("Total number of nodes (random)", "112", std::to_string(s.random_nodes),
      s.random_nodes == 112);
  row("Topology area", "3000m x 3000m",
      fmt(s.area_width_m) + "m x " + fmt(s.area_height_m) + "m",
      s.area_width_m == 3000 && s.area_height_m == 3000);
  row("Dist. between one-hop neighbors (grid)", "240m", fmt(s.grid_spacing_m) + "m",
      s.grid_spacing_m == 240);
  row("Transmission range", "250m", fmt(s.prop.tx_range_m) + "m",
      s.prop.tx_range_m == 250);
  row("Sensing/Interference range", "550m", fmt(s.prop.cs_range_m) + "m",
      s.prop.cs_range_m == 550);
  row("Mobility", "Random waypoint model", "static | rwp (random waypoint)", true);
  row("Range of speed", "0-20 m/s",
      fmt(s.min_speed_mps) + "-" + fmt(s.max_speed_mps) + " m/s",
      s.max_speed_mps == 20);
  row("Pause times", "0,50,100,200,300 seconds", "--pause flag (default " +
      fmt(s.pause_s) + ")", true);
  row("Traffic model", "Poisson, CBR", "poisson | cbr", true);
  row("Queue length", "50", std::to_string(s.mac.queue_capacity),
      s.mac.queue_capacity == 50);
  row("Packet size", "512 bytes", std::to_string(s.payload_bytes) + " bytes",
      s.payload_bytes == 512);
  row("Simulation time", "300s", fmt(s.sim_seconds) + "s", s.sim_seconds == 300);
  row("Physical, MAC layers", "IEEE 802.11 specs.",
      "DCF: slot 20us, SIFS 10us, DIFS 50us, CW 31..1023",
      s.mac.slot_time == 20 * kMicrosecond && s.mac.cw_min == 31 &&
          s.mac.cw_max == 1023);
  row("Routing protocol", "AODV", "one-hop neighbor flows (see DESIGN.md)", true);
  row("Transport protocol", "UDP", "fire-and-forget datagrams", true);

  if (failures != 0) {
    std::printf("\n%d parameter(s) deviate from Table 1\n", failures);
    return 1;
  }
  std::printf("\nAll Table 1 parameters reproduced.\n");
  return 0;
}
