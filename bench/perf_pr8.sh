#!/usr/bin/env bash
# Measurement flow for the PR-8 batched SoA detection core. The baseline
# lives in the SAME build: every detection bench takes
# --monitor_impl={batch,hub,reference} (batch = SoA config-group lanes,
# the default; hub = one HubView per monitor, the PR-5..7 pipeline;
# reference = private per-monitor state, the pre-hub pipeline), and the
# MicroHarness micros carry *_batch/_hub/_reference case triples.
#
# Writes one BENCH_PR8.json capturing:
#   * all-pairs monitoring sweep wall-clock at degree 8
#     (--grid_spacing=170 pulls the 3x3 grid's diagonals into tx range, so
#     all 8 neighbors of the center monitor it) with a dense
#     (sample size x margin) config grid — batch vs hub is the headline:
#     >=2x,
#   * micro_monitor latencies for the same workload shape in
#     microbenchmark form,
#   * micro_wilcoxon batched-close vs scalar fast-path latencies,
#   * micro_ingest trace-replay frames/s, batch vs hub pipelines over a
#     16-config monitor grid,
# plus the computed speedups.
#
# It also enforces the determinism contract: the fig5 / fig6 / all-pairs
# artifacts must be byte-identical (timing fields stripped) across
# --monitor_impl=batch / hub / reference AND across --threads=1 / 4 (the
# dense degree-8 grid diffs batch vs hub and thread counts; the
# default-grid artifacts additionally cover the reference pipeline, which
# is two orders of magnitude slower on the dense grid). Any behavioral
# difference fails the script.
#
# Usage:
#   bench/perf_pr8.sh [build_dir] [output_json]
#
# The build dir should use the `bench` preset (Release, -O3, IPO):
#   cmake --preset bench && cmake --build --preset bench -j
set -euo pipefail
cd "$(dirname "$0")/.."

build=${1:-build-bench}
out_json=${2:-BENCH_PR8.json}

for b in fig_allpairs_monitoring fig5_detection_static fig6_misdiagnosis_static \
         micro_monitor micro_wilcoxon micro_ingest; do
  [[ -x "$build/bench/$b" ]] || { echo "error: $build/bench/$b not built" >&2; exit 1; }
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
# One shared rate cache: all impls must calibrate identically anyway (the
# calibration is part of the determinism claim — the hub/reference sides
# re-read what the batch side wrote only after the diffs below have proven
# the artifacts identical).
export MANET_RATE_CACHE="$work/rates"

# Default-grid all-pairs (degree-4 center, 12 configs/node = 48 monitors):
# the identity workload all three pipelines run, reference included.
ALLPAIRS_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=40 --runs=2)
# Degree-8 all-pairs headline: 170 m spacing pulls the diagonals in range,
# and a dense margin sweep puts 4 sizes x 40 margins = 160 configs on each
# of the center's 8 neighbors — 1280 monitors per simulation, the workload
# shape the SoA lanes exist for. (The reference pipeline is ~60x slower
# than batch here; it proves identity on the default grid above instead.)
deg8_margins=$(python3 -c "print(','.join(f'{0.02 + 0.0025*i:.4f}' for i in range(40)))")
AP_DEG8_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=40 --runs=2
               --grid_spacing=170 --margins="$deg8_margins")
FIG5_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=2)
FIG6_FLAGS=(--loads=0.6 --sample_sizes=10,25 --sim_time=20 --runs=2)

echo "== determinism + wall-clock: all-pairs / fig5 / fig6 (batch vs hub vs reference, 1 vs 4 threads) ==" >&2
run_det() {  # $1 bench, $2 label, then flags...
  local bench=$1 label=$2; shift 2
  "$build/bench/$bench" "$@" --json="$work/$label.json" >/dev/null
}
run_det fig_allpairs_monitoring ap_batch_t1 "${ALLPAIRS_FLAGS[@]}" --threads=1 --monitor_impl=batch
run_det fig_allpairs_monitoring ap_batch_t4 "${ALLPAIRS_FLAGS[@]}" --threads=4 --monitor_impl=batch
run_det fig_allpairs_monitoring ap_hub_t1 "${ALLPAIRS_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig_allpairs_monitoring ap_ref_t1 "${ALLPAIRS_FLAGS[@]}" --threads=1 --monitor_impl=reference
run_det fig_allpairs_monitoring deg8_batch_t1 "${AP_DEG8_FLAGS[@]}" --threads=1 --monitor_impl=batch
run_det fig_allpairs_monitoring deg8_batch_t4 "${AP_DEG8_FLAGS[@]}" --threads=4 --monitor_impl=batch
run_det fig_allpairs_monitoring deg8_hub_t1 "${AP_DEG8_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig5_detection_static fig5_batch_t1 "${FIG5_FLAGS[@]}" --threads=1 --monitor_impl=batch
run_det fig5_detection_static fig5_batch_t4 "${FIG5_FLAGS[@]}" --threads=4 --monitor_impl=batch
run_det fig5_detection_static fig5_hub_t1 "${FIG5_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig5_detection_static fig5_ref_t1 "${FIG5_FLAGS[@]}" --threads=1 --monitor_impl=reference
run_det fig6_misdiagnosis_static fig6_batch_t1 "${FIG6_FLAGS[@]}" --threads=1 --monitor_impl=batch
run_det fig6_misdiagnosis_static fig6_batch_t4 "${FIG6_FLAGS[@]}" --threads=4 --monitor_impl=batch
run_det fig6_misdiagnosis_static fig6_hub_t1 "${FIG6_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig6_misdiagnosis_static fig6_ref_t1 "${FIG6_FLAGS[@]}" --threads=1 --monitor_impl=reference

strip_timing() {  # wall-clock and thread count are the only fields allowed to differ
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "threads": [0-9]+//' "$1"
}
check_same() {  # $1/$2 labels, $3 description
  diff <(strip_timing "$work/$1.json") <(strip_timing "$work/$2.json") >/dev/null || {
    echo "FAIL: $3 — results differ, optimization changed behavior" >&2
    exit 1
  }
}
check_same ap_batch_t1 ap_batch_t4 "all-pairs batch threads 1 vs 4"
check_same ap_batch_t1 ap_hub_t1 "all-pairs batch vs hub"
check_same ap_batch_t1 ap_ref_t1 "all-pairs batch vs reference"
check_same deg8_batch_t1 deg8_batch_t4 "degree-8 all-pairs batch threads 1 vs 4"
check_same deg8_batch_t1 deg8_hub_t1 "degree-8 all-pairs batch vs hub"
check_same fig5_batch_t1 fig5_batch_t4 "fig5 batch threads 1 vs 4"
check_same fig5_batch_t1 fig5_hub_t1 "fig5 batch vs hub"
check_same fig5_batch_t1 fig5_ref_t1 "fig5 batch vs reference"
check_same fig6_batch_t1 fig6_batch_t4 "fig6 batch threads 1 vs 4"
check_same fig6_batch_t1 fig6_hub_t1 "fig6 batch vs hub"
check_same fig6_batch_t1 fig6_ref_t1 "fig6 batch vs reference"
echo "determinism: all-pairs/fig5/fig6 identical across batch/hub/reference and thread counts" >&2

echo "== micro benches ==" >&2
"$build/bench/micro_monitor" --json="$work/micro_monitor.json"
"$build/bench/micro_wilcoxon" --json="$work/micro_wilcoxon.json"
"$build/bench/micro_ingest" --json="$work/micro_ingest.json"

python3 - "$work" "$out_json" <<'EOF'
import json, sys
work, out_path = sys.argv[1], sys.argv[2]

def sweep_wall(path):
    """Total wall_seconds across sweep points (one value per point)."""
    points = {}
    for rec in json.load(open(path)):
        points[(rec["load"], rec["pm"])] = rec["wall_seconds"]
    return sum(points.values())

def micro(path):
    return {rec["case"]: rec["ns_per_op"] for rec in json.load(open(path))}

def ratio(b, a):
    return round(b / a, 3) if a else None

allpairs = {
    "batch_wall_s_threads1": sweep_wall(f"{work}/ap_batch_t1.json"),
    "hub_wall_s_threads1": sweep_wall(f"{work}/ap_hub_t1.json"),
    "reference_wall_s_threads1": sweep_wall(f"{work}/ap_ref_t1.json"),
}
deg8 = {
    "batch_wall_s_threads1": sweep_wall(f"{work}/deg8_batch_t1.json"),
    "hub_wall_s_threads1": sweep_wall(f"{work}/deg8_hub_t1.json"),
}
fig5 = {
    "batch_wall_s_threads1": sweep_wall(f"{work}/fig5_batch_t1.json"),
    "hub_wall_s_threads1": sweep_wall(f"{work}/fig5_hub_t1.json"),
    "reference_wall_s_threads1": sweep_wall(f"{work}/fig5_ref_t1.json"),
}
monitor = micro(f"{work}/micro_monitor.json")
wilcoxon = micro(f"{work}/micro_wilcoxon.json")
ingest = micro(f"{work}/micro_ingest.json")

speedup = {
    "allpairs_deg8_sweep_batch_vs_hub": ratio(
        deg8["hub_wall_s_threads1"], deg8["batch_wall_s_threads1"]),
    "allpairs_sweep_batch_vs_hub": ratio(
        allpairs["hub_wall_s_threads1"], allpairs["batch_wall_s_threads1"]),
    "allpairs_sweep_batch_vs_reference": ratio(
        allpairs["reference_wall_s_threads1"], allpairs["batch_wall_s_threads1"]),
    "fig5_sweep_batch_vs_hub": ratio(
        fig5["hub_wall_s_threads1"], fig5["batch_wall_s_threads1"]),
    "fig5_sweep_batch_vs_reference": ratio(
        fig5["reference_wall_s_threads1"], fig5["batch_wall_s_threads1"]),
}
for name, t in monitor.items():
    if "_batch" not in name:
        continue
    hub = monitor.get(name.replace("_batch", "_hub"))
    if hub:
        speedup[f"{name}_vs_hub"] = ratio(hub, t)
for name, t in wilcoxon.items():
    if "_batch_" not in name:
        continue
    fast = wilcoxon.get(name.replace("_batch_", "_fast_"))
    if fast:
        speedup[f"{name}_vs_fast"] = ratio(fast, t)
for suffix in ("", "_x16"):
    b, hb = f"replay_batch_wilcoxon{suffix}", f"replay_hub_wilcoxon{suffix}"
    if b in ingest and hb in ingest:
        speedup[f"ingest_replay_batch_vs_hub{suffix}"] = ratio(
            ingest[hb], ingest[b])
ingest_rates = {f"{k}_frames_per_s": round(1e9 / v)
                for k, v in ingest.items()
                if k.startswith("replay_") and v}

doc = {
    "description": "PR-8 batched SoA detection core: one pass per node and "
                   "per config-group, vectorized Wilcoxon/system-state/"
                   "sequential evaluation, measured against the per-view "
                   "hub pipeline (--monitor_impl=hub) and the pre-hub "
                   "reference (--monitor_impl=reference) in the same build",
    "determinism": "all-pairs/fig5/fig6 sweep artifacts byte-identical "
                   "(timing fields stripped) across --monitor_impl=batch/"
                   "hub/reference and --threads=1/4",
    "workload": "degree-8 all-pairs: 3x3 grid at 170 m spacing (the "
                "center's 8 neighbors all in tx range), 8 monitoring nodes "
                "x (4 sample sizes x 40 margins) = 1280 monitors per "
                "simulation; default all-pairs: 240 m spacing, 48 monitors",
    "allpairs_deg8_sweep": deg8,
    "allpairs_sweep": allpairs,
    "fig5_sweep": fig5,
    "micro_monitor_ns_per_sim": {k: round(v, 1) for k, v in monitor.items()},
    "micro_wilcoxon_ns_per_test": {k: round(v, 1) for k, v in wilcoxon.items()},
    "micro_ingest_ns_per_op": {k: round(v, 1) for k, v in ingest.items()},
    "micro_ingest_replay_frames_per_s": ingest_rates,
    "speedup": speedup,
}
json.dump(doc, open(out_path, "w"), indent=1)
open(out_path, "a").write("\n")
print(json.dumps(speedup, indent=1))

ok = True
if (speedup["allpairs_deg8_sweep_batch_vs_hub"] or 0) < 2.0:
    print("WARN: degree-8 all-pairs batch-vs-hub speedup below the 2x target",
          file=sys.stderr)
    ok = False
if (speedup.get("ingest_replay_batch_vs_hub_x16") or 0) < 1.1:
    print("WARN: 16-config replay ingest batch-vs-hub gain below the 1.1x "
          "target", file=sys.stderr)
    ok = False
sys.exit(0 if ok else 2)
EOF

echo "wrote $out_json" >&2
