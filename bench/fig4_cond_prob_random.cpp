// Figure 4: conditional channel-state probabilities, CBR traffic on the
// random topology (112 nodes, 3000 m x 3000 m). Same measurement as
// Figure 3; region node counts and contender counts come from the actual
// layout density rather than the grid's fixed n = k = 5. Sweep points run
// concurrently across the experiment engine (--threads).
#include <cstdio>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"
#include "geom/region_model.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 4(a)/(b): conditional probabilities, CBR traffic,"
                       " random topology.");
  flags.add_double("measure_time", 40, "seconds measured per point");
  flags.add_double("warmup", 3, "warm-up seconds per point");
  flags.add_int("seed", 3, "base random seed");
  flags.add_double_list("rates", "2,4,7,11,16,24,40,70,120", "per-flow packet rates swept (pkt/s)");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Figure 4: conditional probabilities (CBR, random topology)",
      "same trends as the grid: p(B|I) grows, p(I|B) shrinks, analysis tracks simulation");

  const auto rates = flags.get_double_list("rates");
  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();

  // Density-derived region counts for the uniform random layout — what the
  // paper's online estimator converges to.
  net::ScenarioConfig proto;
  proto.topology = net::TopologyKind::kRandom;
  const double density = static_cast<double>(proto.random_nodes) /
                         (proto.area_width_m * proto.area_height_m);
  const geom::RegionModel regions(proto.grid_spacing_m, proto.prop.cs_range_m);
  const double contenders = std::max(
      1.0, density * std::numbers::pi * proto.prop.cs_range_m * proto.prop.cs_range_m);

  std::vector<detect::CondProbConfig> points;
  for (double rate : rates) {
    detect::CondProbConfig cfg;
    cfg.scenario = proto;
    cfg.scenario.traffic = net::TrafficKind::kCbr;       // Fig. 4 setting
    cfg.scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.rate_pps = rate;
    cfg.warmup_s = flags.get_double("warmup");
    cfg.measure_s = flags.get_double("measure_time");
    cfg.monitor.fixed_k = density * regions.areas().a1;
    cfg.monitor.fixed_n = density * regions.areas().a2;
    cfg.monitor.fixed_m = density * regions.areas().a4;
    cfg.monitor.fixed_j = density * regions.areas().a5;
    cfg.monitor.fixed_contenders = contenders;
    points.push_back(cfg);
  }

  const auto results = detect::run_cond_prob_sweep(points, engine);

  std::printf("  %-6s %-10s %-12s %-12s %-12s %-12s\n", "rate", "intensity",
              "sim p(B|I)", "ana p(B|I)", "sim p(I|B)", "ana p(I|B)");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const detect::CondProbResult& r = results[i];
    std::printf("  %-6.0f %-10.3f %-12.4f %-12.4f %-12.4f %-12.4f\n", rates[i],
                r.measured_rho, r.sim_p_busy_given_idle, r.ana_p_busy_given_idle,
                r.sim_p_idle_given_busy, r.ana_p_idle_given_busy);

    exp::Record rec;
    rec.add("bench", "fig4_cond_prob_random")
        .add("rate_pps", rates[i])
        .add("measure_time_s", flags.get_double("measure_time"))
        .add("intensity", r.measured_rho)
        .add("sim_p_busy_given_idle", r.sim_p_busy_given_idle)
        .add("ana_p_busy_given_idle", r.ana_p_busy_given_idle)
        .add("sim_p_idle_given_busy", r.sim_p_idle_given_busy)
        .add("ana_p_idle_given_busy", r.ana_p_idle_given_busy)
        .add("wall_seconds", r.wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  sink->flush();
  return 0;
}
