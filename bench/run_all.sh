#!/usr/bin/env bash
# Runs every figure/ablation bench with its --json sink enabled and merges
# the per-bench JSON arrays into one BENCH_PR9.json object:
#
#   { "fig3_cond_prob_grid": [ {...}, ... ], "fig5_detection_static": [...] }
#
# Usage:
#   bench/run_all.sh [build_dir] [output_json]
#
# Environment:
#   THREADS           worker threads per bench (default: all hardware threads)
#   BENCHES           space-separated subset of benches to run (default: all)
#   MANET_RATE_CACHE  load-calibration cache file shared by all benches
#                     (default: <output_dir>/rates.cache — each distinct
#                     (scenario, load) point is calibrated once for the
#                     whole batch instead of once per bench)
#   EXTRA_FLAGS       appended to every bench invocation (e.g. --sim_time=30
#                     for a quick smoke pass)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${1:-build-bench}
out_json=${2:-BENCH_PR9.json}
threads=${THREADS:-0}

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found — build the bench preset first:" >&2
  echo "  cmake --preset bench && cmake --build --preset bench -j" >&2
  exit 1
fi

work_dir=$(mktemp -d)
trap 'rm -rf "$work_dir"' EXIT
export MANET_RATE_CACHE=${MANET_RATE_CACHE:-$work_dir/rates.cache}

# Sweep and micro benches on the standard exp sink (all accept --json;
# all accept --threads except the entries in no_threads below — the
# MicroHarness micros time single-threaded case bodies by design).
default_benches=(
  fig3_cond_prob_grid
  fig4_cond_prob_random
  fig5_detection_static
  fig5d_detection_mobile
  fig6_misdiagnosis_static
  fig6b_misdiagnosis_mobile
  fig_allpairs_monitoring
  fig_scale_sweep
  robustness_loss_sweep
  fig_roc_adversaries
  ablation_arma_alpha
  ablation_region_model
  ablation_estimator
  ablation_prs_value
  motivation_starvation
  extension_multihop
  micro_wilcoxon
  micro_monitor
  micro_ingest
  micro_sink
)
no_threads=(extension_multihop fig_scale_sweep micro_wilcoxon micro_monitor
            micro_ingest micro_sink)
read -r -a benches <<< "${BENCHES:-${default_benches[*]}}"

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "## skipping $bench (not built)" >&2
    continue
  fi
  echo "## $bench"
  flags=(--json="$work_dir/$bench.json")
  if [[ ! " ${no_threads[*]} " == *" $bench "* ]]; then
    flags+=(--threads="$threads")
  fi
  # Fail fast: a crashing bench aborts the whole batch instead of leaving
  # a silently incomplete merged artifact. Sole exception: extension_multihop
  # exits 1 on a degraded VERDICT by design — its records still land in the
  # JSON, which is where the verdict is reported.
  if ! "$bin" "${flags[@]}" ${EXTRA_FLAGS:-}; then
    if [[ "$bench" == extension_multihop ]]; then
      echo "## $bench reported a degraded verdict (expected exit 1)" >&2
    else
      echo "error: $bench failed — aborting the batch" >&2
      exit 1
    fi
  fi
done

# Merge the per-bench arrays into one top-level object.
{
  echo "{"
  first=1
  for bench in "${benches[@]}"; do
    f="$work_dir/$bench.json"
    [[ -s "$f" ]] || continue
    [[ $first -eq 1 ]] || echo ","
    first=0
    printf '"%s":\n' "$bench"
    cat "$f"
  done
  echo "}"
} > "$out_json"

echo
echo "wrote $out_json ($(grep -c '^{"' "$out_json") records from ${#benches[@]} benches)"
