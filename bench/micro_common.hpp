// Shared harness for the flag-driven microbenches (micro_wilcoxon,
// micro_monitor, micro_ingest).
//
// These benches used to run under google-benchmark, which emits its own
// JSON schema — bench/run_all.sh had to special-case them. MicroHarness
// gives them the same surface as the figure benches instead: FlagSet
// flags (--filter to select cases by substring, --reps as a work
// multiplier, --json for machine output) and one exp::Record per case
// through the standard sink, so BENCH_*.json merges treat micro rows and
// sweep rows identically. Every record carries
//   bench, case, reps, ops, wall_seconds, ns_per_op
// plus whatever case-specific fields the bench adds (frames, lanes, ...).
//
// Timing is a single wall-clock measurement around the case body (which
// performs all `reps` repetitions itself): these are throughput benches
// with bodies in the hundreds of microseconds and up, where one
// measurement is stable enough and the figure that matters is the ratio
// between paired cases measured the same way.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "exp/sink.hpp"
#include "flag_set.hpp"

namespace manet::bench {

/// Compiler sink: keeps `value` alive without a memory write per use.
template <typename T>
inline void keep(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(value) : "memory");
#else
  static volatile T sink;
  sink = value;
#endif
}

class MicroHarness {
 public:
  MicroHarness(std::string bench, const std::string& description, int argc,
               char** argv)
      : bench_(std::move(bench)), flags_(description) {
    flags_.add_string("filter", "",
                      "only run cases whose name contains this substring");
    flags_.add_double("reps", 1.0,
                      "repetition multiplier applied to every case's base count");
    flags_.add_json_flag("write one JSON record per case to this file");
    flags_.parse_or_exit(argc, argv);
    sink_ = flags_.make_sink();
    std::printf("# %s\n", bench_.c_str());
  }

  ~MicroHarness() { sink_->flush(); }

  bool enabled(const std::string& case_name) const {
    const std::string& f = flags_.get("filter");
    return f.empty() || case_name.find(f) != std::string::npos;
  }

  /// `base` scaled by --reps, never below 1.
  std::size_t reps(std::size_t base) const {
    const double scaled = static_cast<double>(base) * flags_.get_double("reps");
    return scaled < 1.0 ? 1 : static_cast<std::size_t>(scaled);
  }

  /// Times `body` (which performs the case's full workload and returns
  /// the operation count), prints one human line, and emits one record.
  /// `extra` appends case-specific fields to the record.
  void run_case(const std::string& name,
                const std::function<std::uint64_t()>& body,
                const std::function<void(exp::Record&)>& extra = {}) {
    if (!enabled(name)) return;
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t ops = body();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double ns_per_op =
        ops ? wall * 1e9 / static_cast<double>(ops) : 0.0;
    std::printf("  %-40s %14.1f ns/op  (%llu ops, %.3f s)\n", name.c_str(),
                ns_per_op, static_cast<unsigned long long>(ops), wall);
    std::fflush(stdout);

    exp::Record rec;
    rec.add("bench", bench_)
        .add("case", name)
        .add("reps", flags_.get_double("reps"))
        .add("ops", ops)
        .add("wall_seconds", wall)
        .add("ns_per_op", ns_per_op);
    if (extra) extra(rec);
    sink_->record(rec);
  }

  FlagSet& flags() { return flags_; }

 private:
  std::string bench_;
  FlagSet flags_;
  std::shared_ptr<exp::ResultSink> sink_;
};

}  // namespace manet::bench
