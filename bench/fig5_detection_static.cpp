// Figure 5(a)-(c): probability of correct diagnosis vs percentage of
// misbehavior (PM), for sample sizes {10, 25, 50, 100} at loads
// {0.3, 0.6, 0.9} on the static grid.
//
// One simulation per (load, PM) feeds all four sample sizes concurrently.
// The per-flow rate for each load is calibrated once (busy fraction at the
// monitored pair), mirroring how the paper dials in ns-2 loads.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  util::Config config;
  config.declare("loads", "0.3,0.6,0.9", "target traffic intensities (Fig. 5 a-c)");
  config.declare("pms", "10,25,40,50,65,80,90,100",
                 "percentages of misbehavior swept");
  config.declare("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  config.declare("sim_time", "300", "simulated seconds per (load, PM) point");
  config.declare("runs", "2", "independent runs per point (consecutive seeds)");
  config.declare("seed", "101", "base random seed");
  config.declare("alpha", "0.01", "significance level for rejecting H0");
  config.declare("margin", "0.10",
                 "permissible back-off deficit (fraction of expected mean)");
  bench::parse_or_exit(
      argc, argv, config,
      "Figure 5(a)-(c): probability of correct diagnosis vs PM, static grid.");

  const auto loads = bench::parse_double_list(config.get("loads"));
  const auto pms = bench::parse_double_list(config.get("pms"));
  const auto sample_sizes = bench::parse_double_list(config.get("sample_sizes"));

  bench::print_header(
      "Figure 5(a)-(c): probability of correct diagnosis, static grid",
      "PM=65 detected w.p. >0.8 even at sample size 10; larger samples detect "
      "subtler misbehavior (PM=25 w.p. ~1 at sample size 100)");

  net::ScenarioConfig scenario;  // Table-1 grid defaults
  scenario.sim_seconds = config.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(config.get_int("seed"));
  bench::RateCache rates(scenario);

  for (double load : loads) {
    const double rate = rates.rate_for(load);
    std::printf("\n## Load = %.1f  (columns: all-paths rate / statistical-only rate (windows))\n",
                load);
    std::printf("  %-5s", "PM");
    for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
    std::printf("  intensity\n");

    for (double pm : pms) {
      detect::MultiDetectionConfig cfg;
      cfg.scenario = scenario;
      cfg.rate_pps = rate;
      cfg.pm = pm;
      for (double ss : sample_sizes) {
        detect::MonitorConfig m;
        m.sample_size = static_cast<std::size_t>(ss);
        m.alpha = config.get_double("alpha");
        m.margin_fraction = config.get_double("margin");
        m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
        m.fixed_contenders = 20.0;
        cfg.monitors.push_back(m);
      }

      const auto result =
          detect::run_multi_detection_trials(cfg, static_cast<int>(config.get_int("runs")));
      std::printf("  %-5.0f", pm);
      for (const auto& r : result.per_config) {
        std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate,
                    r.statistical_rate, static_cast<unsigned long long>(r.windows));
      }
      std::printf("  %.3f\n", result.measured_rho);
      std::fflush(stdout);
    }
  }
  return 0;
}
