// Figure 5(a)-(c): probability of correct diagnosis vs percentage of
// misbehavior (PM), for sample sizes {10, 25, 50, 100} at loads
// {0.3, 0.6, 0.9} on the static grid.
//
// One simulation per (load, PM, trial) feeds all four sample sizes
// concurrently. All trials of the whole load x PM grid share the
// experiment engine's work queue (--threads), and per-point aggregation
// happens in trial order, so the numbers are bit-identical to a serial
// run. The per-flow rate for each load is calibrated once (busy fraction
// at the monitored pair), mirroring how the paper dials in ns-2 loads.
//
// The sweep runs on the experiment fabric: cells are the (load, PM) grid
// points followed by the optional adversary-zoo rows, in that fixed
// order, so --shard i/N computes a contiguous slice whose artifact
// concatenates with the other shards into the serial artifact
// byte-for-byte (see exp/shard.hpp), and --columnar/--checkpoint add the
// binary artifact and crash-safe resume.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/roc.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 5(a)-(c): probability of correct diagnosis vs PM, static grid.");
  flags.add_double_list("loads", "0.3,0.6,0.9", "target traffic intensities (Fig. 5 a-c)");
  flags.add_double_list("pms", "10,25,40,50,65,80,90,100", "percentages of misbehavior swept");
  flags.add_double_list("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  flags.add_double("sim_time", 300, "simulated seconds per (load, PM) point");
  flags.add_int("runs", 2, "independent runs per point (consecutive seeds)");
  flags.add_int("seed", 101, "base random seed");
  flags.add_double("alpha", 0.01, "significance level for rejecting H0");
  flags.add_double("margin", 0.10, "permissible back-off deficit (fraction of expected mean)");
  flags.add_name_list("attackers", "", "extra adversary-zoo rows per load (colluding, adaptive, "
                 "sybil, rts_flood, pm<percent>); empty keeps the paper grid "
                 "byte-identical");
  flags.add_string("channel_index", "auto",
                   "channel receiver lookup: auto | incremental | rebuild | scan");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.add_fabric_flags();
  flags.parse_or_exit(argc, argv);

  const auto loads = flags.get_double_list("loads");
  const auto pms = flags.get_double_list("pms");
  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const int runs = static_cast<int>(flags.get_int("runs"));
  const auto attacker_names = flags.get_name_list("attackers");

  // Resolve attacker specs up-front so a bad --attackers fails before any
  // simulation runs.
  const detect::AttackerTuning tuning;  // zoo defaults (pm 80, group 3)
  std::vector<detect::AttackerSpec> attacker_specs;
  for (const std::string& name : attacker_names) {
    try {
      attacker_specs.push_back(detect::attacker_spec_from_name(name, tuning));
    } catch (const util::ConfigError& e) {
      std::fprintf(stderr, "flag error: --attackers: %s\n", e.what());
      return 1;
    }
  }

  bench::print_header(
      "Figure 5(a)-(c): probability of correct diagnosis, static grid",
      "PM=65 detected w.p. >0.8 even at sample size 10; larger samples detect "
      "subtler misbehavior (PM=25 w.p. ~1 at sample size 100)");

  net::ScenarioConfig scenario;  // Table-1 grid defaults
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  scenario.channel_index = flags.get("channel_index");

  exp::Engine engine = flags.make_engine();
  bench::RateCache rates(scenario);

  // Cell layout: the (load, PM) paper grid in row-major order, then one
  // cell per (load, attacker) zoo row. Order is load-major in both parts
  // so the serial artifact (and the table) group by load.
  const std::uint64_t grid_cells =
      static_cast<std::uint64_t>(loads.size()) * pms.size();
  const std::uint64_t total_cells =
      grid_cells + static_cast<std::uint64_t>(loads.size()) * attacker_specs.size();
  const auto fabric = flags.make_fabric(total_cells, "fig5_detection_static");

  // Calibrate every load up-front, across the workers (shared across
  // shards through $MANET_RATE_CACHE / $MANET_ARTIFACTS).
  const std::vector<double> load_rates =
      engine.map(loads.size(), [&](std::size_t i) { return rates.rate_for(loads[i]); });

  const auto build_point = [&](std::uint64_t cell) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.pipeline = flags.pipeline();
    bool gap_bound = false;
    if (cell < grid_cells) {
      const std::size_t li = static_cast<std::size_t>(cell / pms.size());
      cfg.rate_pps = load_rates[li];
      cfg.pm = pms[cell % pms.size()];
    } else {
      const std::uint64_t e = cell - grid_cells;
      const std::size_t li = static_cast<std::size_t>(e / attacker_specs.size());
      const auto& spec = attacker_specs[e % attacker_specs.size()];
      cfg.rate_pps = load_rates[li];
      cfg.attacker = spec;
      // Monitors watching the flood enable the anchorless RTS-gap bound —
      // that row would otherwise never produce a window to score; timing
      // attackers keep the paper's statistical detector so the columns
      // stay comparable to the PM grid.
      gap_bound = (spec.kind == detect::AttackerKind::kRtsFlood);
    }
    for (double ss : sample_sizes) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(ss);
      m.alpha = flags.get_double("alpha");
      m.margin_fraction = flags.get_double("margin");
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
      m.fixed_contenders = 20.0;
      m.rts_gap_bound = gap_bound;
      cfg.monitors.push_back(m);
    }
    return cfg;
  };

  // Table headers are emitted lazily so a shard's partial table still
  // labels its rows.
  std::ptrdiff_t grid_header_load = -1;
  std::ptrdiff_t extra_header_load = -1;
  const auto emit_cell = [&](std::uint64_t cell,
                             const detect::MultiDetectionResult& result) {
    fabric->begin_cell(cell);
    if (cell < grid_cells) {
      const auto li = static_cast<std::ptrdiff_t>(cell / pms.size());
      const double pm = pms[cell % pms.size()];
      if (li != grid_header_load) {
        grid_header_load = li;
        std::printf("\n## Load = %.1f  (columns: all-paths rate / statistical-only rate (windows))\n",
                    loads[li]);
        std::printf("  %-5s", "PM");
        for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
        std::printf("  intensity\n");
      }
      std::printf("  %-5.0f", pm);
      for (const auto& r : result.per_config) {
        std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate,
                    r.statistical_rate, static_cast<unsigned long long>(r.windows));
      }
      std::printf("  %.3f\n", result.measured_rho);
      std::fflush(stdout);

      for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
        const auto& r = result.per_config[si];
        exp::Record rec;
        rec.add("bench", "fig5_detection_static")
            .add("load", loads[li])
            .add("pm", pm)
            .add("sample_size", sample_sizes[si])
            .add("rate_pps", load_rates[li])
            .add("runs", runs)
            .add("sim_time_s", flags.get_double("sim_time"))
            .add("windows", r.windows)
            .add("flagged", r.flagged)
            .add("flagged_statistical", r.flagged_statistical)
            .add("detection_rate", r.detection_rate)
            .add("statistical_rate", r.statistical_rate)
            .add("intensity", result.measured_rho)
            .add("wall_seconds", result.wall_seconds)
            .add("threads", engine.threads());
        fabric->record(rec);
      }
    } else {
      const std::uint64_t e = cell - grid_cells;
      const auto li = static_cast<std::ptrdiff_t>(e / attacker_specs.size());
      const std::string& name = attacker_names[e % attacker_specs.size()];
      if (li != extra_header_load) {
        extra_header_load = li;
        std::printf("\n## Load = %.1f, adversary zoo v2 (gap bound on for rts_flood)\n",
                    loads[li]);
        std::printf("  %-10s", "attacker");
        for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
        std::printf("\n");
      }
      std::printf("  %-10s", name.c_str());
      for (const auto& r : result.per_config) {
        std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate,
                    r.statistical_rate,
                    static_cast<unsigned long long>(r.windows));
      }
      std::printf("\n");
      std::fflush(stdout);

      for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
        const auto& r = result.per_config[si];
        exp::Record rec;
        rec.add("bench", "fig5_detection_static")
            .add("attacker", name)
            .add("load", loads[li])
            .add("sample_size", sample_sizes[si])
            .add("rate_pps", load_rates[li])
            .add("runs", runs)
            .add("sim_time_s", flags.get_double("sim_time"))
            .add("windows", r.windows)
            .add("flagged", r.flagged)
            .add("flagged_statistical", r.flagged_statistical)
            .add("detection_rate", r.detection_rate)
            .add("statistical_rate", r.statistical_rate)
            .add("first_flag_windows", r.stats.windows_to_first_flag)
            .add("intensity", result.measured_rho)
            .add("wall_seconds", result.wall_seconds)
            .add("threads", engine.threads());
        fabric->record(rec);
      }
    }
  };

  double sweep_wall = 0.0;
  fabric->run([&](std::uint64_t first, std::uint64_t last) {
    std::vector<detect::MultiDetectionConfig> chunk;
    chunk.reserve(static_cast<std::size_t>(last - first));
    for (std::uint64_t c = first; c < last; ++c) chunk.push_back(build_point(c));

    const auto chunk_start = std::chrono::steady_clock::now();
    const auto results = detect::run_multi_detection_sweep(chunk, runs, engine);
    sweep_wall += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                chunk_start)
                      .count();

    for (std::uint64_t c = first; c < last; ++c) {
      emit_cell(c, results[static_cast<std::size_t>(c - first)]);
    }
  });

  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %llu of %llu cells x %d runs)\n",
              sweep_wall, engine.threads(),
              static_cast<unsigned long long>(fabric->cell_end() - fabric->cell_begin()),
              static_cast<unsigned long long>(total_cells), runs);
  return 0;
}
