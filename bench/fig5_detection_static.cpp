// Figure 5(a)-(c): probability of correct diagnosis vs percentage of
// misbehavior (PM), for sample sizes {10, 25, 50, 100} at loads
// {0.3, 0.6, 0.9} on the static grid.
//
// One simulation per (load, PM, trial) feeds all four sample sizes
// concurrently. All trials of the whole load x PM grid share the
// experiment engine's work queue (--threads), and per-point aggregation
// happens in trial order, so the numbers are bit-identical to a serial
// run. The per-flow rate for each load is calibrated once (busy fraction
// at the monitored pair), mirroring how the paper dials in ns-2 loads.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/roc.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 5(a)-(c): probability of correct diagnosis vs PM, static grid.");
  flags.add_double_list("loads", "0.3,0.6,0.9", "target traffic intensities (Fig. 5 a-c)");
  flags.add_double_list("pms", "10,25,40,50,65,80,90,100", "percentages of misbehavior swept");
  flags.add_double_list("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  flags.add_double("sim_time", 300, "simulated seconds per (load, PM) point");
  flags.add_int("runs", 2, "independent runs per point (consecutive seeds)");
  flags.add_int("seed", 101, "base random seed");
  flags.add_double("alpha", 0.01, "significance level for rejecting H0");
  flags.add_double("margin", 0.10, "permissible back-off deficit (fraction of expected mean)");
  flags.add_name_list("attackers", "", "extra adversary-zoo rows per load (colluding, adaptive, "
                 "sybil, rts_flood, pm<percent>); empty keeps the paper grid "
                 "byte-identical");
  flags.add_string("channel_index", "auto",
                   "channel receiver lookup: auto | incremental | rebuild | scan");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.parse_or_exit(argc, argv);

  const auto loads = flags.get_double_list("loads");
  const auto pms = flags.get_double_list("pms");
  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const int runs = static_cast<int>(flags.get_int("runs"));

  bench::print_header(
      "Figure 5(a)-(c): probability of correct diagnosis, static grid",
      "PM=65 detected w.p. >0.8 even at sample size 10; larger samples detect "
      "subtler misbehavior (PM=25 w.p. ~1 at sample size 100)");

  net::ScenarioConfig scenario;  // Table-1 grid defaults
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  scenario.channel_index = flags.get("channel_index");

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);

  // Calibrate every load up-front, across the workers.
  const std::vector<double> load_rates =
      engine.map(loads.size(), [&](std::size_t i) { return rates.rate_for(loads[i]); });

  // One sweep point per (load, PM); every point drives all sample sizes.
  std::vector<detect::MultiDetectionConfig> points;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (double pm : pms) {
      detect::MultiDetectionConfig cfg;
      cfg.scenario = scenario;
      cfg.rate_pps = load_rates[li];
      cfg.pm = pm;
      cfg.pipeline = flags.pipeline();
      for (double ss : sample_sizes) {
        detect::MonitorConfig m;
        m.sample_size = static_cast<std::size_t>(ss);
        m.alpha = flags.get_double("alpha");
        m.margin_fraction = flags.get_double("margin");
        m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
        m.fixed_contenders = 20.0;
        cfg.monitors.push_back(m);
      }
      points.push_back(cfg);
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = detect::run_multi_detection_sweep(points, runs, engine);
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::size_t point = 0;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::printf("\n## Load = %.1f  (columns: all-paths rate / statistical-only rate (windows))\n",
                loads[li]);
    std::printf("  %-5s", "PM");
    for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
    std::printf("  intensity\n");

    for (double pm : pms) {
      const auto& result = results[point++];
      std::printf("  %-5.0f", pm);
      for (const auto& r : result.per_config) {
        std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate,
                    r.statistical_rate, static_cast<unsigned long long>(r.windows));
      }
      std::printf("  %.3f\n", result.measured_rho);
      std::fflush(stdout);

      for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
        const auto& r = result.per_config[si];
        exp::Record rec;
        rec.add("bench", "fig5_detection_static")
            .add("load", loads[li])
            .add("pm", pm)
            .add("sample_size", sample_sizes[si])
            .add("rate_pps", load_rates[li])
            .add("runs", runs)
            .add("sim_time_s", flags.get_double("sim_time"))
            .add("windows", r.windows)
            .add("flagged", r.flagged)
            .add("flagged_statistical", r.flagged_statistical)
            .add("detection_rate", r.detection_rate)
            .add("statistical_rate", r.statistical_rate)
            .add("intensity", result.measured_rho)
            .add("wall_seconds", result.wall_seconds)
            .add("threads", engine.threads());
        sink->record(rec);
      }
    }
  }
  // Optional adversary-zoo v2 rows (kept out of the paper grid above so
  // the default artifacts stay byte-identical). Monitors watching the
  // flood enable the anchorless RTS-gap bound — that row would otherwise
  // never produce a window to score; timing attackers keep the paper's
  // statistical detector so the columns stay comparable to the PM grid.
  const auto attacker_names = flags.get_name_list("attackers");
  double extra_wall = 0.0;
  if (!attacker_names.empty()) {
    const detect::AttackerTuning tuning;  // zoo defaults (pm 80, group 3)
    std::vector<detect::MultiDetectionConfig> extra;
    for (std::size_t li = 0; li < loads.size(); ++li) {
      for (const std::string& name : attacker_names) {
        detect::AttackerSpec spec;
        try {
          spec = detect::attacker_spec_from_name(name, tuning);
        } catch (const util::ConfigError& e) {
          std::fprintf(stderr, "flag error: --attackers: %s\n", e.what());
          return 1;
        }
        detect::MultiDetectionConfig cfg;
        cfg.scenario = scenario;
        cfg.rate_pps = load_rates[li];
        cfg.attacker = spec;
        cfg.pipeline = flags.pipeline();
        for (double ss : sample_sizes) {
          detect::MonitorConfig m;
          m.sample_size = static_cast<std::size_t>(ss);
          m.alpha = flags.get_double("alpha");
          m.margin_fraction = flags.get_double("margin");
          m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
          m.fixed_contenders = 20.0;
          m.rts_gap_bound = (spec.kind == detect::AttackerKind::kRtsFlood);
          cfg.monitors.push_back(m);
        }
        extra.push_back(cfg);
      }
    }

    const auto extra_start = std::chrono::steady_clock::now();
    const auto extra_results = detect::run_multi_detection_sweep(extra, runs, engine);
    extra_wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               extra_start)
                     .count();

    std::size_t ep = 0;
    for (std::size_t li = 0; li < loads.size(); ++li) {
      std::printf("\n## Load = %.1f, adversary zoo v2 (gap bound on for rts_flood)\n",
                  loads[li]);
      std::printf("  %-10s", "attacker");
      for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
      std::printf("\n");
      for (const std::string& name : attacker_names) {
        const auto& result = extra_results[ep++];
        std::printf("  %-10s", name.c_str());
        for (const auto& r : result.per_config) {
          std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate,
                      r.statistical_rate,
                      static_cast<unsigned long long>(r.windows));
        }
        std::printf("\n");
        std::fflush(stdout);

        for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
          const auto& r = result.per_config[si];
          exp::Record rec;
          rec.add("bench", "fig5_detection_static")
              .add("attacker", name)
              .add("load", loads[li])
              .add("sample_size", sample_sizes[si])
              .add("rate_pps", load_rates[li])
              .add("runs", runs)
              .add("sim_time_s", flags.get_double("sim_time"))
              .add("windows", r.windows)
              .add("flagged", r.flagged)
              .add("flagged_statistical", r.flagged_statistical)
              .add("detection_rate", r.detection_rate)
              .add("statistical_rate", r.statistical_rate)
              .add("first_flag_windows", r.stats.windows_to_first_flag)
              .add("intensity", result.measured_rho)
              .add("wall_seconds", result.wall_seconds)
              .add("threads", engine.threads());
          sink->record(rec);
        }
      }
    }
  }
  sink->flush();
  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %zu points x %d runs)\n",
              sweep_wall + extra_wall, engine.threads(),
              points.size() + attacker_names.size() * loads.size(), runs);
  return 0;
}
