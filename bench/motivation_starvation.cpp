// Motivation (paper Section 1): a back-off cheater causes "a drastically
// reduced allocation of bandwidth to well-behaved nodes ... bandwidth
// starvation and hence a denial of service".
//
// Two saturated contenders share one receiver; one of them misbehaves with
// increasing PM. We report each station's goodput and the Jain fairness
// index — reproducing the DoS effect that justifies the detection
// framework. Each PM point is an independent simulation; points fan out
// across the experiment engine (--threads).
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "mac/dcf.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

using namespace manet;

namespace {

struct Line : phy::PositionProvider {
  geom::Vec2 position(NodeId n, SimTime) const override {
    static constexpr double xs[] = {0, 200, 100};
    static constexpr double ys[] = {0, 0, 170};
    return {xs[n], ys[n]};
  }
};

struct Throughputs {
  double attacker_pps = 0;
  double honest_pps = 0;
  double wall_seconds = 0;
};

Throughputs run(double pm, double seconds) {
  const auto start = std::chrono::steady_clock::now();
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, 1);
  Line positions;
  phy::Channel channel(sim, prop, positions);
  phy::Radio r0(0, channel), r1(1, channel), r2(2, channel);
  mac::DcfMac attacker(sim, r0, params), receiver(sim, r1, params),
      honest(sim, r2, params);
  if (pm > 0) {
    attacker.set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(pm));
  }

  const SimTime stop = seconds_to_time(seconds);
  std::uint64_t id = 1;
  std::function<void()> feeder = [&] {
    while (attacker.queue_length() < 40) attacker.enqueue(1, 512, id++);
    while (honest.queue_length() < 40) honest.enqueue(1, 512, id++);
    if (sim.now() < stop) sim.after(100 * kMillisecond, feeder);
  };
  sim.at(0, feeder);
  sim.run_until(stop);

  Throughputs t;
  t.attacker_pps = static_cast<double>(attacker.stats().packets_acked) / seconds;
  t.honest_pps = static_cast<double>(honest.stats().packets_acked) / seconds;
  t.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Motivation: bandwidth starvation caused by a back-off "
                       "cheater (paper Section 1).");
  flags.add_double_list("pms", "0,25,50,65,80,90,95,100", "attacker PM values");
  flags.add_double("sim_time", 30, "simulated seconds per point");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Motivation: throughput capture by a back-off cheater",
      "a misbehaving node acquires the channel more often; at high PM the "
      "honest contender is starved (denial of service)");

  const auto pms = flags.get_double_list("pms");
  const double sim_time = flags.get_double("sim_time");
  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();

  const std::vector<Throughputs> results = engine.map(
      pms.size(), [&](std::size_t i) { return run(pms[i], sim_time); });

  std::printf("  %-5s %-14s %-14s %-8s %-9s\n", "PM", "attacker pkt/s",
              "honest pkt/s", "share", "fairness");
  for (std::size_t i = 0; i < pms.size(); ++i) {
    const Throughputs& t = results[i];
    const double total = t.attacker_pps + t.honest_pps;
    const double share = total > 0 ? t.attacker_pps / total : 0;
    // Jain fairness index for two flows.
    const double denom = 2 * (t.attacker_pps * t.attacker_pps +
                              t.honest_pps * t.honest_pps);
    const double jain = denom > 0 ? total * total / denom : 1.0;
    std::printf("  %-5.0f %-14.1f %-14.1f %-8.2f %-9.3f\n", pms[i],
                t.attacker_pps, t.honest_pps, share, jain);
    std::fflush(stdout);

    exp::Record rec;
    rec.add("bench", "motivation_starvation")
        .add("pm", pms[i])
        .add("sim_time_s", sim_time)
        .add("attacker_pps", t.attacker_pps)
        .add("honest_pps", t.honest_pps)
        .add("attacker_share", share)
        .add("jain_fairness", jain)
        .add("wall_seconds", t.wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  sink->flush();
  return 0;
}
