// Shared plumbing for the figure-reproduction benches: flag handling,
// engine construction (--threads), result sinks (--json), and strict
// numeric-list parsing. Load calibration lives in the engine layer
// (exp::RateCache — thread-safe, shareable across bench processes via
// $MANET_RATE_CACHE); `bench::RateCache` is an alias for it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exp/engine.hpp"
#include "exp/rate_cache.hpp"
#include "exp/sink.hpp"
#include "net/scenario.hpp"
#include "util/config.hpp"
#include "util/flags.hpp"

namespace manet::bench {

using RateCache = exp::RateCache;

/// Parses --key=value flags into `config`; prints help and exits(0) when
/// --help is passed; exits(1) on bad flags.
inline void parse_or_exit(int argc, char** argv, util::Config& config,
                          const char* description) {
  try {
    const auto parsed = util::parse_flags(argc, argv, config);
    if (parsed.help) {
      std::printf("%s\n\nFlags (--key=value):\n%s", description,
                  config.render().c_str());
      std::exit(0);
    }
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "flag error: %s\n", e.what());
    std::exit(1);
  }
}

/// Declares the experiment-engine flags every sweep bench shares.
inline void declare_engine_flags(util::Config& config) {
  config.declare("threads", "0",
                 "worker threads for trial fan-out (0 = all hardware threads)");
  config.declare("json", "",
                 "write one JSON record per sweep point to this file");
}

/// Declares --monitor_impl for detection benches: "hub" (shared
/// ObservationHub per monitoring node, the optimized pipeline) or
/// "reference" (private hub per monitor, structurally the pre-hub
/// pipeline). Results are bit-identical either way — perf_pr5.sh diffs
/// them — so the flag is deliberately NOT part of the JSON records.
inline void declare_monitor_impl_flag(util::Config& config) {
  config.declare("monitor_impl", "hub",
                 "detection pipeline: hub (shared per-node observation hub) "
                 "or reference (private per-monitor state; perf baseline)");
}

/// share_hub value for the --monitor_impl flag; exits on unknown values.
inline bool share_hub_from(const util::Config& config) {
  const std::string& impl = config.get("monitor_impl");
  if (impl == "hub") return true;
  if (impl == "reference") return false;
  std::fprintf(stderr, "flag error: --monitor_impl must be hub or reference\n");
  std::exit(1);
}

inline exp::Engine make_engine(const util::Config& config) {
  const long long threads = config.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "flag error: --threads must be >= 0\n");
    std::exit(1);
  }
  return exp::Engine(static_cast<unsigned>(threads));
}

/// Builds the --json sink (NullSink when the flag is empty).
inline std::shared_ptr<exp::ResultSink> make_sink(const util::Config& config) {
  const std::string& path = config.get("json");
  if (path.empty()) return std::make_shared<exp::NullSink>();
  try {
    return std::make_shared<exp::JsonFileSink>(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flag error: --json: %s\n", e.what());
    std::exit(1);
  }
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("# %s\n# Paper claim: %s\n", figure, claim);
}

/// Parses a comma-separated list of doubles ("0.3,0.6,0.9"). Rejects
/// malformed entries ("0.3,x", "1.2.3") with util::ConfigError instead of
/// letting std::stod terminate the process.
inline std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::string token;
  auto flush_token = [&out](const std::string& tok) {
    if (tok.empty()) return;
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(tok, &consumed);
    } catch (const std::exception&) {
      throw util::ConfigError("'" + tok + "' is not a number");
    }
    if (consumed != tok.size()) {
      throw util::ConfigError("'" + tok + "' has trailing characters");
    }
    out.push_back(value);
  };
  for (char c : text) {
    if (c == ',') {
      flush_token(token);
      token.clear();
    } else if (c != ' ' && c != '\t') {
      token.push_back(c);
    }
  }
  flush_token(token);
  return out;
}

/// parse_double_list on a declared flag, exiting with a clean flag error
/// (instead of an uncaught exception) on malformed input.
inline std::vector<double> get_double_list(const util::Config& config,
                                           const std::string& key) {
  try {
    return parse_double_list(config.get(key));
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "flag error: --%s: %s\n", key.c_str(), e.what());
    std::exit(1);
  }
}

/// Scalar flag accessors with clean flag errors: Config::get_double /
/// get_int throw ConfigError lazily (at first use, after parse_or_exit
/// returned), which would otherwise escape main as an uncaught exception.
inline double get_double_flag(const util::Config& config, const std::string& key) {
  try {
    return config.get_double(key);
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "flag error: --%s: %s\n", key.c_str(), e.what());
    std::exit(1);
  }
}

inline long long get_int_flag(const util::Config& config, const std::string& key) {
  try {
    return config.get_int(key);
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "flag error: --%s: %s\n", key.c_str(), e.what());
    std::exit(1);
  }
}

/// Parses a comma-separated list of identifiers ("pm50,colluding"): each
/// token must be [A-Za-z0-9_]+; whitespace around tokens is ignored.
/// Rejects anything else with util::ConfigError (strict, like
/// parse_double_list).
inline std::vector<std::string> parse_name_list(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  auto flush_token = [&out](const std::string& tok) {
    if (tok.empty()) return;
    for (char c : tok) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      if (!ok) {
        throw util::ConfigError("'" + tok + "' is not an identifier");
      }
    }
    out.push_back(tok);
  };
  for (char c : text) {
    if (c == ',') {
      flush_token(token);
      token.clear();
    } else if (c != ' ' && c != '\t') {
      token.push_back(c);
    }
  }
  flush_token(token);
  return out;
}

/// parse_name_list on a declared flag with a clean flag error.
inline std::vector<std::string> get_name_list(const util::Config& config,
                                              const std::string& key) {
  try {
    return parse_name_list(config.get(key));
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "flag error: --%s: %s\n", key.c_str(), e.what());
    std::exit(1);
  }
}

}  // namespace manet::bench
