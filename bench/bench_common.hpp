// Shared plumbing for the figure-reproduction benches. Flag handling lives
// in flag_set.hpp (bench::FlagSet — typed declarative registration, auto
// --help, unknown-flag errors). Load calibration lives in the engine layer
// (exp::RateCache — thread-safe, shareable across bench processes via
// $MANET_RATE_CACHE); `bench::RateCache` is an alias for it.
#pragma once

#include <cstdio>

#include "exp/rate_cache.hpp"
#include "flag_set.hpp"

namespace manet::bench {

using RateCache = exp::RateCache;

inline void print_header(const char* figure, const char* claim) {
  std::printf("# %s\n# Paper claim: %s\n", figure, claim);
}

}  // namespace manet::bench
