// Shared plumbing for the figure-reproduction benches: flag handling,
// per-load rate calibration with caching, and table formatting.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "net/load.hpp"
#include "net/scenario.hpp"
#include "util/config.hpp"
#include "util/flags.hpp"

namespace manet::bench {

/// Parses --key=value flags into `config`; prints help and exits(0) when
/// --help is passed; exits(1) on bad flags.
inline void parse_or_exit(int argc, char** argv, util::Config& config,
                          const char* description) {
  try {
    const auto parsed = util::parse_flags(argc, argv, config);
    if (parsed.help) {
      std::printf("%s\n\nFlags (--key=value):\n%s", description,
                  config.render().c_str());
      std::exit(0);
    }
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "flag error: %s\n", e.what());
    std::exit(1);
  }
}

/// Calibrates (and caches) the per-flow rate that produces `load` at the
/// monitored pair for this scenario family. Keyed on the load only: one
/// bench works a single scenario family.
class RateCache {
 public:
  explicit RateCache(const net::ScenarioConfig& scenario) : scenario_(scenario) {}

  double rate_for(double load) {
    auto it = cache_.find(load);
    if (it != cache_.end()) return it->second;
    const auto setup = [](net::Network& net) {
      const NodeId s = net.center_node();
      const auto nbrs = net.neighbors(s, net.config().prop.tx_range_m, 0);
      if (!nbrs.empty()) net.add_flow(s, nbrs.front(), 1.0);
      net.build_random_flows();
    };
    const auto result = net::calibrate_load(scenario_, load, setup);
    std::printf("# calibrated load %.2f -> %.2f pkt/s per flow "
                "(measured busy fraction %.3f, %d probe runs)\n",
                load, result.packets_per_second, result.measured_busy_fraction,
                result.probe_runs);
    std::fflush(stdout);
    cache_.emplace(load, result.packets_per_second);
    return result.packets_per_second;
  }

 private:
  net::ScenarioConfig scenario_;
  std::map<double, double> cache_;
};

inline void print_header(const char* figure, const char* claim) {
  std::printf("# %s\n# Paper claim: %s\n", figure, claim);
}

/// Parses a comma-separated list of doubles ("0.3,0.6,0.9").
inline std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::string token;
  for (char c : text + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(std::stod(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return out;
}

}  // namespace manet::bench
