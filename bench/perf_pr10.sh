#!/usr/bin/env bash
# Measurement flow for the PR-10 distributed experiment fabric.
#
# Enforces the fabric's correctness contract and records its performance
# headline in one BENCH_PR10.json:
#
#   * shard-merge byte-identity — fig5_detection_static and
#     fig_roc_adversaries run as N independent shard processes
#     (--shard=i/N --columnar=...) for N in {2, 4, 7} (7 exceeds the ROC
#     cell count: trailing shards own empty ranges); tools/sweep_merge
#     validates + merges the .mcol artifacts and the rendered JSON must be
#     byte-identical to the --threads=1 single-process artifact (timing
#     fields stripped). Any difference fails the script.
#   * shard scaling — fig_roc_adversaries (8 attacker cells) timed as one
#     serial process, then as 4 concurrent single-threaded shard
#     processes, with MANET_ARTIFACTS pre-warmed by a warmup run so the
#     honest-baseline memo and rate calibrations are shared, not
#     recomputed per shard. Records cells/second for both and the
#     speedup. The near-linear-to-4-shards target only applies when the
#     machine has >= 4 cores; on smaller machines the honest expectation
#     (recorded in the JSON) is min(4, nproc)-linear, and the check
#     degrades to "sharding adds no material overhead".
#   * sink encoding — micro_sink's columnar-vs-JSON write speedup (target
#     >= 10x) and artifact size ratio (target ~5x smaller).
#
# Perf targets report WARN + exit 2 when missed (honest numbers land in
# the JSON either way); correctness failures exit 1.
#
# Usage:
#   bench/perf_pr10.sh [build_dir] [output_json]
#
# The build dir should use the `bench` preset (Release, -O3, IPO):
#   cmake --preset bench && cmake --build --preset bench -j
set -euo pipefail
cd "$(dirname "$0")/.."

build=${1:-build-bench}
out_json=${2:-BENCH_PR10.json}

for b in bench/fig5_detection_static bench/fig_roc_adversaries \
         bench/micro_sink tools/sweep_merge; do
  [[ -x "$build/$b" ]] || { echo "error: $build/$b not built" >&2; exit 1; }
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
# Shared caches: the fabric's cross-process dedup layer. Every shard (and
# the serial reference) sees the same calibrations and ROC baselines.
export MANET_RATE_CACHE="$work/rates"
export MANET_ARTIFACTS="$work/artifacts"

strip_timing() {  # wall-clock and thread count are the only fields allowed to differ
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "threads": [0-9]+//' "$1"
}
now() { date +%s.%N; }

FIG5_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=2)
ROC_FLAGS=(--attackers=pm50,pm90,colluding,adaptive,sybil,rts_flood
           --thresholds=0.001,0.01,0.1 --sim_time=15 --runs=2)
# 8 balanced cells for the 4-shard scaling measurement (2 per shard).
ROC_SCALE_FLAGS=(--attackers=pm30,pm50,pm70,pm90,colluding,adaptive,sybil,rts_flood
                 --thresholds=0.001,0.01,0.1 --sim_time=15 --runs=2)

echo "== shard-merge byte-identity: fig5 + ROC, N in {2, 4, 7} ==" >&2
shard_match() {  # $1 bench, $2 tag, then sweep flags...
  local bench=$1 tag=$2 n i
  shift 2
  "$build/bench/$bench" "$@" --threads=1 \
      --json="$work/${tag}_serial.json" >/dev/null
  for n in 2 4 7; do
    for ((i = 0; i < n; ++i)); do
      "$build/bench/$bench" "$@" --threads=1 --shard="$i/$n" \
          --columnar="$work/${tag}_shard_${i}_of_${n}.mcol" >/dev/null
    done
    "$build/tools/sweep_merge" --json="$work/${tag}_merged_${n}.json" \
        "$work/${tag}"_shard_*_of_"${n}".mcol >/dev/null
    diff <(strip_timing "$work/${tag}_serial.json") \
         <(strip_timing "$work/${tag}_merged_${n}.json") >/dev/null || {
      echo "FAIL: $tag with $n shards merges to a different artifact than" \
           "the single-process run" >&2
      exit 1
    }
    echo "  $tag: $n shard processes merge byte-identical to serial" >&2
  done
}
shard_match fig5_detection_static fig5 "${FIG5_FLAGS[@]}"
shard_match fig_roc_adversaries roc "${ROC_FLAGS[@]}"

echo "== shard scaling: ROC 8 cells, serial vs 4 concurrent shards ==" >&2
# Warmup: populates MANET_ARTIFACTS (honest ROC baselines) and the rate
# cache so BOTH timed configurations measure the sweep, not the memo fill.
"$build/bench/fig_roc_adversaries" "${ROC_SCALE_FLAGS[@]}" --threads=1 \
    --columnar="$work/scale_warmup.mcol" >/dev/null

t0=$(now)
"$build/bench/fig_roc_adversaries" "${ROC_SCALE_FLAGS[@]}" --threads=1 \
    --columnar="$work/scale_serial.mcol" >/dev/null
t1=$(now)
serial_wall=$(python3 -c "print(max(1e-9, $t1 - $t0))")

t0=$(now)
for i in 0 1 2 3; do
  "$build/bench/fig_roc_adversaries" "${ROC_SCALE_FLAGS[@]}" --threads=1 \
      --shard="$i/4" --columnar="$work/scale_shard_$i.mcol" >/dev/null &
done
wait
t1=$(now)
parallel_wall=$(python3 -c "print(max(1e-9, $t1 - $t0))")

# The sharded artifacts must also merge back to the serial bytes.
"$build/tools/sweep_merge" --json="$work/scale_merged.json" \
    "$work"/scale_shard_*.mcol >/dev/null
"$build/tools/sweep_merge" --json="$work/scale_serial.json" \
    "$work/scale_serial.mcol" >/dev/null
diff <(strip_timing "$work/scale_serial.json") \
     <(strip_timing "$work/scale_merged.json") >/dev/null || {
  echo "FAIL: scaling-run shards merge to a different artifact" >&2
  exit 1
}

echo "== sink encoding: micro_sink (columnar vs JSON) ==" >&2
"$build/bench/micro_sink" --json="$work/micro_sink.json"

python3 - "$work" "$out_json" "$serial_wall" "$parallel_wall" <<'EOF'
import json, os, sys
work, out_path = sys.argv[1], sys.argv[2]
serial_wall, parallel_wall = float(sys.argv[3]), float(sys.argv[4])

cells = 8
cores = os.cpu_count() or 1
ideal = min(4, cores)
speedup = serial_wall / parallel_wall
micro = {rec["case"]: rec for rec in json.load(open(f"{work}/micro_sink.json"))}
headline = micro["columnar_vs_json"]

doc = {
    "description": "PR-10 distributed experiment fabric: sharded sweeps "
                   "(--shard=i/N + --columnar + tools/sweep_merge), binary "
                   "columnar .mcol artifacts, content-addressed artifact "
                   "store ($MANET_ARTIFACTS) deduplicating ROC honest "
                   "baselines and rate calibrations across shard processes, "
                   "and checkpoint/resume (--checkpoint)",
    "byte_identity": "fig5_detection_static and fig_roc_adversaries sharded "
                     "N in {2, 4, 7}; sweep_merge-rendered JSON "
                     "byte-identical to the --threads=1 single-process "
                     "artifact (timing fields stripped); enforced above",
    "shard_scaling": {
        "workload": "fig_roc_adversaries, 8 attacker cells, sim_time=15, "
                    "runs=2, artifact store pre-warmed",
        "cores": cores,
        "serial_wall_seconds": round(serial_wall, 3),
        "serial_cells_per_second": round(cells / serial_wall, 3),
        "four_shard_wall_seconds": round(parallel_wall, 3),
        "four_shard_cells_per_second": round(cells / parallel_wall, 3),
        "speedup": round(speedup, 3),
        "ideal_speedup_on_this_machine": ideal,
        "note": "4 single-threaded shard processes run concurrently; the "
                "achievable speedup is bounded by min(4, cores), so on "
                "machines with fewer than 4 cores the check degrades to "
                "'sharding adds no material overhead'",
    },
    "sink_encoding": {
        "write_speedup": headline["write_speedup"],
        "size_ratio": headline["size_ratio"],
        "json_bytes": headline["json_bytes"],
        "columnar_bytes": headline["columnar_bytes"],
        "cases": {name: {"ns_per_op": rec["ns_per_op"]}
                  for name, rec in micro.items() if "ns_per_op" in rec},
    },
}
json.dump(doc, open(out_path, "w"), indent=1)
open(out_path, "a").write("\n")
print(json.dumps({"shard_speedup": doc["shard_scaling"]["speedup"],
                  "cores": cores,
                  "write_speedup": headline["write_speedup"],
                  "size_ratio": headline["size_ratio"]}, indent=1))

ok = True
# Near-linear: >= 75% of the ideal this machine can express; with ideal=1
# that is "at most ~1.33x slower than serial", i.e. no material overhead.
if speedup < 0.75 * ideal:
    print(f"WARN: 4-shard speedup {speedup:.2f}x is below 75% of the "
          f"ideal {ideal}x on this {cores}-core machine", file=sys.stderr)
    ok = False
if headline["write_speedup"] < 10.0:
    print(f"WARN: columnar write speedup {headline['write_speedup']:.1f}x "
          "below the 10x target", file=sys.stderr)
    ok = False
if headline["size_ratio"] < 4.0:
    print(f"WARN: columnar size ratio {headline['size_ratio']:.1f}x below "
          "the ~5x target", file=sys.stderr)
    ok = False
sys.exit(0 if ok else 2)
EOF

echo "wrote $out_json" >&2
