#!/usr/bin/env bash
# Measurement flow for the PR-9 scale kernel. All three receiver-lookup
# paths live in the SAME build: every network bench takes
# --channel_index={auto,incremental,rebuild,scan} (incremental = per-radio
# cell migration + predicted-position prefilter + parked-pair budget cache,
# the default under auto; rebuild = the retained PR-4..8 kernel with
# staleness-bounded grid rebuilds and the O(N^2) kMovingEpoch link cache;
# scan = the always-exact full scan reference), and fig_scale_sweep takes
# the same set as --index.
#
# Writes one BENCH_PR9.json capturing:
#   * fig_scale_sweep wall-clock at 1k and 2k mobile nodes (10 sim-s of
#     random waypoint + multi-hop AODV request/response) for all three
#     index modes, plus the computed speedups,
#   * a 10k-node 50-sim-s completion run on the incremental index with the
#     index/cache counters recorded (rebuild is infeasible there: the
#     N^2 link cache alone would be ~2.4 GB),
#   * the incremental index/cache statistics at every measured size.
#
# It also enforces the determinism contract: the fig5 / fig5d / fig6 /
# all-pairs artifacts must be byte-identical (timing fields stripped)
# across --channel_index=incremental / rebuild / scan AND across
# --threads=1 / 4, and the fig_scale_sweep workload counters must be
# identical across index modes. Any behavioral difference fails the
# script: the index is a lookup strategy, never a physics change.
#
# Speedup reality (see DESIGN.md section 4j): at 1k nodes the PR-4 grid
# had already removed the O(N) receiver scan from the hot path, so the
# wall clock is dominated by the shared MAC/PHY/AODV delivery work
# (~36 deliveries + ~43 carrier edges per transmission at the paper's
# density). The incremental index wins on memory (O(N) vs the rebuild
# path's O(N^2) link cache) and on the vs-scan ratio, which grows with N;
# it does not — cannot — multiply the shared physics. The 5x-at-1k target
# is checked below and reported as a WARN (exit 2) when missed, with the
# honest numbers recorded either way.
#
# Usage:
#   bench/perf_pr9.sh [build_dir] [output_json]
#
# The build dir should use the `bench` preset (Release, -O3, IPO):
#   cmake --preset bench && cmake --build --preset bench -j
set -euo pipefail
cd "$(dirname "$0")/.."

build=${1:-build-bench}
out_json=${2:-BENCH_PR9.json}

for b in fig_scale_sweep fig5_detection_static fig5d_detection_mobile \
         fig6_misdiagnosis_static fig_allpairs_monitoring; do
  [[ -x "$build/bench/$b" ]] || { echo "error: $build/bench/$b not built" >&2; exit 1; }
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
# One shared rate cache: calibration is part of the determinism claim —
# every index mode must reproduce the same calibrated rates.
export MANET_RATE_CACHE="$work/rates"

FIG5_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=2)
FIG5D_FLAGS=(--pms=50 --sample_sizes=10,25 --sim_time=40 --runs=2)
FIG6_FLAGS=(--loads=0.6 --sample_sizes=10,25 --sim_time=20 --runs=2)
ALLPAIRS_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=40 --runs=2)

echo "== determinism: fig5 / fig5d / fig6 / all-pairs (incremental vs rebuild vs scan, 1 vs 4 threads) ==" >&2
run_det() {  # $1 bench, $2 label, then flags...
  local bench=$1 label=$2; shift 2
  "$build/bench/$bench" "$@" --json="$work/$label.json" >/dev/null
}
strip_timing() {  # wall-clock and thread count are the only fields allowed to differ
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "threads": [0-9]+//' "$1"
}
check_same() {  # $1/$2 labels, $3 description
  diff <(strip_timing "$work/$1.json") <(strip_timing "$work/$2.json") >/dev/null || {
    echo "FAIL: $3 — results differ, the spatial index changed behavior" >&2
    exit 1
  }
}
det_bench() {  # $1 bench, $2 tag, then the bench's sweep flags...
  local bench=$1 tag=$2; shift 2
  run_det "$bench" "${tag}_inc_t1" "$@" --threads=1 --channel_index=incremental
  run_det "$bench" "${tag}_inc_t4" "$@" --threads=4 --channel_index=incremental
  run_det "$bench" "${tag}_reb_t1" "$@" --threads=1 --channel_index=rebuild
  run_det "$bench" "${tag}_scan_t1" "$@" --threads=1 --channel_index=scan
  check_same "${tag}_inc_t1" "${tag}_inc_t4" "$tag incremental threads 1 vs 4"
  check_same "${tag}_inc_t1" "${tag}_reb_t1" "$tag incremental vs rebuild"
  check_same "${tag}_inc_t1" "${tag}_scan_t1" "$tag incremental vs full-scan reference"
  echo "  $tag: identical across incremental/rebuild/scan and thread counts" >&2
}
det_bench fig5_detection_static fig5 "${FIG5_FLAGS[@]}"
det_bench fig5d_detection_mobile fig5d "${FIG5D_FLAGS[@]}"
det_bench fig6_misdiagnosis_static fig6 "${FIG6_FLAGS[@]}"
det_bench fig_allpairs_monitoring ap "${ALLPAIRS_FLAGS[@]}"

echo "== determinism: scale workload counters across index modes ==" >&2
# Default JSON only (no --cache_stats): every workload and AODV counter
# must match; only the index name and the wall-clock fields may differ.
strip_scale() {
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "sim_s_per_wall_s": [^,}]+//;
          s/"index": "[a-z]+", //' "$1"
}
SCALE_DET_FLAGS=(--nodes=500 --sim_time=5 --seed=7)
"$build/bench/fig_scale_sweep" "${SCALE_DET_FLAGS[@]}" --index=incremental \
    --json="$work/sdet_inc.json" >/dev/null
"$build/bench/fig_scale_sweep" "${SCALE_DET_FLAGS[@]}" --index=rebuild \
    --json="$work/sdet_reb.json" >/dev/null
"$build/bench/fig_scale_sweep" "${SCALE_DET_FLAGS[@]}" --index=scan \
    --json="$work/sdet_scan.json" >/dev/null
for other in sdet_reb sdet_scan; do
  diff <(strip_scale "$work/sdet_inc.json") <(strip_scale "$work/$other.json") >/dev/null || {
    echo "FAIL: scale workload differs between incremental and ${other#sdet_}" >&2
    exit 1
  }
done
echo "  scale workload counters identical across incremental/rebuild/scan" >&2

echo "== scale measurement: 1k and 2k nodes, 10 sim-s, three index modes ==" >&2
"$build/bench/fig_scale_sweep" --nodes=1000,2000 --sim_time=10 \
    --index=incremental --cache_stats=1 --json="$work/scale_inc.json"
"$build/bench/fig_scale_sweep" --nodes=1000,2000 --sim_time=10 \
    --index=rebuild --json="$work/scale_reb.json"
"$build/bench/fig_scale_sweep" --nodes=1000,2000 --sim_time=10 \
    --index=scan --json="$work/scale_scan.json"

echo "== 10k-node completion run (incremental, 50 sim-s, 100 flows) ==" >&2
# Flow count pinned: the AODV discovery floods are O(N) transmissions per
# flood, so flows scaling with N makes the WORKLOAD O(N^2) regardless of
# the index. 100 flows keeps the 10k point a kernel measurement.
"$build/bench/fig_scale_sweep" --nodes=10000 --sim_time=50 --flows=100 \
    --index=incremental --cache_stats=1 --json="$work/scale_10k.json"

python3 - "$work" "$out_json" <<'EOF'
import json, sys
work, out_path = sys.argv[1], sys.argv[2]

def by_nodes(path):
    return {int(rec["nodes"]): rec for rec in json.load(open(path))}

def ratio(b, a):
    return round(b / a, 3) if a else None

inc = by_nodes(f"{work}/scale_inc.json")
reb = by_nodes(f"{work}/scale_reb.json")
scan = by_nodes(f"{work}/scale_scan.json")
ten_k = json.load(open(f"{work}/scale_10k.json"))[0]

speedup = {}
for n in (1000, 2000):
    speedup[f"scale_{n}_incremental_vs_scan"] = ratio(
        scan[n]["wall_seconds"], inc[n]["wall_seconds"])
    speedup[f"scale_{n}_incremental_vs_rebuild"] = ratio(
        reb[n]["wall_seconds"], inc[n]["wall_seconds"])

doc = {
    "description": "PR-9 scale kernel: incremental spatial index (per-radio "
                   "cell migration heap, predicted-position prefilter, "
                   "parked-pair budget cache) measured against the retained "
                   "PR-4 rebuild kernel (--channel_index=rebuild) and the "
                   "full-scan reference (--channel_index=scan) in the same "
                   "build, under random waypoint + multi-hop AODV "
                   "request/response at the paper's density (40 nodes/km^2)",
    "determinism": "fig5/fig5d/fig6/all-pairs artifacts byte-identical "
                   "(timing fields stripped) across "
                   "--channel_index=incremental/rebuild/scan and "
                   "--threads=1/4; fig_scale_sweep workload and AODV "
                   "counters identical across index modes",
    "workload": "fig_scale_sweep: random waypoint (20 m/s max, 5 s pause), "
                "nodes/20 request/response flows at 2 req/s, 10 sim-s per "
                "point; the 10k completion run pins 100 flows because "
                "discovery floods are O(N) transmissions each, making "
                "flows-proportional-to-N an O(N^2) workload by itself",
    "scale_sweep": {
        "incremental": {str(n): inc[n] for n in sorted(inc)},
        "rebuild": {str(n): reb[n] for n in sorted(reb)},
        "scan": {str(n): scan[n] for n in sorted(scan)},
    },
    "ten_k_completion": ten_k,
    "speedup": speedup,
    "speedup_note": "at 1k the PR-4 grid had already removed the O(N) "
                    "receiver scan from the hot path; the shared MAC/PHY/"
                    "AODV delivery work (~36 deliveries per transmission at "
                    "this density) bounds any index-only gain, so the "
                    "vs-rebuild ratio is modest while the vs-scan ratio "
                    "grows with N. The incremental index's decisive wins "
                    "are O(N) memory (rebuild's link cache is O(N^2): "
                    "~2.4 GB at 10k) and the 10k run completing at all.",
}
json.dump(doc, open(out_path, "w"), indent=1)
open(out_path, "a").write("\n")
print(json.dumps({"speedup": speedup,
                  "ten_k_sim_s_per_wall_s": ten_k["sim_s_per_wall_s"]},
                 indent=1))

ok = True
if (speedup["scale_1000_incremental_vs_scan"] or 0) < 5.0:
    print("WARN: 1k incremental-vs-scan speedup below the 5x target — the "
          "shared delivery path dominates at this density; see speedup_note "
          "and DESIGN.md section 4j", file=sys.stderr)
    ok = False
if ten_k.get("sim_s_per_wall_s", 0) <= 0:
    print("WARN: 10k completion run recorded no throughput", file=sys.stderr)
    ok = False
sys.exit(0 if ok else 2)
EOF

echo "wrote $out_json" >&2
