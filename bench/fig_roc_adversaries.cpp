// Adversary zoo v2 scored as ROC curves and time-to-detection — the
// detection-quality harness (no counterpart figure in the paper, which
// reports scalar detection/false-alarm endpoints for solo stationary
// cheats; cf. Cao et al.'s argument in PAPERS.md that online detectors
// must be judged by detection delay).
//
// One simulation per (attacker, trial) — plus a shared honest baseline —
// collects the per-window decision stream; every detection threshold is a
// post-hoc reduction of that stream (detect/roc.hpp), so the threshold
// sweep costs nothing extra. All (point, trial) pairs share the engine's
// work queue and the scoring is serial in a fixed order: output is
// bit-identical for any --threads.
//
// Fabric layout: one cell per attacker. The two honest baselines (gap
// bound off/on) are NOT cells — every shard that scores an attacker needs
// one, so they are memoized in the artifact store ($MANET_ARTIFACTS) as
// serialized decision streams (detect::serialize_baseline): the first
// process to need a baseline simulates it under an advisory lock and the
// rest read the stored blob, so N shards pay for each baseline once.
// Without a store each process computes the baselines it needs locally.
// The scoring consumes the parse_baseline round-trip in EVERY case (also
// serially), so artifacts are bit-identical with or without the store.
//
// The rts_flood points (and their matched honest baseline) enable the
// anchorless RTS-gap bound (MonitorConfig::rts_gap_bound) — without it a
// pure flood completes no exchange and would never produce a single
// window to judge. Timing attackers are scored with the bound off so the
// ROC reflects the Wilcoxon threshold trade-off, not the deterministic
// bound (which also catches ordinary cheats on anchorless retries and
// would flatten every curve).
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "detect/roc.hpp"
#include "detect/sequential.hpp"
#include "exp/artifact_store.hpp"
#include "exp/rate_cache.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Adversary zoo v2: per-attacker ROC curves and time-to-detection.");
  flags.add_name_list("attackers", "pm50,pm90,colluding,adaptive,sybil,rts_flood", "attacker classes scored (honest, pm<percent>, colluding, "
                 "adaptive, sybil, rts_flood)");
  flags.add_double_list("thresholds", "0.0005,0.001,0.005,0.01,0.05,0.1,0.2", "detection thresholds (p-value cutoffs) swept for the ROC; "
                 "0.0005 sits below the ss=10 Wilcoxon floor of 1/2^10");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_double_list("sample_sizes", "10", "Wilcoxon window sizes");
  flags.add_name_list("detectors", "wilcoxon",
                      "statistical tests closing the windows (wilcoxon, "
                      "cusum, sprt); one ROC per detector x sample size — "
                      "sequential scores sweep as p_less = exp(-score)");
  flags.add_double("pm", 80, "cheat strength for colluding/adaptive/sybil");
  flags.add_int("group", 3, "colluding group size / sybil identity count");
  flags.add_double("collude_phase", 2.0, "seconds of one colluder's aggressive turn");
  flags.add_double("probation", 30, "adaptive: honest until this many simulated seconds");
  flags.add_double("vigilance", 0, "adaptive: lie low this long after overhearing the monitor");
  flags.add_double("flood_pps", 1000, "mean bogus-RTS rate of the flooder");
  flags.add_double("sim_time", 120, "simulated seconds per trial");
  flags.add_int("runs", 4, "independent trials per attacker");
  flags.add_int("seed", 601, "base random seed");
  flags.add_double("margin", 0.10, "permissible back-off deficit (fraction of expected mean)");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.add_fabric_flags();
  flags.parse_or_exit(argc, argv);

  const auto attacker_names = flags.get_name_list("attackers");
  const auto thresholds = flags.get_double_list("thresholds");
  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const auto detector_names = flags.get_name_list("detectors");
  const int runs = static_cast<int>(flags.get_int("runs"));
  const double sim_time = flags.get_double("sim_time");
  const double load = flags.get_double("load");
  if (attacker_names.empty() || thresholds.empty() || sample_sizes.empty() ||
      detector_names.empty() || runs <= 0) {
    std::fprintf(stderr,
                 "flag error: need >= 1 attacker, threshold, detector, "
                 "sample size and run\n");
    return 1;
  }
  std::vector<detect::DetectorKind> detectors;
  for (const std::string& name : detector_names) {
    try {
      detectors.push_back(detect::detector_from_name(name));
    } catch (const util::ConfigError& e) {
      std::fprintf(stderr, "flag error: --detectors: %s\n", e.what());
      return 1;
    }
  }

  detect::AttackerTuning tuning;
  tuning.pm = flags.get_double("pm");
  tuning.group =
      static_cast<std::uint32_t>(flags.get_int("group"));
  tuning.collude_phase_s = flags.get_double("collude_phase");
  tuning.probation_s = flags.get_double("probation");
  tuning.vigilance_s = flags.get_double("vigilance");
  tuning.flood_pps = flags.get_double("flood_pps");

  // Resolve every attacker name up front: a typo dies before any sim runs.
  std::vector<detect::AttackerSpec> specs;
  for (const std::string& name : attacker_names) {
    try {
      specs.push_back(detect::attacker_spec_from_name(name, tuning));
    } catch (const util::ConfigError& e) {
      std::fprintf(stderr, "flag error: --attackers: %s\n", e.what());
      return 1;
    }
  }

  bench::print_header(
      "Adversary zoo v2: ROC + time-to-detection per attacker class",
      "colluding/adaptive/sybil attackers trade detectability for delay; an "
      "RTS flood is caught deterministically via the anchorless gap bound");

  net::ScenarioConfig scenario;  // Table-1 grid defaults
  scenario.sim_seconds = sim_time;
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto fabric =
      flags.make_fabric(specs.size(), "fig_roc_adversaries");
  bench::RateCache rates(scenario);
  const double rate_pps = rates.rate_for(load);

  auto make_point = [&](const detect::AttackerSpec& spec, bool gap_bound) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.rate_pps = rate_pps;
    cfg.attacker = spec;
    cfg.pipeline = flags.pipeline();
    cfg.collect_windows = true;
    // Config index (di * |sample_sizes| + si): detector-major, matching
    // the scoring loops below.
    for (detect::DetectorKind kind : detectors) {
      for (double ss : sample_sizes) {
        detect::MonitorConfig m;
        m.sample_size = static_cast<std::size_t>(ss);
        m.margin_fraction = flags.get_double("margin");
        m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // grid, Section 5
        m.fixed_contenders = 20.0;
        m.rts_gap_bound = gap_bound;
        m.detector = kind;
        cfg.monitors.push_back(m);
      }
    }
    return cfg;
  };
  auto uses_gap_bound = [](const detect::AttackerSpec& spec) {
    return spec.kind == detect::AttackerKind::kRtsFlood;
  };

  const auto honest_spec = detect::attacker_spec_from_name("honest", tuning);
  const double warmup_s = make_point(honest_spec, false).warmup_s;

  // Honest baselines, memoized per gap-bound variant. The key folds in
  // everything the baseline's decision stream depends on (the raw flag
  // text is conservative: a re-spelled but equal value re-computes).
  const exp::ArtifactStore store;
  std::optional<std::vector<detect::DetectionResult>> baselines[2];
  const auto honest_baseline =
      [&](bool gap) -> const std::vector<detect::DetectionResult>& {
    auto& slot = baselines[gap ? 1 : 0];
    if (!slot) {
      const std::string key =
          "roc-baseline-v1|" + exp::scenario_fingerprint(scenario) +
          "|sim=" + flags.get("sim_time") + "|load=" + flags.get("load") +
          "|ss=" + flags.get("sample_sizes") +
          "|det=" + flags.get("detectors") + "|margin=" +
          flags.get("margin") + "|runs=" + std::to_string(runs) +
          "|gap=" + (gap ? "1" : "0");
      const std::string blob = store.get_or_compute(key, [&] {
        const auto result = detect::run_multi_detection_trials(
            make_point(honest_spec, gap), runs, engine);
        return detect::serialize_baseline(result.per_config);
      });
      slot = detect::parse_baseline(blob);
    }
    return *slot;
  };

  const auto emit_cell = [&](std::uint64_t cell,
                             const detect::MultiDetectionResult& attack) {
    fabric->begin_cell(cell);
    const auto ai = static_cast<std::size_t>(cell);
    const auto& honest = honest_baseline(uses_gap_bound(specs[ai]));
    for (std::size_t di = 0; di < detectors.size(); ++di) {
    const char* detector = detect::detector_name(detectors[di]);
    for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
      const std::size_t ci = di * sample_sizes.size() + si;
      const detect::RocCurve curve = detect::score_roc_curve(
          attack.per_config[ci], honest[ci], thresholds, warmup_s);

      std::printf("\n## %s (ss=%.0f, %s): AUC = %.4f\n",
                  attacker_names[ai].c_str(), sample_sizes[si], detector,
                  curve.auc);
      std::printf("  %-10s  %-9s  %-9s  %-14s  %s\n", "threshold", "det-rate",
                  "fa-rate", "detected", "median-ttd-s");
      for (const auto& p : curve.points) {
        std::printf("  %-10g  %-9.4f  %-9.4f  %3llu/%-3llu trials  ",
                    p.threshold, p.detection_rate, p.false_alarm_rate,
                    static_cast<unsigned long long>(p.detected_trials),
                    static_cast<unsigned long long>(p.trials));
        if (p.detected_trials > 0) {
          std::printf("%.2f\n", p.median_ttd_s);
        } else {
          std::printf("-\n");
        }
        exp::Record rec;
        rec.add("bench", "fig_roc_adversaries")
            .add("attacker", attacker_names[ai])
            .add("detector", detector)
            .add("sample_size", sample_sizes[si])
            .add("threshold", p.threshold)
            .add("load", load)
            .add("rate_pps", rate_pps)
            .add("runs", runs)
            .add("sim_time_s", sim_time)
            .add("attack_windows", p.attack_windows)
            .add("attack_flagged", p.attack_flagged)
            .add("honest_windows", p.honest_windows)
            .add("honest_flagged", p.honest_flagged)
            .add("detection_rate", p.detection_rate)
            .add("false_alarm_rate", p.false_alarm_rate)
            .add("trials", p.trials)
            .add("detected_trials", p.detected_trials)
            .add("median_ttd_s", p.median_ttd_s)
            .add("mean_ttd_s", p.mean_ttd_s)
            .add("min_ttd_s", p.min_ttd_s)
            .add("max_ttd_s", p.max_ttd_s)
            .add("wall_seconds", attack.wall_seconds)
            .add("threads", engine.threads());
        fabric->record(rec);
      }

      // Summary record per (attacker, sample size): the AUC plus TTD at
      // the reference threshold (the one closest to the paper's 0.01).
      std::size_t ref = 0;
      for (std::size_t ti = 1; ti < curve.points.size(); ++ti) {
        const double cur = curve.points[ti].threshold;
        const double best = curve.points[ref].threshold;
        if (std::abs(cur - 0.01) < std::abs(best - 0.01)) ref = ti;
      }
      const auto& rp = curve.points[ref];
      exp::Record summary;
      summary.add("bench", "fig_roc_adversaries_summary")
          .add("attacker", attacker_names[ai])
          .add("detector", detector)
          .add("sample_size", sample_sizes[si])
          .add("load", load)
          .add("runs", runs)
          .add("sim_time_s", sim_time)
          .add("auc", curve.auc)
          .add("ref_threshold", rp.threshold)
          .add("ref_detection_rate", rp.detection_rate)
          .add("ref_false_alarm_rate", rp.false_alarm_rate)
          .add("ref_detected_trials", rp.detected_trials)
          .add("ref_median_ttd_s", rp.median_ttd_s)
          .add("first_flag_windows", attack.per_config[ci].stats.windows_to_first_flag)
          .add("threads", engine.threads());
      fabric->record(summary);
    }
    }
  };

  double sweep_wall = 0.0;
  fabric->run([&](std::uint64_t first, std::uint64_t last) {
    std::vector<detect::MultiDetectionConfig> chunk;
    chunk.reserve(static_cast<std::size_t>(last - first));
    for (std::uint64_t c = first; c < last; ++c) {
      const auto& spec = specs[static_cast<std::size_t>(c)];
      chunk.push_back(make_point(spec, uses_gap_bound(spec)));
    }

    const auto chunk_start = std::chrono::steady_clock::now();
    const auto results = detect::run_multi_detection_sweep(chunk, runs, engine);
    sweep_wall += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                chunk_start)
                      .count();

    for (std::uint64_t c = first; c < last; ++c) {
      emit_cell(c, results[static_cast<std::size_t>(c - first)]);
    }
  });

  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %llu of %llu cells x %d runs)\n",
              sweep_wall, engine.threads(),
              static_cast<unsigned long long>(fabric->cell_end() - fabric->cell_begin()),
              static_cast<unsigned long long>(specs.size()), runs);
  return 0;
}
