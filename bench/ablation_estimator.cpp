// Ablation: the system-state estimator (Eqs. 1-5) behind the observed
// back-off samples.
//
// For each (load, PM, activity-mapping) it reports the mean expected
// back-off E[x], the mean observed estimate E[y], their ratio (the
// estimator bias that the permissible margin must absorb), the correlation
// between x and y, and the resulting detection/false-alarm rates. This is
// the design-choice study behind DESIGN.md's "per-slot activity
// calibration" decision, and doubles as the tuning harness for
// margin_fraction / alpha. Each (load, PM, mapping) cell is an independent
// simulation; cells fan out across the experiment engine (--threads).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/monitor.hpp"
#include "net/network.hpp"
#include "util/stats.hpp"

using namespace manet;

namespace {

struct Diag {
  double mean_x = 0, mean_y = 0, ratio = 0, corr = 0;
  double flag_rate = 0;
  std::uint64_t windows = 0, samples = 0;
  double wall_seconds = 0;
};

Diag run_once(const net::ScenarioConfig& scenario, double rate, double pm,
              detect::ActivityMapping mapping, std::size_t sample_size) {
  const auto start = std::chrono::steady_clock::now();
  net::Network net(scenario);
  const NodeId s = net.center_node();
  const NodeId r = net.neighbors(s, net.config().prop.tx_range_m, 0).front();

  net.add_flow(s, r, rate);
  net.build_random_flows();
  net.set_flow_rates(rate);
  if (pm > 0) {
    net.mac(s).set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(pm));
  }

  detect::MonitorConfig mc;
  mc.sample_size = sample_size;
  mc.mapping = mapping;
  mc.record_samples = true;
  mc.fixed_n = mc.fixed_k = mc.fixed_m = mc.fixed_j = 5.0;
  mc.fixed_contenders = 20.0;
  const auto monitor_ptr =
      detect::MonitorFactory(net.simulator(), net.mac(r), net.timeline(r))
          .watch(s, mc);
  detect::Monitor& monitor = *monitor_ptr;

  const SimTime stop = seconds_to_time(scenario.sim_seconds);
  net.start_traffic(0, stop);
  net.run_until(stop);

  Diag d;
  std::vector<double> xs, ys;
  for (const auto& rec : monitor.sample_log()) {
    if (!rec.accepted) continue;
    xs.push_back(rec.expected);
    ys.push_back(rec.observed);
  }
  d.samples = xs.size();
  d.windows = monitor.stats().windows;
  d.mean_x = util::mean_of(xs);
  d.mean_y = util::mean_of(ys);
  d.ratio = d.mean_x > 0 ? d.mean_y / d.mean_x : 0;
  d.corr = util::correlation(xs, ys);
  d.flag_rate = monitor.flag_rate();
  d.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return d;
}

struct Cell {
  double load = 0, rate = 0, pm = 0;
  detect::ActivityMapping mapping = detect::ActivityMapping::kPerSlot;
};

}  // namespace

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Ablation: estimator bias and mapping choice.");
  flags.add_double_list("loads", "0.3,0.6,0.9", "target traffic intensities");
  flags.add_double_list("pms", "0,25,50,90", "PM values probed");
  flags.add_double("sim_time", 120, "simulated seconds per point");
  flags.add_int("sample_size", 10, "Wilcoxon window size");
  flags.add_int("seed", 501, "random seed");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Ablation: system-state estimator (activity mapping, bias, correlation)",
      "y tracks x (ratio ~1, positive correlation) under H0; ratio drops with PM");

  net::ScenarioConfig scenario;
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);

  const auto loads = flags.get_double_list("loads");
  const auto pms = flags.get_double_list("pms");
  const std::size_t sample_size =
      static_cast<std::size_t>(flags.get_int("sample_size"));

  const std::vector<double> load_rates = engine.map(
      loads.size(), [&](std::size_t i) { return rates.rate_for(loads[i]); });

  std::vector<Cell> cells;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (double pm : pms) {
      for (auto mapping : {detect::ActivityMapping::kPerSlot,
                           detect::ActivityMapping::kIdentity}) {
        cells.push_back({loads[li], load_rates[li], pm, mapping});
      }
    }
  }

  const std::vector<Diag> diags = engine.map(cells.size(), [&](std::size_t i) {
    const Cell& c = cells[i];
    return run_once(scenario, c.rate, c.pm, c.mapping, sample_size);
  });

  std::printf("  %-6s %-5s %-10s %-8s %-8s %-8s %-7s %-9s %-8s\n", "load", "PM",
              "mapping", "E[x]", "E[y]", "y/x", "corr", "flagrate", "samples");

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const Diag& d = diags[i];
    const char* mapping_name =
        c.mapping == detect::ActivityMapping::kPerSlot ? "per-slot" : "identity";
    std::printf("  %-6.1f %-5.0f %-10s %-8.2f %-8.2f %-8.3f %-7.3f %-9.3f %-8llu\n",
                c.load, c.pm, mapping_name, d.mean_x, d.mean_y, d.ratio, d.corr,
                d.flag_rate, static_cast<unsigned long long>(d.samples));
    std::fflush(stdout);

    exp::Record rec;
    rec.add("bench", "ablation_estimator")
        .add("load", c.load)
        .add("pm", c.pm)
        .add("mapping", mapping_name)
        .add("rate_pps", c.rate)
        .add("sim_time_s", flags.get_double("sim_time"))
        .add("mean_expected", d.mean_x)
        .add("mean_observed", d.mean_y)
        .add("bias_ratio", d.ratio)
        .add("correlation", d.corr)
        .add("flag_rate", d.flag_rate)
        .add("windows", d.windows)
        .add("samples", d.samples)
        .add("wall_seconds", d.wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  sink->flush();
  return 0;
}
