// Figure 3: conditional channel-state probabilities, Poisson traffic on the
// 7x8 grid. (a) p(S busy | R idle) and (b) p(S idle | R busy), analysis vs
// simulation, against traffic intensity.
//
// The bench sweeps the per-flow rate, measures the resulting traffic
// intensity rho at the monitor (the paper's x axis), the ground-truth
// conditional probabilities of the center S-R pair, and the analytical
// values from the system-state model fed with the measured rho. Sweep
// points run concurrently across the experiment engine (--threads).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 3(a)/(b): p(S busy | R idle) and p(S idle | R busy),"
                       " Poisson traffic, grid topology.");
  flags.add_double("measure_time", 40, "seconds measured per point");
  flags.add_double("warmup", 3, "warm-up seconds per point");
  flags.add_int("seed", 1, "base random seed");
  flags.add_double_list("rates", "2,4,7,11,16,24,40,70,120", "per-flow packet rates swept (pkt/s)");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Figure 3: conditional probabilities (Poisson, grid)",
      "p(B|I) grows with traffic intensity, p(I|B) shrinks; analysis tracks simulation");

  const auto rates = flags.get_double_list("rates");
  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();

  std::vector<detect::CondProbConfig> points;
  for (double rate : rates) {
    detect::CondProbConfig cfg;
    cfg.scenario.traffic = net::TrafficKind::kPoisson;   // Fig. 3 setting
    cfg.scenario.topology = net::TopologyKind::kGrid;
    cfg.scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.rate_pps = rate;
    cfg.warmup_s = flags.get_double("warmup");
    cfg.measure_s = flags.get_double("measure_time");
    cfg.monitor.fixed_n = cfg.monitor.fixed_k = 5.0;  // paper Section 5
    cfg.monitor.fixed_m = cfg.monitor.fixed_j = 5.0;
    cfg.monitor.fixed_contenders = 20.0;
    points.push_back(cfg);
  }

  const auto results = detect::run_cond_prob_sweep(points, engine);

  std::printf("  %-6s %-10s %-12s %-12s %-12s %-12s\n", "rate", "intensity",
              "sim p(B|I)", "ana p(B|I)", "sim p(I|B)", "ana p(I|B)");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const detect::CondProbResult& r = results[i];
    std::printf("  %-6.0f %-10.3f %-12.4f %-12.4f %-12.4f %-12.4f\n", rates[i],
                r.measured_rho, r.sim_p_busy_given_idle, r.ana_p_busy_given_idle,
                r.sim_p_idle_given_busy, r.ana_p_idle_given_busy);

    exp::Record rec;
    rec.add("bench", "fig3_cond_prob_grid")
        .add("rate_pps", rates[i])
        .add("measure_time_s", flags.get_double("measure_time"))
        .add("intensity", r.measured_rho)
        .add("sim_p_busy_given_idle", r.sim_p_busy_given_idle)
        .add("ana_p_busy_given_idle", r.ana_p_busy_given_idle)
        .add("sim_p_idle_given_busy", r.sim_p_idle_given_busy)
        .add("ana_p_idle_given_busy", r.ana_p_idle_given_busy)
        .add("wall_seconds", r.wall_seconds)
        .add("threads", engine.threads());
    sink->record(rec);
  }
  sink->flush();
  return 0;
}
