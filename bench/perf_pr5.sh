#!/usr/bin/env bash
# Measurement flow for the PR-5 detection-pipeline optimizations (shared
# per-node ObservationHub, allocation-free Wilcoxon, window-accounting
# memo). Unlike perf_pr4.sh the baseline lives in the SAME build: every
# detection bench takes --monitor_impl={hub,reference} (reference = a
# private hub per monitor, structurally the pre-hub pipeline) and
# micro_wilcoxon carries *_Reference twins of the exact/approx benchmarks
# (the pre-PR allocating implementation kept verbatim).
#
# Writes one BENCH_PR5.json capturing:
#   * all-pairs monitoring sweep wall-clock, hub vs reference (the
#     headline: >=2x on 48 monitors),
#   * micro_monitor latencies for the same workload in microbenchmark form,
#   * micro_wilcoxon exact/approx latencies vs their reference twins
#     (>=1.5x on the exact path),
# plus the computed speedups.
#
# It also enforces the determinism contract: the fig5 / fig3 / fig6 /
# all-pairs artifacts must be byte-identical (timing fields stripped)
# across --threads=1 / --threads=4 AND across --monitor_impl=hub /
# reference. Any behavioral difference fails the script.
#
# Usage:
#   bench/perf_pr5.sh [build_dir] [output_json]
#
# The build dir should use the `bench` preset (Release, -O3, IPO):
#   cmake --preset bench && cmake --build --preset bench -j
set -euo pipefail
cd "$(dirname "$0")/.."

build=${1:-build-bench}
out_json=${2:-BENCH_PR5.json}

for b in fig_allpairs_monitoring fig5_detection_static fig3_cond_prob_grid \
         fig6_misdiagnosis_static micro_monitor micro_wilcoxon; do
  [[ -x "$build/bench/$b" ]] || { echo "error: $build/bench/$b not built" >&2; exit 1; }
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
# One shared rate cache: both impls must calibrate identically anyway (the
# calibration runs are themselves part of the determinism claim, and the
# reference side re-reads what the hub side wrote only after the first
# diff below has proven the artifacts identical).
export MANET_RATE_CACHE="$work/rates"

ALLPAIRS_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=60 --runs=2)
FIG5_FLAGS=(--loads=0.6 --pms=0,50 --sim_time=20 --runs=2)
FIG6_FLAGS=(--loads=0.6 --sample_sizes=10,25 --sim_time=20 --runs=2)
FIG3_FLAGS=(--rates=10,40 --measure_time=5)

echo "== determinism + wall-clock: all-pairs / fig5 / fig6 (hub vs reference, 1 vs 4 threads) ==" >&2
run_det() {  # $1 bench, $2 label, then flags...
  local bench=$1 label=$2; shift 2
  "$build/bench/$bench" "$@" --json="$work/$label.json" >/dev/null
}
run_det fig_allpairs_monitoring ap_hub_t1 "${ALLPAIRS_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig_allpairs_monitoring ap_hub_t4 "${ALLPAIRS_FLAGS[@]}" --threads=4 --monitor_impl=hub
run_det fig_allpairs_monitoring ap_ref_t1 "${ALLPAIRS_FLAGS[@]}" --threads=1 --monitor_impl=reference
run_det fig5_detection_static fig5_hub_t1 "${FIG5_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig5_detection_static fig5_hub_t4 "${FIG5_FLAGS[@]}" --threads=4 --monitor_impl=hub
run_det fig5_detection_static fig5_ref_t1 "${FIG5_FLAGS[@]}" --threads=1 --monitor_impl=reference
run_det fig6_misdiagnosis_static fig6_hub_t1 "${FIG6_FLAGS[@]}" --threads=1 --monitor_impl=hub
run_det fig6_misdiagnosis_static fig6_hub_t4 "${FIG6_FLAGS[@]}" --threads=4 --monitor_impl=hub
run_det fig6_misdiagnosis_static fig6_ref_t1 "${FIG6_FLAGS[@]}" --threads=1 --monitor_impl=reference
run_det fig3_cond_prob_grid fig3_t1 "${FIG3_FLAGS[@]}" --threads=1
run_det fig3_cond_prob_grid fig3_t4 "${FIG3_FLAGS[@]}" --threads=4

strip_timing() {  # wall-clock and thread count are the only fields allowed to differ
  sed -E 's/, "wall_seconds": [^,}]+//; s/, "threads": [0-9]+//' "$1"
}
check_same() {  # $1/$2 labels, $3 description
  diff <(strip_timing "$work/$1.json") <(strip_timing "$work/$2.json") >/dev/null || {
    echo "FAIL: $3 — results differ, optimization changed behavior" >&2
    exit 1
  }
}
check_same ap_hub_t1 ap_hub_t4 "all-pairs hub threads 1 vs 4"
check_same ap_hub_t1 ap_ref_t1 "all-pairs hub vs reference"
check_same fig5_hub_t1 fig5_hub_t4 "fig5 hub threads 1 vs 4"
check_same fig5_hub_t1 fig5_ref_t1 "fig5 hub vs reference"
check_same fig6_hub_t1 fig6_hub_t4 "fig6 hub threads 1 vs 4"
check_same fig6_hub_t1 fig6_ref_t1 "fig6 hub vs reference"
check_same fig3_t1 fig3_t4 "fig3 threads 1 vs 4"
echo "determinism: all-pairs/fig5/fig6 identical across impls and thread counts; fig3 across thread counts" >&2

echo "== micro benches ==" >&2
"$build/bench/micro_monitor" --benchmark_format=json \
    >"$work/micro_monitor.json" 2>/dev/null
"$build/bench/micro_wilcoxon" --benchmark_format=json \
    >"$work/micro_wilcoxon.json" 2>/dev/null

python3 - "$work" "$out_json" <<'EOF'
import json, sys
work, out_path = sys.argv[1], sys.argv[2]

def sweep_wall(path):
    """Total wall_seconds across sweep points (one value per point)."""
    points = {}
    for rec in json.load(open(path)):
        points[(rec["load"], rec["pm"])] = rec["wall_seconds"]
    return sum(points.values())

def micro(path):
    return {b["name"]: b["real_time"]
            for b in json.load(open(path))["benchmarks"]}

def ratio(b, a):
    return round(b / a, 3) if a else None

allpairs = {
    "hub_wall_s_threads1": sweep_wall(f"{work}/ap_hub_t1.json"),
    "reference_wall_s_threads1": sweep_wall(f"{work}/ap_ref_t1.json"),
}
fig5 = {
    "hub_wall_s_threads1": sweep_wall(f"{work}/fig5_hub_t1.json"),
    "reference_wall_s_threads1": sweep_wall(f"{work}/fig5_ref_t1.json"),
}
monitor = micro(f"{work}/micro_monitor.json")
wilcoxon = micro(f"{work}/micro_wilcoxon.json")

speedup = {
    "allpairs_sweep_hub_vs_reference": ratio(
        allpairs["reference_wall_s_threads1"], allpairs["hub_wall_s_threads1"]),
    "fig5_sweep_hub_vs_reference": ratio(
        fig5["reference_wall_s_threads1"], fig5["hub_wall_s_threads1"]),
}
for name, t in monitor.items():
    if "Reference" in name:
        continue
    ref = monitor.get(name.replace("Hub", "Reference"))
    if ref:
        speedup[name] = ratio(ref, t)
for name, t in wilcoxon.items():
    if "Reference" in name:
        continue
    base, _, arg = name.partition("/")
    ref = wilcoxon.get(f"{base}Reference/{arg}" if arg else f"{base}Reference")
    if ref:
        speedup[name] = ratio(ref, t)

doc = {
    "description": "PR-5 detection-pipeline optimizations: shared per-node "
                   "observation hub + window-accounting memo + "
                   "allocation-free Wilcoxon, measured against the pre-PR "
                   "pipeline (--monitor_impl=reference, *_Reference "
                   "benchmarks) in the same build",
    "determinism": "all-pairs/fig5/fig6 sweep artifacts byte-identical "
                   "(timing fields stripped) across --monitor_impl=hub/"
                   "reference and --threads=1/4; fig3 across --threads=1/4",
    "workload": "all-pairs: dense 3x3 grid, 4 monitoring nodes x 12 monitor "
                "configs = 48 monitors per simulation",
    "allpairs_sweep": allpairs,
    "fig5_sweep": fig5,
    "micro_monitor_ms": {k: round(v, 3) for k, v in monitor.items()},
    "micro_wilcoxon_ns": {k: round(v, 1) for k, v in wilcoxon.items()},
    "speedup": speedup,
}
json.dump(doc, open(out_path, "w"), indent=1)
open(out_path, "a").write("\n")
print(json.dumps(speedup, indent=1))

hub48 = speedup.get("BM_AllPairsMonitoringHub/12")
exact = [v for k, v in speedup.items() if k.startswith("BM_WilcoxonExact/")]
ok = True
if speedup["allpairs_sweep_hub_vs_reference"] < 2.0 and (hub48 or 0) < 2.0:
    print("WARN: all-pairs speedup below the 2x target", file=sys.stderr)
    ok = False
if exact and min(exact) < 1.5:
    print("WARN: exact Wilcoxon speedup below the 1.5x target", file=sys.stderr)
    ok = False
sys.exit(0 if ok else 2)
EOF

echo "wrote $out_json" >&2
