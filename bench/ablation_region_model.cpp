// Ablation: sensitivity to the assumed region node counts (n, k, m, j).
//
// The paper (footnote 8) reports that higher values of n and k "do not play
// a significant role in the computation of the necessary probabilities".
// This bench re-runs the detection experiment with monitors that assume
// different fixed counts, all watching the same channel history, and
// reports how detection and false-alarm rates move. The two halves run
// concurrently across the experiment engine (--threads).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Ablation: sensitivity to assumed region node counts "
                       "(paper footnote 8).");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_double_list("counts", "2,5,10,20", "assumed n=k=m=j values");
  flags.add_double("pm", 50, "PM for the detection half of the study");
  flags.add_double("sim_time", 180, "simulated seconds per run");
  flags.add_int("sample_size", 10, "Wilcoxon window size");
  flags.add_int("runs", 1, "independent runs per point (consecutive seeds)");
  flags.add_int("seed", 601, "base random seed");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Ablation: region node-count sensitivity",
      "n, k do not play a significant role (footnote 8): rates move little "
      "across assumed counts");

  net::ScenarioConfig scenario;
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(flags.get_double("load"));
  const auto counts = flags.get_double_list("counts");
  const int runs = static_cast<int>(flags.get_int("runs"));

  const std::vector<double> pms = {flags.get_double("pm"), 0.0};
  std::vector<detect::MultiDetectionConfig> points;
  for (double pm : pms) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.rate_pps = rate;
    cfg.pm = pm;
    for (double c : counts) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(flags.get_int("sample_size"));
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = c;
      m.fixed_contenders = 20.0;
      cfg.monitors.push_back(m);
    }
    points.push_back(cfg);
  }

  const auto results = detect::run_multi_detection_sweep(points, runs, engine);

  for (std::size_t pi = 0; pi < pms.size(); ++pi) {
    const double pm = pms[pi];
    const auto& result = results[pi];
    std::printf("\n## PM = %.0f (%s)\n", pm,
                pm > 0 ? "detection rate" : "false-alarm rate");
    std::printf("  %-12s %-9s %-9s\n", "assumed n=k", "windows", "rate");
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const auto& r = result.per_config[i];
      std::printf("  %-12.0f %-9llu %-9.3f\n", counts[i],
                  static_cast<unsigned long long>(r.windows), r.detection_rate);

      exp::Record rec;
      rec.add("bench", "ablation_region_model")
          .add("pm", pm)
          .add("assumed_count", counts[i])
          .add("load", flags.get_double("load"))
          .add("rate_pps", rate)
          .add("runs", runs)
          .add("sim_time_s", flags.get_double("sim_time"))
          .add("windows", r.windows)
          .add("flagged", r.flagged)
          .add("rate", r.detection_rate)
          .add("wall_seconds", result.wall_seconds)
          .add("threads", engine.threads());
      sink->record(rec);
    }
    std::fflush(stdout);
  }
  sink->flush();
  return 0;
}
