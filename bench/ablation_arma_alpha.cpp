// Ablation: sensitivity to the ARMA smoothing constant alpha (Eq. 6).
//
// The paper: "we find that our results are not very sensitive to the value
// of alpha, as long as alpha is close to 1." Monitors with different alpha
// watch the same run; detection (PM=50) and false-alarm (PM=0) rates are
// reported per alpha. The two halves run concurrently across the
// experiment engine (--threads).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Ablation: ARMA alpha sensitivity (Eq. 6).");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_double_list("alphas", "0.9,0.99,0.995,0.999", "ARMA alphas probed");
  flags.add_double("pm", 50, "PM for the detection half of the study");
  flags.add_double("sim_time", 180, "simulated seconds per run");
  flags.add_int("sample_size", 10, "Wilcoxon window size");
  flags.add_int("runs", 1, "independent runs per point (consecutive seeds)");
  flags.add_int("seed", 701, "base random seed");
  flags.add_engine_flags();
  flags.parse_or_exit(argc, argv);

  bench::print_header(
      "Ablation: ARMA smoothing constant",
      "results insensitive to alpha near 1 (paper uses 0.995)");

  net::ScenarioConfig scenario;
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(flags.get_double("load"));
  const auto alphas = flags.get_double_list("alphas");
  const int runs = static_cast<int>(flags.get_int("runs"));

  const std::vector<double> pms = {flags.get_double("pm"), 0.0};
  std::vector<detect::MultiDetectionConfig> points;
  for (double pm : pms) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.rate_pps = rate;
    cfg.pm = pm;
    for (double a : alphas) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(flags.get_int("sample_size"));
      m.arma_alpha = a;
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
      m.fixed_contenders = 20.0;
      cfg.monitors.push_back(m);
    }
    points.push_back(cfg);
  }

  const auto results = detect::run_multi_detection_sweep(points, runs, engine);

  for (std::size_t pi = 0; pi < pms.size(); ++pi) {
    const double pm = pms[pi];
    const auto& result = results[pi];
    std::printf("\n## PM = %.0f (%s)\n", pm,
                pm > 0 ? "detection rate" : "false-alarm rate");
    std::printf("  %-8s %-9s %-9s\n", "alpha", "windows", "rate");
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      const auto& r = result.per_config[i];
      std::printf("  %-8.3f %-9llu %-9.3f\n", alphas[i],
                  static_cast<unsigned long long>(r.windows), r.detection_rate);

      exp::Record rec;
      rec.add("bench", "ablation_arma_alpha")
          .add("pm", pm)
          .add("arma_alpha", alphas[i])
          .add("load", flags.get_double("load"))
          .add("rate_pps", rate)
          .add("runs", runs)
          .add("sim_time_s", flags.get_double("sim_time"))
          .add("windows", r.windows)
          .add("flagged", r.flagged)
          .add("rate", r.detection_rate)
          .add("wall_seconds", result.wall_seconds)
          .add("threads", engine.threads());
      sink->record(rec);
    }
    std::fflush(stdout);
  }
  sink->flush();
  return 0;
}
