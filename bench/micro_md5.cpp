// Microbenchmark: MD5 throughput. Every RTS carries an MD5 digest of the
// upcoming DATA frame, so the hash sits on the per-packet send path.
#include <benchmark/benchmark.h>

#include <string>

#include "crypto/md5.hpp"
#include "mac/frame.hpp"

namespace {

void BM_Md5(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(manet::crypto::Md5::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536);

void BM_PayloadDigest(benchmark::State& state) {
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manet::mac::payload_digest(7, ++id, 512));
  }
}
BENCHMARK(BM_PayloadDigest);

}  // namespace

BENCHMARK_MAIN();
