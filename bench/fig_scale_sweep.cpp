// Scale sweep: event-kernel throughput (simulated seconds per wall-clock
// second) vs node count, under random-waypoint mobility and a multi-hop
// AODV request/response workload at the paper's node density.
//
// This is the tentpole benchmark for the incremental spatial index: the
// --index flag pins the channel's receiver-lookup path, so
//   --index=rebuild   measures the retained pre-PR-9 kernel (per-move grid
//                     rebuilds + O(N^2) link cache), and
//   --index=incremental (or auto) measures the bounded-memory incremental
//                     index. Workload results are byte-identical across
//                     modes — only the wall clock moves.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "exp/sink.hpp"
#include "net/scale.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Scale sweep: simulated seconds per wall second vs node count "
      "(random waypoint + multi-hop AODV request/response).");
  flags.add_double_list("nodes", "250,500,1000,2000", "node counts swept");
  flags.add_string("index", "auto",
                   "channel receiver lookup: auto | incremental | rebuild | scan");
  flags.add_double("sim_time", 10, "simulated seconds per point");
  flags.add_int("flows", 0, "request flows (0 = nodes/20)");
  flags.add_double("rate", 2, "requests per second per flow");
  flags.add_double("pause", 5, "random waypoint pause time (s)");
  flags.add_double("max_speed", 20, "random waypoint max speed (m/s)");
  flags.add_int("seed", 1, "base random seed");
  flags.add_int("cache_stats", 0,
                "1 = print + record channel index/cache statistics");
  flags.add_json_flag();
  flags.parse_or_exit(argc, argv);

  const auto node_counts = flags.get_double_list("nodes");
  const std::string index = flags.get("index");
  const bool cache_stats = flags.get_int("cache_stats") != 0;
  try {
    phy::Channel::parse_index_mode(index);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flag error: --index: %s\n", e.what());
    return 1;
  }

  bench::print_header(
      "Scale sweep: kernel throughput vs node count",
      "incremental spatial indexing keeps thousand-node mobile simulations "
      "tractable without changing any delivery or fault decision");

  const auto sink = flags.make_sink();
  std::printf(
      "  %-7s %-12s %9s %9s %11s %9s %9s %9s\n", "nodes", "index", "sim_s",
      "wall_s", "sim_s/wall", "requests", "delivered", "responses");

  for (double nodes_d : node_counts) {
    net::ScaleScenarioParams params;
    params.nodes = static_cast<std::size_t>(nodes_d);
    params.sim_seconds = flags.get_double("sim_time");
    params.num_flows = static_cast<std::size_t>(flags.get_int("flows"));
    params.packets_per_second = flags.get_double("rate");
    params.pause_s = flags.get_double("pause");
    params.max_speed_mps = flags.get_double("max_speed");
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    params.channel_index = index;

    const auto config = net::make_scale_config(params);
    const auto start = std::chrono::steady_clock::now();
    net::Network net(config);
    net::ScaleWorkload workload(net, config.num_flows,
                                config.packets_per_second, config.seed);
    workload.start(kSecond, seconds_to_time(config.sim_seconds));
    net.run_until(seconds_to_time(config.sim_seconds));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const auto stats = workload.stats();
    const double ratio = wall > 0.0 ? config.sim_seconds / wall : 0.0;
    std::printf("  %-7zu %-12s %9.1f %9.2f %11.1f %9llu %9llu %9llu\n",
                params.nodes, index.c_str(), config.sim_seconds, wall, ratio,
                static_cast<unsigned long long>(stats.requests_generated),
                static_cast<unsigned long long>(stats.requests_delivered),
                static_cast<unsigned long long>(stats.responses_delivered));
    std::fflush(stdout);

    net::AodvStats aodv;
    for (NodeId i = 0; i < net.size(); ++i) {
      const auto& rs = net.router(i)->stats();
      aodv.originated += rs.originated;
      aodv.delivered += rs.delivered;
      aodv.forwarded += rs.forwarded;
      aodv.rreq_sent += rs.rreq_sent;
      aodv.rrep_sent += rs.rrep_sent;
      aodv.rerr_sent += rs.rerr_sent;
      aodv.discovery_failures += rs.discovery_failures;
    }
    const auto& cs = net.channel().cache_stats();
    if (cache_stats) {
      std::printf(
          "          aodv: rreq=%llu rrep=%llu rerr=%llu forwarded=%llu "
          "discovery_failures=%llu\n",
          static_cast<unsigned long long>(aodv.rreq_sent),
          static_cast<unsigned long long>(aodv.rrep_sent),
          static_cast<unsigned long long>(aodv.rerr_sent),
          static_cast<unsigned long long>(aodv.forwarded),
          static_cast<unsigned long long>(aodv.discovery_failures));
      std::printf(
          "          rebuilds=%llu scans=%llu migrations=%llu checks=%llu "
          "budget_hit=%.3f avg_candidates=%.1f "
          "prefiltered=%llu index_mem=%zuB\n",
          static_cast<unsigned long long>(cs.grid_rebuilds),
          static_cast<unsigned long long>(cs.full_scans),
          static_cast<unsigned long long>(cs.cell_migrations),
          static_cast<unsigned long long>(cs.migration_checks),
          cs.link_budget_hits + cs.link_budget_misses == 0
              ? 0.0
              : static_cast<double>(cs.link_budget_hits) /
                    static_cast<double>(cs.link_budget_hits + cs.link_budget_misses),
          cs.candidate_sets == 0 ? 0.0
                                 : static_cast<double>(cs.candidates_seen) /
                                       static_cast<double>(cs.candidate_sets),
          static_cast<unsigned long long>(cs.prefilter_rejects),
          net.channel().index_memory_bytes());
    }

    exp::Record rec;
    rec.add("bench", "fig_scale_sweep")
        .add("nodes", static_cast<std::uint64_t>(params.nodes))
        .add("index", index)
        .add("sim_time_s", config.sim_seconds)
        .add("wall_seconds", wall)
        .add("sim_s_per_wall_s", ratio)
        .add("flows", static_cast<std::uint64_t>(config.num_flows))
        .add("requests_generated", stats.requests_generated)
        .add("requests_delivered", stats.requests_delivered)
        .add("responses_sent", stats.responses_sent)
        .add("responses_delivered", stats.responses_delivered)
        .add("rreq_sent", aodv.rreq_sent)
        .add("rrep_sent", aodv.rrep_sent)
        .add("rerr_sent", aodv.rerr_sent)
        .add("forwarded", aodv.forwarded);
    if (cache_stats) {
      // Timing-free internals: recorded only on request so default JSON
      // stays diffable across index modes (the identity check in
      // perf_pr9.sh strips wall fields but compares everything else).
      rec.add("grid_rebuilds", cs.grid_rebuilds)
          .add("full_scans", cs.full_scans)
          .add("cell_migrations", cs.cell_migrations)
          .add("migration_checks", cs.migration_checks)
          .add("link_budget_hits", cs.link_budget_hits)
          .add("link_budget_misses", cs.link_budget_misses)
          .add("prefilter_rejects", cs.prefilter_rejects)
          .add("candidate_sets", cs.candidate_sets)
          .add("candidates_seen", cs.candidates_seen)
          .add("index_memory_bytes",
               static_cast<std::uint64_t>(net.channel().index_memory_bytes()));
    }
    sink->record(rec);
  }
  sink->flush();
  return 0;
}
