// Figure 6(a): probability of misdiagnosis (false alarm) vs sample size on
// the static grid, loads {0.3, 0.6, 0.9}. All nodes — including the tagged
// one — are well behaved; every flagged window is a false alarm.
//
// Rare-event measurement: the paper averages 10,000 runs. We aggregate
// windows across long runs and several seeds and report Wilson 95% upper
// bounds alongside the point estimates. Loads x runs fan out across the
// experiment engine (--threads).
//
// Runs on the experiment fabric (exp/fabric.hpp): cells are the honest
// loads followed by the (load, attacker) honest-phase rows, so --shard
// slices the sweep and --columnar/--checkpoint provide the binary
// artifact and crash-safe resume.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/roc.hpp"
#include "util/stats.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 6(a): probability of misdiagnosis vs sample "
                       "size, static grid.");
  flags.add_double_list("loads", "0.3,0.6,0.9", "target traffic intensities");
  flags.add_double_list("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  flags.add_double("sim_time", 300, "simulated seconds per run");
  flags.add_int("runs", 4, "independent runs per load (consecutive seeds)");
  flags.add_int("seed", 301, "base random seed");
  flags.add_double("alpha", 0.01, "significance level");
  flags.add_double("margin", 0.10, "permissible deficit fraction");
  flags.add_name_list("attackers", "", "extra honest-phase rows: run the identity machinery of "
                 "colluding/adaptive/sybil attackers with the timing cheat "
                 "disabled, so every flag is still a false alarm (empty "
                 "keeps the paper rows byte-identical)");
  flags.add_string("channel_index", "auto",
                   "channel receiver lookup: auto | incremental | rebuild | scan");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.add_fabric_flags();
  flags.parse_or_exit(argc, argv);

  const auto loads = flags.get_double_list("loads");
  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const int runs = static_cast<int>(flags.get_int("runs"));
  const double sim_time = flags.get_double("sim_time");
  const auto attacker_names = flags.get_name_list("attackers");

  // Honest-phase adversary rows: the identity-layer machinery (group
  // membership, alias rotation, probation logic) runs, but the back-off
  // timing stays protocol-compliant — colluding/sybil at PM 0, adaptive
  // with probation past the horizon. Any flagged window is a false alarm
  // charged to the machinery itself (e.g. per-alias window accounting).
  // Timing attackers (pm<percent>, rts_flood) have no honest phase and are
  // rejected.
  detect::AttackerTuning tuning;
  tuning.pm = 0.0;
  tuning.probation_s = sim_time + 1.0;
  std::vector<detect::AttackerSpec> attacker_specs;
  for (const std::string& name : attacker_names) {
    detect::AttackerSpec spec;
    try {
      spec = detect::attacker_spec_from_name(name, tuning);
    } catch (const util::ConfigError& e) {
      std::fprintf(stderr, "flag error: --attackers: %s\n", e.what());
      return 1;
    }
    if (spec.kind != detect::AttackerKind::kColluding &&
        spec.kind != detect::AttackerKind::kAdaptive &&
        spec.kind != detect::AttackerKind::kSybil) {
      std::fprintf(stderr,
                   "flag error: --attackers: '%s' has no honest phase "
                   "(use colluding, adaptive or sybil)\n",
                   name.c_str());
      return 1;
    }
    attacker_specs.push_back(spec);
  }

  bench::print_header(
      "Figure 6(a): probability of misdiagnosis, static grid",
      "below 0.01 at sample size 10 and decreasing with sample size; higher "
      "at lower loads");

  net::ScenarioConfig scenario;
  scenario.sim_seconds = sim_time;
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  scenario.channel_index = flags.get("channel_index");

  exp::Engine engine = flags.make_engine();
  bench::RateCache rates(scenario);

  // Cell layout: one honest cell per load, then one cell per
  // (load, attacker) honest-phase row, load-major.
  const auto honest_cells = static_cast<std::uint64_t>(loads.size());
  const std::uint64_t total_cells =
      honest_cells + static_cast<std::uint64_t>(loads.size()) * attacker_specs.size();
  const auto fabric = flags.make_fabric(total_cells, "fig6_misdiagnosis_static");

  const std::vector<double> load_rates =
      engine.map(loads.size(), [&](std::size_t i) { return rates.rate_for(loads[i]); });

  const auto build_point = [&](std::uint64_t cell) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.pipeline = flags.pipeline();
    cfg.pm = 0.0;  // everyone is honest
    bool attacker_row = cell >= honest_cells;
    std::size_t li;
    if (!attacker_row) {
      li = static_cast<std::size_t>(cell);
    } else {
      const std::uint64_t e = cell - honest_cells;
      li = static_cast<std::size_t>(e / attacker_specs.size());
      cfg.attacker = attacker_specs[e % attacker_specs.size()];
    }
    cfg.rate_pps = load_rates[li];
    for (double ss : sample_sizes) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(ss);
      m.alpha = flags.get_double("alpha");
      m.margin_fraction = flags.get_double("margin");
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
      m.fixed_contenders = 20.0;
      m.rts_gap_bound = attacker_row;
      cfg.monitors.push_back(m);
    }
    return cfg;
  };

  bool honest_header = false;
  bool extra_header = false;
  const auto emit_cell = [&](std::uint64_t cell,
                             const detect::MultiDetectionResult& result) {
    fabric->begin_cell(cell);
    if (cell < honest_cells) {
      const auto li = static_cast<std::size_t>(cell);
      if (!honest_header) {
        honest_header = true;
        std::printf("  %-6s %-6s %-9s %-9s %-12s %-10s\n", "load", "ss",
                    "windows", "flagged", "P(misdiag)", "95%% upper");
      }
      for (std::size_t i = 0; i < sample_sizes.size(); ++i) {
        const auto& r = result.per_config[i];
        util::ProportionEstimator p;
        for (std::uint64_t w = 0; w < r.windows; ++w) p.add(w < r.flagged);
        std::printf("  %-6.1f %-6.0f %-9llu %-9llu %-12.4f %-10.4f\n", loads[li],
                    sample_sizes[i], static_cast<unsigned long long>(r.windows),
                    static_cast<unsigned long long>(r.flagged), r.detection_rate,
                    p.wilson_upper());
        std::fflush(stdout);

        exp::Record rec;
        rec.add("bench", "fig6_misdiagnosis_static")
            .add("load", loads[li])
            .add("sample_size", sample_sizes[i])
            .add("rate_pps", load_rates[li])
            .add("runs", runs)
            .add("sim_time_s", sim_time)
            .add("windows", r.windows)
            .add("flagged", r.flagged)
            .add("misdiagnosis_rate", r.detection_rate)
            .add("wilson_upper_95", p.wilson_upper())
            .add("intensity", result.measured_rho)
            .add("wall_seconds", result.wall_seconds)
            .add("threads", engine.threads());
        fabric->record(rec);
      }
    } else {
      const std::uint64_t e = cell - honest_cells;
      const auto li = static_cast<std::size_t>(e / attacker_specs.size());
      const std::string& name = attacker_names[e % attacker_specs.size()];
      if (!extra_header) {
        extra_header = true;
        std::printf("\n  %-6s %-10s %-6s %-9s %-9s %-12s %-10s\n", "load",
                    "attacker", "ss", "windows", "flagged", "P(misdiag)",
                    "95%% upper");
      }
      for (std::size_t i = 0; i < sample_sizes.size(); ++i) {
        const auto& r = result.per_config[i];
        util::ProportionEstimator p;
        for (std::uint64_t w = 0; w < r.windows; ++w) p.add(w < r.flagged);
        std::printf("  %-6.1f %-10s %-6.0f %-9llu %-9llu %-12.4f %-10.4f\n",
                    loads[li], name.c_str(), sample_sizes[i],
                    static_cast<unsigned long long>(r.windows),
                    static_cast<unsigned long long>(r.flagged),
                    r.detection_rate, p.wilson_upper());
        std::fflush(stdout);

        exp::Record rec;
        rec.add("bench", "fig6_misdiagnosis_static")
            .add("attacker", name)
            .add("load", loads[li])
            .add("sample_size", sample_sizes[i])
            .add("rate_pps", load_rates[li])
            .add("runs", runs)
            .add("sim_time_s", sim_time)
            .add("windows", r.windows)
            .add("flagged", r.flagged)
            .add("misdiagnosis_rate", r.detection_rate)
            .add("wilson_upper_95", p.wilson_upper())
            .add("intensity", result.measured_rho)
            .add("wall_seconds", result.wall_seconds)
            .add("threads", engine.threads());
        fabric->record(rec);
      }
    }
  };

  double sweep_wall = 0.0;
  fabric->run([&](std::uint64_t first, std::uint64_t last) {
    std::vector<detect::MultiDetectionConfig> chunk;
    chunk.reserve(static_cast<std::size_t>(last - first));
    for (std::uint64_t c = first; c < last; ++c) chunk.push_back(build_point(c));

    const auto chunk_start = std::chrono::steady_clock::now();
    const auto results = detect::run_multi_detection_sweep(chunk, runs, engine);
    sweep_wall += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                chunk_start)
                      .count();

    for (std::uint64_t c = first; c < last; ++c) {
      emit_cell(c, results[static_cast<std::size_t>(c - first)]);
    }
  });

  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %llu of %llu cells x %d runs)\n",
              sweep_wall, engine.threads(),
              static_cast<unsigned long long>(fabric->cell_end() - fabric->cell_begin()),
              static_cast<unsigned long long>(total_cells), runs);
  return 0;
}
