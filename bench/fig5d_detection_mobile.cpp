// Figure 5(d): probability of correct diagnosis vs PM under mobility
// (random waypoint, 0-20 m/s), load 0.6. The monitoring role is handed to
// a fresh one-hop neighbor whenever the current monitor drifts out of the
// tagged node's transmission range, as in the paper. PM points x runs
// fan out across the experiment engine (--threads); aggregation is in
// trial order, bit-identical to a serial run.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "detect/experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Figure 5(d): probability of correct diagnosis with "
                       "mobility (random waypoint), load 0.6.");
  flags.add_double("load", 0.6, "target traffic intensity");
  flags.add_double_list("pms", "10,25,40,50,65,80,90,100", "PM values swept");
  flags.add_double_list("sample_sizes", "10,25,50,100", "Wilcoxon window sizes");
  flags.add_double("sim_time", 300, "simulated seconds per PM point");
  flags.add_int("runs", 1, "independent runs per point");
  flags.add_int("seed", 211, "base random seed");
  flags.add_double("alpha", 0.01, "significance level");
  flags.add_double("margin", 0.10, "permissible deficit fraction");
  flags.add_double("max_speed", 20, "random waypoint max speed (m/s)");
  flags.add_double("pause", 0, "random waypoint pause time (s)");
  flags.add_string("channel_index", "auto",
                   "channel receiver lookup: auto | incremental | rebuild | scan");
  flags.add_engine_flags();
  flags.add_monitor_impl_flag();
  flags.parse_or_exit(argc, argv);

  const auto pms = flags.get_double_list("pms");
  const auto sample_sizes = flags.get_double_list("sample_sizes");
  const int runs = static_cast<int>(flags.get_int("runs"));

  bench::print_header(
      "Figure 5(d): probability of correct diagnosis with mobility (load 0.6)",
      "timer violations are still discovered; roughly twice the samples are "
      "needed for convergence compared to the static grid");

  net::ScenarioConfig scenario;
  scenario.mobility = net::MobilityKind::kRandomWaypoint;
  scenario.max_speed_mps = flags.get_double("max_speed");
  scenario.pause_s = flags.get_double("pause");
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  scenario.channel_index = flags.get("channel_index");

  exp::Engine engine = flags.make_engine();
  const auto sink = flags.make_sink();

  // Calibrate on the mobile scenario itself: random-waypoint motion spreads
  // the initially dense grid over the whole field, so a static calibration
  // would undershoot the intensity badly.
  bench::RateCache rates(scenario);
  const double rate = rates.rate_for(flags.get_double("load"));

  std::vector<detect::MultiDetectionConfig> points;
  for (double pm : pms) {
    detect::MultiDetectionConfig cfg;
    cfg.scenario = scenario;
    cfg.rate_pps = rate;
    cfg.pm = pm;
    cfg.mobile_handoff = true;
    cfg.pipeline = flags.pipeline();
    for (double ss : sample_sizes) {
      detect::MonitorConfig m;
      m.sample_size = static_cast<std::size_t>(ss);
      m.alpha = flags.get_double("alpha");
      m.margin_fraction = flags.get_double("margin");
      m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
      m.fixed_contenders = 20.0;
      cfg.monitors.push_back(m);
    }
    points.push_back(cfg);
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = detect::run_multi_detection_sweep(points, runs, engine);
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::printf("  (columns: all-paths rate / statistical-only rate (windows))\n");
  std::printf("  %-5s", "PM");
  for (double ss : sample_sizes) std::printf("  ss=%-17.0f", ss);
  std::printf("  intensity  handoffs\n");

  for (std::size_t pi = 0; pi < pms.size(); ++pi) {
    const auto& result = results[pi];
    std::printf("  %-5.0f", pms[pi]);
    for (const auto& r : result.per_config) {
      std::printf("  %5.3f/%5.3f (%4llu)", r.detection_rate, r.statistical_rate,
                  static_cast<unsigned long long>(r.windows));
    }
    std::printf("  %.3f      %llu\n", result.measured_rho,
                static_cast<unsigned long long>(result.handoffs));
    std::fflush(stdout);

    for (std::size_t si = 0; si < sample_sizes.size(); ++si) {
      const auto& r = result.per_config[si];
      exp::Record rec;
      rec.add("bench", "fig5d_detection_mobile")
          .add("load", flags.get_double("load"))
          .add("pm", pms[pi])
          .add("sample_size", sample_sizes[si])
          .add("rate_pps", rate)
          .add("runs", runs)
          .add("sim_time_s", flags.get_double("sim_time"))
          .add("windows", r.windows)
          .add("flagged", r.flagged)
          .add("flagged_statistical", r.flagged_statistical)
          .add("detection_rate", r.detection_rate)
          .add("statistical_rate", r.statistical_rate)
          .add("intensity", result.measured_rho)
          .add("handoffs", result.handoffs)
          .add("wall_seconds", result.wall_seconds)
          .add("threads", engine.threads());
      sink->record(rec);
    }
  }
  sink->flush();
  std::printf("\n# sweep wall-clock: %.2f s (%u threads, %zu points x %d runs)\n",
              sweep_wall, engine.threads(), points.size(), runs);
  return 0;
}
