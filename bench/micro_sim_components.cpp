// Microbenchmarks of the per-slot / per-frame primitives: the verifiable
// PRS lookup, the system-state equations, the ARMA update, the lens-area
// geometry, and a complete two-node DCF exchange through the whole stack.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "detect/arma.hpp"
#include "detect/system_state.hpp"
#include "geom/circle.hpp"
#include "mac/backoff.hpp"
#include "mac/dcf.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace manet;

void BM_PrsDictatedSlots(benchmark::State& state) {
  mac::DcfParams params;
  mac::VerifiableBackoff prs(42, params);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(prs.dictated_slots(i, 1 + (i & 3)));
  }
}
BENCHMARK(BM_PrsDictatedSlots);

void BM_SystemStateEquations(benchmark::State& state) {
  const geom::RegionModel regions(240, 550);
  const detect::SystemStateModel model(regions);
  detect::SystemStateParams p;
  p.k = p.n = p.m = p.j = 5;
  p.contenders = 20;
  double rho = 0.0;
  for (auto _ : state) {
    p.rho = rho;
    rho = rho >= 0.9 ? 0.0 : rho + 0.01;
    benchmark::DoNotOptimize(model.estimated_idle(p, 70, 30));
  }
}
BENCHMARK(BM_SystemStateEquations);

void BM_ArmaUpdate(benchmark::State& state) {
  detect::ArmaIntensityFilter filter(0.995);
  double b = 0.0;
  for (auto _ : state) {
    filter.add_batch(b);
    b = b >= 1.0 ? 0.0 : b + 0.001;
    benchmark::DoNotOptimize(filter.intensity());
  }
}
BENCHMARK(BM_ArmaUpdate);

void BM_LensArea(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    d = d >= 1000.0 ? 1.0 : d + 1.0;
    benchmark::DoNotOptimize(geom::lens_area(550.0, d));
  }
}
BENCHMARK(BM_LensArea);

void BM_FullDcfExchange(benchmark::State& state) {
  // Steady-state cost of one complete RTS/CTS/DATA/ACK exchange through
  // PHY+MAC: the stack is built once, each iteration services one packet
  // end to end (the MAC is idle again when run() returns).
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, 1);
  net::StaticMobility positions({{0.0, 0.0}, {200.0, 0.0}});
  phy::Channel channel(sim, prop, positions);
  phy::Radio r0(0, channel), r1(1, channel);
  mac::DcfMac m0(sim, r0, params), m1(sim, r1, params);
  std::uint64_t payload_id = 0;
  for (auto _ : state) {
    m0.enqueue(1, 512, ++payload_id);
    sim.run();
    benchmark::DoNotOptimize(m1.stats().packets_delivered);
  }
}
BENCHMARK(BM_FullDcfExchange);

void BM_Table1NetworkSimSecond(benchmark::State& state) {
  // One simulated second of the paper's 56-node Table-1 static grid under
  // the fig-5 traffic load, reported as kernel events and transmissions per
  // wall-clock second — the sweep benches' cost in microbenchmark form.
  std::uint64_t events = 0;
  std::uint64_t transmissions = 0;
  for (auto _ : state) {
    net::ScenarioConfig cfg;
    cfg.sim_seconds = 1;
    cfg.num_flows = 30;
    cfg.seed = 3;
    net::Network nw(cfg);
    nw.build_random_flows();
    nw.set_flow_rates(15);
    const SimTime stop = seconds_to_time(cfg.sim_seconds);
    nw.start_traffic(0, stop);
    nw.run_until(stop);
    events += nw.simulator().dispatched_events();
    transmissions += nw.channel().transmissions();
  }
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["tx_per_s"] = benchmark::Counter(static_cast<double>(transmissions),
                                                  benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Table1NetworkSimSecond);

void BM_SaturatedPairSimSecond(benchmark::State& state) {
  // Simulated-seconds-per-wallclock-second for a saturated two-node link.
  for (auto _ : state) {
    sim::Simulator sim;
    mac::DcfParams params;
    phy::Propagation prop(phy::PropagationParams{}, 1);
    net::StaticMobility positions({{0.0, 0.0}, {200.0, 0.0}});
    phy::Channel channel(sim, prop, positions);
    phy::Radio r0(0, channel), r1(1, channel);
    mac::DcfMac m0(sim, r0, params), m1(sim, r1, params);
    std::uint64_t id = 0;
    std::function<void()> refill = [&] {
      while (m0.queue_length() < 40) m0.enqueue(1, 512, ++id);
      if (sim.now() < 1 * kSecond) sim.after(100 * kMillisecond, refill);
    };
    sim.at(0, refill);
    sim.run_until(1 * kSecond);
    benchmark::DoNotOptimize(m1.stats().packets_delivered);
  }
}
BENCHMARK(BM_SaturatedPairSimSecond);

}  // namespace

BENCHMARK_MAIN();
