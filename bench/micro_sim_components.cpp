// Microbenchmarks of the per-slot / per-frame primitives: the verifiable
// PRS lookup, the system-state equations, the ARMA update, the lens-area
// geometry, and a complete two-node DCF exchange through the whole stack.
#include <benchmark/benchmark.h>

#include <memory>

#include "detect/arma.hpp"
#include "detect/system_state.hpp"
#include "geom/circle.hpp"
#include "mac/backoff.hpp"
#include "mac/dcf.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace manet;

void BM_PrsDictatedSlots(benchmark::State& state) {
  mac::DcfParams params;
  mac::VerifiableBackoff prs(42, params);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(prs.dictated_slots(i, 1 + (i & 3)));
  }
}
BENCHMARK(BM_PrsDictatedSlots);

void BM_SystemStateEquations(benchmark::State& state) {
  const geom::RegionModel regions(240, 550);
  const detect::SystemStateModel model(regions);
  detect::SystemStateParams p;
  p.k = p.n = p.m = p.j = 5;
  p.contenders = 20;
  double rho = 0.0;
  for (auto _ : state) {
    p.rho = rho;
    rho = rho >= 0.9 ? 0.0 : rho + 0.01;
    benchmark::DoNotOptimize(model.estimated_idle(p, 70, 30));
  }
}
BENCHMARK(BM_SystemStateEquations);

void BM_ArmaUpdate(benchmark::State& state) {
  detect::ArmaIntensityFilter filter(0.995);
  double b = 0.0;
  for (auto _ : state) {
    filter.add_batch(b);
    b = b >= 1.0 ? 0.0 : b + 0.001;
    benchmark::DoNotOptimize(filter.intensity());
  }
}
BENCHMARK(BM_ArmaUpdate);

void BM_LensArea(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    d = d >= 1000.0 ? 1.0 : d + 1.0;
    benchmark::DoNotOptimize(geom::lens_area(550.0, d));
  }
}
BENCHMARK(BM_LensArea);

struct FixedPositions : phy::PositionProvider {
  geom::Vec2 position(NodeId node, SimTime) const override {
    return {node * 200.0, 0.0};
  }
};

void BM_FullDcfExchange(benchmark::State& state) {
  // Cost of one complete RTS/CTS/DATA/ACK exchange through PHY+MAC.
  for (auto _ : state) {
    sim::Simulator sim;
    mac::DcfParams params;
    phy::Propagation prop(phy::PropagationParams{}, 1);
    FixedPositions positions;
    phy::Channel channel(sim, prop, positions);
    phy::Radio r0(0, channel), r1(1, channel);
    mac::DcfMac m0(sim, r0, params), m1(sim, r1, params);
    m0.enqueue(1, 512, 1);
    sim.run();
    benchmark::DoNotOptimize(m1.stats().packets_delivered);
  }
}
BENCHMARK(BM_FullDcfExchange);

void BM_SaturatedPairSimSecond(benchmark::State& state) {
  // Simulated-seconds-per-wallclock-second for a saturated two-node link.
  for (auto _ : state) {
    sim::Simulator sim;
    mac::DcfParams params;
    phy::Propagation prop(phy::PropagationParams{}, 1);
    FixedPositions positions;
    phy::Channel channel(sim, prop, positions);
    phy::Radio r0(0, channel), r1(1, channel);
    mac::DcfMac m0(sim, r0, params), m1(sim, r1, params);
    std::uint64_t id = 0;
    std::function<void()> refill = [&] {
      while (m0.queue_length() < 40) m0.enqueue(1, 512, ++id);
      if (sim.now() < 1 * kSecond) sim.after(100 * kMillisecond, refill);
    };
    sim.at(0, refill);
    sim.run_until(1 * kSecond);
    benchmark::DoNotOptimize(m1.stats().packets_delivered);
  }
}
BENCHMARK(BM_SaturatedPairSimSecond);

}  // namespace

BENCHMARK_MAIN();
