// Microbenchmarks of the detection pipeline itself: complete
// run_multi_detection_experiment simulations on a small Table-1 grid,
// comparing the batched SoA pipeline (monitor lanes grouped per config
// over one ObservationHub) against the per-view hub pipeline and the
// private-per-monitor reference (structurally the pre-hub pipeline). All
// three produce bit-identical WindowResult sequences — the wall-clock
// gaps are pure overhead removed by sharing observation state (hub vs
// reference) and by evaluating each frame once per config-group instead
// of once per monitor (batch vs hub).
//
// The allpairs_* cases put the full monitor-config grid on each of the 4
// neighbors of a dense 3x3 grid's center (the
// bench/fig_allpairs_monitoring.cpp workload; the trailing number is
// configs per node, so allpairs_batch_12 is 48 monitors); the single_*
// cases show the per-lane indirection cost when nothing is shared.
#include <cstdint>
#include <string>

#include "detect/experiment.hpp"
#include "micro_common.hpp"

namespace {

using namespace manet;

// `monitor_configs` is a (sample size x margin) grid, the kind of
// parameter sweep the fig benches run side by side on one simulation.
detect::MultiDetectionConfig workload(bool all_pairs,
                                      detect::PipelineImpl pipeline,
                                      std::size_t monitor_configs) {
  detect::MultiDetectionConfig cfg;
  cfg.scenario.grid_rows = 3;  // one contention domain around the center
  cfg.scenario.grid_cols = 3;
  cfg.scenario.num_flows = 8;
  cfg.scenario.sim_seconds = 5;
  cfg.scenario.seed = 1201;
  cfg.rate_pps = 40.0;
  cfg.pm = 50.0;
  cfg.all_pairs = all_pairs;
  cfg.pipeline = pipeline;
  const std::size_t sample_sizes[] = {10, 25, 50, 100};
  for (std::size_t i = 0; i < monitor_configs; ++i) {
    detect::MonitorConfig m;
    m.sample_size = sample_sizes[i % 4];
    m.margin_fraction = 0.05 + 0.05 * static_cast<double>(i / 4);
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
    m.fixed_contenders = 20.0;
    cfg.monitors.push_back(m);
  }
  return cfg;
}

void run_workload(bench::MicroHarness& h, const std::string& name,
                  bool all_pairs, detect::PipelineImpl pipeline,
                  std::size_t monitor_configs, std::size_t base_reps) {
  if (!h.enabled(name)) return;
  const auto cfg = workload(all_pairs, pipeline, monitor_configs);
  const std::size_t reps = h.reps(base_reps);
  std::uint64_t windows = 0;
  std::uint64_t monitor_nodes = 0;
  h.run_case(
      name,
      [&] {
        for (std::size_t i = 0; i < reps; ++i) {
          const auto result = detect::run_multi_detection_experiment(cfg);
          windows = 0;
          for (const auto& r : result.per_config) windows += r.windows;
          monitor_nodes = result.monitor_nodes;
          bench::keep(result.per_config.front().flagged);
        }
        return static_cast<std::uint64_t>(reps);
      },
      [&](exp::Record& rec) {
        rec.add("sim_seconds", cfg.scenario.sim_seconds)
            .add("monitors", monitor_nodes * monitor_configs)
            .add("windows", windows);
      });
}

}  // namespace

int main(int argc, char** argv) {
  bench::MicroHarness h(
      "micro_monitor",
      "Full detection-pipeline simulations on a dense 3x3 grid: batched "
      "SoA lanes vs per-view hub vs private-per-monitor reference, "
      "all-pairs (4 monitoring nodes x N configs) and single-monitor.",
      argc, argv);

  struct Impl {
    const char* name;
    detect::PipelineImpl impl;
  };
  const Impl impls[] = {{"batch", detect::PipelineImpl::kBatch},
                        {"hub", detect::PipelineImpl::kHub},
                        {"reference", detect::PipelineImpl::kReference}};

  // The trailing number is monitor configurations per monitoring node; 4
  // neighbors watch the tagged center, so _4 is 16 monitors and _12 is 48.
  for (const Impl& impl : impls) {
    for (std::size_t configs : {4u, 12u}) {
      run_workload(h,
                   "allpairs_" + std::string(impl.name) + "_" +
                       std::to_string(configs),
                   /*all_pairs=*/true, impl.impl, configs, /*base_reps=*/2);
    }
  }
  for (const Impl& impl : impls) {
    run_workload(h, "single_" + std::string(impl.name), /*all_pairs=*/false,
                 impl.impl, 1, /*base_reps=*/3);
  }
  return 0;
}
