// Microbenchmarks of the detection pipeline itself: complete
// run_multi_detection_experiment simulations on a small Table-1 grid,
// comparing the shared-ObservationHub pipeline (share_hub=true) against
// the private-per-monitor reference (share_hub=false, structurally the
// pre-hub pipeline). Both variants produce bit-identical WindowResult
// sequences — the wall-clock gap is pure overhead removed by sharing the
// decoded-frame ring, density estimator, ARMA tracker, and the per-window
// interval-set memo across a node's monitors.
//
// The all-pairs variants put the full monitor-config grid on each of the
// 4 neighbors of a dense 3x3 grid's center (the
// bench/fig_allpairs_monitoring.cpp workload; Arg = configs per node, so
// Arg=12 is 48 monitors); the single-monitor variants show the hub's
// overhead when nothing is shared.
#include <benchmark/benchmark.h>

#include "detect/experiment.hpp"

namespace {

using namespace manet;

// `monitor_configs` is a (sample size x margin) grid, the kind of
// parameter sweep the fig benches run side by side on one simulation.
detect::MultiDetectionConfig workload(bool all_pairs, bool share_hub,
                                      std::size_t monitor_configs) {
  detect::MultiDetectionConfig cfg;
  cfg.scenario.grid_rows = 3;  // one contention domain around the center
  cfg.scenario.grid_cols = 3;
  cfg.scenario.num_flows = 8;
  cfg.scenario.sim_seconds = 5;
  cfg.scenario.seed = 1201;
  cfg.rate_pps = 40.0;
  cfg.pm = 50.0;
  cfg.all_pairs = all_pairs;
  cfg.share_hub = share_hub;
  const std::size_t sample_sizes[] = {10, 25, 50, 100};
  for (std::size_t i = 0; i < monitor_configs; ++i) {
    detect::MonitorConfig m;
    m.sample_size = sample_sizes[i % 4];
    m.margin_fraction = 0.05 + 0.05 * static_cast<double>(i / 4);
    m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;
    m.fixed_contenders = 20.0;
    cfg.monitors.push_back(m);
  }
  return cfg;
}

void run_workload(benchmark::State& state, bool all_pairs, bool share_hub,
                  std::size_t monitor_configs) {
  const auto cfg = workload(all_pairs, share_hub, monitor_configs);
  double sim_seconds = 0.0;
  std::uint64_t windows = 0;
  std::uint64_t monitor_nodes = 0;
  for (auto _ : state) {
    const auto result = detect::run_multi_detection_experiment(cfg);
    sim_seconds += cfg.scenario.sim_seconds;
    for (const auto& r : result.per_config) windows += r.windows;
    monitor_nodes = result.monitor_nodes;
    benchmark::DoNotOptimize(result.per_config.front().flagged);
  }
  state.counters["sim_s_per_s"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.counters["monitors"] =
      static_cast<double>(monitor_nodes * monitor_configs);
  state.counters["windows"] = static_cast<double>(windows) /
                              static_cast<double>(state.iterations());
}

// Arg = monitor configurations per monitoring node; 4 neighbors watch
// the tagged center, so Arg=4 is 16 monitors and Arg=12 is 48.
void BM_AllPairsMonitoringHub(benchmark::State& state) {
  run_workload(state, /*all_pairs=*/true, /*share_hub=*/true,
               static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_AllPairsMonitoringHub)
    ->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

// Same monitors, each with private ring/density/ARMA state — the pre-hub
// pipeline and the denominator of perf_pr5.sh's speedup.
void BM_AllPairsMonitoringReference(benchmark::State& state) {
  run_workload(state, /*all_pairs=*/true, /*share_hub=*/false,
               static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_AllPairsMonitoringReference)
    ->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

// One monitoring node, one config: nothing to share; measures that the
// hub indirection itself costs nothing noticeable.
void BM_SingleMonitorHub(benchmark::State& state) {
  run_workload(state, /*all_pairs=*/false, /*share_hub=*/true, 1);
}
BENCHMARK(BM_SingleMonitorHub)->Unit(benchmark::kMillisecond);

void BM_SingleMonitorReference(benchmark::State& state) {
  run_workload(state, /*all_pairs=*/false, /*share_hub=*/false, 1);
}
BENCHMARK(BM_SingleMonitorReference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
