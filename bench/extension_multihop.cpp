// Extension: the detection framework under multi-hop AODV cross-traffic,
// and with multiple simultaneous attackers (paper footnote 7: "our scheme
// is capable of detecting multiple malicious nodes (for small numbers)").
//
// Background flows are routed over multiple hops by AODV (flow_pattern=any)
// instead of the paper's one-hop workload; each attacker is watched by its
// own nearest neighbor.
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "detect/monitor.hpp"
#include "net/flow_stats.hpp"
#include "net/network.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::FlagSet flags(
      "Extension: multi-hop AODV traffic + multiple attackers.");
  flags.add_int("attackers", 3, "number of misbehaving nodes");
  flags.add_double("pm", 65, "percentage of misbehavior of each attacker");
  flags.add_double("rate", 6, "per-flow packet rate (multi-hop flows)");
  flags.add_int("num_flows", 20, "number of multi-hop background flows");
  flags.add_double("sim_time", 180, "simulated seconds");
  flags.add_int("sample_size", 10, "Wilcoxon window size");
  flags.add_int("seed", 901, "random seed");
  flags.add_string("json", "", "write one JSON record per watched suspect to this file");
  flags.parse_or_exit(argc, argv);
  const auto sink = flags.make_sink();

  bench::print_header(
      "Extension: multi-hop routing and multiple attackers",
      "every attacker is detected by its own monitor; honest co-monitors stay "
      "quiet; multi-hop traffic keeps flowing");

  net::ScenarioConfig scenario;
  scenario.routing = net::RoutingKind::kAodv;
  scenario.flow_pattern = net::FlowPattern::kAny;
  scenario.num_flows = static_cast<std::size_t>(flags.get_int("num_flows"));
  scenario.packets_per_second = flags.get_double("rate");
  scenario.sim_seconds = flags.get_double("sim_time");
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  net::Network net(scenario);
  const int n_attackers = static_cast<int>(flags.get_int("attackers"));
  const double pm = flags.get_double("pm");

  // Attackers: the center node and nodes stepping outward from it; each
  // gets a saturated one-hop flow (so it actually contends) plus a monitor
  // at its nearest neighbor. One extra honest "tagged" node serves as the
  // false-alarm control.
  std::vector<NodeId> tagged;
  {
    NodeId next = net.center_node();
    for (int i = 0; i <= n_attackers && tagged.size() < net.size(); ++i) {
      while (std::find(tagged.begin(), tagged.end(), next) != tagged.end()) {
        next = (next + 3) % static_cast<NodeId>(net.size());
      }
      tagged.push_back(next);
      next = (next + 5) % static_cast<NodeId>(net.size());
    }
  }

  struct Watch {
    NodeId suspect;
    NodeId monitor_node;
    bool is_attacker;
    std::unique_ptr<detect::Monitor> monitor;
  };
  std::vector<Watch> watches;

  detect::MonitorConfig mc;
  mc.sample_size = static_cast<std::size_t>(flags.get_int("sample_size"));
  mc.fixed_n = mc.fixed_k = mc.fixed_m = mc.fixed_j = 5.0;
  mc.fixed_contenders = 20.0;

  for (std::size_t i = 0; i < tagged.size(); ++i) {
    const NodeId s = tagged[i];
    const auto nbrs = net.neighbors(s, net.config().prop.tx_range_m, 0);
    if (nbrs.empty()) continue;
    const NodeId r = nbrs.front();
    const bool is_attacker = i < static_cast<std::size_t>(n_attackers);
    if (is_attacker) {
      net.mac(s).set_backoff_policy(std::make_unique<mac::PercentMisbehavior>(pm));
    }
    net.add_flow(s, r, 25.0);  // keep the suspect contending
    watches.push_back(
        Watch{s, r, is_attacker,
              detect::MonitorFactory(net.simulator(), net.mac(r), net.timeline(r))
                  .watch(s, mc)});
  }

  net.build_random_flows(/*exclude=*/tagged);
  const SimTime stop = seconds_to_time(scenario.sim_seconds);
  net.start_traffic(0, stop);
  net.run_until(stop);

  std::printf("  %-8s %-9s %-9s %-9s %-10s %s\n", "suspect", "monitor",
              "windows", "flagged", "flag rate", "role");
  bool all_good = true;
  for (const auto& w : watches) {
    const auto& st = w.monitor->stats();
    std::printf("  %-8u %-9u %-9llu %-9llu %-10.3f %s\n", w.suspect,
                w.monitor_node, static_cast<unsigned long long>(st.windows),
                static_cast<unsigned long long>(st.flagged_windows),
                w.monitor->flag_rate(),
                w.is_attacker ? "ATTACKER" : "honest control");
    if (w.is_attacker && w.monitor->flag_rate() < 0.5) all_good = false;
    if (!w.is_attacker && w.monitor->flag_rate() > 0.05) all_good = false;

    exp::Record rec;
    rec.add("bench", "extension_multihop")
        .add("suspect", static_cast<std::uint64_t>(w.suspect))
        .add("monitor", static_cast<std::uint64_t>(w.monitor_node))
        .add("is_attacker", w.is_attacker)
        .add("pm", w.is_attacker ? pm : 0.0)
        .add("windows", st.windows)
        .add("flagged", st.flagged_windows)
        .add("flag_rate", w.monitor->flag_rate())
        .add("sim_time_s", flags.get_double("sim_time"));
    sink->record(rec);
  }
  sink->flush();

  // Multi-hop background traffic health.
  std::uint64_t originated = 0, delivered = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    if (auto* r = net.router(i)) {
      originated += r->stats().originated;
      delivered += r->stats().delivered;
    }
  }
  std::printf("\n  multi-hop background: %llu originated, %llu delivered (%.0f%%)\n",
              static_cast<unsigned long long>(originated),
              static_cast<unsigned long long>(delivered),
              originated ? 100.0 * delivered / originated : 0.0);
  std::printf("  verdict: %s\n",
              all_good ? "all attackers detected, honest control clean"
                       : "DEGRADED — see rows above");
  return all_good ? 0 : 1;
}
