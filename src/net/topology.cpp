#include "net/topology.hpp"

#include <queue>
#include <stdexcept>

namespace manet::net {

std::vector<geom::Vec2> grid_topology(std::size_t rows, std::size_t cols,
                                      double spacing, geom::Vec2 origin) {
  std::vector<geom::Vec2> nodes;
  nodes.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      nodes.push_back(origin + geom::Vec2{static_cast<double>(c) * spacing,
                                          static_cast<double>(r) * spacing});
    }
  }
  return nodes;
}

std::size_t grid_center_index(std::size_t rows, std::size_t cols) {
  return (rows / 2) * cols + cols / 2;
}

std::vector<geom::Vec2> random_topology(std::size_t n, double width, double height,
                                        util::Xoshiro256ss& rng) {
  std::vector<geom::Vec2> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back({rng.uniform(0.0, width), rng.uniform(0.0, height)});
  }
  return nodes;
}

bool is_connected(const std::vector<geom::Vec2>& nodes, double range) {
  if (nodes.empty()) return true;
  std::vector<bool> seen(nodes.size(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  const double r2 = range * range;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < nodes.size(); ++v) {
      if (seen[v]) continue;
      if ((nodes[u] - nodes[v]).norm2() <= r2) {
        seen[v] = true;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == nodes.size();
}

std::vector<geom::Vec2> random_connected_topology(std::size_t n, double width,
                                                  double height, double range,
                                                  util::Xoshiro256ss& rng,
                                                  int max_tries) {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    auto nodes = random_topology(n, width, height, rng);
    if (is_connected(nodes, range)) return nodes;
  }
  throw std::runtime_error("could not sample a connected random topology");
}

std::vector<std::size_t> neighbors_within(const std::vector<geom::Vec2>& nodes,
                                          std::size_t i, double range) {
  std::vector<std::size_t> out;
  const double r2 = range * range;
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    if (j == i) continue;
    if ((nodes[i] - nodes[j]).norm2() <= r2) out.push_back(j);
  }
  return out;
}

}  // namespace manet::net
