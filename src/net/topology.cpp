#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace manet::net {

std::vector<geom::Vec2> grid_topology(std::size_t rows, std::size_t cols,
                                      double spacing, geom::Vec2 origin) {
  if (rows != 0 && cols > (std::numeric_limits<std::size_t>::max)() / rows) {
    throw std::invalid_argument("grid node count overflows");
  }
  std::vector<geom::Vec2> nodes;
  nodes.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      nodes.push_back(origin + geom::Vec2{static_cast<double>(c) * spacing,
                                          static_cast<double>(r) * spacing});
    }
  }
  return nodes;
}

std::size_t grid_center_index(std::size_t rows, std::size_t cols) {
  return (rows / 2) * cols + cols / 2;
}

std::vector<geom::Vec2> random_topology(std::size_t n, double width, double height,
                                        util::Xoshiro256ss& rng) {
  if (n == 0) throw std::invalid_argument("random topology needs >= 1 node");
  if (!(width > 0.0) || !(height > 0.0) || !std::isfinite(width) ||
      !std::isfinite(height)) {
    throw std::invalid_argument("topology area dimensions must be positive and finite");
  }
  std::vector<geom::Vec2> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back({rng.uniform(0.0, width), rng.uniform(0.0, height)});
  }
  return nodes;
}

std::int32_t LayoutIndex::coord(double v) const {
  const double c = std::floor(v / cell_m_);
  if (!(c >= -2147483000.0 && c <= 2147483000.0)) {
    throw std::invalid_argument(
        "layout coordinate overflows bucket-grid indexing");
  }
  return static_cast<std::int32_t>(c);
}

LayoutIndex::LayoutIndex(const std::vector<geom::Vec2>& nodes, double cell_m)
    : nodes_(nodes), cell_m_(cell_m) {
  if (!(cell_m > 0.0)) {
    throw std::invalid_argument("bucket-grid cell size must be positive");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    buckets_[key(coord(nodes[i].x), coord(nodes[i].y))].push_back(
        static_cast<std::uint32_t>(i));
  }
}

void LayoutIndex::neighbors_into(std::size_t i, double range,
                                 std::vector<std::size_t>& out) const {
  const geom::Vec2 p = nodes_[i];
  const double r2 = range * range;
  const std::int32_t cx = coord(p.x);
  const std::int32_t cy = coord(p.y);
  const auto reach =
      static_cast<std::int32_t>(std::ceil(range / cell_m_));
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      const auto it = buckets_.find(key(cx + dx, cy + dy));
      if (it == buckets_.end()) continue;
      for (const std::uint32_t j : it->second) {
        if (j == i) continue;
        if ((p - nodes_[j]).norm2() <= r2) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

bool LayoutIndex::has_neighbor(std::size_t i, double range) const {
  const geom::Vec2 p = nodes_[i];
  const double r2 = range * range;
  const std::int32_t cx = coord(p.x);
  const std::int32_t cy = coord(p.y);
  const auto reach =
      static_cast<std::int32_t>(std::ceil(range / cell_m_));
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      const auto it = buckets_.find(key(cx + dx, cy + dy));
      if (it == buckets_.end()) continue;
      for (const std::uint32_t j : it->second) {
        if (j != i && (p - nodes_[j]).norm2() <= r2) return true;
      }
    }
  }
  return false;
}

bool is_connected(const std::vector<geom::Vec2>& nodes, double range) {
  if (nodes.empty()) return true;
  if (!(range > 0.0)) return nodes.size() == 1;
  const LayoutIndex index(nodes, range);
  std::vector<bool> seen(nodes.size(), false);
  std::vector<std::size_t> frontier{0};
  std::vector<std::size_t> scratch;
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.back();
    frontier.pop_back();
    scratch.clear();
    index.neighbors_into(u, range, scratch);
    for (const std::size_t v : scratch) {
      if (seen[v]) continue;
      seen[v] = true;
      ++reached;
      frontier.push_back(v);
    }
  }
  return reached == nodes.size();
}

bool is_connected_reference(const std::vector<geom::Vec2>& nodes, double range) {
  if (nodes.empty()) return true;
  std::vector<bool> seen(nodes.size(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  const double r2 = range * range;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < nodes.size(); ++v) {
      if (seen[v]) continue;
      if ((nodes[u] - nodes[v]).norm2() <= r2) {
        seen[v] = true;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == nodes.size();
}

std::vector<geom::Vec2> random_connected_topology(std::size_t n, double width,
                                                  double height, double range,
                                                  util::Xoshiro256ss& rng,
                                                  int max_tries) {
  if (!(range > 0.0)) {
    throw std::invalid_argument("connectivity range must be positive");
  }
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    auto nodes = random_topology(n, width, height, rng);
    if (is_connected(nodes, range)) return nodes;
  }
  throw std::runtime_error("could not sample a connected random topology");
}

std::vector<std::size_t> neighbors_within(const std::vector<geom::Vec2>& nodes,
                                          std::size_t i, double range) {
  std::vector<std::size_t> out;
  const double r2 = range * range;
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    if (j == i) continue;
    if ((nodes[i] - nodes[j]).norm2() <= r2) out.push_back(j);
  }
  return out;
}

}  // namespace manet::net
