#include "net/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "phy/channel.hpp"

namespace manet::net {

void ScenarioConfig::declare(util::Config& c) {
  c.declare("topology", "grid", "Topology type: grid | random (Table 1)");
  c.declare("grid_rows", "7", "Grid rows (Table 1: 7x8 grid, 56 nodes)");
  c.declare("grid_cols", "8", "Grid columns");
  c.declare("grid_spacing", "240", "Distance between one-hop grid neighbors (m)");
  c.declare("random_nodes", "112", "Node count for the random topology");
  c.declare("area_width", "3000", "Topology area width (m)");
  c.declare("area_height", "3000", "Topology area height (m)");
  c.declare("mobility", "static", "Mobility: static | rwp (random waypoint)");
  c.declare("min_speed", "0.5", "Random waypoint minimum speed (m/s)");
  c.declare("max_speed", "20", "Random waypoint maximum speed (m/s; Table 1: 0-20)");
  c.declare("pause", "0", "Random waypoint pause time (s; Table 1: 0,50,100,200,300)");
  c.declare("traffic", "poisson", "Traffic model: poisson | cbr (Table 1)");
  c.declare("packet_size", "512", "Payload size in bytes (Table 1)");
  c.declare("num_flows", "30", "Number of source-destination pairs");
  c.declare("rate", "20", "Per-flow packet rate (packets/s)");
  c.declare("sim_time", "300", "Simulation time (s; Table 1)");
  c.declare("seed", "1", "Master random seed");
  c.declare("queue_length", "50", "MAC interface queue capacity (Table 1)");
  c.declare("tx_range", "250", "Transmission range (m; Table 1)");
  c.declare("cs_range", "550", "Sensing/interference range (m; Table 1)");
  c.declare("path_loss_exponent", "2", "Shadowing-model path loss exponent beta");
  c.declare("shadowing_sigma", "0", "Shadowing sigma_dB (0 = free space)");
  c.declare("use_eifs", "false", "Defer EIFS after corrupted receptions");
  c.declare("routing", "none", "Routing: none (one-hop MAC) | aodv (Table 1)");
  c.declare("flow_pattern", "one_hop",
            "Flow destinations: one_hop (paper) | any (multi-hop, needs aodv)");
  c.declare("fault_loss", "0", "I.i.d. per-delivery frame decode-failure probability");
  c.declare("fault_corrupt", "0", "Per-delivery frame field-corruption probability");
  c.declare("fault_ge", "false", "Enable Gilbert-Elliott bursty decode failures");
  c.declare("fault_ge_p_gb", "0.05", "GE transition probability good -> bad");
  c.declare("fault_ge_p_bg", "0.25", "GE transition probability bad -> good");
  c.declare("fault_ge_loss_good", "0", "GE decode-failure probability in the good state");
  c.declare("fault_ge_loss_bad", "1", "GE decode-failure probability in the bad state");
  c.declare("fault_outages", "",
            "Receiver outages: node:start_s:stop_s[,node:start_s:stop_s...]");
  c.declare("fault_seed", "0", "Extra stream selector for the fault RNG");
  c.declare("channel_index", "auto",
            "Channel receiver lookup: auto | incremental | rebuild | scan");
  c.declare("timeline_retention_s", "10",
            "Carrier-history retention horizon per node (s)");
  c.declare("timeline_max_transitions", "262144",
            "Hard per-node carrier-transition budget (compacted beyond)");
}

void ScenarioConfig::validate() const {
  if (topology == TopologyKind::kGrid) {
    if (grid_rows == 0 || grid_cols == 0) {
      throw std::invalid_argument("grid dimensions must be positive");
    }
    if (grid_rows > kMaxNodes / grid_cols) {
      throw std::invalid_argument(
          "grid node count overflows spatial-index node capacity (" +
          std::to_string(grid_rows) + "x" + std::to_string(grid_cols) + ")");
    }
  } else if (random_nodes == 0 || random_nodes > kMaxNodes) {
    throw std::invalid_argument(
        "random topology node count out of range: " +
        std::to_string(random_nodes));
  }
  for (const auto& [value, name] :
       {std::pair<double, const char*>{area_width_m, "area width"},
        {area_height_m, "area height"}}) {
    if (!(value > 0.0) || !(value <= kMaxAreaM)) {
      throw std::invalid_argument(
          std::string(name) +
          " must be in (0, 1e9] m to fit grid-cell indexing: " +
          std::to_string(value));
    }
  }
  if (topology == TopologyKind::kGrid &&
      !(grid_spacing_m > 0.0 &&
        grid_spacing_m * static_cast<double>(std::max(grid_rows, grid_cols)) <=
            kMaxAreaM)) {
    throw std::invalid_argument(
        "grid spacing out of range: " + std::to_string(grid_spacing_m));
  }
  if (!(timeline_retention_s > 0.0)) {
    throw std::invalid_argument("timeline retention must be positive");
  }
  if (timeline_max_transitions < 2) {
    throw std::invalid_argument("timeline transition budget must be >= 2");
  }
}

ScenarioConfig ScenarioConfig::from_config(const util::Config& c) {
  ScenarioConfig s;
  s.topology = parse_topology(c.get("topology"));
  s.grid_rows = static_cast<std::size_t>(c.get_int("grid_rows"));
  s.grid_cols = static_cast<std::size_t>(c.get_int("grid_cols"));
  s.grid_spacing_m = c.get_double("grid_spacing");
  s.random_nodes = static_cast<std::size_t>(c.get_int("random_nodes"));
  s.area_width_m = c.get_double("area_width");
  s.area_height_m = c.get_double("area_height");
  s.mobility = parse_mobility(c.get("mobility"));
  s.min_speed_mps = c.get_double("min_speed");
  s.max_speed_mps = c.get_double("max_speed");
  s.pause_s = c.get_double("pause");
  s.traffic = parse_traffic(c.get("traffic"));
  s.payload_bytes = static_cast<std::uint32_t>(c.get_int("packet_size"));
  s.num_flows = static_cast<std::size_t>(c.get_int("num_flows"));
  s.packets_per_second = c.get_double("rate");
  s.sim_seconds = c.get_double("sim_time");
  s.seed = static_cast<std::uint64_t>(c.get_int("seed"));
  s.mac.queue_capacity = static_cast<std::uint32_t>(c.get_int("queue_length"));
  s.mac.use_eifs = c.get_bool("use_eifs");
  s.prop.tx_range_m = c.get_double("tx_range");
  s.prop.cs_range_m = c.get_double("cs_range");
  s.prop.path_loss_exponent = c.get_double("path_loss_exponent");
  s.prop.shadowing_sigma_db = c.get_double("shadowing_sigma");
  s.routing = parse_routing(c.get("routing"));
  s.flow_pattern = parse_flow_pattern(c.get("flow_pattern"));
  s.faults.loss_probability = c.get_double("fault_loss");
  s.faults.corrupt_probability = c.get_double("fault_corrupt");
  s.faults.gilbert_elliott = c.get_bool("fault_ge");
  s.faults.ge_p_good_to_bad = c.get_double("fault_ge_p_gb");
  s.faults.ge_p_bad_to_good = c.get_double("fault_ge_p_bg");
  s.faults.ge_loss_good = c.get_double("fault_ge_loss_good");
  s.faults.ge_loss_bad = c.get_double("fault_ge_loss_bad");
  s.faults.outages = parse_outages(c.get("fault_outages"));
  s.faults.seed = static_cast<std::uint64_t>(c.get_int("fault_seed"));
  s.channel_index = c.get("channel_index");
  phy::Channel::parse_index_mode(s.channel_index);  // validate eagerly
  s.timeline_retention_s = c.get_double("timeline_retention_s");
  s.timeline_max_transitions =
      static_cast<std::size_t>(c.get_int("timeline_max_transitions"));
  s.validate();
  return s;
}

std::vector<phy::FaultPlan::Outage> parse_outages(const std::string& spec) {
  std::vector<phy::FaultPlan::Outage> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t c1 = item.find(':');
    const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                   : item.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      throw std::invalid_argument("malformed outage (want node:start:stop): " + item);
    }
    phy::FaultPlan::Outage o;
    try {
      o.node = static_cast<NodeId>(std::stoul(item.substr(0, c1)));
      const double start_s = std::stod(item.substr(c1 + 1, c2 - c1 - 1));
      const double stop_s = std::stod(item.substr(c2 + 1));
      o.start = seconds_to_time(start_s);
      o.stop = seconds_to_time(stop_s);
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed outage (want node:start:stop): " + item);
    }
    if (o.stop <= o.start) {
      throw std::invalid_argument("outage stop must be after start: " + item);
    }
    out.push_back(o);
  }
  return out;
}

TopologyKind parse_topology(const std::string& name) {
  if (name == "grid") return TopologyKind::kGrid;
  if (name == "random") return TopologyKind::kRandom;
  throw std::invalid_argument("unknown topology: " + name);
}

TrafficKind parse_traffic(const std::string& name) {
  if (name == "poisson") return TrafficKind::kPoisson;
  if (name == "cbr") return TrafficKind::kCbr;
  throw std::invalid_argument("unknown traffic model: " + name);
}

MobilityKind parse_mobility(const std::string& name) {
  if (name == "static") return MobilityKind::kStatic;
  if (name == "rwp") return MobilityKind::kRandomWaypoint;
  throw std::invalid_argument("unknown mobility model: " + name);
}

RoutingKind parse_routing(const std::string& name) {
  if (name == "none") return RoutingKind::kNone;
  if (name == "aodv") return RoutingKind::kAodv;
  throw std::invalid_argument("unknown routing protocol: " + name);
}

FlowPattern parse_flow_pattern(const std::string& name) {
  if (name == "one_hop") return FlowPattern::kOneHop;
  if (name == "any") return FlowPattern::kAny;
  throw std::invalid_argument("unknown flow pattern: " + name);
}

}  // namespace manet::net
