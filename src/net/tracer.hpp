// Human-readable frame tracer (ns-2-trace-flavored).
//
// Attach to any MAC as an observer: every frame the node decodes (and its
// own transmissions) becomes one line:
//
//   12.3456789  n5  RTS  3->5  seq=17 att=2  dur=2990us  len=38
//
// Useful for debugging scenarios and for the examples; bounded by
// max_lines so long runs cannot exhaust memory.
#pragma once

#include <cstdio>
#include <deque>
#include <string>

#include "mac/dcf.hpp"
#include "util/types.hpp"

namespace manet::net {

class FrameTracer : public mac::MacObserver {
 public:
  /// `self` labels whose viewpoint the trace records.
  explicit FrameTracer(NodeId self, std::size_t max_lines = 100000)
      : self_(self), max_lines_(max_lines) {}

  void on_frame(const mac::Frame& frame, SimTime start, SimTime end) override {
    char buf[160];
    char peer[24];
    if (frame.receiver == kBroadcastNode) {
      std::snprintf(peer, sizeof peer, "%u->*", frame.transmitter);
    } else {
      std::snprintf(peer, sizeof peer, "%u->%u", frame.transmitter, frame.receiver);
    }
    std::snprintf(buf, sizeof buf,
                  "%.7f  n%u  %-4s %-9s seq=%u att=%u dur=%lldus len=%uB air=%lldus",
                  time_to_seconds(start), self_,
                  mac::frame_type_name(frame.type), peer, frame.seq_off,
                  frame.attempt,
                  static_cast<long long>(frame.duration / kMicrosecond),
                  frame.payload_bytes,
                  static_cast<long long>((end - start) / kMicrosecond));
    lines_.emplace_back(buf);
    ++total_;
    if (lines_.size() > max_lines_) lines_.pop_front();
  }

  const std::deque<std::string>& lines() const { return lines_; }
  std::uint64_t total_frames() const { return total_; }

  /// Concatenates the retained lines.
  std::string render() const {
    std::string out;
    for (const auto& l : lines_) {
      out += l;
      out += '\n';
    }
    return out;
  }

 private:
  NodeId self_;
  std::size_t max_lines_;
  std::deque<std::string> lines_;
  std::uint64_t total_ = 0;
};

}  // namespace manet::net
