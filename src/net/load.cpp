#include "net/load.hpp"

#include <cmath>

namespace manet::net {

namespace {
void default_setup(Network& net) { net.build_random_flows(); }
}  // namespace

double measure_busy_fraction(const ScenarioConfig& config, double packets_per_second,
                             NodeId probe, const FlowSetup& setup,
                             double warmup_s, double measure_s) {
  ScenarioConfig cfg = config;
  cfg.packets_per_second = packets_per_second;
  cfg.sim_seconds = warmup_s + measure_s;

  Network net(cfg);
  if (setup) {
    setup(net);
  } else {
    default_setup(net);
  }
  net.set_flow_rates(packets_per_second);

  const SimTime stop = seconds_to_time(cfg.sim_seconds);
  net.start_traffic(0, stop);
  const SimTime measure_from = seconds_to_time(warmup_s);
  net.run_until(stop);
  return net.timeline(probe).busy_fraction(measure_from, stop);
}

CalibrationResult calibrate_load(const ScenarioConfig& config, double target,
                                 const FlowSetup& setup, double tol, int max_probes) {
  CalibrationResult result;
  // Probe at the center node (where the paper's monitored pair sits). The
  // center is layout-determined, so build one throwaway network to find it.
  NodeId probe;
  {
    Network net(config);
    probe = net.center_node();
  }

  auto probe_busy = [&](double rate) {
    ++result.probe_runs;
    return measure_busy_fraction(config, rate, probe, setup);
  };

  // Bracket the target: grow the rate until the busy fraction exceeds it.
  double lo_rate = 0.0, lo_busy = 0.0;
  double hi_rate = 4.0;
  double hi_busy = probe_busy(hi_rate);
  while (hi_busy < target && hi_rate < 4096.0 && result.probe_runs < max_probes) {
    lo_rate = hi_rate;
    lo_busy = hi_busy;
    hi_rate *= 2.0;
    hi_busy = probe_busy(hi_rate);
  }

  // Bisect within the bracket.
  double best_rate = hi_rate, best_busy = hi_busy;
  while (result.probe_runs < max_probes &&
         std::abs(best_busy - target) > tol) {
    const double mid = 0.5 * (lo_rate + hi_rate);
    const double busy = probe_busy(mid);
    if (std::abs(busy - target) < std::abs(best_busy - target)) {
      best_rate = mid;
      best_busy = busy;
    }
    if (busy < target) {
      lo_rate = mid;
      lo_busy = busy;
    } else {
      hi_rate = mid;
      hi_busy = busy;
    }
  }
  (void)lo_busy;

  result.packets_per_second = best_rate;
  result.measured_busy_fraction = best_busy;
  return result;
}

}  // namespace manet::net
