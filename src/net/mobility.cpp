#include "net/mobility.hpp"

#include <cassert>

namespace manet::net {

RandomWaypoint::RandomWaypoint(std::vector<geom::Vec2> initial,
                               const RandomWaypointParams& params,
                               std::uint64_t seed)
    : params_(params) {
  assert(params.min_speed > 0.0 && params.max_speed >= params.min_speed);
  nodes_.reserve(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    NodeState st{util::Xoshiro256ss(util::mix64(seed ^ (0x5BD1E995u + i))), Leg{}};
    st.leg = make_leg(st.rng, initial[i], 0);
    nodes_.push_back(std::move(st));
  }
}

RandomWaypoint::Leg RandomWaypoint::make_leg(util::Xoshiro256ss& rng,
                                             geom::Vec2 from, SimTime start) const {
  Leg leg;
  leg.start = start;
  leg.from = from;
  leg.to = {rng.uniform(0.0, params_.width), rng.uniform(0.0, params_.height)};
  const double speed = rng.uniform(params_.min_speed, params_.max_speed);
  const double dist = geom::distance(from, leg.to);
  leg.arrive = start + seconds_to_time(dist / speed);
  leg.next_start = leg.arrive + params_.pause;
  return leg;
}

void RandomWaypoint::advance_to(NodeState& st, SimTime at) const {
  while (at >= st.leg.next_start) {
    st.leg = make_leg(st.rng, st.leg.to, st.leg.next_start);
    ++st.leg_index;
  }
}

std::uint64_t RandomWaypoint::position_epoch(NodeId node, SimTime at) const {
  NodeState& st = nodes_.at(node);
  if (at < st.leg.start) at = st.leg.start;  // clamp rewinds like position()
  advance_to(st, at);
  // Stationary only during the pause [arrive, next_start); the leg index
  // distinguishes successive pauses at different waypoints.
  if (at >= st.leg.arrive && params_.pause > 0) return st.leg_index;
  return phy::kMovingEpoch;
}

phy::MotionState RandomWaypoint::motion(NodeId node, SimTime at) const {
  NodeState& st = nodes_.at(node);
  if (at < st.leg.start) at = st.leg.start;  // clamp rewinds like position()
  advance_to(st, at);
  const Leg& leg = st.leg;
  phy::MotionState m;
  if (at >= leg.arrive) {
    // Pause phase [arrive, next_start): parked at the waypoint. With
    // pause == 0 this phase is empty and advance_to() already skipped it.
    m.position = leg.to;
    m.velocity_mps = {0.0, 0.0};
    m.until = leg.next_start;
    m.epoch = 2 * st.leg_index + 1;
    return m;
  }
  // Travel phase [start, arrive): position() interpolates linearly, so the
  // segment's velocity is exact up to floating-point noise (the channel
  // pads its cells to absorb that).
  m.position = position_at(leg, at);
  const double travel_s = time_to_seconds(leg.arrive - leg.start);
  m.velocity_mps = (leg.to - leg.from) * (1.0 / travel_s);
  m.until = leg.arrive;
  m.epoch = 2 * st.leg_index;
  return m;
}

geom::Vec2 RandomWaypoint::position_at(const Leg& leg, SimTime at) {
  if (at >= leg.arrive) return leg.to;  // pausing
  const double frac = static_cast<double>(at - leg.start) /
                      static_cast<double>(leg.arrive - leg.start);
  return leg.from + (leg.to - leg.from) * frac;
}

geom::Vec2 RandomWaypoint::position(NodeId node, SimTime at) const {
  NodeState& st = nodes_.at(node);
  if (at < st.leg.start) {
    // Out-of-order (earlier) query: restart the node's trajectory. This is
    // deterministic only for monotone queries, which the simulator
    // guarantees; tolerate rewinds by clamping to the current leg start.
    at = st.leg.start;
  }
  advance_to(st, at);
  return position_at(st.leg, at);
}

}  // namespace manet::net
