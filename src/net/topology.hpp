// Node placement builders: the paper's 7x8 grid and random layouts.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"
#include "util/rng.hpp"

namespace manet::net {

/// Grid of `rows` x `cols` nodes spaced `spacing` meters apart, with the
/// first node at `origin`. Node i sits at (origin.x + (i % cols) * spacing,
/// origin.y + (i / cols) * spacing).
std::vector<geom::Vec2> grid_topology(std::size_t rows, std::size_t cols,
                                      double spacing, geom::Vec2 origin = {});

/// Index of the node nearest the grid centroid (a "center" node).
std::size_t grid_center_index(std::size_t rows, std::size_t cols);

/// `n` nodes uniform in [0,width) x [0,height).
std::vector<geom::Vec2> random_topology(std::size_t n, double width, double height,
                                        util::Xoshiro256ss& rng);

/// True if the unit-disk graph with the given link range is connected.
bool is_connected(const std::vector<geom::Vec2>& nodes, double range);

/// Resamples random layouts until the topology is connected at `range`
/// (throws after `max_tries`). The paper sizes its random scenarios (112
/// nodes in 3000x3000 m) so connectivity holds with high probability.
std::vector<geom::Vec2> random_connected_topology(std::size_t n, double width,
                                                  double height, double range,
                                                  util::Xoshiro256ss& rng,
                                                  int max_tries = 200);

/// Indices of nodes within `range` of node `i` (excluding i).
std::vector<std::size_t> neighbors_within(const std::vector<geom::Vec2>& nodes,
                                          std::size_t i, double range);

}  // namespace manet::net
