// Node placement builders: the paper's 7x8 grid and random layouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"
#include "util/rng.hpp"

namespace manet::net {

/// Bucket grid over a fixed layout for O(neighborhood) range queries —
/// connectivity checks and flow seeding on 10k-node layouts would
/// otherwise be O(N^2) scans. Results are exact (same <= comparison on the
/// same doubles as the naive scan), so callers switching to the index stay
/// byte-identical.
class LayoutIndex {
 public:
  /// Buckets `nodes` (which must outlive the index) into cells of
  /// `cell_m` meters. Throws std::invalid_argument on a non-positive cell
  /// or coordinates that would overflow 32-bit cell indexing.
  LayoutIndex(const std::vector<geom::Vec2>& nodes, double cell_m);

  /// Appends (ascending) the indices of nodes within `range` of nodes[i],
  /// excluding i — exactly neighbors_within(nodes, i, range).
  void neighbors_into(std::size_t i, double range,
                      std::vector<std::size_t>& out) const;

  /// True when some other node lies within `range` of nodes[i].
  bool has_neighbor(std::size_t i, double range) const;

 private:
  static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t coord(double v) const;

  const std::vector<geom::Vec2>& nodes_;
  double cell_m_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
};

/// Grid of `rows` x `cols` nodes spaced `spacing` meters apart, with the
/// first node at `origin`. Node i sits at (origin.x + (i % cols) * spacing,
/// origin.y + (i / cols) * spacing).
std::vector<geom::Vec2> grid_topology(std::size_t rows, std::size_t cols,
                                      double spacing, geom::Vec2 origin = {});

/// Index of the node nearest the grid centroid (a "center" node).
std::size_t grid_center_index(std::size_t rows, std::size_t cols);

/// `n` nodes uniform in [0,width) x [0,height).
std::vector<geom::Vec2> random_topology(std::size_t n, double width, double height,
                                        util::Xoshiro256ss& rng);

/// True if the unit-disk graph with the given link range is connected.
/// Bucket-grid BFS: O(N * neighborhood) instead of the reference's O(N^2).
bool is_connected(const std::vector<geom::Vec2>& nodes, double range);

/// The original O(N^2) BFS, kept as the equality oracle for is_connected.
bool is_connected_reference(const std::vector<geom::Vec2>& nodes, double range);

/// Resamples random layouts until the topology is connected at `range`
/// (throws after `max_tries`). The paper sizes its random scenarios (112
/// nodes in 3000x3000 m) so connectivity holds with high probability.
std::vector<geom::Vec2> random_connected_topology(std::size_t n, double width,
                                                  double height, double range,
                                                  util::Xoshiro256ss& rng,
                                                  int max_tries = 200);

/// Indices of nodes within `range` of node `i` (excluding i).
std::vector<std::size_t> neighbors_within(const std::vector<geom::Vec2>& nodes,
                                          std::size_t i, double range);

}  // namespace manet::net
