#include "net/traffic.hpp"

namespace manet::net {

namespace {
/// Payload ids are globally unique and traceable to the source.
std::uint64_t make_payload_id(NodeId src, std::uint64_t counter) {
  return (static_cast<std::uint64_t>(src) << 40) | counter;
}
}  // namespace

CbrSource::CbrSource(sim::Simulator& simulator, NodeId self, PacketSink& sink,
                     NodeId dest, double packets_per_second,
                     std::uint32_t payload_bytes, std::uint64_t seed)
    : sim_(simulator),
      self_(self),
      sink_(sink),
      dest_(dest),
      rate_(packets_per_second),
      payload_bytes_(payload_bytes),
      rng_(seed) {}

void CbrSource::start(SimTime start, SimTime stop) {
  stop_ = stop;
  // Jitter the first packet uniformly over one period so CBR sources do not
  // phase-lock across the network.
  const SimDuration period = seconds_to_time(1.0 / rate_);
  const SimTime first = start + static_cast<SimDuration>(
                                    rng_.uniform() * static_cast<double>(period));
  sim_.at(first, [this] { emit(); });
}

void CbrSource::emit() {
  if (sim_.now() >= stop_) return;
  sink_.submit(dest_, payload_bytes_, make_payload_id(self_, ++generated_));
  const SimDuration period = seconds_to_time(1.0 / rate_);
  sim_.after(period, [this] { emit(); });
}

PoissonSource::PoissonSource(sim::Simulator& simulator, NodeId self,
                             PacketSink& sink, NodeId dest,
                             double packets_per_second,
                             std::uint32_t payload_bytes, std::uint64_t seed)
    : sim_(simulator),
      self_(self),
      sink_(sink),
      dest_(dest),
      rate_(packets_per_second),
      payload_bytes_(payload_bytes),
      rng_(seed) {}

void PoissonSource::start(SimTime start, SimTime stop) {
  stop_ = stop;
  sim_.at(start, [this] { schedule_next(); });
}

void PoissonSource::schedule_next() {
  if (sim_.now() >= stop_) return;
  const SimDuration gap = seconds_to_time(rng_.exponential(rate_));
  sim_.after(gap, [this] { emit(); });
}

void PoissonSource::emit() {
  if (sim_.now() >= stop_) return;
  sink_.submit(dest_, payload_bytes_, make_payload_id(self_, ++generated_));
  schedule_next();
}

}  // namespace manet::net
