// AODV routing (RFC 3561 subset) — the routing protocol of Table 1.
//
// Implements on-demand route discovery with RREQ flooding, destination
// sequence numbers, destination-only RREP, reverse/forward route setup,
// route lifetimes, and RERR propagation on link failure (detected through
// the MAC's ACK failures; no hello messages). Intermediate-node replies
// and expanding-ring search are intentionally omitted — the paper's
// workloads never need them — but the discovery retry logic is real.
//
// The router sits between traffic sources and the DCF MAC: it is the
// node's MacListener and forwards application deliveries to its own
// listener.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mac/dcf.hpp"
#include "net/traffic.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace manet::net {

struct AodvParams {
  SimDuration active_route_timeout = 3 * kSecond;
  SimDuration route_discovery_timeout = 250 * kMillisecond;
  int rreq_retries = 2;
  std::uint32_t max_hops = 32;          // TTL for RREQ/RERR propagation
  std::size_t pending_queue_cap = 16;   // packets buffered per destination
  std::uint32_t control_packet_bytes = 24;
};

struct Route {
  NodeId next_hop = kInvalidNode;
  std::uint32_t hop_count = 0;
  std::uint32_t dest_seq = 0;
  SimTime expires = 0;
};

/// AODV routing table with the RFC's freshness rules.
class RouteTable {
 public:
  /// Valid (unexpired) route to `dest`, if any.
  std::optional<Route> lookup(NodeId dest, SimTime now) const;

  /// Installs/updates a route if it is fresher (higher sequence number) or
  /// equally fresh with fewer hops, per RFC 3561 6.2. Returns true when
  /// the table changed.
  bool update(NodeId dest, const Route& candidate);

  /// Removes the route to `dest`; returns its last sequence number.
  std::uint32_t invalidate(NodeId dest);

  /// Removes every route whose next hop is `via`; returns the affected
  /// destinations.
  std::vector<NodeId> invalidate_via(NodeId via);

  /// Refreshes the expiry of an in-use route.
  void refresh(NodeId dest, SimTime expires);

  std::size_t size() const { return routes_.size(); }

 private:
  std::unordered_map<NodeId, Route> routes_;
};

struct AodvStats {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;        // L3 packets that reached us as dest
  std::uint64_t forwarded = 0;
  std::uint64_t rreq_sent = 0;        // originated + rebroadcast
  std::uint64_t rrep_sent = 0;
  std::uint64_t rerr_sent = 0;
  std::uint64_t discovery_failures = 0;
  std::uint64_t drops_no_route = 0;   // forwarding with no route
  std::uint64_t drops_link_failure = 0;
  std::uint64_t drops_buffer_full = 0;
};

/// Receives packets that reached their final destination.
class AodvListener {
 public:
  virtual ~AodvListener() = default;
  virtual void on_l3_delivered(const mac::Frame& data, SimTime at) = 0;
};

class AodvRouter : public mac::MacListener, public PacketSink {
 public:
  AodvRouter(sim::Simulator& simulator, mac::DcfMac& mac,
             const AodvParams& params = {});

  NodeId id() const { return mac_.id(); }
  const AodvStats& stats() const { return stats_; }
  const RouteTable& routes() const { return table_; }
  void set_listener(AodvListener* listener) { listener_ = listener; }

  // PacketSink: originate an L3 packet toward `dest` (any number of hops).
  bool submit(NodeId dest, std::uint32_t payload_bytes,
              std::uint64_t payload_id) override;

  // mac::MacListener:
  void on_delivered(const mac::Frame& data, SimTime at) override;
  void on_sent(const mac::Frame&, SimTime) override {}
  void on_dropped(const mac::Frame& data, mac::DropReason reason) override;

 private:
  void handle_rreq(const mac::Frame& frame);
  void handle_rrep(const mac::Frame& frame);
  void handle_rerr(const mac::Frame& frame);
  void forward_data(mac::Frame data);
  void start_discovery(NodeId dest, int attempts_left);
  void send_rreq(NodeId dest, std::uint32_t dest_seq);
  void send_rerr(NodeId dest, std::uint32_t dest_seq, std::uint32_t hops);
  void flush_pending(NodeId dest);
  void drop_pending(NodeId dest, std::uint64_t* counter);

  sim::Simulator& sim_;
  mac::DcfMac& mac_;
  AodvParams params_;
  AodvListener* listener_ = nullptr;

  RouteTable table_;
  std::uint32_t own_seq_ = 0;
  std::uint32_t next_rreq_id_ = 1;
  // RREQ duplicate suppression: (origin, rreq_id) pairs recently seen.
  std::unordered_set<std::uint64_t> seen_rreqs_;
  // Packets awaiting a route, per destination.
  std::unordered_map<NodeId, std::deque<mac::Frame>> pending_;
  // Destinations with an active discovery (to avoid duplicate RREQs).
  std::unordered_set<NodeId> discovering_;

  AodvStats stats_;
};

}  // namespace manet::net
