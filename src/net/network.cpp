#include "net/network.hpp"

#include <stdexcept>

#include "net/topology.hpp"

namespace manet::net {

Network::Network(const ScenarioConfig& config)
    : config_(config), flow_rng_(util::mix64(config.seed ^ 0xF10Au)) {
  config_.validate();
  // --- Layout ---
  std::vector<geom::Vec2> layout;
  if (config_.topology == TopologyKind::kGrid) {
    // Center the grid in the field.
    const double w = static_cast<double>(config_.grid_cols - 1) * config_.grid_spacing_m;
    const double h = static_cast<double>(config_.grid_rows - 1) * config_.grid_spacing_m;
    const geom::Vec2 origin{(config_.area_width_m - w) / 2.0,
                            (config_.area_height_m - h) / 2.0};
    layout = grid_topology(config_.grid_rows, config_.grid_cols,
                           config_.grid_spacing_m, origin);
    center_ = static_cast<NodeId>(grid_center_index(config_.grid_rows, config_.grid_cols));
  } else {
    // Connectivity is required at the sensing range: at the paper's density
    // (112 nodes / 9 km^2) the average *transmission*-range degree is only
    // ~2.4, so demanding a connected 250 m unit-disk graph would loop
    // forever. One-hop flows only need each source to have some tx-range
    // neighbor, which build_random_flows handles per source.
    util::Xoshiro256ss topo_rng(util::mix64(config_.seed ^ 0x7090u));
    layout = random_connected_topology(config_.random_nodes, config_.area_width_m,
                                       config_.area_height_m,
                                       config_.prop.cs_range_m, topo_rng);
    // Center: the node nearest the field centroid that has a one-hop
    // neighbor (it anchors the monitored S-R pair).
    const geom::Vec2 mid{config_.area_width_m / 2.0, config_.area_height_m / 2.0};
    const LayoutIndex index(layout, config_.prop.tx_range_m);
    double best = 1e300;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      if (!index.has_neighbor(i, config_.prop.tx_range_m)) continue;
      const double d = (layout[i] - mid).norm2();
      if (d < best) {
        best = d;
        center_ = static_cast<NodeId>(i);
      }
    }
  }

  // --- Mobility ---
  if (config_.mobility == MobilityKind::kStatic) {
    mobility_ = std::make_unique<StaticMobility>(layout);
  } else {
    RandomWaypointParams rwp;
    rwp.width = config_.area_width_m;
    rwp.height = config_.area_height_m;
    rwp.min_speed = std::max(config_.min_speed_mps, 0.1);
    rwp.max_speed = config_.max_speed_mps;
    rwp.pause = seconds_to_time(config_.pause_s);
    mobility_ = std::make_unique<RandomWaypoint>(layout, rwp,
                                                 util::mix64(config_.seed ^ 0x30B1u));
  }

  // --- PHY + nodes ---
  propagation_ = std::make_unique<phy::Propagation>(config_.prop,
                                                    util::mix64(config_.seed ^ 0x5AADu));
  channel_ = std::make_unique<phy::Channel>(sim_, *propagation_, *mobility_);
  channel_->set_index_mode(phy::Channel::parse_index_mode(config_.channel_index));
  const SimDuration timeline_retention =
      seconds_to_time(config_.timeline_retention_s);
  nodes_.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<NodeId>(i), sim_, *channel_, config_.mac,
        timeline_retention, config_.timeline_max_transitions));
  }
  has_flow_.assign(nodes_.size(), false);

  // --- Channel impairments (after radios exist: install_faults schedules
  // the outage toggles against attached radios) ---
  if (config_.faults.enabled()) {
    fault_injector_ = std::make_unique<phy::FaultInjector>(
        config_.faults, util::mix64(config_.seed ^ 0xFA17Bu));
    fault_injector_->set_corruptor(mac::corrupt_rts_fields);
    channel_->install_faults(*fault_injector_);
  }

  // --- L3 ---
  mac_sinks_.reserve(nodes_.size());
  for (auto& node : nodes_) {
    mac_sinks_.push_back(std::make_unique<DirectMacSink>(node->mac));
  }
  if (config_.routing == RoutingKind::kAodv) {
    routers_.reserve(nodes_.size());
    for (auto& node : nodes_) {
      routers_.push_back(std::make_unique<AodvRouter>(sim_, node->mac));
    }
  }
}

PacketSink& Network::sink(NodeId id) {
  if (!routers_.empty()) return *routers_.at(id);
  return *mac_sinks_.at(id);
}

std::vector<NodeId> Network::neighbors(NodeId id, double range, SimTime at) const {
  std::vector<NodeId> out;
  // Exact grid-backed query first: O(neighborhood) instead of O(N), with
  // byte-identical results (the channel falls back by returning false).
  if (channel_->radios_within(id, range, at, out)) return out;
  const geom::Vec2 p = mobility_->position(id, at);
  const double r2 = range * range;
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    if (j == id) continue;
    const geom::Vec2 q = mobility_->position(static_cast<NodeId>(j), at);
    if ((p - q).norm2() <= r2) out.push_back(static_cast<NodeId>(j));
  }
  return out;
}

std::unique_ptr<TrafficSource> Network::make_source(NodeId src, NodeId dst,
                                                    double pps) {
  const std::uint64_t seed =
      util::mix64(config_.seed ^ (0xA771C0 + (++traffic_seed_counter_)));
  if (config_.traffic == TrafficKind::kCbr) {
    return std::make_unique<CbrSource>(sim_, src, sink(src), dst, pps,
                                       config_.payload_bytes, seed);
  }
  return std::make_unique<PoissonSource>(sim_, src, sink(src), dst, pps,
                                         config_.payload_bytes, seed);
}

TrafficSource& Network::add_flow(NodeId src, NodeId dst, double pps) {
  if (src >= nodes_.size() || dst >= nodes_.size() || src == dst) {
    throw std::invalid_argument("invalid flow endpoints");
  }
  flows_.push_back(make_source(src, dst, pps));
  has_flow_[src] = true;
  return *flows_.back();
}

void Network::build_random_flows(const std::vector<NodeId>& exclude) {
  std::vector<bool> banned = has_flow_;
  for (NodeId e : exclude) banned.at(e) = true;

  std::vector<NodeId> candidates;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!banned[i]) candidates.push_back(i);
  }

  std::size_t wanted = config_.num_flows;
  while (wanted > flows_.size() && !candidates.empty()) {
    const std::size_t pick = flow_rng_.uniform_int(candidates.size());
    const NodeId src = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));

    NodeId dst = kInvalidNode;
    if (config_.flow_pattern == FlowPattern::kOneHop) {
      // A random one-hop neighbor at t=0 (the paper's workload).
      auto nbrs = neighbors(src, config_.prop.tx_range_m, 0);
      if (nbrs.empty()) continue;
      dst = nbrs[flow_rng_.uniform_int(nbrs.size())];
    } else {
      // Any other node; AODV finds the path.
      do {
        dst = static_cast<NodeId>(flow_rng_.uniform_int(nodes_.size()));
      } while (dst == src);
    }
    add_flow(src, dst, config_.packets_per_second);
  }
}

void Network::set_flow_rates(double pps) {
  for (auto& f : flows_) f->set_rate(pps);
}

void Network::start_traffic(SimTime start, SimTime stop) {
  for (auto& f : flows_) f->start(start, stop);
}

}  // namespace manet::net
