// Network: assembles a complete simulated ad hoc network from a
// ScenarioConfig — simulator, propagation, channel, mobility, one radio +
// DCF MAC + carrier-sense timeline per node, and the traffic flows.
//
// This is the substrate every experiment runs on; the detection framework
// (src/detect) attaches to it from outside via MAC observers and radio
// listeners.
#pragma once

#include <memory>
#include <vector>

#include "mac/dcf.hpp"
#include "net/aodv.hpp"
#include "net/mobility.hpp"
#include "net/scenario.hpp"
#include "net/traffic.hpp"
#include "phy/channel.hpp"
#include "phy/cs_timeline.hpp"
#include "phy/impairments.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace manet::net {

/// One station: radio + MAC + the CS timeline monitors read.
struct Node {
  Node(NodeId id, sim::Simulator& sim, phy::Channel& channel,
       const mac::DcfParams& params,
       SimDuration timeline_retention = 10 * kSecond,
       std::size_t timeline_max_transitions =
           phy::CsTimeline::kDefaultMaxTransitions)
      : radio(id, channel),
        mac(sim, radio, params),
        timeline(timeline_retention, timeline_max_transitions) {
    radio.add_listener(&timeline);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  phy::Radio radio;
  mac::DcfMac mac;
  phy::CsTimeline timeline;
};

class Network {
 public:
  explicit Network(const ScenarioConfig& config);

  const ScenarioConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }
  phy::Channel& channel() { return *channel_; }

  std::size_t size() const { return nodes_.size(); }
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  mac::DcfMac& mac(NodeId id) { return nodes_.at(id)->mac; }
  phy::Radio& radio(NodeId id) { return nodes_.at(id)->radio; }
  phy::CsTimeline& timeline(NodeId id) { return nodes_.at(id)->timeline; }

  /// The node's AODV router (null unless config.routing == kAodv). With
  /// routing enabled the router owns the MAC's listener slot.
  AodvRouter* router(NodeId id) { return routers_.empty() ? nullptr : routers_.at(id).get(); }

  /// The channel fault injector (null when config.faults is disabled).
  phy::FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// The sink traffic sources feed (router when routing is enabled,
  /// otherwise the MAC itself).
  PacketSink& sink(NodeId id);

  const phy::PositionProvider& positions() const { return *mobility_; }
  geom::Vec2 position_of(NodeId id, SimTime at) const {
    return mobility_->position(id, at);
  }

  /// Neighbors of `id` within `range` meters at simulation time `at`.
  std::vector<NodeId> neighbors(NodeId id, double range, SimTime at) const;

  /// A node near the middle of the layout (the paper places the monitored
  /// pair at the grid center so two-hop interference is fully exercised).
  NodeId center_node() const { return center_; }

  /// Creates a flow src -> dst (replacing any existing flow from src).
  /// Must be called before start_traffic.
  TrafficSource& add_flow(NodeId src, NodeId dst, double packets_per_second);

  /// Creates the configured number of random one-hop flows. Sources are
  /// distinct and never collide with flows added via add_flow; `exclude`
  /// nodes are never chosen as sources.
  void build_random_flows(const std::vector<NodeId>& exclude = {});

  std::size_t flow_count() const { return flows_.size(); }
  TrafficSource& flow(std::size_t i) { return *flows_.at(i); }

  /// Scales every flow to the given per-flow rate.
  void set_flow_rates(double packets_per_second);

  /// Starts all flows over [start, stop].
  void start_traffic(SimTime start, SimTime stop);

  /// Runs the simulation until absolute time `until`.
  void run_until(SimTime until) { sim_.run_until(until); }

 private:
  std::unique_ptr<TrafficSource> make_source(NodeId src, NodeId dst, double pps);

  ScenarioConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<phy::Propagation> propagation_;
  std::unique_ptr<phy::PositionProvider> mobility_;
  std::unique_ptr<phy::Channel> channel_;
  std::unique_ptr<phy::FaultInjector> fault_injector_;  // null when disabled
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<AodvRouter>> routers_;     // empty unless AODV
  std::vector<std::unique_ptr<DirectMacSink>> mac_sinks_;
  std::vector<std::unique_ptr<TrafficSource>> flows_;
  std::vector<bool> has_flow_;  // per node: already a source?
  NodeId center_ = 0;
  util::Xoshiro256ss flow_rng_;
  std::uint64_t traffic_seed_counter_ = 0;
};

}  // namespace manet::net
