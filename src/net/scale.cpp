#include "net/scale.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace manet::net {

void ScaleScenarioParams::validate() const {
  if (nodes == 0 || nodes > ScenarioConfig::kMaxNodes) {
    throw std::invalid_argument("scale node count out of range: " +
                                std::to_string(nodes));
  }
  if (!(density_per_km2 > 0.0) || !std::isfinite(density_per_km2)) {
    throw std::invalid_argument("scale density must be positive and finite");
  }
  // The density-preserving side length must stay inside grid-cell indexing.
  const double side_m = std::sqrt(static_cast<double>(nodes) / density_per_km2) * 1000.0;
  if (!(side_m <= ScenarioConfig::kMaxAreaM)) {
    throw std::invalid_argument(
        "scale field side overflows grid-cell indexing: " +
        std::to_string(side_m) + " m");
  }
  if (!(sim_seconds > 0.0) || !std::isfinite(sim_seconds)) {
    throw std::invalid_argument("scale sim time must be positive and finite");
  }
  if (!(packets_per_second > 0.0) || !std::isfinite(packets_per_second)) {
    throw std::invalid_argument("scale packet rate must be positive and finite");
  }
  if (payload_bytes == 0) {
    throw std::invalid_argument("scale payload size must be positive");
  }
  if (num_flows > nodes) {
    throw std::invalid_argument("scale flow count exceeds node count");
  }
  if (!(min_speed_mps >= 0.0) || !(max_speed_mps >= min_speed_mps) ||
      !std::isfinite(max_speed_mps)) {
    throw std::invalid_argument("scale speed range is invalid");
  }
  if (!(pause_s >= 0.0) || !std::isfinite(pause_s)) {
    throw std::invalid_argument("scale pause must be non-negative and finite");
  }
}

std::size_t ScaleScenarioParams::resolved_flows() const {
  if (num_flows != 0) return num_flows;
  const std::size_t derived = nodes / 20;
  return derived == 0 ? 1 : derived;
}

ScenarioConfig make_scale_config(const ScaleScenarioParams& params) {
  params.validate();
  ScenarioConfig s;
  s.topology = TopologyKind::kRandom;
  s.random_nodes = params.nodes;
  // Square field sized so nodes / area equals the requested density.
  const double side_m =
      std::sqrt(static_cast<double>(params.nodes) / params.density_per_km2) * 1000.0;
  s.area_width_m = side_m;
  s.area_height_m = side_m;
  s.mobility = MobilityKind::kRandomWaypoint;
  s.min_speed_mps = params.min_speed_mps;
  s.max_speed_mps = params.max_speed_mps;
  s.pause_s = params.pause_s;
  s.traffic = TrafficKind::kPoisson;
  s.payload_bytes = params.payload_bytes;
  s.num_flows = params.resolved_flows();
  s.packets_per_second = params.packets_per_second;
  s.routing = RoutingKind::kAodv;
  s.flow_pattern = FlowPattern::kAny;
  s.sim_seconds = params.sim_seconds;
  s.seed = params.seed;
  s.channel_index = params.channel_index;
  phy::Channel::parse_index_mode(s.channel_index);  // validate eagerly
  s.timeline_retention_s = params.timeline_retention_s;
  s.timeline_max_transitions = params.timeline_max_transitions;
  s.validate();
  return s;
}

void RequestResponder::on_l3_delivered(const mac::Frame& data, SimTime) {
  if ((data.payload_id & kRequestBit) != 0) {
    ++requests_received_;
    // Same payload size back to the originator; clearing the marker makes
    // the reply a plain delivery at the requester.
    if (sink_.submit(data.net_source, data.payload_bytes,
                     data.payload_id & ~kRequestBit)) {
      ++responses_sent_;
    }
  } else {
    ++responses_received_;
  }
}

ScaleWorkload::ScaleWorkload(Network& net, std::size_t num_flows,
                             double packets_per_second, std::uint64_t seed)
    : net_(net) {
  if (net.size() == 0 || net.router(0) == nullptr) {
    throw std::invalid_argument("scale workload requires AODV routing");
  }
  if (num_flows == 0 || num_flows > net.size()) {
    throw std::invalid_argument("scale workload flow count out of range");
  }
  responders_.reserve(net.size());
  for (NodeId i = 0; i < net.size(); ++i) {
    responders_.push_back(std::make_unique<RequestResponder>(*net.router(i)));
    net.router(i)->set_listener(responders_.back().get());
  }

  // Distinct request sources via a partial Fisher-Yates over the node ids;
  // destinations are arbitrary other nodes (AODV finds the path).
  util::Xoshiro256ss rng(util::mix64(seed ^ 0x5CA1Eu));
  std::vector<NodeId> ids(net.size());
  for (NodeId i = 0; i < net.size(); ++i) ids[i] = i;
  sources_.reserve(num_flows);
  marking_sinks_.reserve(num_flows);
  for (std::size_t k = 0; k < num_flows; ++k) {
    const std::size_t pick = k + rng.uniform_int(ids.size() - k);
    std::swap(ids[k], ids[pick]);
    const NodeId src = ids[k];
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.uniform_int(net.size()));
    } while (dst == src);
    marking_sinks_.push_back(std::make_unique<MarkingSink>(*net.router(src)));
    sources_.push_back(std::make_unique<PoissonSource>(
        net.simulator(), src, *marking_sinks_.back(), dst, packets_per_second,
        net.config().payload_bytes, util::mix64(seed ^ (0x5CA1E000u + k))));
  }
}

void ScaleWorkload::start(SimTime start, SimTime stop) {
  for (auto& source : sources_) source->start(start, stop);
}

ScaleWorkload::Stats ScaleWorkload::stats() const {
  Stats out;
  for (const auto& source : sources_) out.requests_generated += source->generated();
  for (const auto& responder : responders_) {
    out.requests_delivered += responder->requests_received();
    out.responses_sent += responder->responses_sent();
    out.responses_delivered += responder->responses_received();
  }
  return out;
}

}  // namespace manet::net
