// Mobility models implementing phy::PositionProvider.
//
// RandomWaypoint reproduces the paper's mobile scenario: each node picks a
// uniform destination in the field, moves toward it at a uniform random
// speed, pauses, and repeats. Legs are generated lazily and deterministically
// from a per-node stream, so position(t) needs no scheduled events; queries
// are expected (but not required) to be non-decreasing in t per node, which
// makes lazy advancement O(1) amortized.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "phy/signal.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::net {

/// Fixed positions (the paper's static grid experiments).
class StaticMobility : public phy::PositionProvider {
 public:
  explicit StaticMobility(std::vector<geom::Vec2> positions)
      : positions_(std::move(positions)) {}

  geom::Vec2 position(NodeId node, SimTime) const override {
    return positions_.at(node);
  }

  /// Positions never change: one epoch forever, so every link budget the
  /// channel derives from them is cacheable for the whole run.
  std::uint64_t position_epoch(NodeId, SimTime) const override { return 0; }
  double max_speed_mps() const override { return 0.0; }
  bool piecewise_linear() const override { return true; }

  /// One zero-velocity segment covering all of time: the incremental
  /// spatial index never schedules a migration for a static radio.
  phy::MotionState motion(NodeId node, SimTime) const override {
    return phy::MotionState{positions_.at(node), geom::Vec2{0.0, 0.0},
                            kTimeNever, 0};
  }

  std::size_t size() const { return positions_.size(); }

 private:
  std::vector<geom::Vec2> positions_;
};

struct RandomWaypointParams {
  double width = 3000.0;
  double height = 3000.0;
  double min_speed = 0.5;   // m/s; strictly positive to avoid stuck nodes
  double max_speed = 20.0;  // paper: uniform 0-20 m/s
  SimDuration pause = 0;    // paper: {0, 50, 100, 200, 300} s
};

class RandomWaypoint : public phy::PositionProvider {
 public:
  /// Starts each node at its entry in `initial`; per-node randomness is
  /// derived from (seed, node) so runs are reproducible and node count
  /// independent.
  RandomWaypoint(std::vector<geom::Vec2> initial, const RandomWaypointParams& params,
                 std::uint64_t seed);

  geom::Vec2 position(NodeId node, SimTime at) const override;

  /// A node parked at a waypoint (the pause phase of a leg) is stationary:
  /// its epoch is stable until the next departure, letting the channel
  /// reuse link budgets across the pause. While traveling the position
  /// changes continuously, so the epoch reports kMovingEpoch.
  std::uint64_t position_epoch(NodeId node, SimTime at) const override;
  double max_speed_mps() const override { return params_.max_speed; }
  bool piecewise_linear() const override { return true; }

  /// The current travel or pause phase as one linear segment. Travel legs
  /// get epoch 2*leg_index (constant velocity toward the waypoint, ends at
  /// arrival); pauses get 2*leg_index+1 (zero velocity, ends at departure).
  phy::MotionState motion(NodeId node, SimTime at) const override;

  const RandomWaypointParams& params() const { return params_; }

 private:
  struct Leg {
    SimTime start = 0;      // leg begins (after any pause)
    SimTime arrive = 0;     // reaches `to`
    SimTime next_start = 0; // arrive + pause
    geom::Vec2 from;
    geom::Vec2 to;
  };

  struct NodeState {
    util::Xoshiro256ss rng;
    Leg leg;
    std::uint64_t leg_index = 0;  // feeds the pause-phase position epoch
  };

  void advance_to(NodeState& st, SimTime at) const;
  Leg make_leg(util::Xoshiro256ss& rng, geom::Vec2 from, SimTime start) const;
  /// Exact position within a leg; shared by position() and motion() so the
  /// two are bit-identical at the same query time.
  static geom::Vec2 position_at(const Leg& leg, SimTime at);

  RandomWaypointParams params_;
  mutable std::vector<NodeState> nodes_;  // lazily advanced cache
};

}  // namespace manet::net
