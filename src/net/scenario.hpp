// Scenario configuration — the paper's Table 1 as a typed struct.
//
// Defaults reproduce Table 1 exactly:
//   grid 7x8 (56 nodes) or random (112 nodes), 3000 m x 3000 m field,
//   240 m grid spacing, 250 m transmission range, 550 m sensing range,
//   random waypoint 0-20 m/s with pauses {0,50,100,200,300} s,
//   Poisson/CBR traffic, 512-byte packets, queue length 50, 300 s runs,
//   IEEE 802.11 PHY/MAC, one-hop flows (the paper's AODV routes never
//   leave the first hop), UDP-like fire-and-forget transport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mac/params.hpp"
#include "phy/impairments.hpp"
#include "phy/propagation.hpp"
#include "util/config.hpp"
#include "util/types.hpp"

namespace manet::net {

enum class TopologyKind { kGrid, kRandom };
enum class TrafficKind { kPoisson, kCbr };
enum class MobilityKind { kStatic, kRandomWaypoint };
enum class RoutingKind { kNone, kAodv };
enum class FlowPattern { kOneHop, kAny };

struct ScenarioConfig {
  TopologyKind topology = TopologyKind::kGrid;
  std::size_t grid_rows = 7;
  std::size_t grid_cols = 8;
  double grid_spacing_m = 240.0;
  std::size_t random_nodes = 112;
  double area_width_m = 3000.0;
  double area_height_m = 3000.0;

  MobilityKind mobility = MobilityKind::kStatic;
  double min_speed_mps = 0.5;
  double max_speed_mps = 20.0;
  double pause_s = 0.0;

  TrafficKind traffic = TrafficKind::kPoisson;
  std::uint32_t payload_bytes = 512;
  std::size_t num_flows = 30;
  double packets_per_second = 20.0;  // per-flow rate (calibrated per load)

  /// Table 1 lists AODV; the paper's flows are all one-hop, so routing is
  /// off by default and enabling it adds genuine multi-hop forwarding.
  RoutingKind routing = RoutingKind::kNone;
  FlowPattern flow_pattern = FlowPattern::kOneHop;

  double sim_seconds = 300.0;
  std::uint64_t seed = 1;

  /// Channel receiver-lookup path: auto | incremental | rebuild | scan
  /// (see phy::Channel::IndexMode). "auto" picks the incremental index for
  /// piecewise-linear mobility at scale; "rebuild" pins the retained PR-4
  /// kernel (the measurable pre-PR-9 baseline); "scan" is the reference.
  std::string channel_index = "auto";

  /// Per-node carrier-history budget: age-based retention plus a hard
  /// transition cap with fold-in compaction (phy::CsTimeline). Scale
  /// scenarios shrink these; monitored paper runs keep the defaults.
  double timeline_retention_s = 10.0;
  std::size_t timeline_max_transitions = std::size_t{1} << 18;

  mac::DcfParams mac;
  phy::PropagationParams prop;

  /// Channel impairment schedule (disabled by default: a default-constructed
  /// plan draws nothing and leaves every run bit-identical to a build
  /// without the fault layer).
  phy::FaultPlan faults;

  std::size_t node_count() const {
    return topology == TopologyKind::kGrid ? grid_rows * grid_cols : random_nodes;
  }

  /// Upper bounds accepted by validate(): node counts must fit the
  /// channel's 32-bit attach indices (and the pair-cache key packing) with
  /// headroom, and coordinates must stay far inside 32-bit grid-cell
  /// indexing at the ~551 m cell size.
  static constexpr std::size_t kMaxNodes = std::size_t{1} << 22;
  static constexpr double kMaxAreaM = 1e9;

  /// Throws std::invalid_argument on parameters that would overflow
  /// grid-cell indexing or node-index packing (silent OOM / wraparound
  /// otherwise). Called by from_config and the Network constructor.
  void validate() const;

  /// Declares every parameter (with Table-1 defaults) into `config`.
  static void declare(util::Config& config);

  /// Builds a ScenarioConfig from declared+overridden values.
  static ScenarioConfig from_config(const util::Config& config);
};

/// Parses the `fault_outages` config string: a comma-separated list of
/// `node:start_s:stop_s` triples (e.g. "3:10:12,7:100:105"). Empty string
/// means no outages. Throws std::invalid_argument on malformed input.
std::vector<phy::FaultPlan::Outage> parse_outages(const std::string& spec);

TopologyKind parse_topology(const std::string& name);
TrafficKind parse_traffic(const std::string& name);
MobilityKind parse_mobility(const std::string& name);
RoutingKind parse_routing(const std::string& name);
FlowPattern parse_flow_pattern(const std::string& name);

}  // namespace manet::net
