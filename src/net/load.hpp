// Offered-load calibration.
//
// The paper reports results against "traffic intensity" / "load" — the
// fraction of busy slots a station observes (Section 4's definition,
// rho = B/N). The mapping from per-flow packet rate to observed busy
// fraction depends on topology, flow placement, and MAC overheads, so the
// benches calibrate it empirically: short probe simulations bracket and
// bisect the per-flow rate until the probe node's measured busy fraction
// hits the target. This mirrors how the paper's authors dial in ns-2 loads.
#pragma once

#include <functional>

#include "net/network.hpp"
#include "net/scenario.hpp"

namespace manet::net {

struct CalibrationResult {
  double packets_per_second = 0.0;  // per-flow rate achieving the target
  double measured_busy_fraction = 0.0;
  int probe_runs = 0;
};

/// Hook that installs the experiment's flows into a freshly built network
/// (the default installs the configured random one-hop flows).
using FlowSetup = std::function<void(Network&)>;

/// Measures the busy fraction seen by `probe` for a given per-flow rate.
double measure_busy_fraction(const ScenarioConfig& config, double packets_per_second,
                             NodeId probe, const FlowSetup& setup,
                             double warmup_s = 2.0, double measure_s = 8.0);

/// Finds the per-flow rate whose measured busy fraction at the *center*
/// node approximates `target` (absolute tolerance `tol`). The probe node is
/// the network's center node, matching the paper's monitored pair.
CalibrationResult calibrate_load(const ScenarioConfig& config, double target,
                                 const FlowSetup& setup = {}, double tol = 0.03,
                                 int max_probes = 12);

}  // namespace manet::net
