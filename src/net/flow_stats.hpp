// End-to-end flow statistics: delivery ratio and latency.
//
// Wrap a flow's PacketSink with `recording_sink()` so departures are
// timestamped, and register the collector as the destination's listener
// (MAC listener for one-hop flows, AODV listener for routed ones). The
// payload-id space is global, so one collector can watch many flows.
#pragma once

#include <unordered_map>

#include "mac/dcf.hpp"
#include "net/aodv.hpp"
#include "net/traffic.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace manet::net {

class EndToEndStats : public mac::MacListener, public AodvListener {
 public:
  explicit EndToEndStats(sim::Simulator& simulator) : sim_(simulator) {}

  /// Wraps `inner` so submissions are timestamped before being forwarded.
  class RecordingSink : public PacketSink {
   public:
    RecordingSink(EndToEndStats& owner, PacketSink& inner)
        : owner_(owner), inner_(inner) {}
    bool submit(NodeId dest, std::uint32_t payload_bytes,
                std::uint64_t payload_id) override {
      const bool ok = inner_.submit(dest, payload_bytes, payload_id);
      owner_.note_sent(payload_id, ok);
      return ok;
    }

   private:
    EndToEndStats& owner_;
    PacketSink& inner_;
  };

  RecordingSink wrap(PacketSink& inner) { return RecordingSink(*this, inner); }

  void note_sent(std::uint64_t payload_id, bool accepted) {
    ++submitted_;
    if (!accepted) {
      ++refused_;
      return;
    }
    departures_.emplace(payload_id, sim_.now());
  }

  void note_delivered(std::uint64_t payload_id, SimTime at) {
    ++delivered_;
    auto it = departures_.find(payload_id);
    if (it == departures_.end()) return;  // not one of ours
    delay_.add(time_to_seconds(at - it->second));
    departures_.erase(it);
  }

  // mac::MacListener (one-hop destination):
  void on_delivered(const mac::Frame& data, SimTime at) override {
    note_delivered(data.payload_id, at);
  }
  void on_sent(const mac::Frame&, SimTime) override {}
  void on_dropped(const mac::Frame&, mac::DropReason) override { ++dropped_; }

  // AodvListener (multi-hop destination):
  void on_l3_delivered(const mac::Frame& data, SimTime at) override {
    note_delivered(data.payload_id, at);
  }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t refused() const { return refused_; }
  std::uint64_t dropped() const { return dropped_; }
  double delivery_ratio() const {
    const std::uint64_t accepted = submitted_ - refused_;
    return accepted ? static_cast<double>(delivered_) /
                          static_cast<double>(accepted)
                    : 0.0;
  }
  /// End-to-end latency statistics in seconds.
  const util::RunningStats& delay() const { return delay_; }

 private:
  sim::Simulator& sim_;
  std::unordered_map<std::uint64_t, SimTime> departures_;
  util::RunningStats delay_;
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace manet::net
