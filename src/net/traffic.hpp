// Traffic generators: the paper's CBR and Poisson sources.
//
// A source enqueues fixed-size payloads into its node's MAC for a fixed
// destination (the paper's workload sends each flow to a one-hop neighbor).
// Sources schedule themselves on the simulator; no background threads.
#pragma once

#include <cstdint>
#include <memory>

#include "mac/dcf.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::net {

/// Where traffic sources hand their packets: either a MAC directly (the
/// paper's one-hop flows) or a routing layer (multi-hop AODV).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// Returns false when the packet was refused (queue full).
  virtual bool submit(NodeId dest, std::uint32_t payload_bytes,
                      std::uint64_t payload_id) = 0;
};

/// Adapts a DCF MAC into a PacketSink (single-hop delivery).
class DirectMacSink : public PacketSink {
 public:
  explicit DirectMacSink(mac::DcfMac& mac) : mac_(mac) {}
  bool submit(NodeId dest, std::uint32_t payload_bytes,
              std::uint64_t payload_id) override {
    return mac_.enqueue(dest, payload_bytes, payload_id);
  }

 private:
  mac::DcfMac& mac_;
};

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Begins generating at `start` until `stop`.
  virtual void start(SimTime start, SimTime stop) = 0;

  virtual NodeId source() const = 0;
  virtual NodeId destination() const = 0;
  virtual std::uint64_t generated() const = 0;

  /// Changes the average packet rate (packets/s) for subsequent arrivals —
  /// used by the load calibrator.
  virtual void set_rate(double packets_per_second) = 0;
  virtual double rate() const = 0;

  /// Redirects future packets to a new destination (mobile scenarios hand
  /// the flow to whichever neighbor currently monitors the sender).
  virtual void set_destination(NodeId dest) = 0;
};

/// Constant-bit-rate source with a uniformly jittered start.
class CbrSource : public TrafficSource {
 public:
  CbrSource(sim::Simulator& simulator, NodeId self, PacketSink& sink, NodeId dest,
            double packets_per_second, std::uint32_t payload_bytes,
            std::uint64_t seed);

  void start(SimTime start, SimTime stop) override;
  NodeId source() const override { return self_; }
  NodeId destination() const override { return dest_; }
  std::uint64_t generated() const override { return generated_; }
  void set_rate(double pps) override { rate_ = pps; }
  double rate() const override { return rate_; }
  void set_destination(NodeId dest) override { dest_ = dest; }

 private:
  void emit();

  sim::Simulator& sim_;
  NodeId self_;
  PacketSink& sink_;
  NodeId dest_;
  double rate_;
  std::uint32_t payload_bytes_;
  util::Xoshiro256ss rng_;
  SimTime stop_ = 0;
  std::uint64_t generated_ = 0;
};

/// Poisson source: exponential inter-arrival times.
class PoissonSource : public TrafficSource {
 public:
  PoissonSource(sim::Simulator& simulator, NodeId self, PacketSink& sink, NodeId dest,
                double packets_per_second, std::uint32_t payload_bytes,
                std::uint64_t seed);

  void start(SimTime start, SimTime stop) override;
  NodeId source() const override { return self_; }
  NodeId destination() const override { return dest_; }
  std::uint64_t generated() const override { return generated_; }
  void set_rate(double pps) override { rate_ = pps; }
  double rate() const override { return rate_; }
  void set_destination(NodeId dest) override { dest_ = dest; }

 private:
  void schedule_next();
  void emit();

  sim::Simulator& sim_;
  NodeId self_;
  PacketSink& sink_;
  NodeId dest_;
  double rate_;
  std::uint32_t payload_bytes_;
  util::Xoshiro256ss rng_;
  SimTime stop_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace manet::net
