// Scale scenarios: N-node random-waypoint fields at constant node density
// with a multi-hop AODV request/response workload.
//
// The paper's experiments stop at 112 nodes; these builders produce the
// 1k-10k-node configurations the scale benchmarks (bench/fig_scale_sweep)
// run. The field area grows with the node count so density — and thus
// per-node contention — stays fixed, which keeps the workload comparable
// across sweep sizes.
//
// The workload exercises the full stack in both directions: Poisson
// request sources at random nodes, AODV discovery + forwarding to random
// destinations, and a responder on every node that answers each request
// back to its originator (frame.net_source). Requests are tagged in the
// payload id so responders can tell the two directions apart.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/scenario.hpp"
#include "util/types.hpp"

namespace manet::net {

struct ScaleScenarioParams {
  std::size_t nodes = 1000;

  /// Node density. The paper's random scenario sits at ~12.4 nodes/km^2 —
  /// a transmission-range degree of only ~2.4, below the continuum
  /// percolation threshold (~4.5), which is why its flows are one-hop.
  /// Multi-hop request/response needs routes to exist, so the default is
  /// denser: ~40/km^2 gives a tx-range degree near 8 and a connected
  /// 250 m graph with high probability.
  double density_per_km2 = 40.0;

  double sim_seconds = 10.0;

  /// Request flows; 0 means nodes/20 (and at least one).
  std::size_t num_flows = 0;
  double packets_per_second = 2.0;
  std::uint32_t payload_bytes = 512;

  double min_speed_mps = 0.5;
  double max_speed_mps = 20.0;
  double pause_s = 5.0;

  std::uint64_t seed = 1;

  /// Channel receiver-lookup mode (auto | incremental | rebuild | scan).
  std::string channel_index = "auto";

  /// Per-node carrier-history budgets. Scale runs keep a short horizon:
  /// nothing replays the timelines afterwards, so memory stays O(budget)
  /// per node instead of O(sim length).
  double timeline_retention_s = 2.0;
  std::size_t timeline_max_transitions = std::size_t{1} << 14;

  /// Throws std::invalid_argument on parameters that are non-positive,
  /// non-finite, or large enough to overflow grid-cell indexing.
  void validate() const;

  /// num_flows with the 0-default resolved.
  std::size_t resolved_flows() const;
};

/// Builds the ScenarioConfig for a scale run: random connected layout over
/// a density-preserving area, random-waypoint mobility, AODV routing with
/// any-node flows. Calls params.validate().
ScenarioConfig make_scale_config(const ScaleScenarioParams& params);

/// Answers request payloads delivered over AODV with a response to the
/// request's originator. Distinguishes the two directions by the marker
/// bit in the payload id (bit 63; traffic sources use bits 0..61).
class RequestResponder : public AodvListener {
 public:
  static constexpr std::uint64_t kRequestBit = std::uint64_t{1} << 63;

  explicit RequestResponder(PacketSink& sink) : sink_(sink) {}

  void on_l3_delivered(const mac::Frame& data, SimTime at) override;

  std::uint64_t requests_received() const { return requests_received_; }
  std::uint64_t responses_sent() const { return responses_sent_; }
  std::uint64_t responses_received() const { return responses_received_; }

 private:
  PacketSink& sink_;
  std::uint64_t requests_received_ = 0;
  std::uint64_t responses_sent_ = 0;
  std::uint64_t responses_received_ = 0;
};

/// The request/response workload over a Network built from
/// make_scale_config: installs a RequestResponder on every node's router
/// and Poisson request sources at `num_flows` random nodes. Throws
/// std::invalid_argument when the network has no AODV routers.
class ScaleWorkload {
 public:
  ScaleWorkload(Network& net, std::size_t num_flows, double packets_per_second,
                std::uint64_t seed);

  /// Starts every request source over [start, stop].
  void start(SimTime start, SimTime stop);

  struct Stats {
    std::uint64_t requests_generated = 0;  // submitted by sources
    std::uint64_t requests_delivered = 0;  // reached their destination
    std::uint64_t responses_sent = 0;      // accepted by the responder's router
    std::uint64_t responses_delivered = 0; // made it back to the requester
  };
  Stats stats() const;

 private:
  /// Tags outgoing request payload ids before they enter the router.
  class MarkingSink : public PacketSink {
   public:
    explicit MarkingSink(PacketSink& inner) : inner_(inner) {}
    bool submit(NodeId dest, std::uint32_t payload_bytes,
                std::uint64_t payload_id) override {
      return inner_.submit(dest, payload_bytes,
                           payload_id | RequestResponder::kRequestBit);
    }

   private:
    PacketSink& inner_;
  };

  Network& net_;
  std::vector<std::unique_ptr<RequestResponder>> responders_;  // one per node
  std::vector<std::unique_ptr<MarkingSink>> marking_sinks_;    // one per flow
  std::vector<std::unique_ptr<TrafficSource>> sources_;        // one per flow
};

}  // namespace manet::net
