#include "net/aodv.hpp"

#include <cassert>

namespace manet::net {

namespace {
std::uint64_t rreq_key(NodeId origin, std::uint32_t rreq_id) {
  return (static_cast<std::uint64_t>(origin) << 32) | rreq_id;
}

/// Sequence number comparison with wraparound (RFC 3561 uses signed
/// 32-bit subtraction).
bool seq_newer(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
}  // namespace

// --- RouteTable --------------------------------------------------------------

std::optional<Route> RouteTable::lookup(NodeId dest, SimTime now) const {
  auto it = routes_.find(dest);
  if (it == routes_.end() || it->second.expires <= now) return std::nullopt;
  return it->second;
}

bool RouteTable::update(NodeId dest, const Route& candidate) {
  auto it = routes_.find(dest);
  if (it == routes_.end()) {
    routes_.emplace(dest, candidate);
    return true;
  }
  Route& current = it->second;
  // RFC 3561 6.2: adopt when the candidate is fresher, or equally fresh
  // with fewer hops; an equally fresh report over the same next hop
  // refreshes the entry.
  if (seq_newer(candidate.dest_seq, current.dest_seq)) {
    current = candidate;
    return true;
  }
  if (candidate.dest_seq == current.dest_seq) {
    if (candidate.hop_count < current.hop_count ||
        candidate.next_hop == current.next_hop) {
      current = candidate;
      return true;
    }
  }
  return false;
}

std::uint32_t RouteTable::invalidate(NodeId dest) {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return 0;
  const std::uint32_t seq = it->second.dest_seq;
  routes_.erase(it);
  return seq;
}

std::vector<NodeId> RouteTable::invalidate_via(NodeId via) {
  std::vector<NodeId> affected;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.next_hop == via) {
      affected.push_back(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  return affected;
}

void RouteTable::refresh(NodeId dest, SimTime expires) {
  auto it = routes_.find(dest);
  if (it != routes_.end() && it->second.expires < expires) {
    it->second.expires = expires;
  }
}

// --- AodvRouter --------------------------------------------------------------

AodvRouter::AodvRouter(sim::Simulator& simulator, mac::DcfMac& mac,
                       const AodvParams& params)
    : sim_(simulator), mac_(mac), params_(params) {
  mac_.set_listener(this);
  // In flood-heavy scale workloads every node sees hundreds of distinct
  // (origin, rreq_id) pairs; growing the dedup set from empty costs a
  // rehash cascade on the hottest receive path. Pre-sizing is pure
  // allocation policy — membership semantics are unchanged.
  seen_rreqs_.reserve(512);
}

bool AodvRouter::submit(NodeId dest, std::uint32_t payload_bytes,
                        std::uint64_t payload_id) {
  ++stats_.originated;
  mac::Frame data =
      mac::make_data(id(), dest, payload_bytes, payload_id, mac_.params());
  data.net_source = id();
  data.net_destination = dest;

  if (dest == id()) {  // loopback, degenerate but defined
    ++stats_.delivered;
    if (listener_) listener_->on_l3_delivered(data, sim_.now());
    return true;
  }

  const auto route = table_.lookup(dest, sim_.now());
  if (route) {
    data.receiver = route->next_hop;
    table_.refresh(dest, sim_.now() + params_.active_route_timeout);
    return mac_.enqueue_frame(std::move(data));
  }

  auto& queue = pending_[dest];
  if (queue.size() >= params_.pending_queue_cap) {
    ++stats_.drops_buffer_full;
    return false;
  }
  queue.push_back(std::move(data));
  if (discovering_.insert(dest).second) {
    start_discovery(dest, params_.rreq_retries + 1);
  }
  return true;
}

void AodvRouter::start_discovery(NodeId dest, int attempts_left) {
  if (attempts_left <= 0) {
    ++stats_.discovery_failures;
    discovering_.erase(dest);
    drop_pending(dest, &stats_.drops_no_route);
    return;
  }
  const std::uint32_t last_seq = [&] {
    auto it = table_.lookup(dest, sim_.now());
    return it ? it->dest_seq : 0u;
  }();
  send_rreq(dest, last_seq);
  sim_.after(params_.route_discovery_timeout, [this, dest, attempts_left] {
    if (discovering_.count(dest) == 0) return;  // already resolved
    if (table_.lookup(dest, sim_.now())) {
      discovering_.erase(dest);
      flush_pending(dest);
      return;
    }
    start_discovery(dest, attempts_left - 1);
  });
}

void AodvRouter::send_rreq(NodeId dest, std::uint32_t dest_seq) {
  ++own_seq_;
  mac::Frame rreq = mac::make_data(id(), kBroadcastNode,
                                   params_.control_packet_bytes,
                                   /*payload_id=*/0, mac_.params());
  rreq.l3 = mac::L3Type::kAodvRreq;
  rreq.net_source = id();
  rreq.net_destination = dest;
  rreq.aodv.rreq_id = next_rreq_id_++;
  rreq.aodv.origin_seq = own_seq_;
  rreq.aodv.dest_seq = dest_seq;
  rreq.aodv.hop_count = 0;
  seen_rreqs_.insert(rreq_key(id(), rreq.aodv.rreq_id));
  ++stats_.rreq_sent;
  mac_.enqueue_frame(std::move(rreq));
}

void AodvRouter::send_rerr(NodeId dest, std::uint32_t dest_seq,
                           std::uint32_t hops) {
  mac::Frame rerr = mac::make_data(id(), kBroadcastNode,
                                   params_.control_packet_bytes, 0, mac_.params());
  rerr.l3 = mac::L3Type::kAodvRerr;
  rerr.net_source = id();
  rerr.net_destination = dest;   // the unreachable destination
  rerr.aodv.dest_seq = dest_seq + 1;
  rerr.aodv.hop_count = hops;
  ++stats_.rerr_sent;
  mac_.enqueue_frame(std::move(rerr));
}

void AodvRouter::flush_pending(NodeId dest) {
  auto it = pending_.find(dest);
  if (it == pending_.end()) return;
  std::deque<mac::Frame> queue = std::move(it->second);
  pending_.erase(it);
  for (mac::Frame& f : queue) {
    const auto route = table_.lookup(dest, sim_.now());
    if (!route) {
      ++stats_.drops_no_route;
      continue;
    }
    f.receiver = route->next_hop;
    mac_.enqueue_frame(std::move(f));
  }
}

void AodvRouter::drop_pending(NodeId dest, std::uint64_t* counter) {
  auto it = pending_.find(dest);
  if (it == pending_.end()) return;
  *counter += it->second.size();
  pending_.erase(it);
}

void AodvRouter::on_delivered(const mac::Frame& data, SimTime at) {
  switch (data.l3) {
    case mac::L3Type::kAodvRreq:
      handle_rreq(data);
      return;
    case mac::L3Type::kAodvRrep:
      handle_rrep(data);
      return;
    case mac::L3Type::kAodvRerr:
      handle_rerr(data);
      return;
    case mac::L3Type::kRaw:
      break;
  }

  if (data.net_destination == id() ||
      data.net_destination == kBroadcastNode) {
    ++stats_.delivered;
    if (listener_) listener_->on_l3_delivered(data, at);
    return;
  }
  forward_data(data);
}

void AodvRouter::forward_data(mac::Frame data) {
  const NodeId dest = data.net_destination;
  const auto route = table_.lookup(dest, sim_.now());
  if (!route) {
    ++stats_.drops_no_route;
    send_rerr(dest, table_.invalidate(dest), 0);
    return;
  }
  data.receiver = route->next_hop;
  table_.refresh(dest, sim_.now() + params_.active_route_timeout);
  ++stats_.forwarded;
  mac_.enqueue_frame(std::move(data));
}

void AodvRouter::handle_rreq(const mac::Frame& frame) {
  const NodeId origin = frame.net_source;
  const NodeId dest = frame.net_destination;
  if (origin == id()) return;  // our own flood echoed back
  if (!seen_rreqs_.insert(rreq_key(origin, frame.aodv.rreq_id)).second) {
    return;  // duplicate
  }

  // Reverse route to the originator through the broadcasting neighbor.
  Route reverse;
  reverse.next_hop = frame.transmitter;
  reverse.hop_count = frame.aodv.hop_count + 1;
  reverse.dest_seq = frame.aodv.origin_seq;
  reverse.expires = sim_.now() + params_.active_route_timeout;
  table_.update(origin, reverse);

  if (dest == id()) {
    // Destination-only reply (RFC 3561 6.6.1).
    if (!seq_newer(own_seq_, frame.aodv.dest_seq)) {
      own_seq_ = frame.aodv.dest_seq + 1;
    }
    mac::Frame rrep = mac::make_data(id(), reverse.next_hop,
                                     params_.control_packet_bytes, 0, mac_.params());
    rrep.l3 = mac::L3Type::kAodvRrep;
    rrep.net_source = origin;     // RREP travels back to the originator
    rrep.net_destination = id();  // ... announcing a route to us
    rrep.aodv.dest_seq = own_seq_;
    rrep.aodv.hop_count = 0;
    ++stats_.rrep_sent;
    mac_.enqueue_frame(std::move(rrep));
    return;
  }

  if (frame.aodv.hop_count + 1 >= params_.max_hops) return;  // TTL exhausted

  // Rebroadcast.
  mac::Frame fwd = frame;
  fwd.receiver = kBroadcastNode;
  fwd.aodv.hop_count += 1;
  ++stats_.rreq_sent;
  mac_.enqueue_frame(std::move(fwd));
}

void AodvRouter::handle_rrep(const mac::Frame& frame) {
  const NodeId route_dest = frame.net_destination;  // node the route leads to
  const NodeId origin = frame.net_source;           // who asked for it

  // Forward route to the replying destination.
  Route forward;
  forward.next_hop = frame.transmitter;
  forward.hop_count = frame.aodv.hop_count + 1;
  forward.dest_seq = frame.aodv.dest_seq;
  forward.expires = sim_.now() + params_.active_route_timeout;
  table_.update(route_dest, forward);

  if (origin == id()) {
    discovering_.erase(route_dest);
    flush_pending(route_dest);
    return;
  }

  // Relay the RREP along the reverse route toward the originator.
  const auto reverse = table_.lookup(origin, sim_.now());
  if (!reverse) return;  // reverse route evaporated; originator will retry
  mac::Frame fwd = frame;
  fwd.receiver = reverse->next_hop;
  fwd.aodv.hop_count += 1;
  ++stats_.rrep_sent;
  mac_.enqueue_frame(std::move(fwd));
}

void AodvRouter::handle_rerr(const mac::Frame& frame) {
  const NodeId dest = frame.net_destination;
  const auto route = table_.lookup(dest, sim_.now());
  // Only routes that actually go through the reporting neighbor are stale.
  if (!route || route->next_hop != frame.transmitter) return;
  table_.invalidate(dest);
  if (frame.aodv.hop_count < 3) {  // bounded propagation
    send_rerr(dest, frame.aodv.dest_seq, frame.aodv.hop_count + 1);
  }
}

void AodvRouter::on_dropped(const mac::Frame& data, mac::DropReason) {
  // The MAC exhausted its retries toward data.receiver: the link is gone.
  if (data.l3 != mac::L3Type::kRaw) return;  // control frames: no action
  ++stats_.drops_link_failure;
  const NodeId broken_hop = data.receiver;
  for (NodeId dest : table_.invalidate_via(broken_hop)) {
    send_rerr(dest, 0, 0);
  }
}

}  // namespace manet::net
