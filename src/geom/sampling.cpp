#include "geom/sampling.hpp"

#include <cmath>
#include <numbers>

namespace manet::geom {

Vec2 sample_rect(util::Xoshiro256ss& rng, double x0, double y0, double x1, double y1) {
  return {rng.uniform(x0, x1), rng.uniform(y0, y1)};
}

Vec2 sample_circle(util::Xoshiro256ss& rng, const Circle& c) {
  // Inverse-CDF in radius, uniform in angle.
  const double r = c.radius * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return c.center + Vec2{r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace manet::geom
