#include "geom/region_model.hpp"

#include <stdexcept>

#include "geom/circle.hpp"

namespace manet::geom {

RegionModel::RegionModel(double separation, double sensing_range)
    : separation_(separation), sensing_range_(sensing_range) {
  if (separation <= 0.0) throw std::invalid_argument("separation must be > 0");
  if (sensing_range <= 0.0) throw std::invalid_argument("sensing_range must be > 0");
  if (separation >= 2 * sensing_range) {
    throw std::invalid_argument("S and R must be within each other's sensing footprint");
  }

  const Circle s{{0.0, 0.0}, sensing_range};
  const Circle r{{separation, 0.0}, sensing_range};
  const Circle t{{-separation, 0.0}, sensing_range};  // virtual node left of S

  const double lens_sr = lens_area(sensing_range, separation);
  areas_.a2 = s.area() - lens_sr;       // S-only crescent
  areas_.a5 = r.area() - lens_sr;       // R-only crescent
  areas_.a3 = lens_sr / 2.0;            // left half of the lens
  areas_.a4 = lens_sr / 2.0;            // right half of the lens
  areas_.a1 = crescent_area(t, s);      // contends with A2, invisible to S
}

double RegionModel::p_tx_in_a2() const {
  return areas_.a2 / (areas_.a1 + areas_.a2);
}

double RegionModel::p_tx_in_a1() const {
  return areas_.a1 / (areas_.a1 + areas_.a2);
}

double RegionModel::p_tx_in_a5() const {
  return areas_.a5 / (areas_.a4 + areas_.a5);
}

double RegionModel::p_tx_in_a5_incl_a3() const {
  return areas_.a5 / (areas_.a3 + areas_.a4 + areas_.a5);
}

}  // namespace manet::geom
