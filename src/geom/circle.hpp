// Circle geometry: containment and intersection (lens) areas.
#pragma once

#include "geom/vec2.hpp"

namespace manet::geom {

struct Circle {
  Vec2 center;
  double radius = 0.0;

  bool contains(Vec2 p) const {
    return (p - center).norm2() <= radius * radius;
  }
  double area() const;
};

/// Area of the intersection ("lens") of two circles with radii r1 and r2
/// whose centers are `d` apart. Exact closed form; handles containment and
/// disjoint cases.
double lens_area(double r1, double r2, double d);

/// Convenience for equal radii.
inline double lens_area(double r, double d) { return lens_area(r, r, d); }

/// Area of circle c1 minus its overlap with c2 (the "crescent" of c1).
double crescent_area(const Circle& c1, const Circle& c2);

}  // namespace manet::geom
