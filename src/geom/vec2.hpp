// 2-D vector type used for node positions (meters).
#pragma once

#include <cmath>

namespace manet::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in this direction (zero vector maps to zero).
  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace manet::geom
