#include "geom/circle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace manet::geom {

double Circle::area() const { return std::numbers::pi * radius * radius; }

double lens_area(double r1, double r2, double d) {
  if (r1 <= 0.0 || r2 <= 0.0) return 0.0;
  if (d >= r1 + r2) return 0.0;  // disjoint
  const double rmin = std::min(r1, r2);
  const double rmax = std::max(r1, r2);
  if (d <= rmax - rmin) {
    // Smaller circle fully inside the larger.
    return std::numbers::pi * rmin * rmin;
  }
  // Standard two-circle lens formula.
  const double d2 = d * d;
  const double a1 = r1 * r1 * std::acos(std::clamp((d2 + r1 * r1 - r2 * r2) / (2 * d * r1), -1.0, 1.0));
  const double a2 = r2 * r2 * std::acos(std::clamp((d2 + r2 * r2 - r1 * r1) / (2 * d * r2), -1.0, 1.0));
  const double t = (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2);
  return a1 + a2 - 0.5 * std::sqrt(std::max(t, 0.0));
}

double crescent_area(const Circle& c1, const Circle& c2) {
  return c1.area() - lens_area(c1.radius, c2.radius, distance(c1.center, c2.center));
}

}  // namespace manet::geom
