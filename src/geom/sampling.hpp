// Uniform sampling of points in simple shapes (for Monte-Carlo validation
// of the closed-form areas and for random topologies).
#pragma once

#include "geom/circle.hpp"
#include "geom/vec2.hpp"
#include "util/rng.hpp"

namespace manet::geom {

/// Uniform point in the axis-aligned rectangle [x0,x1) x [y0,y1).
Vec2 sample_rect(util::Xoshiro256ss& rng, double x0, double y0, double x1, double y1);

/// Uniform point inside the circle.
Vec2 sample_circle(util::Xoshiro256ss& rng, const Circle& c);

/// Monte-Carlo estimate of the area of {p in bounding rect : pred(p)}.
template <typename Pred>
double monte_carlo_area(util::Xoshiro256ss& rng, double x0, double y0, double x1,
                        double y1, std::size_t samples, Pred pred) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    if (pred(sample_rect(rng, x0, y0, x1, y1))) ++hits;
  }
  return (x1 - x0) * (y1 - y0) * static_cast<double>(hits) /
         static_cast<double>(samples);
}

}  // namespace manet::geom
