// The paper's Figure-1 region model.
//
// Sender S and monitor R sit `separation` meters apart; both carrier-sense
// out to `sensing_range` meters. The paper partitions the local plane into
// five areas A1..A5 used by Equations 3-5:
//
//   A2 = S's sensing disk minus R's      (heard by S only)
//   A5 = R's sensing disk minus S's      (heard by R only)
//   A3 = A4 = half the S∩R lens          (heard by both)
//   A1 = the crescent of a disk centered one separation to the *left* of S
//        minus S's disk — the region whose nodes contend with A2's nodes
//        (freeze them) while remaining invisible to S itself.
//
// These are the closed-form analogues of the slice construction in the
// paper's Figure 1 (nodes U, T, S, R, V one grid-spacing apart).
#pragma once

#include <cstddef>

namespace manet::geom {

struct RegionAreas {
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  double a4 = 0.0;
  double a5 = 0.0;

  double total() const { return a1 + a2 + a3 + a4 + a5; }
};

class RegionModel {
 public:
  /// separation: S-R distance in meters; sensing_range: CS radius (550 m in
  /// the paper). Requires 0 < separation < 2*sensing_range.
  RegionModel(double separation, double sensing_range);

  const RegionAreas& areas() const { return areas_; }
  double separation() const { return separation_; }
  double sensing_range() const { return sensing_range_; }

  /// A2 / (A1 + A2): probability the single transmitter heard by S-but-not-R
  /// lies in A2 given that it lies in A1 ∪ A2 (paper Eq. 3 first factor).
  double p_tx_in_a2() const;

  /// A1 / (A1 + A2): complementary factor used in Eq. 4.
  double p_tx_in_a1() const;

  /// A5 / (A4 + A5): probability the transmitter heard by R lies in the
  /// R-only crescent given it lies in A4 ∪ A5 (paper Eq. 4 first factor,
  /// which assumes no node in A3 transmits).
  double p_tx_in_a5() const;

  /// A5 / (A3 + A4 + A5): the same factor without the paper's "no A3
  /// transmission" assumption — any node audible to R could be the
  /// transmitter. Empirically much closer to the simulated p(I|B) (see
  /// bench/ablation_estimator), so the monitor defaults to this variant.
  double p_tx_in_a5_incl_a3() const;

  /// Expected node counts for a spatially uniform density (nodes / m^2):
  /// k in A1, n in A2, m in A4, j in A5 — the paper's symbols.
  double expected_k(double density) const { return density * areas_.a1; }
  double expected_n(double density) const { return density * areas_.a2; }
  double expected_m(double density) const { return density * areas_.a4; }
  double expected_j(double density) const { return density * areas_.a5; }

 private:
  double separation_;
  double sensing_range_;
  RegionAreas areas_;
};

}  // namespace manet::geom
