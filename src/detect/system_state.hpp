// The paper's analytical system-state model (Section 3, Equations 1-5).
//
// Given the monitor R's locally observable state — its traffic intensity
// rho, the node counts (k, n, m, j) in regions A1, A2, A4, A5 of the
// Figure-1 geometry — the model yields the conditional probabilities
//
//   p(B|I) = P(S senses busy | R senses idle)          (Eq. 3)
//   p(I|B) = P(S senses idle | R senses busy)          (Eq. 4)
//   p(I|I) = 1 - p(B|I)                                 (Eq. 5)
//
// which the monitor uses to translate its own idle/busy slot counts
// (I, B over N observed slots) into the sender's perspective:
//
//   I_est = p(I|I) * I + p(I|B) * B                     (Eq. 1)
//   B_est = N - I_est                                   (Eq. 2)
//
// Activity mapping: Eqs. 3-4 model "node has a packet and transmits" with
// per-node probability rho. Feeding the monitor's measured channel-busy
// fraction in directly ("identity") overstates per-slot, per-node activity
// because one busy channel slot is shared by every station that hears it.
// The "per-slot" mapping first converts the channel-busy fraction into a
// per-node activity tau = 1 - (1-rho)^(1/M), M being the number of
// contenders sharing the monitor's sensing region; the paper validates its
// analysis against simulation, and this mapping is what makes the two
// agree in our substrate (see bench/ablation_estimator).
#pragma once

#include "geom/region_model.hpp"

namespace manet::detect {

enum class ActivityMapping {
  kIdentity,      // tau = rho, Eq. 3/4 verbatim
  kPerSlot,       // tau = 1 - (1 - rho)^(1/M)
};

struct SystemStateParams {
  double rho = 0.0;  // monitor's traffic intensity (busy-slot fraction)
  double k = 5.0;    // nodes in A1
  double n = 5.0;    // nodes in A2
  double m = 5.0;    // nodes in A4
  double j = 5.0;    // nodes in A5
  double contenders = 20.0;  // M: stations sharing the monitor's sensing disk
  ActivityMapping mapping = ActivityMapping::kPerSlot;
  /// Eq. 4 verbatim assumes the transmitter R hears is never in A3. With
  /// the monitored pair's own traffic concentrated exactly there, that
  /// assumption overestimates p(I|B); including A3 in the conditioning
  /// tracks simulation much better (bench/ablation_estimator) and is the
  /// default. false reproduces the paper's equation literally.
  bool include_a3_in_conditioning = true;

  bool operator==(const SystemStateParams&) const = default;
};

/// Eqs. 3-5 evaluated together for one parameter point.
struct ConditionalProbs {
  double p_busy_given_idle = 0.0;  // Eq. 3
  double p_idle_given_busy = 0.0;  // Eq. 4
  double p_idle_given_idle = 1.0;  // Eq. 5 = 1 - p_busy_given_idle
};

class SystemStateModel {
 public:
  /// `regions` fixes the A1..A5 areas (separation & sensing range).
  explicit SystemStateModel(const geom::RegionModel& regions) : regions_(regions) {}

  /// Per-node activity probability implied by rho under the mapping.
  double activity(const SystemStateParams& p) const;

  /// Eq. 3: P(S busy | R idle).
  double p_busy_given_idle(const SystemStateParams& p) const;

  /// Eq. 4: P(S idle | R busy).
  double p_idle_given_busy(const SystemStateParams& p) const;

  /// Eq. 5: P(S idle | R idle) = 1 - p_busy_given_idle.
  double p_idle_given_idle(const SystemStateParams& p) const {
    return 1.0 - p_busy_given_idle(p);
  }

  /// Eqs. 3-5 together, memoized on the exact parameter values. The inputs
  /// are already quantized upstream — rho only moves once per ARMA batch and
  /// the node counts once per density-window recount — so consecutive slot
  /// evaluations within a window hit the single-slot cache, skipping the
  /// pow() calls. Keying on exact equality makes the memo lossless: a hit
  /// returns the identical doubles a fresh evaluation would produce.
  ///
  /// The batched pipeline (detect/monitor_batch.hpp) leans on the same
  /// property in the other direction: monitors whose geometry/mapping/
  /// density knobs agree share ONE model instance per config-group, so the
  /// Eq. 1-5 evaluation runs once per (node, group) instead of once per
  /// monitor — and because every lane would have fed identical params, the
  /// shared memo returns the identical doubles each private model would
  /// have computed.
  const ConditionalProbs& conditional_probs(const SystemStateParams& p) const;

  /// Eq. 1: sender-perspective idle slots from the monitor's (I, B).
  double estimated_idle(const SystemStateParams& p, double idle_slots,
                        double busy_slots) const {
    const ConditionalProbs& probs = conditional_probs(p);
    return probs.p_idle_given_idle * idle_slots + probs.p_idle_given_busy * busy_slots;
  }

  /// Eq. 2: sender-perspective busy slots (N - I_est).
  double estimated_busy(const SystemStateParams& p, double idle_slots,
                        double busy_slots) const {
    return idle_slots + busy_slots - estimated_idle(p, idle_slots, busy_slots);
  }

  const geom::RegionModel& regions() const { return regions_; }

 private:
  geom::RegionModel regions_;
  // Single-slot memo for conditional_probs. Mutable: caching does not change
  // observable results (exact-key lookup).
  mutable SystemStateParams memo_key_;
  mutable ConditionalProbs memo_val_;
  mutable bool memo_valid_ = false;
};

}  // namespace manet::detect
