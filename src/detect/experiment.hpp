// Experiment harnesses reproducing the paper's evaluation setups.
//
// Two shapes:
//  * Conditional-probability measurement (Figures 3-4): all nodes behave,
//    and we compare the analytical p(B|I) / p(I|B) from the system-state
//    model against the ground-truth joint occupancy of the center S-R pair.
//  * Detection / misdiagnosis runs (Figures 5-6): the center node S (the
//    tagged node) optionally misbehaves with a given PM; a neighboring
//    monitor R collects Wilcoxon windows; we report the fraction of
//    windows that flag S. With mobility the monitoring role (and S's flow)
//    is handed to a fresh one-hop neighbor whenever the current monitor
//    drifts out of range, as in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "detect/monitor.hpp"
#include "exp/engine.hpp"
#include "net/network.hpp"
#include "net/scenario.hpp"

namespace manet::detect {

class TraceRecorder;  // detect/trace.hpp

// --- Conditional probabilities (Figures 3-4) --------------------------------

struct CondProbConfig {
  net::ScenarioConfig scenario;
  double rate_pps = 20.0;   // per-flow packet rate
  double warmup_s = 3.0;
  double measure_s = 30.0;
  MonitorConfig monitor;    // geometry + fixed counts + activity mapping
};

struct CondProbResult {
  double measured_rho = 0.0;          // R's busy fraction (traffic intensity)
  double sim_p_busy_given_idle = 0.0;
  double sim_p_idle_given_busy = 0.0;
  double ana_p_busy_given_idle = 0.0;
  double ana_p_idle_given_busy = 0.0;
  /// Wall-clock spent simulating this point (not part of the deterministic
  /// output; it feeds the benches' JSON records).
  double wall_seconds = 0.0;
};

CondProbResult run_cond_prob_experiment(const CondProbConfig& config);

/// Runs every point (one simulation each) across the engine's workers;
/// results come back in point order, bit-identical for any thread count.
std::vector<CondProbResult> run_cond_prob_sweep(
    const std::vector<CondProbConfig>& points, exp::Engine& engine);

// --- Adversary zoo v2 (mac/attackers.hpp) ------------------------------------

enum class AttackerKind : std::uint8_t {
  kNone,       // honest (or the legacy scalar `pm` knob of the config)
  kPm,         // the paper's solo stationary PM cheat on the tagged node
  kColluding,  // rotating group: one member aggressive at a time
  kAdaptive,   // honest during probation / monitor vigilance, cheats otherwise
  kSybil,      // violations spread across fake MAC identities
  kRtsFlood,   // bogus-RTS DoS, no data traffic from the tagged node
};

/// Declarative attacker selection for the detection experiments. The
/// default kind keeps the legacy behavior (scalar `pm` field) bit-exact.
struct AttackerSpec {
  AttackerKind kind = AttackerKind::kNone;
  double pm = 50.0;              // cheat strength (pm/colluding/adaptive/sybil)
  std::uint32_t group = 3;       // colluders, or sybil identities
  double collude_phase_s = 2.0;  // one member's aggressive turn
  double probation_s = 30.0;     // adaptive: honest until this sim time
  double vigilance_s = 0.0;      // adaptive: lie low this long after hearing a monitor
  bool suspect_monitor = false;  // adaptive: treat the monitor node as suspect
  double flood_pps = 1000.0;     // mean bogus-RTS rate
};

// --- Detection / misdiagnosis (Figures 5-6) ---------------------------------

struct DetectionConfig {
  net::ScenarioConfig scenario;
  double rate_pps = 20.0;
  /// Percentage of misbehavior of the tagged node (0 = well behaved; used
  /// for the misdiagnosis experiments).
  double pm = 0.0;
  MonitorConfig monitor;
  double warmup_s = 3.0;
  /// Hand the monitor role to a new neighbor when the current one leaves
  /// the tagged node's transmission range (mobile scenarios).
  bool mobile_handoff = false;
  SimDuration handoff_period = 500 * kMillisecond;
};

struct DetectionResult {
  std::uint64_t windows = 0;
  std::uint64_t flagged = 0;                // statistical OR deterministic
  std::uint64_t flagged_statistical = 0;    // Wilcoxon rejections only
  /// Every post-warmup WindowResult, in monitor-creation then trial order
  /// (only when MultiDetectionConfig::collect_windows; equivalence tests
  /// compare these sequences element-wise across pipeline variants).
  std::vector<WindowResult> window_log;
  /// The same decision stream split per trial, in trial order (filled by
  /// the trials/sweep entry points under collect_windows). The ROC/TTD
  /// scorer (detect/roc.hpp) needs per-trial first-crossing times, which
  /// the flattened window_log loses.
  std::vector<std::vector<WindowResult>> trial_logs;
  double detection_rate = 0.0;              // flagged / windows
  double statistical_rate = 0.0;            // flagged_statistical / windows
  double measured_rho = 0.0;    // intensity at the (initial) monitor
  std::uint64_t handoffs = 0;
  MonitorStats stats;           // aggregated over all monitors
  /// Summed wall-clock of the aggregated trials (excluded from
  /// determinism guarantees; everything above is bit-identical for any
  /// worker count).
  double wall_seconds = 0.0;
};

DetectionResult run_detection_experiment(const DetectionConfig& config);

/// Convenience: detection rate aggregated over `runs` independent trials
/// (trial i uses seed = base_seed + i, the engine's seeding contract).
/// Trials run across the engine's workers; aggregation happens in trial
/// order, so the result is bit-identical to a serial run.
DetectionResult run_detection_trials(const DetectionConfig& config, int runs,
                                     exp::Engine& engine);

/// Serial convenience overload (a 1-worker engine).
DetectionResult run_detection_trials(DetectionConfig config, int runs);

// --- Multi-monitor variant ---------------------------------------------------
//
// Runs ONE simulation with several Monitor configurations observing the
// same tagged node side by side (e.g. the four sample sizes of Figure 5).
// Sharing the run keeps the sweeps affordable and guarantees every
// configuration saw the identical channel history.

struct MultiDetectionConfig {
  net::ScenarioConfig scenario;
  double rate_pps = 20.0;
  double pm = 0.0;
  /// Adversary zoo v2 selection. kNone leaves the legacy `pm` path (and
  /// every existing artifact) untouched. Multi-identity kinds (colluding,
  /// sybil) monitor every involved identity and sum the verdicts;
  /// kRtsFlood replaces the tagged node's data flow with the flooder.
  AttackerSpec attacker;
  std::vector<MonitorConfig> monitors;   // one entry per configuration
  double warmup_s = 3.0;
  bool mobile_handoff = false;
  SimDuration handoff_period = 500 * kMillisecond;
  /// Every node within transmission range of the tagged node at t=0 runs
  /// the full monitor set (instead of only the nearest neighbor) — the
  /// scaling workload: one shared ObservationHub per monitoring node.
  /// Incompatible with mobile_handoff (the handoff protocol assumes a
  /// single monitoring role to move around).
  bool all_pairs = false;
  /// Which detection pipeline runs the monitor set (results are
  /// bit-identical across all three):
  ///  * kBatch (default) — one MonitorBatch per monitoring node: monitors
  ///    are SoA lanes grouped by shared config over one ObservationHub.
  ///  * kHub — every monitor is its own HubView over one shared
  ///    ObservationHub per node (the PR 5 pipeline).
  ///  * kReference — every monitor owns a private hub: structurally the
  ///    pre-hub pipeline, the equivalence oracle and perf baseline.
  PipelineImpl pipeline = PipelineImpl::kBatch;
  /// Fill DetectionResult::window_log (off by default: sweeps only need
  /// the aggregate counters).
  bool collect_windows = false;
  /// When set, every monitoring node's observation stream is recorded
  /// into this recorder (detect/trace.hpp): one TraceWriter per node in
  /// monitor-creation order, with kActivity markers at each handoff
  /// suspend/resume and a kTraceEnd marker at the stop time. Single-run
  /// use (run_multi_detection_experiment, not the trials/sweep entry
  /// points); the recorder must outlive the call. replay_detection() over
  /// the recorded traces reproduces this run's per-config results
  /// byte-for-byte (detect/replay.hpp).
  TraceRecorder* trace = nullptr;
};

struct MultiDetectionResult {
  std::vector<DetectionResult> per_config;  // parallel to config.monitors
  double measured_rho = 0.0;
  std::uint64_t handoffs = 0;
  /// Distinct nodes that ran monitors (1, or the neighbor count under
  /// all_pairs; max over trials when aggregated).
  std::uint64_t monitor_nodes = 0;
  double wall_seconds = 0.0;  // summed over trials; not deterministic
};

MultiDetectionResult run_multi_detection_experiment(const MultiDetectionConfig& config);

/// Aggregates `runs` independent multi-monitor trials (seed = base + i)
/// executed across the engine's workers; bit-identical to a serial run.
MultiDetectionResult run_multi_detection_trials(const MultiDetectionConfig& config,
                                                int runs, exp::Engine& engine);

/// Serial convenience overload (a 1-worker engine).
MultiDetectionResult run_multi_detection_trials(MultiDetectionConfig config, int runs);

// --- Sweeps ------------------------------------------------------------------
//
// A sweep is a list of points (one MultiDetectionConfig each, e.g. the
// load x PM grid of Figure 5) with `runs` trials per point. All
// (point, trial) pairs share the engine's work queue — the parallelism a
// bench sees is points x runs wide, not runs wide — and every point is
// aggregated in trial order, so sweep output is bit-identical for any
// thread count and scheduling.

/// Returns one aggregated result per point, in point order.
std::vector<MultiDetectionResult> run_multi_detection_sweep(
    const std::vector<MultiDetectionConfig>& points, int runs, exp::Engine& engine);

}  // namespace manet::detect
