// Online traffic-intensity estimation — the paper's Equation 6:
//
//   rho(t) = alpha * rho(t-1) + (1 - alpha) * (1/s) * sum_{i} b_i
//
// where b_i is 1 when the i-th observed slot was busy and s is the sample
// (batch) size. alpha = 0.995 following Bianchi & Tinnirello's run-time
// estimator; the paper notes (and our ablation bench confirms) that results
// are insensitive to alpha near 1.
#pragma once

#include <cstddef>

namespace manet::detect {

class ArmaIntensityFilter {
 public:
  explicit ArmaIntensityFilter(double alpha = 0.995) : alpha_(alpha) {}

  /// Feeds one batch's busy fraction ((1/s) * sum b_i). The first batch
  /// initializes the filter directly, avoiding a long cold-start transient.
  void add_batch(double busy_fraction);

  /// Feeds `s` individual slot observations as a pre-summed batch.
  void add_slots(std::size_t busy, std::size_t total) {
    if (total != 0) add_batch(static_cast<double>(busy) / static_cast<double>(total));
  }

  /// Current smoothed traffic intensity (0 before any batch).
  double intensity() const { return rho_; }

  bool primed() const { return primed_; }
  double alpha() const { return alpha_; }
  std::size_t batches() const { return batches_; }

 private:
  double alpha_;
  double rho_ = 0.0;
  bool primed_ = false;
  std::size_t batches_ = 0;
};

}  // namespace manet::detect
