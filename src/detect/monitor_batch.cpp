#include "detect/monitor_batch.hpp"

#include <cmath>
#include <numbers>

namespace manet::detect {

// --- GroupKey / group lookup -------------------------------------------------

MonitorBatch::GroupKey MonitorBatch::make_key(NodeId tagged, SimTime now,
                                              const MonitorConfig& c) {
  GroupKey k;
  k.tagged = tagged;
  k.created_at = now;
  k.arma_alpha = c.arma_alpha;
  k.arma_batch_slots = c.arma_batch_slots;
  k.separation_m = c.separation_m;
  k.sensing_range_m = c.sensing_range_m;
  k.tx_range_m = c.tx_range_m;
  k.mapping = c.mapping;
  k.busy_credit_factor = c.busy_credit_factor;
  k.apply_idle_correction = c.apply_idle_correction;
  k.fixed_n = c.fixed_n;
  k.fixed_k = c.fixed_k;
  k.fixed_m = c.fixed_m;
  k.fixed_j = c.fixed_j;
  k.fixed_contenders = c.fixed_contenders;
  k.density_window = c.density_window;
  k.max_window = c.max_window;
  k.clean_window_filter = c.clean_window_filter;
  k.queue_gap_slack_slots = c.queue_gap_slack_slots;
  k.deterministic_checks = c.deterministic_checks;
  k.rts_gap_bound = c.rts_gap_bound;
  k.max_seq_off_gap = c.max_seq_off_gap;
  k.decoded_retention = c.decoded_retention;
  k.max_decoded_frames = c.max_decoded_frames;
  k.prs_aware = c.prs_aware;
  return k;
}

MonitorBatch::Group& MonitorBatch::group_for(NodeId tagged,
                                             const MonitorConfig& config) {
  const GroupKey key = make_key(tagged, hub_.simulator().now(), config);
  for (auto& group : groups_) {
    if (group->key_ == key) return *group;
  }
  groups_.push_back(std::make_unique<Group>(*this, key, config));
  return *groups_.back();
}

// --- Group -------------------------------------------------------------------

MonitorBatch::Group::Group(MonitorBatch& batch, const GroupKey& key,
                           const MonitorConfig& config)
    : batch_(batch),
      key_(key),
      config_(config),
      prs_(key.tagged, batch.hub_.params()),
      model_(geom::RegionModel(config.separation_m, config.sensing_range_m)),
      ring_(&batch.hub_.frame_ring(*this, config.decoded_retention,
                                   config.max_decoded_frames)),
      arma_(&batch.hub_.intensity_tracker(config.arma_alpha,
                                          config.arma_batch_slots)),
      density_(&batch.hub_.density(*this, config.density_window,
                                   config.tx_range_m)) {
  batch_.hub_.attach(this);
}

MonitorBatch::Group::~Group() { batch_.hub_.detach(this); }

void MonitorBatch::Group::reset_exchange() {
  anchor_.reset();
  own_cts_pending_ = false;
  last_seq_off_.reset();
  last_rts_heard_.reset();
  last_digest_.reset();
  last_attempt_ = 0;
}

SystemStateParams MonitorBatch::Group::current_state() const {
  SystemStateParams p;
  p.rho = arma_->filter().intensity();
  p.mapping = config_.mapping;

  const double dens = density_->density(batch_.hub_.simulator().now());
  const auto& areas = model_.regions().areas();
  p.k = config_.fixed_k.value_or(dens * areas.a1);
  p.n = config_.fixed_n.value_or(dens * areas.a2);
  p.m = config_.fixed_m.value_or(dens * areas.a4);
  p.j = config_.fixed_j.value_or(dens * areas.a5);

  if (config_.fixed_contenders) {
    p.contenders = *config_.fixed_contenders;
  } else {
    const double sensing_area = std::numbers::pi * config_.sensing_range_m *
                                config_.sensing_range_m;
    p.contenders = std::max(1.0, dens * sensing_area);
  }
  return p;
}

void MonitorBatch::Group::on_hub_frame(const mac::Frame& frame, SimTime start,
                                       SimTime end) {
  if (active_lanes_ == 0) return;

  const NodeId tagged = key_.tagged;
  const bool from_tagged = frame.transmitter == tagged;
  const bool to_tagged = frame.receiver == tagged;
  if (!from_tagged && !to_tagged) return;

  const auto& params = batch_.hub_.params();
  switch (frame.type) {
    case mac::FrameType::kRts:
      if (from_tagged) {
        handle_tagged_rts(frame, start);
        note_exchange_end(end + params.response_timeout(params.cts_airtime()));
      }
      break;
    case mac::FrameType::kCts:
      if (to_tagged && frame.transmitter == batch_.hub_.self()) {
        own_cts_pending_ = true;
      }
      break;
    case mac::FrameType::kData:
      if (from_tagged) {
        own_cts_pending_ = false;
        note_exchange_end(end + frame.duration);
      }
      break;
    case mac::FrameType::kAck:
      if (to_tagged) note_exchange_end(end);
      break;
  }
}

std::uint64_t MonitorBatch::Group::unwrap_seq_off(std::uint32_t announced) {
  const std::uint64_t modulo = batch_.hub_.params().seq_off_modulo;
  if (!last_seq_off_) return announced;
  const std::uint64_t base = *last_seq_off_;
  const std::uint64_t base_res = base % modulo;
  std::uint64_t candidate = base - base_res + announced;
  if (candidate < base) candidate += modulo;
  return candidate;
}

// One evaluation of Monitor::handle_tagged_rts for the whole group. Every
// statement mirrors the scalar implementation (monitor.cpp) exactly —
// same arithmetic, same branch structure — with stats_ increments turned
// into RtsOutcome deltas and the final add_sample turned into the fanned
// outcome. Keep the two in sync.
void MonitorBatch::Group::handle_tagged_rts(const mac::Frame& rts,
                                            SimTime start) {
  RtsOutcome o;
  const auto& params = batch_.hub_.params();
  phy::CsTimeline& timeline = batch_.hub_.timeline();

  bool deterministic_violation = false;
  bool resynced = false;

  const std::uint64_t seq = unwrap_seq_off(rts.seq_off);
  if (config_.deterministic_checks && config_.prs_aware && last_seq_off_) {
    if (seq <= *last_seq_off_) {
      ++o.seq_off_violations;
      deterministic_violation = true;
    } else if (const std::uint64_t gap = seq - *last_seq_off_ - 1; gap > 0) {
      const bool outage_spanned =
          last_rts_heard_ && timeline.outage_time(*last_rts_heard_, start) > 0;
      if (gap <= config_.max_seq_off_gap || outage_spanned) {
        ++o.seq_off_resyncs;
        o.frames_lost += gap;
        resynced = true;
      } else {
        ++o.seq_off_violations;
        deterministic_violation = true;
      }
    }
  }
  if (config_.deterministic_checks && config_.prs_aware) {
    if (last_digest_ && rts.data_digest == *last_digest_ &&
        rts.attempt <= last_attempt_) {
      ++o.attempt_violations;
      deterministic_violation = true;
    }
  }

  const double expected = prs_.dictated_slots(seq, rts.attempt);

  const std::optional<crypto::Md5Digest> prev_digest = last_digest_;
  const std::uint32_t prev_attempt = last_attempt_;
  const std::optional<SimTime> prev_rts_heard = last_rts_heard_;
  last_seq_off_ = seq;
  last_rts_heard_ = start;
  last_digest_ = rts.data_digest;
  last_attempt_ = rts.attempt;

  const bool ambiguous_anchor = own_cts_pending_;
  own_cts_pending_ = false;

  if (!anchor_ || *anchor_ >= start || ambiguous_anchor) {
    if (config_.rts_gap_bound && config_.deterministic_checks &&
        config_.prs_aware && prev_rts_heard) {
      const SimTime prev_end = *prev_rts_heard + params.rts_airtime();
      const SimDuration gap = start > prev_end ? start - prev_end : 0;
      const double max_slots =
          gap > params.difs
              ? static_cast<double>(gap - params.difs) /
                    static_cast<double>(params.slot_time)
              : 0.0;
      if (expected > max_slots + 1.0) {
        ++o.impossible_backoff;
        o.single_shot = true;
      }
    }
    ++o.skipped_no_anchor;
    if (resynced) anchor_.reset();
    o.deterministic_violation = deterministic_violation;
    batch_.apply_outcome(*this, o);
    return;
  }
  const SimTime window_start = *anchor_;
  const SimDuration window = start - window_start;

  if (resynced) {
    if (config_.deterministic_checks && config_.prs_aware) {
      const double max_slots = static_cast<double>(window - params.difs) /
                               static_cast<double>(params.slot_time);
      if (expected > max_slots + 1.0) {
        ++o.impossible_backoff;
        deterministic_violation = true;
      }
    }
    ++o.windows_discarded_impaired;
    anchor_.reset();
    o.deterministic_violation = deterministic_violation;
    batch_.apply_outcome(*this, o);
    return;
  }

  if (config_.max_window > 0 && window > config_.max_window) {
    ++o.skipped_long_window;
    o.deterministic_violation = deterministic_violation;
    batch_.apply_outcome(*this, o);
    return;
  }

  if (timeline.outage_time(window_start, start) > 0) {
    ++o.windows_discarded_impaired;
    o.deterministic_violation = deterministic_violation;
    batch_.apply_outcome(*this, o);
    return;
  }

  if (config_.deterministic_checks && config_.prs_aware) {
    const double max_slots = static_cast<double>(window - params.difs) /
                             static_cast<double>(params.slot_time);
    if (expected > max_slots + 1.0) {
      ++o.impossible_backoff;
      deterministic_violation = true;
    }
  }

  const WindowAccounting& acct =
      ring_->window_accounting(window_start, start, key_.tagged);

  const double idle_slots = static_cast<double>(acct.countable_idle) /
                            static_cast<double>(params.slot_time);
  const double busy_slots = static_cast<double>(acct.uncertain_busy) /
                            static_cast<double>(params.slot_time);

  const SystemStateParams state = current_state();
  const ConditionalProbs& probs = model_.conditional_probs(state);
  const double idle_weight =
      config_.apply_idle_correction ? probs.p_idle_given_idle : 1.0;
  const double observed =
      idle_weight * idle_slots +
      config_.busy_credit_factor * probs.p_idle_given_busy * busy_slots;

  const bool proven_retry = prev_digest && rts.data_digest == *prev_digest &&
                            rts.attempt == prev_attempt + 1;
  bool accepted = true;
  if (config_.clean_window_filter && !proven_retry) {
    const double cw = params.cw_for_attempt(rts.attempt);
    if (observed > cw + config_.queue_gap_slack_slots) accepted = false;
  }

  // The record is filled unconditionally (pure values already in hand);
  // apply_outcome only stores it into lanes with record_samples set.
  o.has_record = true;
  o.record.expected = expected;
  o.record.observed = observed;
  o.record.idle_slots = idle_slots;
  o.record.busy_unc_slots = busy_slots;
  o.record.blocked_slots = static_cast<double>(acct.blocked) /
                           static_cast<double>(params.slot_time);
  o.record.attempt = rts.attempt;
  o.record.accepted = accepted;

  if (!accepted) {
    ++o.skipped_queue_gap;
    o.deterministic_violation = deterministic_violation;
    batch_.apply_outcome(*this, o);
    return;
  }

  const double norm =
      static_cast<double>(params.cw_for_attempt(rts.attempt)) + 1.0;
  o.has_sample = true;
  o.expected_norm = expected / norm;
  o.observed_norm = observed / norm;
  o.deterministic_violation = deterministic_violation;
  batch_.apply_outcome(*this, o);
}

// --- Lane management ---------------------------------------------------------

std::size_t MonitorBatch::add_lane(NodeId tagged, const MonitorConfig& config) {
  Group& group = group_for(tagged, config);
  const std::size_t lane = lane_stats_.size();

  lane_group_.push_back(&group);
  lane_sample_size_.push_back(config.sample_size);
  lane_alpha_.push_back(config.alpha);
  lane_margin_.push_back(config.margin_fraction);
  lane_wilcoxon_.push_back(config.wilcoxon);
  lane_active_.push_back(1);
  lane_window_flag_.push_back(0);
  lane_record_samples_.push_back(config.record_samples ? 1 : 0);

  std::size_t slot = kNoSeqSlot;
  if (config.detector != DetectorKind::kWilcoxon) {
    slot = seq_bank_.add(config.detector, config.cusum, config.sprt);
  }
  lane_seq_slot_.push_back(slot);
  lane_seq_samples_.push_back(0);

  // Sequential lanes never buffer samples; Wilcoxon lanes own a
  // sample_size-wide slice of the arenas.
  const std::size_t capacity = slot == kNoSeqSlot ? config.sample_size : 0;
  lane_off_.push_back(xs_arena_.size());
  lane_fill_.push_back(0);
  xs_arena_.resize(xs_arena_.size() + capacity);
  ys_arena_.resize(ys_arena_.size() + capacity);

  lane_stats_.emplace_back();
  lane_windows_.emplace_back();
  lane_samples_.emplace_back();

  group.lanes_.push_back(lane);
  ++group.active_lanes_;  // lanes start active
  return lane;
}

void MonitorBatch::set_lane_active(std::size_t lane, bool active) {
  if ((lane_active_[lane] != 0) == active) return;
  lane_active_[lane] = active ? 1 : 0;
  Group& group = *lane_group_[lane];
  if (!active) {
    --group.active_lanes_;
    return;
  }
  ++group.active_lanes_;
  // Fresh start (Monitor::set_active): discard the partial window, the
  // detector state, and the group's exchange anchor. The group-level
  // reset is idempotent across the lanes of one group — the harness
  // toggles them together with no frames in between.
  lane_fill_[lane] = 0;
  lane_window_flag_[lane] = 0;
  if (lane_seq_slot_[lane] != kNoSeqSlot) {
    seq_bank_.reset(lane_seq_slot_[lane]);
    lane_seq_samples_[lane] = 0;
  }
  group.reset_exchange();
}

ObservationHub::FrameRing& MonitorBatch::lane_ring(std::size_t lane) const {
  return *lane_group_[lane]->ring_;
}

ObservationHub::IntensityTracker& MonitorBatch::lane_tracker(
    std::size_t lane) const {
  return *lane_group_[lane]->arma_;
}

HeardTransmitterDensity& MonitorBatch::lane_density(std::size_t lane) const {
  return *lane_group_[lane]->density_;
}

// --- Fan-out + batched window close ------------------------------------------

void MonitorBatch::apply_outcome(Group& group, const RtsOutcome& o) {
  const SimTime now = hub_.simulator().now();
  due_lanes_.clear();
  for (const std::size_t lane : group.lanes_) {
    if (lane_active_[lane] == 0) continue;
    MonitorStats& st = lane_stats_[lane];
    ++st.rts_observed;
    st.seq_off_violations += o.seq_off_violations;
    st.attempt_violations += o.attempt_violations;
    st.impossible_backoff += o.impossible_backoff;
    st.skipped_no_anchor += o.skipped_no_anchor;
    st.skipped_long_window += o.skipped_long_window;
    st.skipped_queue_gap += o.skipped_queue_gap;
    st.seq_off_resyncs += o.seq_off_resyncs;
    st.frames_lost += o.frames_lost;
    st.windows_discarded_impaired += o.windows_discarded_impaired;
    if (o.single_shot) {
      WindowResult result;
      result.at = now;
      result.p_less = 1.0;
      result.deterministic_flag = true;
      record_window(lane, result, /*single_shot=*/true);
    }
    if (o.has_record && lane_record_samples_[lane] != 0) {
      lane_samples_[lane].push_back(o.record);
    }
    if (o.deterministic_violation) lane_window_flag_[lane] = 1;
    if (o.has_sample) {
      double expected = o.expected_norm;
      if (!group.config_.prs_aware) {
        // Baseline quantiles are a per-lane quantity: the position in the
        // lane's window (samples % sample_size) differs across lanes.
        const double k = static_cast<double>(st.samples % lane_sample_size_[lane]);
        expected = (k + 0.5) / static_cast<double>(lane_sample_size_[lane]);
      }
      add_sample(lane, expected, o.observed_norm);
    }
  }
  if (!due_lanes_.empty()) close_due_windows();
}

void MonitorBatch::add_sample(std::size_t lane, double expected,
                              double observed) {
  MonitorStats& st = lane_stats_[lane];
  ++st.samples;

  const std::size_t slot = lane_seq_slot_[lane];
  if (slot != kNoSeqSlot) {
    const double deficit = expected - observed - lane_margin_[lane];
    const SequentialBank::Step step = seq_bank_.update(slot, deficit);
    ++lane_seq_samples_[lane];
    if (step.flag) {
      close_sequential(lane, /*crossed=*/true, step.score);
      seq_bank_.reset(slot);
    } else if (lane_seq_samples_[lane] >= lane_sample_size_[lane]) {
      close_sequential(lane, /*crossed=*/false, step.score);
    }
    return;
  }

  const std::size_t offset = lane_off_[lane];
  std::size_t& fill = lane_fill_[lane];
  xs_arena_[offset + fill] = expected;
  ys_arena_[offset + fill] = observed;
  ++fill;
  if (fill >= lane_sample_size_[lane]) due_lanes_.push_back(lane);
}

void MonitorBatch::close_sequential(std::size_t lane, bool crossed,
                                    double score) {
  WindowResult result;
  result.at = hub_.simulator().now();
  result.deterministic_flag = lane_window_flag_[lane] != 0;
  result.p_less = std::exp(-(score > 0.0 ? score : 0.0));
  result.statistical_flag = crossed;
  record_window(lane, result);
  lane_seq_samples_[lane] = 0;
  lane_window_flag_[lane] = 0;
}

void MonitorBatch::close_due_windows() {
  const SimTime now = hub_.simulator().now();
  batch_items_.clear();
  for (const std::size_t lane : due_lanes_) {
    WilcoxonBatchItem item;
    const std::size_t offset = lane_off_[lane];
    const std::size_t n = lane_fill_[lane];
    item.x = std::span<const double>(xs_arena_.data() + offset, n);
    item.y = std::span<const double>(ys_arena_.data() + offset, n);
    item.shift = lane_margin_[lane];
    item.options = lane_wilcoxon_[lane];
    batch_items_.push_back(item);
  }
  batch_results_.resize(batch_items_.size());
  wilcoxon_rank_sum_batch(batch_items_, batch_results_, wilcoxon_scratch_);

  for (std::size_t i = 0; i < due_lanes_.size(); ++i) {
    const std::size_t lane = due_lanes_[i];
    WindowResult result;
    result.at = now;
    result.deterministic_flag = lane_window_flag_[lane] != 0;
    result.p_less = batch_results_[i].p_less;
    result.statistical_flag = result.p_less < lane_alpha_[lane];
    record_window(lane, result);
    lane_fill_[lane] = 0;
    lane_window_flag_[lane] = 0;
  }
  due_lanes_.clear();
}

void MonitorBatch::record_window(std::size_t lane, const WindowResult& result,
                                 bool single_shot) {
  MonitorStats& st = lane_stats_[lane];
  ++st.windows;
  if (result.flagged()) {
    ++st.flagged_windows;
    if (st.first_flag_time == kTimeNever) {
      st.first_flag_time = result.at;
      st.windows_to_first_flag = single_shot ? 0 : st.windows;
    }
  }
  lane_windows_[lane].push_back(result);
}

}  // namespace manet::detect
