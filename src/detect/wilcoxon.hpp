// Wilcoxon rank-sum (Mann-Whitney) test — the paper's hypothesis test for
// comparing the dictated back-off population x against the observed
// (estimated) population y without distributional assumptions.
//
// Two evaluation paths:
//  * Exact: the permutation null distribution of the rank sum, computed by
//    dynamic programming over the observed midranks (handles ties). Used
//    when the combined sample is small — where the normal approximation is
//    weakest and where the paper's table lookups operate.
//  * Normal approximation with tie correction and continuity correction,
//    for larger samples.
//
// p_less is the probability, under H0 "x and y come from identical
// populations", of a y rank sum at most as large as observed — small
// p_less means y is stochastically smaller than x (the misbehavior
// signature: shorter back-offs).
//
// The monitor runs one test per closed window, so the hot path is
// allocation-free: callers hold a WilcoxonScratch whose buffers (combined
// sample, midranks, the flat DP table) are reused across calls, and the DP
// skips the provably-zero tail of each row via reachable-sum bounds. The
// pre-optimization implementation is retained verbatim as
// `wilcoxon_rank_sum_reference`; tests assert the fast path matches it bit
// for bit and bench/micro_wilcoxon measures the speedup against it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace manet::detect {

struct RankSumResult {
  double w_y = 0.0;        // rank sum of the y sample (midranks)
  double p_less = 1.0;     // P(W <= w_y | H0)  — y smaller
  double p_greater = 1.0;  // P(W >= w_y | H0)  — y larger
  double p_two_sided = 1.0;
  double z = 0.0;          // standardized statistic (approx path; 0 if exact)
  bool exact = false;
};

struct WilcoxonOptions {
  /// Use the exact permutation distribution when nx + ny <= this bound.
  /// 40 keeps the DP in the tens of microseconds.
  std::size_t exact_max_total = 40;
};

/// Reusable buffers for wilcoxon_rank_sum. All vectors grow to the largest
/// sample seen and are reused afterwards; a default-constructed scratch is
/// valid for any call.
struct WilcoxonScratch {
  std::vector<double> combined;       // x followed by y
  std::vector<double> ranks;          // midranks of `combined`
  std::vector<std::size_t> order;     // sort scratch for the midranks
  std::vector<long long> doubled;     // midranks * 2 (integral)
  std::vector<double> dp;             // flat (ny+1) x (smax+1) subset counts
  std::vector<long long> min_sum;     // reachable doubled-sum bounds per
  std::vector<long long> max_sum;     //   subset size (DP row support)
  std::vector<double> shifted;        // batch path: y + per-item shift
  std::vector<std::size_t> schedule;  // batch path: item evaluation order
};

/// Requires nx >= 1 and ny >= 1. Reuses `scratch` across calls; results are
/// bit-identical to wilcoxon_rank_sum_reference for the same inputs.
RankSumResult wilcoxon_rank_sum(std::span<const double> x, std::span<const double> y,
                                const WilcoxonOptions& options,
                                WilcoxonScratch& scratch);

/// Convenience overload with a throwaway scratch.
RankSumResult wilcoxon_rank_sum(std::span<const double> x, std::span<const double> y,
                                const WilcoxonOptions& options = {});

/// Pre-optimization implementation, kept verbatim as the oracle: fresh
/// allocations per call, full-range DP rows, separate tie-group sort.
/// Not for production use.
RankSumResult wilcoxon_rank_sum_reference(std::span<const double> x,
                                          std::span<const double> y,
                                          const WilcoxonOptions& options = {});

/// One test of a batched close: compare `x` against `y + shift` (the
/// monitor's margin shift, applied into scratch rather than by the caller
/// so the batch stays allocation-free over span inputs).
struct WilcoxonBatchItem {
  std::span<const double> x;
  std::span<const double> y;
  double shift = 0.0;
  WilcoxonOptions options;
};

/// Evaluates every item and writes results[i] for items[i]. Items are
/// independent tests, so each result is bit-identical to the scalar
/// wilcoxon_rank_sum(x, y + shift) call it replaces; internally the items
/// are scheduled exact-DP first in ascending combined size (so the flat DP
/// table and reachable-bound arrays grow monotonically instead of being
/// re-assigned per size change), then approx items in caller order.
/// `results` must have items.size() entries.
void wilcoxon_rank_sum_batch(std::span<const WilcoxonBatchItem> items,
                             std::span<RankSumResult> results,
                             WilcoxonScratch& scratch);

}  // namespace manet::detect
