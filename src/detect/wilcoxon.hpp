// Wilcoxon rank-sum (Mann-Whitney) test — the paper's hypothesis test for
// comparing the dictated back-off population x against the observed
// (estimated) population y without distributional assumptions.
//
// Two evaluation paths:
//  * Exact: the permutation null distribution of the rank sum, computed by
//    dynamic programming over the observed midranks (handles ties). Used
//    when the combined sample is small — where the normal approximation is
//    weakest and where the paper's table lookups operate.
//  * Normal approximation with tie correction and continuity correction,
//    for larger samples.
//
// p_less is the probability, under H0 "x and y come from identical
// populations", of a y rank sum at most as large as observed — small
// p_less means y is stochastically smaller than x (the misbehavior
// signature: shorter back-offs).
#pragma once

#include <cstddef>
#include <span>

namespace manet::detect {

struct RankSumResult {
  double w_y = 0.0;        // rank sum of the y sample (midranks)
  double p_less = 1.0;     // P(W <= w_y | H0)  — y smaller
  double p_greater = 1.0;  // P(W >= w_y | H0)  — y larger
  double p_two_sided = 1.0;
  double z = 0.0;          // standardized statistic (approx path; 0 if exact)
  bool exact = false;
};

struct WilcoxonOptions {
  /// Use the exact permutation distribution when nx + ny <= this bound.
  /// 40 keeps the DP in the tens of microseconds.
  std::size_t exact_max_total = 40;
};

/// Requires nx >= 1 and ny >= 1.
RankSumResult wilcoxon_rank_sum(std::span<const double> x, std::span<const double> y,
                                const WilcoxonOptions& options = {});

}  // namespace manet::detect
