#include "detect/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>

#include "detect/monitor_batch.hpp"
#include "detect/trace.hpp"
#include "exp/seeding.hpp"
#include "exp/sweep.hpp"
#include "mac/attackers.hpp"
#include "phy/joint_tracker.hpp"

namespace manet::detect {

namespace {

/// Picks a one-hop neighbor of `s` at time `at` (nearest first for
/// determinism); throws if none exists.
NodeId pick_neighbor(net::Network& net, NodeId s, SimTime at) {
  const auto nbrs = net.neighbors(s, net.config().prop.tx_range_m, at);
  if (nbrs.empty()) throw std::runtime_error("tagged node has no neighbor");
  NodeId best = nbrs.front();
  double best_d = 1e300;
  const geom::Vec2 sp = net.position_of(s, at);
  for (NodeId n : nbrs) {
    const double d = (net.position_of(n, at) - sp).norm2();
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  return best;
}

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One trial of a sweep point: the point's config re-seeded per the
/// engine's contract (seed = base + run), timed for the result sinks.
MultiDetectionResult run_multi_detection_trial(MultiDetectionConfig config,
                                               int run) {
  config.scenario.seed =
      exp::trial_seed(config.scenario.seed, static_cast<std::uint64_t>(run));
  const auto start = std::chrono::steady_clock::now();
  MultiDetectionResult result = run_multi_detection_experiment(config);
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

/// Order-dependent reduction over a point's trials. Trials arrive in run
/// order regardless of which worker produced them, so the floating-point
/// accumulation order — and therefore every aggregate — is identical for
/// any thread count.
MultiDetectionResult aggregate_trials(std::size_t monitor_count,
                                      bool collect_windows,
                                      const std::vector<MultiDetectionResult>& trials) {
  MultiDetectionResult total;
  total.per_config.resize(monitor_count);
  for (const MultiDetectionResult& r : trials) {
    total.handoffs += r.handoffs;
    total.measured_rho += r.measured_rho;
    total.monitor_nodes = std::max(total.monitor_nodes, r.monitor_nodes);
    total.wall_seconds += r.wall_seconds;
    for (std::size_t i = 0; i < r.per_config.size(); ++i) {
      DetectionResult& out = total.per_config[i];
      out.windows += r.per_config[i].windows;
      out.flagged += r.per_config[i].flagged;
      out.flagged_statistical += r.per_config[i].flagged_statistical;
      out.window_log.insert(out.window_log.end(),
                            r.per_config[i].window_log.begin(),
                            r.per_config[i].window_log.end());
      if (collect_windows) out.trial_logs.push_back(r.per_config[i].window_log);
      accumulate_stats(out.stats, r.per_config[i].stats);
    }
  }
  if (!trials.empty()) total.measured_rho /= static_cast<double>(trials.size());
  for (DetectionResult& out : total.per_config) {
    out.detection_rate = out.windows ? static_cast<double>(out.flagged) /
                                           static_cast<double>(out.windows)
                                     : 0.0;
    out.statistical_rate =
        out.windows ? static_cast<double>(out.flagged_statistical) /
                          static_cast<double>(out.windows)
                    : 0.0;
    out.measured_rho = total.measured_rho;
    out.handoffs = total.handoffs;
    out.wall_seconds = total.wall_seconds;
  }
  return total;
}

}  // namespace

CondProbResult run_cond_prob_experiment(const CondProbConfig& config) {
  net::Network net(config.scenario);
  const NodeId s = net.center_node();
  const NodeId r = pick_neighbor(net, s, 0);

  net.add_flow(s, r, config.rate_pps);
  net.build_random_flows();
  net.set_flow_rates(config.rate_pps);

  phy::JointBusyTracker tracker(net.radio(s), net.radio(r));

  const SimTime warmup = seconds_to_time(config.warmup_s);
  const SimTime stop = warmup + seconds_to_time(config.measure_s);
  net.start_traffic(0, stop);
  net.run_until(warmup);
  tracker.reset(warmup);
  net.run_until(stop);
  tracker.flush(stop);

  CondProbResult result;
  result.measured_rho = tracker.r_busy_fraction();
  result.sim_p_busy_given_idle = tracker.p_s_busy_given_r_idle();
  result.sim_p_idle_given_busy = tracker.p_s_idle_given_r_busy();

  // Analytical prediction from the monitor-visible state.
  const geom::RegionModel regions(config.monitor.separation_m,
                                  config.monitor.sensing_range_m);
  SystemStateModel model(regions);
  SystemStateParams p;
  p.rho = result.measured_rho;
  p.mapping = config.monitor.mapping;
  p.k = config.monitor.fixed_k.value_or(5.0);
  p.n = config.monitor.fixed_n.value_or(5.0);
  p.m = config.monitor.fixed_m.value_or(5.0);
  p.j = config.monitor.fixed_j.value_or(5.0);
  p.contenders = config.monitor.fixed_contenders.value_or(20.0);
  result.ana_p_busy_given_idle = model.p_busy_given_idle(p);
  result.ana_p_idle_given_busy = model.p_idle_given_busy(p);
  return result;
}

MultiDetectionResult run_multi_detection_experiment(const MultiDetectionConfig& config) {
  if (config.monitors.empty()) {
    throw std::invalid_argument("need at least one monitor configuration");
  }
  const AttackerSpec& atk = config.attacker;
  if (config.mobile_handoff && (atk.kind == AttackerKind::kColluding ||
                                atk.kind == AttackerKind::kSybil ||
                                atk.kind == AttackerKind::kRtsFlood)) {
    throw std::invalid_argument(
        "mobile_handoff supports only solo single-identity attackers");
  }

  net::Network net(config.scenario);
  const NodeId s = net.center_node();
  NodeId r = pick_neighbor(net, s, 0);

  // The identities monitors watch: the tagged node itself, its whole
  // colluding group, or a sybil's fake identities.
  std::vector<NodeId> targets{s};

  net::TrafficSource* tagged_flow = nullptr;
  if (atk.kind != AttackerKind::kRtsFlood) {
    tagged_flow = &net.add_flow(s, r, config.rate_pps);
  }
  if (atk.kind == AttackerKind::kColluding) {
    // Group: S plus the nearest other in-range neighbors of the monitor —
    // every member must be decodable by R for the rotation to show up in
    // one monitor's samples. Members get their own flows towards R (a
    // colluder without traffic never draws a back-off).
    const auto nbrs = net.neighbors(r, net.config().prop.tx_range_m, 0);
    const geom::Vec2 rp = net.position_of(r, 0);
    std::vector<std::pair<double, NodeId>> ranked;
    for (NodeId n : nbrs) {
      if (n == s || n == r) continue;
      ranked.emplace_back((net.position_of(n, 0) - rp).norm2(), n);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<NodeId> members{s};
    for (const auto& [dist, n] : ranked) {
      (void)dist;
      if (members.size() >= std::max(atk.group, 1u)) break;
      members.push_back(n);
    }
    auto schedule = std::make_shared<const mac::CollusionSchedule>(
        mac::CollusionSchedule{static_cast<std::uint32_t>(members.size()),
                               seconds_to_time(atk.collude_phase_s)});
    for (std::size_t i = 0; i < members.size(); ++i) {
      net.mac(members[i]).set_backoff_policy(std::make_unique<mac::ColludingBackoff>(
          schedule, static_cast<std::uint32_t>(i), atk.pm));
      if (members[i] != s) net.add_flow(members[i], r, config.rate_pps);
    }
    targets = members;
  }
  net.build_random_flows(atk.kind == AttackerKind::kRtsFlood
                             ? std::vector<NodeId>{s}
                             : std::vector<NodeId>{});
  net.set_flow_rates(config.rate_pps);
  if (config.pm > 0.0 && atk.kind == AttackerKind::kNone) {
    net.mac(s).set_backoff_policy(
        std::make_unique<mac::PercentMisbehavior>(config.pm));
  }
  switch (atk.kind) {
    case AttackerKind::kNone:
    case AttackerKind::kColluding:
    case AttackerKind::kRtsFlood:  // started below, once `stop` is known
      break;
    case AttackerKind::kPm:
      net.mac(s).set_backoff_policy(
          std::make_unique<mac::PercentMisbehavior>(atk.pm));
      break;
    case AttackerKind::kAdaptive: {
      auto policy = std::make_unique<mac::AdaptiveBackoff>(
          atk.pm, seconds_to_time(atk.probation_s),
          seconds_to_time(atk.vigilance_s),
          atk.suspect_monitor ? std::vector<NodeId>{r} : std::vector<NodeId>{});
      net.mac(s).add_observer(policy.get());
      net.mac(s).set_backoff_policy(std::move(policy));
      break;
    }
    case AttackerKind::kSybil: {
      std::vector<NodeId> aliases;
      aliases.reserve(std::max(atk.group, 1u));
      for (std::uint32_t i = 0; i < std::max(atk.group, 1u); ++i) {
        aliases.push_back(mac::kSybilAliasBase + i);
      }
      auto state = std::make_shared<mac::SybilState>(aliases, net.mac(s).params());
      net.mac(s).set_backoff_policy(
          std::make_unique<mac::SybilBackoff>(state, atk.pm));
      net.mac(s).set_announce_policy(std::make_unique<mac::SybilAnnounce>(state));
      for (NodeId a : aliases) net.mac(s).add_identity_alias(a);
      targets = aliases;
      break;
    }
  }

  // Monitors are created lazily per monitoring node: one instance per
  // (configuration, target identity) — config-major, so view ci*T+ti is
  // configuration ci watching target ti — activated/deactivated together.
  // Under kBatch they are facade lanes of one MonitorBatch per node; under
  // kHub, views over one ObservationHub per node; under kReference each
  // gets a private hub (structurally the pre-hub pipeline — the
  // equivalence/benchmark oracle). Readout iterates `monitor_order`
  // (creation order) so window logs are deterministic.
  struct NodeMonitors {
    std::unique_ptr<ObservationHub> hub;    // null under kReference
    std::unique_ptr<MonitorBatch> batch;    // null unless kBatch
    std::vector<std::unique_ptr<Monitor>> views;
  };
  std::unordered_map<NodeId, NodeMonitors> monitors;
  std::vector<NodeId> monitor_order;
  auto set_active = [&](NodeId node, bool active) {
    auto it = monitors.find(node);
    if (it == monitors.end()) {
      NodeMonitors set;
      set.views.reserve(config.monitors.size() * targets.size());
      if (config.pipeline != PipelineImpl::kReference) {
        set.hub = std::make_unique<ObservationHub>(
            net.simulator(), net.mac(node), net.timeline(node));
      }
      if (config.pipeline == PipelineImpl::kBatch) {
        set.batch = std::make_unique<MonitorBatch>(*set.hub);
      }
      MonitorFactory factory =
          set.batch ? MonitorFactory(*set.batch)
          : set.hub ? MonitorFactory(*set.hub)
                    : MonitorFactory(net.simulator(), net.mac(node),
                                     net.timeline(node));
      for (const MonitorConfig& mc : config.monitors) {
        factory.with_config(mc);
        for (const NodeId target : targets) {
          set.views.push_back(factory.watch(target));
        }
      }
      it = monitors.emplace(node, std::move(set)).first;
      monitor_order.push_back(node);
      if (config.trace) {
        // Recording starts the instant this node becomes a monitor: the
        // header snapshots its carrier-sense state now, and the writer is
        // registered after the node's timeline (radio listener order) and
        // after the hub (MAC observer order), so replayed event order
        // matches what the hub experienced.
        TraceHeader th;
        th.node = node;
        th.start_time = net.simulator().now();
        th.params = net.mac(node).params();
        th.targets = targets;
        th.timeline = net.timeline(node).snapshot();
        TraceWriter& writer = config.trace->add(th);
        net.mac(node).add_observer(&writer);
        net.radio(node).add_listener(&writer);
      }
    }
    for (auto& mon : it->second.views) mon->set_active(active);
    if (config.trace) {
      config.trace->find(node)->marker(MarkerCode::kActivity, active ? 1 : 0,
                                       net.simulator().now());
    }
  };

  MultiDetectionResult result;
  result.per_config.resize(config.monitors.size());
  if (config.all_pairs) {
    if (config.mobile_handoff) {
      throw std::invalid_argument(
          "all_pairs monitoring is incompatible with mobile_handoff");
    }
    // Every node in transmission range of S at t=0 runs the monitor set
    // (sorted for a deterministic creation order). The flow destination
    // stays the nearest neighbor r, which is itself in range.
    auto watchers = net.neighbors(s, net.config().prop.tx_range_m, 0);
    std::sort(watchers.begin(), watchers.end());
    for (NodeId w : watchers) set_active(w, true);
  } else {
    set_active(r, true);
  }

  const SimTime warmup = seconds_to_time(config.warmup_s);
  const SimTime stop = seconds_to_time(config.scenario.sim_seconds);
  net.start_traffic(0, stop);

  std::unique_ptr<mac::RtsFlooder> flooder;
  if (atk.kind == AttackerKind::kRtsFlood) {
    mac::RtsFloodConfig flood;
    flood.rate_pps = atk.flood_pps;
    flood.victim = r;
    flood.seed = config.scenario.seed ^ 0x9E3779B97F4A7C15ull;
    flooder = std::make_unique<mac::RtsFlooder>(net.simulator(), net.radio(s),
                                                net.mac(s).params(), flood);
    flooder->start(0, stop);
  }

  const NodeId initial_r = r;

  // Long-horizon traffic intensity at the initial monitor: snapshot the
  // cumulative busy counter at warm-up (windowed timeline queries cannot
  // span a whole 300 s run because history is pruned).
  SimDuration busy_at_warmup = 0;
  net.simulator().at(warmup, [&, initial_r] {
    busy_at_warmup = net.timeline(initial_r).cumulative_busy(warmup);
  });

  // Must outlive run_until: the rescheduling lambda captures it by reference.
  std::function<void()> check;
  if (config.mobile_handoff) {
    // Periodic range check: if the monitor fell out of S's transmission
    // range, hand the role (and S's flow) to the nearest current neighbor.
    check = [&] {
      const SimTime now = net.simulator().now();
      if (now >= stop) return;
      const double d = (net.position_of(s, now) - net.position_of(r, now)).norm();
      if (d > net.config().prop.tx_range_m) {
        const auto nbrs = net.neighbors(s, net.config().prop.tx_range_m, now);
        if (!nbrs.empty()) {
          set_active(r, false);
          r = pick_neighbor(net, s, now);
          set_active(r, true);
          tagged_flow->set_destination(r);
          ++result.handoffs;
        }
      }
      net.simulator().after(config.handoff_period, check);
    };
    net.simulator().after(config.handoff_period, check);
  }

  net.run_until(stop);

  if (config.trace) {
    for (const NodeId node : monitor_order) {
      config.trace->find(node)->marker(MarkerCode::kTraceEnd, 0, stop);
    }
  }

  result.monitor_nodes = monitor_order.size();
  const std::size_t target_count = targets.size();
  for (const NodeId node : monitor_order) {
    const NodeMonitors& set = monitors.at(node);
    for (std::size_t ci = 0; ci < config.monitors.size(); ++ci) {
      DetectionResult& out = result.per_config[ci];
      for (std::size_t ti = 0; ti < target_count; ++ti) {
        const Monitor& view = *set.views[ci * target_count + ti];
        for (const WindowResult& w : view.windows()) {
          if (w.at < warmup) continue;
          ++out.windows;
          if (w.flagged()) ++out.flagged;
          if (w.statistical_flag) ++out.flagged_statistical;
          if (config.collect_windows) out.window_log.push_back(w);
        }
        accumulate_stats(out.stats, view.stats());
      }
    }
  }
  result.measured_rho =
      stop > warmup
          ? static_cast<double>(net.timeline(initial_r).cumulative_busy(stop) -
                                busy_at_warmup) /
                static_cast<double>(stop - warmup)
          : 0.0;
  for (DetectionResult& out : result.per_config) {
    out.detection_rate = out.windows ? static_cast<double>(out.flagged) /
                                           static_cast<double>(out.windows)
                                     : 0.0;
    out.statistical_rate =
        out.windows ? static_cast<double>(out.flagged_statistical) /
                          static_cast<double>(out.windows)
                    : 0.0;
    out.measured_rho = result.measured_rho;
    out.handoffs = result.handoffs;
  }
  return result;
}

MultiDetectionResult run_multi_detection_trials(const MultiDetectionConfig& config,
                                                int runs, exp::Engine& engine) {
  return run_multi_detection_sweep({config}, runs, engine).at(0);
}

MultiDetectionResult run_multi_detection_trials(MultiDetectionConfig config,
                                                int runs) {
  exp::Engine serial(1);
  return run_multi_detection_trials(config, runs, serial);
}

std::vector<MultiDetectionResult> run_multi_detection_sweep(
    const std::vector<MultiDetectionConfig>& points, int runs,
    exp::Engine& engine) {
  const auto per_point = exp::run_sweep(
      engine, points, runs,
      [](const MultiDetectionConfig& point, int run) {
        return run_multi_detection_trial(point, run);
      });
  std::vector<MultiDetectionResult> aggregated;
  aggregated.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    aggregated.push_back(aggregate_trials(
        points[p].monitors.size(), points[p].collect_windows, per_point[p]));
  }
  return aggregated;
}

std::vector<CondProbResult> run_cond_prob_sweep(
    const std::vector<CondProbConfig>& points, exp::Engine& engine) {
  return engine.map(points.size(), [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    CondProbResult r = run_cond_prob_experiment(points[i]);
    r.wall_seconds = elapsed_seconds(start);
    return r;
  });
}

DetectionResult run_detection_experiment(const DetectionConfig& config) {
  MultiDetectionConfig multi;
  multi.scenario = config.scenario;
  multi.rate_pps = config.rate_pps;
  multi.pm = config.pm;
  multi.monitors = {config.monitor};
  multi.warmup_s = config.warmup_s;
  multi.mobile_handoff = config.mobile_handoff;
  multi.handoff_period = config.handoff_period;
  return run_multi_detection_experiment(multi).per_config.at(0);
}

DetectionResult run_detection_trials(const DetectionConfig& config, int runs,
                                     exp::Engine& engine) {
  MultiDetectionConfig multi;
  multi.scenario = config.scenario;
  multi.rate_pps = config.rate_pps;
  multi.pm = config.pm;
  multi.monitors = {config.monitor};
  multi.warmup_s = config.warmup_s;
  multi.mobile_handoff = config.mobile_handoff;
  multi.handoff_period = config.handoff_period;
  return run_multi_detection_trials(multi, runs, engine).per_config.at(0);
}

DetectionResult run_detection_trials(DetectionConfig config, int runs) {
  exp::Engine serial(1);
  return run_detection_trials(config, runs, serial);
}

}  // namespace manet::detect
