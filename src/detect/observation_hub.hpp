// Shared per-node observation infrastructure for the detection pipeline.
//
// Every Monitor on a node consumes the same raw observations: the frames
// the node's MAC decoded, the neighborhood density implied by the heard
// transmitters, and the ARMA-smoothed traffic intensity of its own
// carrier-sense timeline. Before this hub existed each Monitor owned
// private copies — N monitors on one node (the per-config sweeps, or the
// all-pairs workload's per-neighbor sets) stored the decoded-frame history
// N times and pushed/pruned/estimated N times per frame.
//
// The ObservationHub owns those components once per node; Monitor becomes
// a thin per-tagged-neighbor view (a HubView) that borrows them. Sharing
// is transparent and exact:
//
//  * Components are keyed by the config knobs that shape their contents
//    (frame ring: retention + cap; ARMA: alpha + batch size; density:
//    window + tx range) AND by the sim time the requesting view attached.
//    Views with differing knobs — or views attached at different times,
//    whose private estimators would have had different histories — get
//    private instances, so every view observes bit-identical state to the
//    private copy the pre-refactor Monitor would have owned.
//  * The frame ring memoizes the busy/blocked/idle three-way split of an
//    observation window per (window, tagged) key, invalidated whenever a
//    frame is recorded. Views watching the same tagged node reconstruct
//    the same window's interval sets once instead of once per view; the
//    interval-set scratch is reused, so the per-RTS hot path allocates
//    nothing in steady state.
//  * A component only updates while at least one of its holders is an
//    active view. Views sharing a component are expected to be activated
//    and deactivated together (the experiment harness always toggles a
//    node's monitor set as a unit); if holders' activity diverges, the
//    shared component keeps updating for the active holder — a private
//    pre-refactor estimator would have frozen instead. Attach views whose
//    activity can diverge to separate hubs if that distinction matters.
//
// Ingestion is source-agnostic (PR 7): the hub consumes ObservationEvents
// (decoded frame / carrier edge / outage edge, observation_source.hpp)
// either pushed by live simulator callbacks (the mac::MacObserver hook,
// with the radio feeding the timeline directly) or pulled from a recorded
// trace via consume(). Both paths funnel into the same ingest_frame()
// code, so live and replayed detection are byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "detect/arma.hpp"
#include "detect/density.hpp"
#include "detect/observation_source.hpp"
#include "mac/dcf.hpp"
#include "phy/cs_timeline.hpp"
#include "sim/simulator.hpp"
#include "util/intervals.hpp"
#include "util/types.hpp"

namespace manet::detect {

/// One frame decoded by the hub's node. The transmitter lies within the
/// node's transmission range, hence within separation + tx_range < sensing
/// range of any tagged one-hop neighbor: the tagged node certainly sensed
/// the air time — and, for frames not involving it, honored the NAV
/// reservation. Whether a frame "involves" a tagged node is evaluated at
/// query time so one ring serves views watching different neighbors.
struct DecodedFrame {
  SimTime start = 0;
  SimTime end = 0;
  SimTime nav_until = 0;  // end + the frame's NAV duration field
  NodeId transmitter = kInvalidNode;
  NodeId receiver = kInvalidNode;
  bool is_rts = false;  // RTS reservations are subject to the NAV-reset rule
};

/// Three-way split of one observation window from the perspective of a
/// monitor of a given tagged node (durations, clamped to the window):
///   * blocked — decoded air time plus binding NAV reservations: the
///     tagged node was certainly frozen, no countdown credit;
///   * uncertain_busy — sensed-busy time not explained by decoded frames
///     (anonymous energy): statistical p(I|B) credit;
///   * countable_idle — free idle time minus one DIFS deferral per idle
///     period: p(I|I) credit.
struct WindowAccounting {
  SimDuration blocked = 0;
  SimDuration uncertain_busy = 0;
  SimDuration countable_idle = 0;
};

/// A consumer attached to an ObservationHub (Monitor implements this).
class HubView {
 public:
  virtual ~HubView() = default;
  /// Shared components stop updating when every holder is inactive.
  virtual bool view_active() const = 0;
  /// Delivered for every frame the hub's MAC decoded while at least one
  /// attached view was active, after the shared components absorbed it.
  virtual void on_hub_frame(const mac::Frame& frame, SimTime start, SimTime end) = 0;
};

class ObservationHub : public mac::MacObserver {
 public:
  /// Decoded-frame history shared by the views whose retention/cap knobs
  /// (and attach time) match. Newest frames at the back; pruned by age and
  /// by the entry cap on every record.
  class FrameRing {
   public:
    std::size_t size() const { return frames_.size(); }
    const std::deque<DecodedFrame>& frames() const { return frames_; }

    /// High-water retained frame count and cap-forced evictions (as
    /// opposed to ordinary age pruning) — the memory-ceiling test asserts
    /// peak_frames stays under the configured budget through a long run.
    std::size_t peak_frames() const { return peak_frames_; }
    std::uint64_t cap_evictions() const { return cap_evictions_; }
    std::size_t retained_memory_bytes() const {
      return frames_.size() * sizeof(DecodedFrame);
    }

    /// The busy/blocked/idle split of [win_start, win_end) for a monitor
    /// of `tagged`. Memoized per (window, tagged) until the next recorded
    /// frame — views watching the same tagged node pay for the interval
    /// sets once — and computed into reusable scratch on a miss.
    const WindowAccounting& window_accounting(SimTime win_start, SimTime win_end,
                                              NodeId tagged);

   private:
    friend class ObservationHub;
    FrameRing(ObservationHub& hub, SimDuration retention, std::size_t max_frames)
        : hub_(hub), retention_(retention), max_frames_(max_frames) {}

    void record(const mac::Frame& frame, SimTime start, SimTime end);

    ObservationHub& hub_;
    SimDuration retention_;
    std::size_t max_frames_;
    SimTime attached_at_ = 0;
    std::vector<const HubView*> holders_;
    std::deque<DecodedFrame> frames_;

    // Monotone scan hint: window starts only move forward (anchors are
    // exchange ends), so frames wholly before the previous window's start
    // — exactly the entries the accounting loop would `continue` past —
    // can be skipped next time. Tracked as an absolute frame index
    // (first_abs_ counts every front prune) so record() needs no hint
    // maintenance; a window that regresses falls back to a full scan.
    std::size_t peak_frames_ = 0;
    std::uint64_t cap_evictions_ = 0;

    std::uint64_t first_abs_ = 0;    // absolute index of frames_.front()
    std::uint64_t hint_abs_ = 0;     // absolute index the last scan started at
    SimTime hint_win_start_ = 0;
    bool hint_valid_ = false;

    // Single-slot window memo + interval scratch (see window_accounting).
    bool memo_valid_ = false;
    SimTime memo_start_ = 0;
    SimTime memo_end_ = 0;
    NodeId memo_tagged_ = kInvalidNode;
    WindowAccounting memo_;
    util::IntervalSet blocked_;
    util::IntervalSet busy_;
    util::IntervalSet occupied_;
    std::vector<std::pair<SimTime, SimTime>> busy_scratch_;
    std::vector<util::Interval> gaps_;
  };

  /// ARMA traffic-intensity tracker (Eq. 6) shared by the views whose
  /// alpha/batch knobs and attach time match. The tick chain runs on the
  /// hub's simulator regardless of view activity, exactly like the
  /// per-monitor chain it replaces; the callbacks only read the timeline
  /// and mutate the filter, so collapsing N identical chains into one
  /// cannot perturb the simulation.
  class IntensityTracker {
   public:
    const ArmaIntensityFilter& filter() const { return filter_; }

   private:
    friend class ObservationHub;
    IntensityTracker(ObservationHub& hub, double alpha, std::size_t batch_slots)
        : hub_(hub), batch_slots_(batch_slots), filter_(alpha) {
      schedule_tick();
    }

    void schedule_tick();

    ObservationHub& hub_;
    std::size_t batch_slots_;
    SimTime attached_at_ = 0;
    ArmaIntensityFilter filter_;
    SimTime last_tick_ = 0;
  };

  /// Source-agnostic form: a hub for node `self` (the monitor node R)
  /// whose observations arrive via ingest()/consume(). `timeline` is the
  /// carrier-sense record the hub reads AND (for replayed carrier/outage
  /// events) writes; it must belong to the same node.
  ObservationHub(sim::Simulator& simulator, NodeId self,
                 const mac::DcfParams& params, phy::CsTimeline& timeline);

  /// Live convenience form: registers with `monitor_mac`'s observer hook
  /// so decoded frames are pushed in by the simulation (the node's radio
  /// feeds `timeline` directly). `timeline` must be the carrier-sense
  /// timeline of the same node.
  ObservationHub(sim::Simulator& simulator, mac::DcfMac& monitor_mac,
                 phy::CsTimeline& timeline);

  /// Views receive on_hub_frame in attach order (= pre-refactor observer
  /// registration order when monitors are created in the same sequence).
  /// attach may allocate (and therefore throw); detach only erases.
  void attach(HubView* view);
  /// Also drops the view from every component's holder list.
  void detach(HubView* view) noexcept;

  /// Match-or-create accessors. A component is shared when its knobs AND
  /// the current sim time match an existing entry created by another
  /// holder; otherwise the view gets a fresh private instance (identical
  /// to the private estimator a standalone Monitor would construct now).
  FrameRing& frame_ring(const HubView& holder, SimDuration retention,
                        std::size_t max_frames);
  IntensityTracker& intensity_tracker(double alpha, std::size_t batch_slots);
  HeardTransmitterDensity& density(const HubView& holder, SimDuration window,
                                   double tx_range_m);

  sim::Simulator& simulator() { return sim_; }
  /// The monitor node this hub observes the air from (R).
  NodeId self() const { return self_; }
  /// MAC/PHY timing parameters of the observed protocol.
  const mac::DcfParams& params() const { return params_; }
  phy::CsTimeline& timeline() { return timeline_; }

  /// Feeds one observation event through the same path the live callbacks
  /// use: frames go to the shared components and attached views, carrier
  /// and outage edges go to the timeline. kMarker events are ignored here
  /// (replay harnesses interpret them via consume()'s handler).
  void ingest(const ObservationEvent& event);

  /// Pull-from-source ingestion loop: advances the hub's simulator to each
  /// event's time (firing due ARMA ticks exactly as a live run would),
  /// then ingests it. `on_marker`, when set, receives kMarker events
  /// (activity toggles of a recorded mobile-handoff run).
  void consume(ObservationSource& source,
               const std::function<void(const ObservationEvent&)>& on_marker = {});

  // Sharing diagnostics (tests assert views with equal knobs share).
  std::size_t view_count() const { return views_.size(); }
  std::size_t ring_count() const { return rings_.size(); }
  std::size_t tracker_count() const { return trackers_.size(); }
  std::size_t density_count() const { return densities_.size(); }

  // mac::MacObserver (live push path — delegates to the shared ingestion):
  void on_frame(const mac::Frame& frame, SimTime start, SimTime end) override;

 private:
  /// Shared ingestion body: density/ring updates + view dispatch. The live
  /// on_frame passes the original frame; ingest() passes the reconstructed
  /// one (identical in every field the pipeline reads).
  void ingest_frame(const mac::Frame& frame, SimTime start, SimTime end);

  struct DensityEntry {
    SimDuration window;
    double tx_range_m;
    SimTime attached_at;
    std::vector<const HubView*> holders;
    HeardTransmitterDensity density;

    DensityEntry(SimDuration w, double r, SimTime at)
        : window(w), tx_range_m(r), attached_at(at), density(w, r) {}
  };

  static bool any_holder_active(const std::vector<const HubView*>& holders);

  sim::Simulator& sim_;
  NodeId self_;
  mac::DcfParams params_;
  phy::CsTimeline& timeline_;
  std::vector<HubView*> views_;
  // unique_ptr entries: views hold raw pointers across growth.
  std::vector<std::unique_ptr<FrameRing>> rings_;
  std::vector<std::unique_ptr<IntensityTracker>> trackers_;
  std::vector<std::unique_ptr<DensityEntry>> densities_;
};

}  // namespace manet::detect
