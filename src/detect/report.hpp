// Human-readable rendering of a monitor's verdict — the library's
// "explain yourself" surface, used by the examples and handy in a REPL
// or debugger.
//
// Time-to-detection semantics (MonitorStats): `first_flag_time` is the
// sim time the first flagged window closed (kTimeNever if none did) and
// `windows_to_first_flag` is that window's 1-based ordinal among the
// sample-driven windows (Wilcoxon batches or sequential-test emissions).
// The ordinal is reported as 0 — meaning "absent" — in two cases:
//   * nothing ever flagged (first_flag_time == kTimeNever), and
//   * the first flag came from a single-shot `rts_gap_bound` verdict.
// A gap-bound verdict fires immediately on one impossible anchorless RTS;
// it closes no sample window, so "how many windows until the flag" is not
// a meaningful question for it — where it lands among the regular windows
// depends only on when unrelated traffic happened to anchor. Consumers
// ranking detectors by window count must treat 0 as "flagged without a
// window ordinal" whenever first_flag_time != kTimeNever (use
// first_flag_time itself for latency comparisons; it is always valid).
#pragma once

#include <string>

#include "detect/monitor.hpp"

namespace manet::detect {

/// Multi-line summary: identity, observation counts, per-check violation
/// tallies, window statistics, and the overall verdict at `alpha`-style
/// majority reading (flag rate > 0.5 reads as "misbehaving").
std::string render_report(const Monitor& monitor);

/// One-line verdict: "node 7: MISBEHAVING (flag rate 0.98 over 56 windows)".
std::string render_verdict(const Monitor& monitor);

}  // namespace manet::detect
