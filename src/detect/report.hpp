// Human-readable rendering of a monitor's verdict — the library's
// "explain yourself" surface, used by the examples and handy in a REPL
// or debugger.
#pragma once

#include <string>

#include "detect/monitor.hpp"

namespace manet::detect {

/// Multi-line summary: identity, observation counts, per-check violation
/// tallies, window statistics, and the overall verdict at `alpha`-style
/// majority reading (flag rate > 0.5 reads as "misbehaving").
std::string render_report(const Monitor& monitor);

/// One-line verdict: "node 7: MISBEHAVING (flag rate 0.98 over 56 windows)".
std::string render_verdict(const Monitor& monitor);

}  // namespace manet::detect
