#include "detect/arma.hpp"

namespace manet::detect {

void ArmaIntensityFilter::add_batch(double busy_fraction) {
  if (busy_fraction < 0.0) busy_fraction = 0.0;
  if (busy_fraction > 1.0) busy_fraction = 1.0;
  if (!primed_) {
    rho_ = busy_fraction;
    primed_ = true;
  } else {
    rho_ = alpha_ * rho_ + (1.0 - alpha_) * busy_fraction;
  }
  ++batches_;
}

}  // namespace manet::detect
