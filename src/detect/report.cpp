#include "detect/report.hpp"

#include <cstdio>

namespace manet::detect {

namespace {
std::string verdict_word(const Monitor& monitor) {
  if (monitor.stats().windows == 0) return "INSUFFICIENT DATA";
  return monitor.flag_rate() > 0.5 ? "MISBEHAVING" : "well behaved";
}
}  // namespace

std::string render_verdict(const Monitor& monitor) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "node %u: %s (flag rate %.2f over %llu windows)",
                monitor.tagged(), verdict_word(monitor).c_str(),
                monitor.flag_rate(),
                static_cast<unsigned long long>(monitor.stats().windows));
  return buf;
}

std::string render_report(const Monitor& monitor) {
  const MonitorStats& st = monitor.stats();
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "monitor %u watching node %u\n"
      "  observations : %llu RTS, %llu samples accepted "
      "(%llu gap-filtered, %llu unanchored, %llu over-long)\n"
      "  deterministic: %llu impossible back-off, %llu SeqOff violations, "
      "%llu Attempt/MD violations\n"
      "  degradation  : %llu PRS resyncs (%llu frames lost), "
      "%llu impaired windows discarded\n"
      "  statistical  : %llu windows, %llu flagged (rate %.3f)\n"
      "  system state : traffic intensity %.3f\n"
      "  verdict      : %s\n",
      monitor.self(), monitor.tagged(),
      static_cast<unsigned long long>(st.rts_observed),
      static_cast<unsigned long long>(st.samples),
      static_cast<unsigned long long>(st.skipped_queue_gap),
      static_cast<unsigned long long>(st.skipped_no_anchor),
      static_cast<unsigned long long>(st.skipped_long_window),
      static_cast<unsigned long long>(st.impossible_backoff),
      static_cast<unsigned long long>(st.seq_off_violations),
      static_cast<unsigned long long>(st.attempt_violations),
      static_cast<unsigned long long>(st.seq_off_resyncs),
      static_cast<unsigned long long>(st.frames_lost),
      static_cast<unsigned long long>(st.windows_discarded_impaired),
      static_cast<unsigned long long>(st.windows),
      static_cast<unsigned long long>(st.flagged_windows), monitor.flag_rate(),
      monitor.traffic_intensity(), verdict_word(monitor).c_str());
  return buf;
}

}  // namespace manet::detect
