// Per-neighbor misbehavior monitor — the paper's framework (Section 4).
//
// A Monitor lives on node R and watches one tagged neighbor S. It combines:
//
//  DETERMINISTIC checks (immediate flags):
//   * SeqOff continuity — each RTS must announce the previous offset + 1
//     (mod 2^13). Replayed/backward offsets are blatant violations. Small
//     forward gaps are attributed to frames the monitor failed to decode
//     (lossy observation): the monitor resynchronizes its PRS position and
//     discards the stale window. Only jumps beyond `max_seq_off_gap` —
//     a cheater scanning ahead for favorable values — are violations.
//   * Attempt/MD honesty — a retransmission (same MD5 digest) must carry a
//     larger attempt number.
//   * Impossible back-off — if the dictated back-off could not have been
//     counted down even if every slot in the observation window had been
//     idle for S, the timer was violated outright.
//
//  STATISTICAL inference (for windows where R's channel view may differ
//  from S's):
//   * R tracks its traffic intensity with the ARMA filter (Eq. 6) and its
//     neighborhood density, feeds them into the system-state model
//     (Eqs. 1-5) to translate its own idle/busy observation of each
//     back-off window into the sender's estimated countdown y.
//   * The dictated value x comes from S's announced PRS offset.
//   * After `sample_size` (x, y) pairs, a one-sided Wilcoxon rank-sum test
//     asks whether y is stochastically smaller than x by more than the
//     permissible margin; p < alpha rejects H0 ("S is well behaved").
//
// Monitors are views over a per-node ObservationHub: the decoded-frame
// ring, density estimator, and ARMA tracker live in the hub and are shared
// by every monitor on the node whose config knobs match (see
// observation_hub.hpp for the exact sharing rules). In the batched layout
// (monitor_batch.hpp, the default pipeline) a Monitor is a thin facade
// over a MonitorBatch lane; MonitorFactory picks the layout.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "detect/observation_hub.hpp"
#include "detect/sequential.hpp"
#include "detect/system_state.hpp"
#include "detect/wilcoxon.hpp"
#include "geom/region_model.hpp"
#include "mac/dcf.hpp"
#include "phy/cs_timeline.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace manet::detect {

class MonitorBatch;  // detect/monitor_batch.hpp

/// Detection pipeline layouts the harnesses can run. All three produce
/// bit-identical results (perf_pr8.sh byte-diffs the artifacts):
///  * kBatch — monitors are lanes of a per-node MonitorBatch: one
///    evaluation per (node, tagged, config-group), SoA fan-out, batched
///    statistics (monitor_batch.hpp). The default.
///  * kHub — every monitor is its own HubView over the node's shared
///    ObservationHub (the PR-5 pipeline).
///  * kReference — every monitor owns a private hub: structurally the
///    pre-hub pipeline, the equivalence oracle and perf baseline.
enum class PipelineImpl : std::uint8_t { kReference, kHub, kBatch };

/// Parse "batch" / "hub" / "reference" (throws util::ConfigError).
PipelineImpl pipeline_from_name(const std::string& name);
const char* pipeline_name(PipelineImpl impl);

struct MonitorConfig {
  std::size_t sample_size = 10;    // Wilcoxon window (paper: 10/25/50/100)
  double alpha = 0.01;             // significance level for rejecting H0
  /// Permissible deficit between expected and observed back-off ("the
  /// extent of the difference that is permissible", Section 4), expressed
  /// as a fraction of the contention window: samples are CW-normalized and
  /// the observed sample is shifted up by this amount before the one-sided
  /// test, so only deficits beyond the margin count as evidence.
  double margin_fraction = 0.10;
  WilcoxonOptions wilcoxon;

  /// Statistical test closing the windows. kWilcoxon (default) is the
  /// paper's batch rank-sum over `sample_size` pairs. kCusum / kSprt run a
  /// sequential test over the same per-sample deficit (sequential.hpp):
  /// a verdict window is emitted the moment the score crosses its
  /// threshold (bounded time-to-detection), plus an unflagged checkpoint
  /// window every `sample_size` samples carrying the running score as
  /// p_less = exp(-score) — so honest runs still produce the window
  /// denominators the ROC scorer needs.
  DetectorKind detector = DetectorKind::kWilcoxon;
  CusumParams cusum;
  SprtParams sprt;

  double arma_alpha = 0.995;       // Eq. 6 smoothing constant
  std::size_t arma_batch_slots = 100;  // s: slots per ARMA batch

  /// Assumed S-R separation for the region geometry (the grid spacing in
  /// the paper's experiments; monitors do not know exact positions).
  double separation_m = 240.0;
  double sensing_range_m = 550.0;
  double tx_range_m = 250.0;

  ActivityMapping mapping = ActivityMapping::kPerSlot;

  /// Scale on the p(I|B) countdown credit given to anonymous (undecodable)
  /// busy time. For a one-hop monitor nearly all energy it senses is also
  /// sensed by the tagged node (separation + decode range < sensing range),
  /// so the literal Eq. 1 credit overestimates; see bench/ablation_estimator
  /// for the sweep behind the default.
  double busy_credit_factor = 1.0;

  /// Apply the p(I|I) discount of Eq. 1 to the window's free idle time.
  /// The clean-window filter already rejects windows where the tagged
  /// node's view diverged (hidden freezes blow the estimate past CW), so
  /// the accepted windows are consistent-view by construction and the
  /// marginal discount would double-count — creating a systematic deficit
  /// that turns into false alarms at large sample sizes. Enable to
  /// evaluate Eq. 1 verbatim (bench/ablation_estimator).
  bool apply_idle_correction = false;

  /// Fixed region node counts (k, n, m, j). The paper's grid experiments
  /// set n = k = 5 deterministically; when unset, counts come from the
  /// online density estimator.
  std::optional<double> fixed_n, fixed_k, fixed_m, fixed_j;
  /// Fixed contender count M for the activity mapping; when unset, the
  /// density estimator supplies it.
  std::optional<double> fixed_contenders;

  SimDuration density_window = 5 * kSecond;

  /// Ignore observation windows longer than this (the tagged node's queue
  /// was almost surely empty part of the time, so the window does not
  /// measure a back-off). 0 disables the cap.
  SimDuration max_window = 2 * kSecond;

  /// Clean-window acceptance. The monitor cannot see when a packet arrived
  /// in the tagged node's queue; a window that spans queue-empty time
  /// measures idle time, not back-off. Two window classes are provably (or
  /// plausibly) gap-free and become statistical samples:
  ///   * retransmissions (Attempt# > 1): the node was certainly backlogged,
  ///     and the window is anchored exactly at its response timeout;
  ///   * first attempts whose estimated countdown does not exceed the
  ///     contention window plus `queue_gap_slack_slots`: an honest
  ///     backlogged node can never legitimately exceed CW, so anything
  ///     within CW + slack is gap-free up to estimator noise.
  /// Rejected windows are counted, not tested (they still feed the
  /// deterministic checks). Disable to reproduce the naive estimator
  /// (bench/ablation_estimator shows why that fails).
  bool clean_window_filter = true;
  double queue_gap_slack_slots = 8.0;

  bool deterministic_checks = true;

  /// Anchorless timing bound for RTS streams that never complete an
  /// exchange (RTS-flood DoS, mac/attackers.hpp): when an RTS arrives with
  /// no usable window anchor, the gap since the previous RTS's air end
  /// still upper-bounds how many slots the sender could have counted down;
  /// a dictated value exceeding the bound is an impossible back-off. Such
  /// violations close an immediate single-shot deterministic window (there
  /// may never be Wilcoxon samples to attach them to). Off by default:
  /// the bound also catches ordinary cheats on anchorless retries, which
  /// would perturb the paper-faithful fig5/fig6 statistics.
  bool rts_gap_bound = false;

  /// Largest forward SeqOff# gap (count of RTSes the monitor evidently
  /// missed) attributed to lossy observation rather than misbehavior. A
  /// tolerated gap *resynchronizes* the monitor's PRS position to the
  /// announced offset (counted in `seq_off_resyncs`, and the stale window
  /// is discarded); a gap beyond the bound is a deterministic violation —
  /// a cheater skipping ahead to cherry-pick small dictated values. Gaps
  /// spanning a recorded outage of the monitor's own radio resync
  /// regardless of size (the monitor knows it was deaf).
  std::uint32_t max_seq_off_gap = 64;

  /// Age horizon for the decoded-frame history: a frame is dropped once
  /// its NAV reservation is older than this relative to the newest decode.
  /// Must comfortably exceed `max_window` plus the longest NAV so window
  /// accounting never loses a frame that could block the tagged node; the
  /// default (4 s) doubles the default 2 s `max_window`.
  SimDuration decoded_retention = 4 * kSecond;

  /// Hard cap on the decoded-frame history (entries); the age-based prune
  /// of `decoded_retention` usually keeps it far smaller, the cap bounds
  /// pathological bursts. When the cap binds, the oldest frames are
  /// dropped even if still within the retention horizon — window
  /// accounting then under-counts blocked time, so size the cap to the
  /// expected frame rate times the retention.
  std::size_t max_decoded_frames = 4096;

  /// Baseline mode: pretend the paper's modification does not exist. The
  /// monitor then knows only the protocol's back-off *distribution*
  /// (uniform over [0, CW]), not the dictated values: the expected sample
  /// becomes uniform quantiles, and every deterministic check (SeqOff,
  /// Attempt/MD, impossible back-off) is unavailable. Used by
  /// bench/ablation_prs_value to quantify what the verifiable PRS buys.
  bool prs_aware = true;

  /// Record every (expected, observed) pair for offline diagnostics
  /// (estimator-bias ablations). Off by default to keep memory flat.
  bool record_samples = false;
};

/// Outcome of one completed Wilcoxon window.
struct WindowResult {
  SimTime at = 0;
  double p_less = 1.0;
  bool statistical_flag = false;
  bool deterministic_flag = false;
  bool flagged() const { return statistical_flag || deterministic_flag; }

  bool operator==(const WindowResult&) const = default;
};

struct MonitorStats {
  std::uint64_t rts_observed = 0;
  std::uint64_t samples = 0;
  std::uint64_t windows = 0;
  std::uint64_t flagged_windows = 0;
  std::uint64_t seq_off_violations = 0;
  std::uint64_t attempt_violations = 0;
  std::uint64_t impossible_backoff = 0;
  std::uint64_t skipped_no_anchor = 0;   // no usable window start
  std::uint64_t skipped_long_window = 0; // window exceeded max_window
  std::uint64_t skipped_queue_gap = 0;   // window failed the clean filter

  // Degradation under impaired observation (lossy channel / outages).
  std::uint64_t seq_off_resyncs = 0;     // tolerated gaps: PRS resynchronized
  std::uint64_t frames_lost = 0;         // RTSes inferred missed (gap sizes)
  std::uint64_t windows_discarded_impaired = 0;  // samples dropped: loss/outage

  // Time-to-detection, readable without the full window decision stream:
  // sim time the first flagged window closed at (kTimeNever while the
  // tagged node was never flagged) and that window's 1-based ordinal
  // among the sample-driven windows. 0 means "no ordinal": either nothing
  // ever flagged (first_flag_time == kTimeNever), or the first flag was a
  // single-shot rts_gap_bound verdict, which closes no sample window and
  // has no meaningful position in the window sequence (see report.hpp).
  SimTime first_flag_time = kTimeNever;
  std::uint64_t windows_to_first_flag = 0;

  bool operator==(const MonitorStats&) const = default;
};

/// Order-dependent accumulation of MonitorStats across monitors / trials
/// (the experiment harness and the trace replay use the identical
/// reduction so their aggregates compare byte-for-byte). First flag:
/// earliest wins, and its window ordinal travels with it — mixing
/// ordinals across sources would be meaningless.
void accumulate_stats(MonitorStats& into, const MonitorStats& from);

class Monitor : public HubView {
 public:
  /// Attaches as a view of `hub` (the hub's node is R). `tagged` is S.
  /// Prefer MonitorFactory, which also covers the other layouts.
  Monitor(ObservationHub& hub, NodeId tagged, const MonitorConfig& config);

  /// Batched facade: registers a lane in `batch` and delegates all state
  /// to it. The Monitor itself never attaches to the hub (the lane's
  /// config-group is the HubView); stats()/windows()/sample_log() read
  /// the lane's SoA slots, so callers cannot tell the layouts apart.
  Monitor(MonitorBatch& batch, NodeId tagged, const MonitorConfig& config);

  ~Monitor() override;

  NodeId tagged() const { return tagged_; }
  NodeId self() const { return hub_.self(); }

  /// Suspend/resume observation. Reactivation clears the partially filled
  /// window and the exchange anchor (used when mobility hands the
  /// monitoring role to another neighbor). Views sharing hub components
  /// must be toggled together (see observation_hub.hpp).
  void set_active(bool active);
  bool active() const { return active_; }

  const MonitorStats& stats() const;
  const std::vector<WindowResult>& windows() const;

  /// One recorded sample with its window decomposition (diagnostics).
  struct SampleRecord {
    double expected = 0;     // x: dictated back-off (slots)
    double observed = 0;     // y: estimated countdown (slots)
    double idle_slots = 0;   // free idle in the window (DIFS-corrected)
    double busy_unc_slots = 0;  // anonymous-energy busy
    double blocked_slots = 0;   // decoded air + NAV (certainly frozen)
    std::uint32_t attempt = 1;
    bool accepted = true;       // passed the clean-window filter
  };

  /// All samples (only when config.record_samples).
  const std::vector<SampleRecord>& sample_log() const;

  /// Decoded-frame history currently retained by this monitor's ring
  /// (memory diagnostics; bounded by config.max_decoded_frames).
  std::size_t decoded_retained() const { return ring_->size(); }

  /// Fraction of completed windows that flagged S.
  double flag_rate() const;

  /// Current smoothed traffic intensity (Eq. 6).
  double traffic_intensity() const { return arma_->filter().intensity(); }

  /// Current system-state inputs the statistical path would use.
  SystemStateParams current_state() const;

  const ObservationHub& hub() const { return hub_; }

  // HubView:
  bool view_active() const override { return active_; }
  void on_hub_frame(const mac::Frame& frame, SimTime start, SimTime end) override;

 private:
  friend class MonitorFactory;

  /// Delegation target for the private-hub layout (MonitorFactory's
  /// standalone mode and the deprecated ctor): binds to *owned, then
  /// takes ownership.
  Monitor(std::unique_ptr<ObservationHub> owned, NodeId tagged,
          const MonitorConfig& config);

  void handle_tagged_rts(const mac::Frame& rts, SimTime start);
  void note_exchange_end(SimTime at);
  void add_sample(double expected, double observed, bool deterministic_violation);
  void close_window();
  /// Emits a sequential-detector window (threshold crossing, or the
  /// checkpoint every sample_size samples).
  void close_sequential(bool crossed, double score);
  /// Appends a completed window verdict with the shared flag/first-flag
  /// bookkeeping. `single_shot` marks the anchorless rts_gap_bound path:
  /// its verdicts carry no window ordinal (windows_to_first_flag stays 0).
  void record_window(const WindowResult& result, bool single_shot = false);
  /// Unwraps the 13-bit announced offset against the last seen offset.
  std::uint64_t unwrap_seq_off(std::uint32_t announced);

  // Declared first so the hub outlives every member that references it
  // (destroyed last; the destructor body detaches before that).
  std::unique_ptr<ObservationHub> owned_hub_;
  ObservationHub& hub_;
  sim::Simulator& sim_;
  phy::CsTimeline& timeline_;
  NodeId tagged_;
  MonitorConfig config_;

  // Batched facade (null in the view/standalone layouts): all mutable
  // detection state lives in the batch's lane `lane_`; the members below
  // stay at their defaults and the accessors branch on batch_.
  MonitorBatch* batch_ = nullptr;
  std::size_t lane_ = 0;

  mac::VerifiableBackoff tagged_prs_;
  SystemStateModel model_;

  // Hub components (shared or private per the hub's keying rules).
  ObservationHub::FrameRing* ring_;
  ObservationHub::IntensityTracker* arma_;
  HeardTransmitterDensity* density_;

  bool active_ = true;

  // Exchange tracking for the tagged node.
  std::optional<SimTime> anchor_;        // when S's current back-off could have started
  /// We answered S's RTS with a CTS but have not seen the DATA yet. If the
  /// next thing we hear from S is another RTS, we cannot tell whether S
  /// missed our CTS (back-off began at its CTS timeout) or its DATA died
  /// (back-off began at its ACK timeout): the anchor is ambiguous and the
  /// sample is skipped.
  bool own_cts_pending_ = false;
  std::optional<std::uint64_t> last_seq_off_;  // unwrapped
  std::optional<SimTime> last_rts_heard_;      // air start of the last RTS
  std::optional<crypto::Md5Digest> last_digest_;
  std::uint32_t last_attempt_ = 0;

  // Current accumulating window.
  std::vector<double> xs_;
  std::vector<double> ys_;
  bool window_deterministic_flag_ = false;

  // Sequential-detector state (null under kWilcoxon). seq_samples_ counts
  // samples since the last emitted window (crossing or checkpoint).
  std::unique_ptr<SequentialTest> seq_test_;
  std::size_t seq_samples_ = 0;

  // Statistics scratch, reused across windows (close_window allocates
  // nothing in steady state).
  std::vector<double> shifted_;
  WilcoxonScratch wilcoxon_scratch_;

  MonitorStats stats_;
  std::vector<WindowResult> windows_;
  std::vector<SampleRecord> sample_log_;
};

/// Builder for monitors: one place to choose the observation layout and
/// stamp out per-neighbor views with a shared config.
///
///   * Batched mode (the default pipeline): every watch() registers a lane
///     in the given MonitorBatch and returns a facade Monitor over it.
///   * Shared-hub mode: every watch() attaches a view to the given
///     ObservationHub — live or replay, the factory does not care where
///     the hub's events come from.
///   * Standalone mode: every watch() owns a private ObservationHub over
///     the node's MAC/timeline — structurally the pre-hub pipeline, kept
///     as the equivalence-test reference and perf baseline.
class MonitorFactory {
 public:
  /// Batched mode: facade monitors over `batch`'s SoA lanes.
  explicit MonitorFactory(MonitorBatch& batch) : batch_(&batch) {}

  /// Shared-hub mode: views over `hub`.
  explicit MonitorFactory(ObservationHub& hub) : hub_(&hub) {}

  /// Standalone mode: a private hub per monitor on this node.
  MonitorFactory(sim::Simulator& simulator, mac::DcfMac& monitor_mac,
                 phy::CsTimeline& timeline)
      : sim_(&simulator), mac_(&monitor_mac), timeline_(&timeline) {}

  /// Config applied by subsequent watch() calls (chainable).
  MonitorFactory& with_config(const MonitorConfig& config) {
    config_ = config;
    return *this;
  }
  const MonitorConfig& config() const { return config_; }

  /// Creates a monitor of `tagged` with the current config.
  std::unique_ptr<Monitor> watch(NodeId tagged) const;

  /// Convenience: watch() with a one-off config.
  std::unique_ptr<Monitor> watch(NodeId tagged, const MonitorConfig& config) {
    config_ = config;
    return watch(tagged);
  }

 private:
  MonitorBatch* batch_ = nullptr;
  ObservationHub* hub_ = nullptr;
  sim::Simulator* sim_ = nullptr;
  mac::DcfMac* mac_ = nullptr;
  phy::CsTimeline* timeline_ = nullptr;
  MonitorConfig config_;
};

}  // namespace manet::detect
