// Offline detection over recorded observation traces.
//
// A ReplaySession reconstructs the monitor node's world from a trace
// header — a bare simulator advanced to the recording start, a
// carrier-sense timeline restored from the header snapshot — and runs the
// SAME Monitor/ObservationHub code the live experiment runs, fed by
// ObservationHub::consume() instead of simulator callbacks. Replayed
// MonitorStats and window logs are byte-identical to the live run that
// recorded the trace (tests/trace_test.cpp holds this across static,
// mobile-handoff, lossy, and attacker scenarios).
//
// replay_detection() is the offline counterpart of
// run_multi_detection_experiment(): it replays one trace per monitoring
// node (in recording order, which is monitor-creation order) and
// aggregates per-config results with the same readout loop. Fields that
// only the live network can measure (measured_rho) are zero.
#pragma once

#include <memory>
#include <vector>

#include "detect/experiment.hpp"
#include "detect/monitor.hpp"
#include "detect/monitor_batch.hpp"
#include "detect/trace.hpp"
#include "sim/simulator.hpp"

namespace manet::detect {

/// One monitoring node's offline detection run: hub, timeline, and the
/// monitor views (config-major, then target order — exactly the live
/// harness's creation order). `impl` picks the hub-backed pipeline:
/// kBatch (default) lanes the monitors through one MonitorBatch, kHub
/// attaches each as its own HubView; kReference (private hub per monitor)
/// has no replay form — the session IS the one reconstructed hub — and
/// throws std::invalid_argument.
class ReplaySession {
 public:
  ReplaySession(const TraceHeader& header,
                const std::vector<MonitorConfig>& monitors,
                PipelineImpl impl = PipelineImpl::kBatch);

  /// Drains `source` through the hub. kActivity markers toggle every view
  /// (the recorded handoff suspends/resumes); other markers only advance
  /// the clock. May be called with multiple sources in sequence.
  void run(ObservationSource& source);

  const TraceHeader& header() const { return header_; }
  const std::vector<std::unique_ptr<Monitor>>& views() const { return views_; }
  sim::Simulator& simulator() { return sim_; }
  ObservationHub& hub() { return *hub_; }

 private:
  TraceHeader header_;
  sim::Simulator sim_;
  phy::CsTimeline timeline_;
  // Declaration order is destruction contract: views (facades) first,
  // then the batch (detaching its groups), then the hub.
  std::unique_ptr<ObservationHub> hub_;
  std::unique_ptr<MonitorBatch> batch_;  // null under kHub
  std::vector<std::unique_ptr<Monitor>> views_;
};

/// Replays recorded traces (one per monitoring node, in recording order)
/// against `monitors` and aggregates exactly like the live harness:
/// windows before `warmup_s` are dropped, per-config counters and stats
/// accumulate in creation order. `handoffs` is recovered from the
/// suspend markers in the traces; `measured_rho` (live-only) stays 0.
MultiDetectionResult replay_detection(
    const std::vector<MemoryTraceReader*>& traces,
    const std::vector<MonitorConfig>& monitors, double warmup_s,
    bool collect_windows = false);

/// Convenience over a whole recorder (e.g. fresh from a live run).
MultiDetectionResult replay_detection(const TraceRecorder& recorder,
                                      const std::vector<MonitorConfig>& monitors,
                                      double warmup_s,
                                      bool collect_windows = false);

}  // namespace manet::detect
