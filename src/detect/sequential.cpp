#include "detect/sequential.hpp"

#include <cmath>

#include "util/config.hpp"

namespace manet::detect {

DetectorKind detector_from_name(const std::string& name) {
  if (name == "wilcoxon") return DetectorKind::kWilcoxon;
  if (name == "cusum") return DetectorKind::kCusum;
  if (name == "sprt") return DetectorKind::kSprt;
  throw util::ConfigError("'" + name +
                          "' is not a detector (wilcoxon, cusum, sprt)");
}

const char* detector_name(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kWilcoxon: return "wilcoxon";
    case DetectorKind::kCusum: return "cusum";
    case DetectorKind::kSprt: return "sprt";
  }
  return "?";
}

SequentialTest::Step CusumTest::update(double deficit) {
  score_ += deficit - params_.drift;
  if (score_ < 0.0) score_ = 0.0;
  return Step{score_ >= params_.threshold, score_};
}

SprtTest::SprtTest(const SprtParams& params) {
  const double var = params.sigma * params.sigma;
  step_gain_ = (params.mean_cheat - params.mean_honest) / var;
  step_center_ = 0.5 * (params.mean_honest + params.mean_cheat);
  upper_ = std::log((1.0 - params.beta) / params.alpha);
  lower_ = std::log(params.beta / (1.0 - params.alpha));
}

SequentialTest::Step SprtTest::update(double deficit) {
  llr_ += step_gain_ * (deficit - step_center_);
  if (llr_ >= upper_) return Step{true, score()};
  // Accepting H0 restarts the walk: without the restart a long honest
  // prefix would bank unbounded negative credit and mask a later cheat.
  if (llr_ <= lower_) llr_ = 0.0;
  return Step{false, score()};
}

std::size_t SequentialBank::add(DetectorKind kind, const CusumParams& cusum,
                                const SprtParams& sprt) {
  if (kind == DetectorKind::kWilcoxon) {
    throw util::ConfigError("wilcoxon detectors have no sequential-bank slot");
  }
  const std::size_t slot = kind_.size();
  kind_.push_back(kind);
  state_.push_back(0.0);
  if (kind == DetectorKind::kCusum) {
    a_.push_back(cusum.drift);
    b_.push_back(cusum.threshold);
    upper_.push_back(0.0);
    lower_.push_back(0.0);
  } else {
    // Same coefficient derivation as the SprtTest constructor.
    const double var = sprt.sigma * sprt.sigma;
    a_.push_back((sprt.mean_cheat - sprt.mean_honest) / var);
    b_.push_back(0.5 * (sprt.mean_honest + sprt.mean_cheat));
    upper_.push_back(std::log((1.0 - sprt.beta) / sprt.alpha));
    lower_.push_back(std::log(sprt.beta / (1.0 - sprt.alpha)));
  }
  return slot;
}

SequentialBank::Step SequentialBank::update(std::size_t slot, double deficit) {
  if (kind_[slot] == DetectorKind::kCusum) {
    // Mirrors CusumTest::update — the compound `+=` keeps the FP grouping
    // (s + (d - k)) identical to the scalar test.
    double s = state_[slot];
    s += deficit - a_[slot];
    if (s < 0.0) s = 0.0;
    state_[slot] = s;
    return Step{s >= b_[slot], s};
  }
  // Mirrors SprtTest::update, including the restart-on-accept.
  double llr = state_[slot];
  llr += a_[slot] * (deficit - b_[slot]);
  state_[slot] = llr;
  if (llr >= upper_[slot]) return Step{true, llr > 0.0 ? llr : 0.0};
  if (llr <= lower_[slot]) {
    state_[slot] = 0.0;
    llr = 0.0;
  }
  return Step{false, llr > 0.0 ? llr : 0.0};
}

std::unique_ptr<SequentialTest> make_sequential_test(DetectorKind kind,
                                                     const CusumParams& cusum,
                                                     const SprtParams& sprt) {
  switch (kind) {
    case DetectorKind::kWilcoxon: return nullptr;
    case DetectorKind::kCusum: return std::make_unique<CusumTest>(cusum);
    case DetectorKind::kSprt: return std::make_unique<SprtTest>(sprt);
  }
  return nullptr;
}

}  // namespace manet::detect
