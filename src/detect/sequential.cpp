#include "detect/sequential.hpp"

#include <cmath>

#include "util/config.hpp"

namespace manet::detect {

DetectorKind detector_from_name(const std::string& name) {
  if (name == "wilcoxon") return DetectorKind::kWilcoxon;
  if (name == "cusum") return DetectorKind::kCusum;
  if (name == "sprt") return DetectorKind::kSprt;
  throw util::ConfigError("'" + name +
                          "' is not a detector (wilcoxon, cusum, sprt)");
}

const char* detector_name(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kWilcoxon: return "wilcoxon";
    case DetectorKind::kCusum: return "cusum";
    case DetectorKind::kSprt: return "sprt";
  }
  return "?";
}

SequentialTest::Step CusumTest::update(double deficit) {
  score_ += deficit - params_.drift;
  if (score_ < 0.0) score_ = 0.0;
  return Step{score_ >= params_.threshold, score_};
}

SprtTest::SprtTest(const SprtParams& params) {
  const double var = params.sigma * params.sigma;
  step_gain_ = (params.mean_cheat - params.mean_honest) / var;
  step_center_ = 0.5 * (params.mean_honest + params.mean_cheat);
  upper_ = std::log((1.0 - params.beta) / params.alpha);
  lower_ = std::log(params.beta / (1.0 - params.alpha));
}

SequentialTest::Step SprtTest::update(double deficit) {
  llr_ += step_gain_ * (deficit - step_center_);
  if (llr_ >= upper_) return Step{true, score()};
  // Accepting H0 restarts the walk: without the restart a long honest
  // prefix would bank unbounded negative credit and mask a later cheat.
  if (llr_ <= lower_) llr_ = 0.0;
  return Step{false, score()};
}

std::unique_ptr<SequentialTest> make_sequential_test(DetectorKind kind,
                                                     const CusumParams& cusum,
                                                     const SprtParams& sprt) {
  switch (kind) {
    case DetectorKind::kWilcoxon: return nullptr;
    case DetectorKind::kCusum: return std::make_unique<CusumTest>(cusum);
    case DetectorKind::kSprt: return std::make_unique<SprtTest>(sprt);
  }
  return nullptr;
}

}  // namespace manet::detect
