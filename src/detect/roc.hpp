// ROC / time-to-detection scoring over the per-window decision stream.
//
// The Wilcoxon verdict of a window is a threshold comparison of its
// p-value, and the p-value itself does not depend on the threshold: one
// simulation per (attacker, trial) yields the full decision stream, and
// every operating point of the detector is a post-hoc reduction
//
//   flagged(w, theta) = w.deterministic_flag || w.p_less < theta.
//
// score_roc_curve() applies that reduction to the per-trial streams of an
// attack run and a paired honest run:
//   * detection rate   = flagged attack windows / attack windows,
//   * false-alarm rate = flagged honest windows / honest windows,
//   * time-to-detection per trial = first flagged window's close time
//     minus the warm-up boundary (trials that never flag are reported
//     separately; the TTD distribution covers detected trials).
// The AUC integrates detection rate over false-alarm rate (trapezoid,
// anchored at (0,0) and (1,1)) — the scalar every later detector change
// is scored against (ROADMAP items 4-5).
//
// attacker_spec_from_name() maps the bench/CLI attacker vocabulary
// ("pm50", "colluding", ...) onto experiment::AttackerSpec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/experiment.hpp"

namespace manet::detect {

/// One operating point of the detector (one threshold).
struct RocThresholdPoint {
  double threshold = 0.0;
  std::uint64_t attack_windows = 0;
  std::uint64_t attack_flagged = 0;
  std::uint64_t honest_windows = 0;
  std::uint64_t honest_flagged = 0;
  double detection_rate = 0.0;   // attack_flagged / attack_windows
  double false_alarm_rate = 0.0; // honest_flagged / honest_windows
  std::uint64_t trials = 0;          // attack trials scored
  std::uint64_t detected_trials = 0; // attack trials with >= 1 flagged window
  /// Time-to-detection of each detected trial, seconds past warm-up, in
  /// trial order (empty when nothing was detected).
  std::vector<double> ttd_s;
  double median_ttd_s = 0.0;  // over detected trials; 0 when none
  double mean_ttd_s = 0.0;
  double min_ttd_s = 0.0;
  double max_ttd_s = 0.0;
};

struct RocCurve {
  std::vector<RocThresholdPoint> points;  // in threshold order, as given
  /// Trapezoid area under (false_alarm, detection), with (0,0) and (1,1)
  /// anchors, integrated over points sorted by false-alarm rate.
  double auc = 0.0;
};

/// Scores the detector over `thresholds` from the per-trial decision
/// streams (DetectionResult::trial_logs — run the experiments with
/// collect_windows). Windows before `warmup_s` are assumed already
/// excluded by the experiment readout; TTD is measured from `warmup_s`.
RocCurve score_roc_curve(const DetectionResult& attack,
                         const DetectionResult& honest,
                         const std::vector<double>& thresholds,
                         double warmup_s);

/// Knobs shared by the name -> spec mapping below (the bench CLI surface).
struct AttackerTuning {
  double pm = 80.0;
  std::uint32_t group = 3;
  double collude_phase_s = 2.0;
  double probation_s = 30.0;
  double vigilance_s = 0.0;
  bool suspect_monitor = false;
  double flood_pps = 1000.0;
};

/// Serializes the per-config trial decision streams of a baseline run
/// (DetectionResult::trial_logs for every monitor config, exactly the
/// fields score_roc_curve reads from its `honest` argument) into a
/// compact binary blob. fig_roc_adversaries memoizes honest baselines in
/// the fabric's artifact store with this, so N shards (or N repeated
/// runs) simulate each baseline once. Doubles travel as raw IEEE754, so
/// a round-trip is bit-exact.
std::string serialize_baseline(const std::vector<DetectionResult>& per_config);

/// Inverse of serialize_baseline. Only trial_logs is populated in the
/// returned results. Throws std::runtime_error on a malformed blob.
std::vector<DetectionResult> parse_baseline(const std::string& blob);

/// Maps an attacker name onto a spec: "honest", "pm<percent>" (e.g.
/// "pm50"), "colluding", "adaptive", "sybil", "rts_flood". Throws
/// util::ConfigError on anything else (strict: no std::stod leniency).
AttackerSpec attacker_spec_from_name(const std::string& name,
                                     const AttackerTuning& tuning);

/// The full v2 roster in canonical bench order.
std::vector<std::string> default_attacker_names();

}  // namespace manet::detect
