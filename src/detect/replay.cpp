#include "detect/replay.hpp"

#include <stdexcept>

namespace manet::detect {

ReplaySession::ReplaySession(const TraceHeader& header,
                             const std::vector<MonitorConfig>& monitors,
                             PipelineImpl impl)
    : header_(header) {
  if (impl == PipelineImpl::kReference) {
    throw std::invalid_argument("replay supports hub and batch pipelines only");
  }
  // World reconstruction order matters: the timeline must hold the
  // pre-attach carrier history and the clock must sit at the recording
  // start BEFORE the hub exists, so component attach times (and the ARMA
  // tick chain's origin) match the live run that recorded the trace.
  timeline_.restore(header_.timeline);
  sim_.run_until(header_.start_time);
  hub_ = std::make_unique<ObservationHub>(sim_, header_.node, header_.params,
                                          timeline_);
  if (impl == PipelineImpl::kBatch) {
    batch_ = std::make_unique<MonitorBatch>(*hub_);
  }
  MonitorFactory factory = batch_ ? MonitorFactory(*batch_) : MonitorFactory(*hub_);
  views_.reserve(monitors.size() * header_.targets.size());
  for (const MonitorConfig& mc : monitors) {
    for (const NodeId target : header_.targets) {
      views_.push_back(factory.watch(target, mc));
    }
  }
}

void ReplaySession::run(ObservationSource& source) {
  hub_->consume(source, [this](const ObservationEvent& ev) {
    if (ev.marker_code == static_cast<std::uint32_t>(MarkerCode::kActivity)) {
      for (auto& view : views_) view->set_active(ev.marker_value != 0);
    }
    // kTraceEnd needs no action: consume() already advanced the clock to
    // the marker's time, firing any ARMA ticks due before the end of run.
  });
}

MultiDetectionResult replay_detection(
    const std::vector<MemoryTraceReader*>& traces,
    const std::vector<MonitorConfig>& monitors, double warmup_s,
    bool collect_windows) {
  MultiDetectionResult result;
  result.per_config.resize(monitors.size());
  result.monitor_nodes = traces.size();
  const SimTime warmup = seconds_to_time(warmup_s);

  std::vector<std::unique_ptr<ReplaySession>> sessions;
  sessions.reserve(traces.size());
  for (MemoryTraceReader* trace : traces) {
    auto session = std::make_unique<ReplaySession>(trace->header(), monitors);
    trace->rewind();
    session->run(*trace);
    for (const ObservationEvent& ev : trace->events()) {
      if (ev.kind == ObservationKind::kMarker &&
          ev.marker_code == static_cast<std::uint32_t>(MarkerCode::kActivity) &&
          ev.marker_value == 0) {
        ++result.handoffs;  // every recorded suspend was one handoff
      }
    }
    sessions.push_back(std::move(session));
  }

  // Same readout loop as run_multi_detection_experiment: creation order,
  // config-major then target, warmup filter on window close times.
  for (const auto& session : sessions) {
    const std::size_t target_count = session->header().targets.size();
    for (std::size_t ci = 0; ci < monitors.size(); ++ci) {
      DetectionResult& out = result.per_config[ci];
      for (std::size_t ti = 0; ti < target_count; ++ti) {
        const Monitor& view = *session->views()[ci * target_count + ti];
        for (const WindowResult& w : view.windows()) {
          if (w.at < warmup) continue;
          ++out.windows;
          if (w.flagged()) ++out.flagged;
          if (w.statistical_flag) ++out.flagged_statistical;
          if (collect_windows) out.window_log.push_back(w);
        }
        accumulate_stats(out.stats, view.stats());
      }
    }
  }
  for (DetectionResult& out : result.per_config) {
    out.detection_rate = out.windows ? static_cast<double>(out.flagged) /
                                           static_cast<double>(out.windows)
                                     : 0.0;
    out.statistical_rate =
        out.windows ? static_cast<double>(out.flagged_statistical) /
                          static_cast<double>(out.windows)
                    : 0.0;
    out.handoffs = result.handoffs;
  }
  return result;
}

MultiDetectionResult replay_detection(const TraceRecorder& recorder,
                                      const std::vector<MonitorConfig>& monitors,
                                      double warmup_s, bool collect_windows) {
  // Round-trip through the wire format on purpose: this path is what the
  // equivalence tests drive, and it must exercise serialization.
  std::vector<std::unique_ptr<MemoryTraceReader>> readers;
  std::vector<MemoryTraceReader*> ptrs;
  readers.reserve(recorder.writers().size());
  for (const auto& writer : recorder.writers()) {
    readers.push_back(std::make_unique<MemoryTraceReader>(writer->serialize()));
    ptrs.push_back(readers.back().get());
  }
  return replay_detection(ptrs, monitors, warmup_s, collect_windows);
}

}  // namespace manet::detect
