#include "detect/system_state.hpp"

#include <algorithm>
#include <cmath>

namespace manet::detect {

double SystemStateModel::activity(const SystemStateParams& p) const {
  const double rho = std::clamp(p.rho, 0.0, 1.0);
  switch (p.mapping) {
    case ActivityMapping::kIdentity:
      return rho;
    case ActivityMapping::kPerSlot: {
      const double m = std::max(p.contenders, 1.0);
      return 1.0 - std::pow(1.0 - rho, 1.0 / m);
    }
  }
  return rho;
}

double SystemStateModel::p_busy_given_idle(const SystemStateParams& p) const {
  // Eq. 3: [A2 / (A1 + A2)] * (1 - (1 - tau)^(n + k)).
  const double tau = activity(p);
  const double some_tx = 1.0 - std::pow(1.0 - tau, p.n + p.k);
  return regions_.p_tx_in_a2() * some_tx;
}

double SystemStateModel::p_idle_given_busy(const SystemStateParams& p) const {
  // Eq. 4: [A5 / (A4 + A5)] *
  //        { [A1 / (A1 + A2)] * (1 - (1 - tau)^(n + k)) + (1 - tau)^(n + k) }.
  const double tau = activity(p);
  const double none_tx = std::pow(1.0 - tau, p.n + p.k);
  const double s_idle_factor =
      regions_.p_tx_in_a1() * (1.0 - none_tx) + none_tx;
  const double tx_in_a5 = p.include_a3_in_conditioning
                              ? regions_.p_tx_in_a5_incl_a3()
                              : regions_.p_tx_in_a5();
  return tx_in_a5 * s_idle_factor;
}

const ConditionalProbs& SystemStateModel::conditional_probs(
    const SystemStateParams& p) const {
  if (memo_valid_ && memo_key_ == p) return memo_val_;
  memo_key_ = p;
  memo_val_.p_busy_given_idle = p_busy_given_idle(p);
  memo_val_.p_idle_given_busy = p_idle_given_busy(p);
  memo_val_.p_idle_given_idle = 1.0 - memo_val_.p_busy_given_idle;
  memo_valid_ = true;
  return memo_val_;
}

}  // namespace manet::detect
