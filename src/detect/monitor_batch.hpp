// Batched struct-of-arrays detection core — one pass per node.
//
// The per-view pipeline (Monitor as a HubView) re-derives, for every
// monitor on a node, quantities that depend only on the node's shared
// observation state: the RTS deterministic checks, the window's
// CsTimeline/ring accounting, the SystemStateModel Eq. 1-5 conditional
// probabilities, and the density/ARMA inputs. With M configurations
// watching T tagged identities that is M*T near-identical passes per
// decoded frame.
//
// MonitorBatch restructures this into batch-at-a-time:
//
//  * Monitors sharing every *evaluation-relevant* config field (everything
//    except the per-lane test knobs: sample_size, alpha, margin_fraction,
//    wilcoxon options, detector kind + params, record_samples) and the
//    same tagged identity collapse into one config-group (`Group`). The
//    group — not the individual monitors — is the HubView: it owns the PRS
//    verifier, the system-state model, the exchange-tracking state, and
//    borrows the hub's shared ring/ARMA/density components under the
//    hub's usual keying rules. Each decoded frame is evaluated ONCE per
//    group; the resulting RtsOutcome (counter deltas, deterministic flags,
//    and the CW-normalized (expected, observed) sample) fans out to the
//    group's lanes in a flat loop.
//  * Per-monitor state lives in flat parallel arrays (SoA lanes): window
//    fill counts, sample arenas (one contiguous [offset, offset+capacity)
//    slice of a shared buffer per Wilcoxon lane), test thresholds,
//    detector state (a SequentialBank slot per CUSUM/SPRT lane), stats and
//    window logs. Lanes that fill on the same RTS close together through
//    wilcoxon_rank_sum_batch over one shared scratch.
//
// Equivalence contract: every per-lane output stream (WindowResult
// sequence, MonitorStats, sample log) is bit-identical to the same
// monitor running as its own HubView or with a private hub
// (tests/hub_test.cpp sweeps seeds and scenarios over all three
// pipelines). The same caveat as hub component sharing applies: lanes of
// one group must be activated/deactivated together (the experiment
// harness always toggles a node's monitor set as a unit); diverging
// activity within a group is unsupported.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "detect/monitor.hpp"
#include "detect/observation_hub.hpp"
#include "detect/sequential.hpp"
#include "detect/system_state.hpp"
#include "detect/wilcoxon.hpp"
#include "mac/backoff.hpp"

namespace manet::detect {

class MonitorBatch {
 public:
  static constexpr std::size_t kNoSeqSlot = static_cast<std::size_t>(-1);

  explicit MonitorBatch(ObservationHub& hub) : hub_(hub) {}

  ObservationHub& hub() { return hub_; }
  const ObservationHub& hub() const { return hub_; }

  /// Registers one monitor lane watching `tagged` with `config`; returns
  /// its lane index. The lane joins an existing config-group when every
  /// shared field matches (and the group was created at the same sim
  /// time); otherwise a new group attaches to the hub. Lanes start active.
  std::size_t add_lane(NodeId tagged, const MonitorConfig& config);

  /// Suspend/resume one lane (Monitor::set_active semantics: reactivation
  /// clears the partial window, the detector state, and the group's
  /// exchange anchor). Lanes of one group must be toggled together.
  void set_lane_active(std::size_t lane, bool active);
  bool lane_active(std::size_t lane) const { return lane_active_[lane] != 0; }

  const MonitorStats& lane_stats(std::size_t lane) const {
    return lane_stats_[lane];
  }
  const std::vector<WindowResult>& lane_windows(std::size_t lane) const {
    return lane_windows_[lane];
  }
  const std::vector<Monitor::SampleRecord>& lane_samples(std::size_t lane) const {
    return lane_samples_[lane];
  }

  /// The hub components backing a lane's group (facade accessors for
  /// Monitor::decoded_retained / traffic_intensity / current_state).
  ObservationHub::FrameRing& lane_ring(std::size_t lane) const;
  ObservationHub::IntensityTracker& lane_tracker(std::size_t lane) const;
  HeardTransmitterDensity& lane_density(std::size_t lane) const;

  // Sharing diagnostics (tests assert the grouping rules).
  std::size_t lane_count() const { return lane_stats_.size(); }
  std::size_t group_count() const { return groups_.size(); }

 private:
  /// The shared config fields + tagged identity + creation sim time. Two
  /// lanes share a group iff their keys compare equal — the batched
  /// counterpart of the hub's component keying (a group created later
  /// would have missed exchange state the earlier one accumulated).
  struct GroupKey {
    NodeId tagged = kInvalidNode;
    SimTime created_at = 0;
    double arma_alpha = 0.0;
    std::size_t arma_batch_slots = 0;
    double separation_m = 0.0;
    double sensing_range_m = 0.0;
    double tx_range_m = 0.0;
    ActivityMapping mapping = ActivityMapping::kPerSlot;
    double busy_credit_factor = 0.0;
    bool apply_idle_correction = false;
    std::optional<double> fixed_n, fixed_k, fixed_m, fixed_j;
    std::optional<double> fixed_contenders;
    SimDuration density_window = 0;
    SimDuration max_window = 0;
    bool clean_window_filter = false;
    double queue_gap_slack_slots = 0.0;
    bool deterministic_checks = false;
    bool rts_gap_bound = false;
    std::uint32_t max_seq_off_gap = 0;
    SimDuration decoded_retention = 0;
    std::size_t max_decoded_frames = 0;
    bool prs_aware = false;

    bool operator==(const GroupKey&) const = default;
  };
  static GroupKey make_key(NodeId tagged, SimTime now, const MonitorConfig& c);

  /// Everything one tagged RTS contributes to a lane, computed once per
  /// group and fanned out: counter deltas (always applied), the latched
  /// deterministic flag, an optional single-shot gap-bound verdict, the
  /// optional diagnostics record, and the optional CW-normalized sample.
  struct RtsOutcome {
    std::uint64_t seq_off_violations = 0;
    std::uint64_t attempt_violations = 0;
    std::uint64_t impossible_backoff = 0;
    std::uint64_t skipped_no_anchor = 0;
    std::uint64_t skipped_long_window = 0;
    std::uint64_t skipped_queue_gap = 0;
    std::uint64_t seq_off_resyncs = 0;
    std::uint64_t frames_lost = 0;
    std::uint64_t windows_discarded_impaired = 0;
    bool deterministic_violation = false;
    bool single_shot = false;  // rts_gap_bound verdict fired
    bool has_record = false;   // `record` is filled (sample stage reached)
    bool has_sample = false;   // (expected_norm, observed_norm) is a sample
    double expected_norm = 0.0;  // unused when !prs_aware (per-lane quantile)
    double observed_norm = 0.0;
    Monitor::SampleRecord record;
  };

  /// One config-group: the HubView over the shared hub. Facade Monitors
  /// never attach to the hub themselves, so per-frame dispatch is one
  /// virtual call per group instead of one per monitor.
  class Group : public HubView {
   public:
    Group(MonitorBatch& batch, const GroupKey& key, const MonitorConfig& config);
    ~Group() override;

    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    bool view_active() const override { return active_lanes_ > 0; }
    void on_hub_frame(const mac::Frame& frame, SimTime start, SimTime end) override;

   private:
    friend class MonitorBatch;

    void handle_tagged_rts(const mac::Frame& rts, SimTime start);
    void note_exchange_end(SimTime at) { anchor_ = at; }
    std::uint64_t unwrap_seq_off(std::uint32_t announced);
    SystemStateParams current_state() const;
    /// Monitor::set_active's reactivation reset of the exchange tracking
    /// (idempotent: the harness toggles a group's lanes back-to-back with
    /// no frames in between).
    void reset_exchange();

    MonitorBatch& batch_;
    GroupKey key_;
    /// Copy of the first lane's config. Only the shared (key) fields are
    /// ever read; per-lane fields live in the batch's SoA arrays.
    MonitorConfig config_;
    mac::VerifiableBackoff prs_;
    SystemStateModel model_;

    // Hub components (shared or private per the hub's keying rules).
    ObservationHub::FrameRing* ring_;
    ObservationHub::IntensityTracker* arma_;
    HeardTransmitterDensity* density_;

    // Exchange tracking (see Monitor for field semantics).
    std::optional<SimTime> anchor_;
    bool own_cts_pending_ = false;
    std::optional<std::uint64_t> last_seq_off_;
    std::optional<SimTime> last_rts_heard_;
    std::optional<crypto::Md5Digest> last_digest_;
    std::uint32_t last_attempt_ = 0;

    std::size_t active_lanes_ = 0;
    std::vector<std::size_t> lanes_;  // lane indices, creation order
  };

  Group& group_for(NodeId tagged, const MonitorConfig& config);

  /// Fans one evaluated RTS out to the group's lanes, then closes every
  /// Wilcoxon lane whose window filled on this sample in one batched call.
  void apply_outcome(Group& group, const RtsOutcome& outcome);
  void add_sample(std::size_t lane, double expected, double observed);
  void close_due_windows();
  void close_sequential(std::size_t lane, bool crossed, double score);
  void record_window(std::size_t lane, const WindowResult& result,
                     bool single_shot = false);

  ObservationHub& hub_;
  // unique_ptr entries: lanes hold raw pointers across growth, and Group
  // addresses are registered with the hub.
  std::vector<std::unique_ptr<Group>> groups_;

  // --- SoA lane arrays (parallel; index = lane id) ---------------------------
  std::vector<Group*> lane_group_;
  std::vector<std::size_t> lane_sample_size_;
  std::vector<double> lane_alpha_;
  std::vector<double> lane_margin_;
  std::vector<WilcoxonOptions> lane_wilcoxon_;
  std::vector<char> lane_active_;
  std::vector<char> lane_window_flag_;  // latched deterministic flag
  std::vector<char> lane_record_samples_;
  std::vector<std::size_t> lane_seq_slot_;  // SequentialBank slot; kNoSeqSlot = Wilcoxon
  std::vector<std::size_t> lane_seq_samples_;
  std::vector<std::size_t> lane_off_;   // arena offset (Wilcoxon lanes)
  std::vector<std::size_t> lane_fill_;  // samples in the current window
  std::vector<MonitorStats> lane_stats_;
  std::vector<std::vector<WindowResult>> lane_windows_;
  std::vector<std::vector<Monitor::SampleRecord>> lane_samples_;

  // Contiguous per-lane sample slices: lane i owns
  // [lane_off_[i], lane_off_[i] + lane_sample_size_[i]).
  std::vector<double> xs_arena_;
  std::vector<double> ys_arena_;

  SequentialBank seq_bank_;

  // Batched window-close scratch (reused; steady state allocates nothing).
  std::vector<std::size_t> due_lanes_;
  std::vector<WilcoxonBatchItem> batch_items_;
  std::vector<RankSumResult> batch_results_;
  WilcoxonScratch wilcoxon_scratch_;
};

}  // namespace manet::detect
