#include "detect/trace.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <type_traits>

#include "util/crc32.hpp"

namespace manet::detect {
namespace {

// --- Little-endian fixed-width (de)serialization ----------------------------

struct ByteWriter {
  std::vector<std::uint8_t>& out;

  template <class T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    for (std::size_t i = sizeof(T); i-- > 0;) out.push_back(raw[i]);
#else
    out.insert(out.end(), raw, raw + sizeof(T));
#endif
  }
  void put_u8(std::uint8_t v) { put(v); }
  void put_u16(std::uint16_t v) { put(v); }
  void put_u32(std::uint32_t v) { put(v); }
  void put_u64(std::uint64_t v) { put(v); }
  void put_i64(std::int64_t v) { put(v); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }
  void put_bytes(const std::uint8_t* data, std::size_t len) {
    out.insert(out.end(), data, data + len);
  }
};

struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (size - pos < n) throw TraceError("trace: truncated payload");
  }
  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    std::uint8_t raw[sizeof(T)];
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    for (std::size_t i = sizeof(T); i-- > 0;) raw[i] = data[pos++];
#else
    std::memcpy(raw, data + pos, sizeof(T));
    pos += sizeof(T);
#endif
    T value;
    std::memcpy(&value, raw, sizeof(T));
    return value;
  }
  std::uint8_t get_u8() { return get<std::uint8_t>(); }
  std::uint16_t get_u16() { return get<std::uint16_t>(); }
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  std::int64_t get_i64() { return get<std::int64_t>(); }
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void get_bytes(std::uint8_t* dst, std::size_t len) {
    need(len);
    std::memcpy(dst, data + pos, len);
    pos += len;
  }
  bool done() const { return pos == size; }
};

void put_params(ByteWriter& w, const mac::DcfParams& p) {
  w.put_i64(p.slot_time);
  w.put_i64(p.sifs);
  w.put_i64(p.difs);
  w.put_u32(p.cw_min);
  w.put_u32(p.cw_max);
  w.put_u32(p.retry_limit);
  w.put_f64(p.basic_rate_bps);
  w.put_f64(p.data_rate_bps);
  w.put_i64(p.plcp_overhead);
  w.put_u32(p.rts_bytes);
  w.put_u32(p.cts_bytes);
  w.put_u32(p.ack_bytes);
  w.put_u32(p.data_header_bytes);
  w.put_u32(p.queue_capacity);
  w.put_u8(p.use_eifs ? 1 : 0);
  w.put_u32(p.seq_off_modulo);
}

mac::DcfParams get_params(ByteReader& r) {
  mac::DcfParams p;
  p.slot_time = r.get_i64();
  p.sifs = r.get_i64();
  p.difs = r.get_i64();
  p.cw_min = r.get_u32();
  p.cw_max = r.get_u32();
  p.retry_limit = r.get_u32();
  p.basic_rate_bps = r.get_f64();
  p.data_rate_bps = r.get_f64();
  p.plcp_overhead = r.get_i64();
  p.rts_bytes = r.get_u32();
  p.cts_bytes = r.get_u32();
  p.ack_bytes = r.get_u32();
  p.data_header_bytes = r.get_u32();
  p.queue_capacity = r.get_u32();
  p.use_eifs = r.get_u8() != 0;
  p.seq_off_modulo = r.get_u32();
  return p;
}

void put_snapshot(ByteWriter& w, const phy::CsTimelineSnapshot& s) {
  w.put_i64(s.retention);
  w.put_u8(s.initial_busy ? 1 : 0);
  w.put_u8(s.current_busy ? 1 : 0);
  w.put_u8(s.in_outage ? 1 : 0);
  w.put_i64(s.last_edge);
  w.put_i64(s.outage_start);
  w.put_i64(s.cum_busy);
  w.put_u32(static_cast<std::uint32_t>(s.transitions.size()));
  for (const auto& [at, busy] : s.transitions) {
    w.put_i64(at);
    w.put_u8(busy ? 1 : 0);
  }
  w.put_u32(static_cast<std::uint32_t>(s.outages.size()));
  for (const auto& [start, stop] : s.outages) {
    w.put_i64(start);
    w.put_i64(stop);
  }
}

phy::CsTimelineSnapshot get_snapshot(ByteReader& r) {
  phy::CsTimelineSnapshot s;
  s.retention = r.get_i64();
  s.initial_busy = r.get_u8() != 0;
  s.current_busy = r.get_u8() != 0;
  s.in_outage = r.get_u8() != 0;
  s.last_edge = r.get_i64();
  s.outage_start = r.get_i64();
  s.cum_busy = r.get_i64();
  const std::uint32_t n_tr = r.get_u32();
  s.transitions.reserve(n_tr);
  for (std::uint32_t i = 0; i < n_tr; ++i) {
    const SimTime at = r.get_i64();
    const bool busy = r.get_u8() != 0;
    s.transitions.emplace_back(at, busy);
  }
  const std::uint32_t n_out = r.get_u32();
  s.outages.reserve(n_out);
  for (std::uint32_t i = 0; i < n_out; ++i) {
    const SimTime start = r.get_i64();
    const SimTime stop = r.get_i64();
    s.outages.emplace_back(start, stop);
  }
  return s;
}

std::vector<std::uint8_t> header_payload(const TraceHeader& h) {
  std::vector<std::uint8_t> payload;
  ByteWriter w{payload};
  w.put_u16(kTraceVersion);
  w.put_u16(0);  // reserved
  w.put_u32(h.node);
  w.put_i64(h.start_time);
  put_params(w, h.params);
  w.put_u32(static_cast<std::uint32_t>(h.targets.size()));
  for (NodeId t : h.targets) w.put_u32(t);
  put_snapshot(w, h.timeline);
  return payload;
}

TraceHeader parse_header_payload(const std::uint8_t* data, std::size_t size) {
  ByteReader r{data, size};
  const std::uint16_t version = r.get_u16();
  if (version != kTraceVersion) {
    throw TraceError("trace: unsupported version " + std::to_string(version));
  }
  r.get_u16();  // reserved
  TraceHeader h;
  h.node = r.get_u32();
  h.start_time = r.get_i64();
  h.params = get_params(r);
  const std::uint32_t n_targets = r.get_u32();
  h.targets.reserve(n_targets);
  for (std::uint32_t i = 0; i < n_targets; ++i) h.targets.push_back(r.get_u32());
  h.timeline = get_snapshot(r);
  if (!r.done()) throw TraceError("trace: trailing bytes in header");
  return h;
}

void put_event(ByteWriter& w, const ObservationEvent& ev) {
  w.put_u8(static_cast<std::uint8_t>(ev.kind));
  switch (ev.kind) {
    case ObservationKind::kFrame:
      w.put_u8(static_cast<std::uint8_t>(ev.type));
      w.put_u8(ev.attempt);
      w.put_i64(ev.start);
      w.put_i64(ev.at);
      w.put_u32(ev.transmitter);
      w.put_u32(ev.receiver);
      w.put_i64(ev.duration);
      w.put_u32(ev.seq_off);
      w.put_bytes(ev.digest.data(), ev.digest.size());
      break;
    case ObservationKind::kCarrier:
    case ObservationKind::kOutage:
      w.put_u8(ev.rising ? 1 : 0);
      w.put_i64(ev.at);
      break;
    case ObservationKind::kMarker:
      w.put_u32(ev.marker_code);
      w.put_u64(ev.marker_value);
      w.put_i64(ev.at);
      break;
  }
}

ObservationEvent get_event(ByteReader& r) {
  ObservationEvent ev;
  const std::uint8_t kind = r.get_u8();
  if (kind > static_cast<std::uint8_t>(ObservationKind::kMarker)) {
    throw TraceError("trace: unknown event kind " + std::to_string(kind));
  }
  ev.kind = static_cast<ObservationKind>(kind);
  switch (ev.kind) {
    case ObservationKind::kFrame: {
      const std::uint8_t type = r.get_u8();
      if (type > static_cast<std::uint8_t>(mac::FrameType::kAck)) {
        throw TraceError("trace: unknown frame type " + std::to_string(type));
      }
      ev.type = static_cast<mac::FrameType>(type);
      ev.attempt = r.get_u8();
      ev.start = r.get_i64();
      ev.at = r.get_i64();
      ev.transmitter = r.get_u32();
      ev.receiver = r.get_u32();
      ev.duration = r.get_i64();
      ev.seq_off = r.get_u32();
      r.get_bytes(ev.digest.data(), ev.digest.size());
      break;
    }
    case ObservationKind::kCarrier:
    case ObservationKind::kOutage:
      ev.rising = r.get_u8() != 0;
      ev.at = r.get_i64();
      break;
    case ObservationKind::kMarker:
      ev.marker_code = r.get_u32();
      ev.marker_value = r.get_u64();
      ev.at = r.get_i64();
      break;
  }
  return ev;
}

}  // namespace

std::uint32_t trace_crc32(const std::uint8_t* data, std::size_t len) {
  return util::crc32(data, len);
}

TraceWriter::TraceWriter(const TraceHeader& header) : header_(header) {
  const std::vector<std::uint8_t> payload = header_payload(header_);
  ByteWriter w{buffer_};
  w.put_u32(kTraceMagic);
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_u32(trace_crc32(payload.data(), payload.size()));
  w.put_bytes(payload.data(), payload.size());
}

void TraceWriter::record(const ObservationEvent& event) {
  ByteWriter w{block_};
  put_event(w, event);
  ++block_events_;
  ++events_;
  if (block_events_ >= kBlockEvents) flush_block();
}

void TraceWriter::marker(MarkerCode code, std::uint64_t value, SimTime at) {
  ObservationEvent ev;
  ev.kind = ObservationKind::kMarker;
  ev.at = at;
  ev.marker_code = static_cast<std::uint32_t>(code);
  ev.marker_value = value;
  record(ev);
}

void TraceWriter::flush_block() {
  if (block_events_ == 0) return;
  ByteWriter w{buffer_};
  w.put_u32(static_cast<std::uint32_t>(block_.size()));
  w.put_u32(block_events_);
  w.put_u32(trace_crc32(block_.data(), block_.size()));
  w.put_bytes(block_.data(), block_.size());
  block_.clear();
  block_events_ = 0;
}

std::vector<std::uint8_t> TraceWriter::serialize() const {
  std::vector<std::uint8_t> out = buffer_;
  if (block_events_ > 0) {
    ByteWriter w{out};
    w.put_u32(static_cast<std::uint32_t>(block_.size()));
    w.put_u32(block_events_);
    w.put_u32(trace_crc32(block_.data(), block_.size()));
    w.put_bytes(block_.data(), block_.size());
  }
  return out;
}

void TraceWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("trace: cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw TraceError("trace: write to '" + path + "' failed");
}

void TraceWriter::on_frame(const mac::Frame& frame, SimTime start, SimTime end) {
  record(ObservationEvent::from_frame(frame, start, end));
}

void TraceWriter::on_carrier(bool busy, SimTime at) {
  ObservationEvent ev;
  ev.kind = ObservationKind::kCarrier;
  ev.at = at;
  ev.rising = busy;
  record(ev);
}

void TraceWriter::on_outage(bool deaf, SimTime at) {
  ObservationEvent ev;
  ev.kind = ObservationKind::kOutage;
  ev.at = at;
  ev.rising = deaf;
  record(ev);
}

MemoryTraceReader::MemoryTraceReader(std::vector<std::uint8_t> bytes) {
  ByteReader stream{bytes.data(), bytes.size()};
  if (stream.get_u32() != kTraceMagic) {
    throw TraceError("trace: bad magic (not an .mtrace stream)");
  }
  {
    const std::uint32_t len = stream.get_u32();
    const std::uint32_t crc = stream.get_u32();
    stream.need(len);
    const std::uint8_t* payload = bytes.data() + stream.pos;
    if (trace_crc32(payload, len) != crc) {
      throw TraceError("trace: header CRC mismatch");
    }
    header_ = parse_header_payload(payload, len);
    stream.pos += len;
  }
  while (!stream.done()) {
    const std::uint32_t len = stream.get_u32();
    const std::uint32_t count = stream.get_u32();
    const std::uint32_t crc = stream.get_u32();
    stream.need(len);
    const std::uint8_t* payload = bytes.data() + stream.pos;
    if (trace_crc32(payload, len) != crc) {
      throw TraceError("trace: event block CRC mismatch");
    }
    ByteReader block{payload, len};
    for (std::uint32_t i = 0; i < count; ++i) {
      events_.push_back(get_event(block));
    }
    if (!block.done()) throw TraceError("trace: trailing bytes in event block");
    stream.pos += len;
  }
}

bool MemoryTraceReader::next(ObservationEvent& event) {
  if (cursor_ >= events_.size()) return false;
  event = events_[cursor_++];
  return true;
}

namespace {
std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw TraceError("trace: cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw TraceError("trace: read from '" + path + "' failed");
  return bytes;
}
}  // namespace

FileTraceReader::FileTraceReader(const std::string& path)
    : MemoryTraceReader(read_file_bytes(path)) {}

}  // namespace manet::detect
