// Run-time estimation of the number of competing terminals, after
// Bianchi & Tinnirello (INFOCOM 2003) — the paper's Section 4 cites this
// as the density-estimation mechanism.
//
// A passive station classifies the channel events it can observe into
// successful receptions and corrupted ones (collisions / undecodable
// overlaps), smooths the conditional collision probability with the same
// ARMA filter the paper uses for traffic intensity, and inverts Bianchi's
// saturated-station fixed point to recover the competitor count n.
//
// Attach directly to a radio; read `competitors()` whenever needed.
#pragma once

#include <cstdint>

#include "detect/arma.hpp"
#include "detect/density.hpp"
#include "phy/radio.hpp"
#include "util/types.hpp"

namespace manet::detect {

class CompetingTerminalEstimator : public phy::RadioListener {
 public:
  /// `cw_min` must match the network's contention window so the Bianchi
  /// inversion uses the right tau(p) curve.
  explicit CompetingTerminalEstimator(std::uint32_t cw_min = 31,
                                      double arma_alpha = 0.995,
                                      std::size_t batch_events = 50)
      : cw_min_(cw_min), arma_(arma_alpha), batch_events_(batch_events) {}

  /// Smoothed conditional collision probability.
  double collision_probability() const { return arma_.intensity(); }

  /// Estimated number of competing terminals (>= 1).
  std::size_t competitors() const {
    if (!arma_.primed()) return 1;
    return estimate_competitors_from_collisions(arma_.intensity(), cw_min_);
  }

  std::uint64_t successes() const { return successes_; }
  std::uint64_t failures() const { return failures_; }

  // phy::RadioListener:
  void on_receive(const phy::Signal&) override {
    ++successes_;
    ++batch_successes_;
    maybe_flush();
  }
  void on_receive_error(const phy::Signal&) override {
    ++failures_;
    ++batch_failures_;
    maybe_flush();
  }
  void on_carrier(bool, SimTime) override {}
  void on_transmit_end(std::uint64_t) override {}

 private:
  void maybe_flush() {
    const std::uint64_t total = batch_successes_ + batch_failures_;
    if (total < batch_events_) return;
    arma_.add_batch(static_cast<double>(batch_failures_) /
                    static_cast<double>(total));
    batch_successes_ = batch_failures_ = 0;
  }

  std::uint32_t cw_min_;
  ArmaIntensityFilter arma_;
  std::size_t batch_events_;
  std::uint64_t successes_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t batch_successes_ = 0;
  std::uint64_t batch_failures_ = 0;
};

}  // namespace manet::detect
