#include "detect/observation_hub.hpp"

#include <algorithm>

namespace manet::detect {

ObservationHub::ObservationHub(sim::Simulator& simulator, NodeId self,
                               const mac::DcfParams& params,
                               phy::CsTimeline& timeline)
    : sim_(simulator), self_(self), params_(params), timeline_(timeline) {}

ObservationHub::ObservationHub(sim::Simulator& simulator, mac::DcfMac& monitor_mac,
                               phy::CsTimeline& timeline)
    : ObservationHub(simulator, monitor_mac.id(), monitor_mac.params(), timeline) {
  monitor_mac.add_observer(this);
}

void ObservationHub::attach(HubView* view) { views_.push_back(view); }

void ObservationHub::detach(HubView* view) noexcept {
  std::erase(views_, view);
  for (auto& ring : rings_) std::erase(ring->holders_, view);
  for (auto& entry : densities_) std::erase(entry->holders, view);
}

bool ObservationHub::any_holder_active(const std::vector<const HubView*>& holders) {
  for (const HubView* holder : holders) {
    if (holder->view_active()) return true;
  }
  return false;
}

ObservationHub::FrameRing& ObservationHub::frame_ring(const HubView& holder,
                                                      SimDuration retention,
                                                      std::size_t max_frames) {
  const SimTime now = sim_.now();
  for (auto& ring : rings_) {
    if (ring->retention_ == retention && ring->max_frames_ == max_frames &&
        ring->attached_at_ == now) {
      ring->holders_.push_back(&holder);
      return *ring;
    }
  }
  auto ring = std::unique_ptr<FrameRing>(new FrameRing(*this, retention, max_frames));
  ring->attached_at_ = now;
  ring->holders_.push_back(&holder);
  rings_.push_back(std::move(ring));
  return *rings_.back();
}

ObservationHub::IntensityTracker& ObservationHub::intensity_tracker(
    double alpha, std::size_t batch_slots) {
  const SimTime now = sim_.now();
  for (auto& tracker : trackers_) {
    if (tracker->filter_.alpha() == alpha && tracker->batch_slots_ == batch_slots &&
        tracker->attached_at_ == now) {
      return *tracker;
    }
  }
  auto tracker = std::unique_ptr<IntensityTracker>(
      new IntensityTracker(*this, alpha, batch_slots));
  tracker->attached_at_ = now;
  trackers_.push_back(std::move(tracker));
  return *trackers_.back();
}

HeardTransmitterDensity& ObservationHub::density(const HubView& holder,
                                                 SimDuration window,
                                                 double tx_range_m) {
  const SimTime now = sim_.now();
  for (auto& entry : densities_) {
    if (entry->window == window && entry->tx_range_m == tx_range_m &&
        entry->attached_at == now) {
      entry->holders.push_back(&holder);
      return entry->density;
    }
  }
  densities_.push_back(std::make_unique<DensityEntry>(window, tx_range_m, now));
  densities_.back()->holders.push_back(&holder);
  return densities_.back()->density;
}

void ObservationHub::on_frame(const mac::Frame& frame, SimTime start, SimTime end) {
  ingest_frame(frame, start, end);
}

void ObservationHub::ingest(const ObservationEvent& event) {
  switch (event.kind) {
    case ObservationKind::kFrame:
      ingest_frame(event.to_frame(), event.start, event.at);
      break;
    case ObservationKind::kCarrier:
      timeline_.on_carrier(event.rising, event.at);
      break;
    case ObservationKind::kOutage:
      timeline_.on_outage(event.rising, event.at);
      break;
    case ObservationKind::kMarker:
      break;  // out-of-band; consume() hands these to its marker handler
  }
}

void ObservationHub::consume(
    ObservationSource& source,
    const std::function<void(const ObservationEvent&)>& on_marker) {
  ObservationEvent event;
  while (source.next(event)) {
    // Fire everything the simulator owes up to the event's instant (the
    // ARMA tick chain) before the event lands — the order a live run
    // produces, where ticks are enqueued far earlier than frame decodes
    // and therefore win FIFO tie-breaks at equal times.
    sim_.run_until(event.at);
    if (event.kind == ObservationKind::kMarker) {
      if (on_marker) on_marker(event);
      continue;
    }
    ingest(event);
  }
}

void ObservationHub::ingest_frame(const mac::Frame& frame, SimTime start,
                                  SimTime end) {
  bool any_active = false;
  for (HubView* view : views_) {
    if (view->view_active()) {
      any_active = true;
      break;
    }
  }
  if (!any_active) return;

  if (frame.transmitter != self_) {
    for (auto& entry : densities_) {
      if (any_holder_active(entry->holders)) {
        entry->density.heard(frame.transmitter, end);
      }
    }
  }
  for (auto& ring : rings_) {
    if (any_holder_active(ring->holders_)) ring->record(frame, start, end);
  }
  for (HubView* view : views_) view->on_hub_frame(frame, start, end);
}

void ObservationHub::FrameRing::record(const mac::Frame& frame, SimTime start,
                                       SimTime end) {
  frames_.push_back(DecodedFrame{start, end, end + frame.duration,
                                 frame.transmitter, frame.receiver,
                                 frame.type == mac::FrameType::kRts});
  const SimTime horizon = end - retention_;
  while (!frames_.empty() && frames_.front().nav_until < horizon) {
    frames_.pop_front();
    ++first_abs_;
  }
  while (frames_.size() > max_frames_) {
    frames_.pop_front();
    ++first_abs_;
    ++cap_evictions_;
  }
  peak_frames_ = std::max(peak_frames_, frames_.size());
  memo_valid_ = false;
}

const WindowAccounting& ObservationHub::FrameRing::window_accounting(
    SimTime win_start, SimTime win_end, NodeId tagged) {
  if (memo_valid_ && memo_start_ == win_start && memo_end_ == win_end &&
      memo_tagged_ == tagged) {
    return memo_;
  }
  const auto& params = hub_.params();
  phy::CsTimeline& timeline = hub_.timeline();

  // Certainly-blocked time: decoded air plus NAV reservations that bind the
  // tagged node (frames not from/to it), with the NAV-reset rule applied to
  // unanswered RTS reservations.
  blocked_.clear();
  // Window starts move monotonically forward (anchors are exchange ends),
  // so resume the scan where the previous window's leading `continue` run
  // ended: frames with nav_until <= the old start fail the new start too.
  std::size_t begin = 0;
  if (hint_valid_ && win_start >= hint_win_start_ && hint_abs_ > first_abs_) {
    begin = static_cast<std::size_t>(hint_abs_ - first_abs_);
    if (begin > frames_.size()) begin = frames_.size();
  }
  while (begin < frames_.size() && frames_[begin].nav_until <= win_start) ++begin;
  hint_abs_ = first_abs_ + begin;
  hint_win_start_ = win_start;
  hint_valid_ = true;
  for (std::size_t i = begin; i < frames_.size(); ++i) {
    const DecodedFrame& f = frames_[i];
    if (f.nav_until <= win_start || f.start >= win_end) continue;
    blocked_.add(f.start, f.end);
    if (f.transmitter != tagged && f.receiver != tagged) {
      SimTime nav_end = f.nav_until;
      if (f.is_rts) {
        // Mirror the NAV-reset rule: if nothing followed the RTS within
        // the reset window, the tagged node's NAV was reset too.
        const SimTime reset_at = f.end + params.nav_reset_delay();
        if (timeline.busy_time(f.end, std::min(reset_at, win_end)) == 0) {
          nav_end = std::min(nav_end, reset_at);
        }
      }
      blocked_.add(f.end, nav_end);
    }
  }
  blocked_.clamp_to(win_start, win_end);

  busy_.clear();
  timeline.busy_intervals_into(win_start, win_end, busy_scratch_);
  for (const auto& [a, b] : busy_scratch_) busy_.add(a, b);

  memo_.blocked = blocked_.total_length();
  memo_.uncertain_busy = busy_.total_length() - busy_.intersection_length(blocked_);

  occupied_.clear();
  for (const util::Interval& iv : busy_.intervals()) occupied_.add(iv.lo, iv.hi);
  for (const util::Interval& iv : blocked_.intervals()) occupied_.add(iv.lo, iv.hi);
  SimDuration countable = 0;
  occupied_.complement_within(win_start, win_end, gaps_);
  for (const util::Interval& gap : gaps_) {
    if (gap.length() > params.difs) countable += gap.length() - params.difs;
  }
  memo_.countable_idle = countable;

  memo_start_ = win_start;
  memo_end_ = win_end;
  memo_tagged_ = tagged;
  memo_valid_ = true;
  return memo_;
}

void ObservationHub::IntensityTracker::schedule_tick() {
  const SimDuration batch = static_cast<SimDuration>(batch_slots_) *
                            hub_.params().slot_time;
  hub_.simulator().after(batch, [this] {
    const SimTime now = hub_.simulator().now();
    filter_.add_batch(hub_.timeline().busy_fraction(last_tick_, now));
    last_tick_ = now;
    schedule_tick();
  });
}

}  // namespace manet::detect
