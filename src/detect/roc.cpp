#include "detect/roc.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/config.hpp"

namespace manet::detect {

namespace {

bool window_flagged(const WindowResult& w, double threshold) {
  return w.deterministic_flag || w.p_less < threshold;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

RocCurve score_roc_curve(const DetectionResult& attack,
                         const DetectionResult& honest,
                         const std::vector<double>& thresholds,
                         double warmup_s) {
  RocCurve curve;
  curve.points.reserve(thresholds.size());
  for (const double theta : thresholds) {
    RocThresholdPoint point;
    point.threshold = theta;

    for (const auto& trial : honest.trial_logs) {
      for (const WindowResult& w : trial) {
        ++point.honest_windows;
        if (window_flagged(w, theta)) ++point.honest_flagged;
      }
    }
    std::vector<double> ttd;
    for (const auto& trial : attack.trial_logs) {
      ++point.trials;
      bool detected = false;
      for (const WindowResult& w : trial) {
        ++point.attack_windows;
        if (window_flagged(w, theta)) {
          ++point.attack_flagged;
          if (!detected) {
            detected = true;
            ++point.detected_trials;
            ttd.push_back(time_to_seconds(w.at) - warmup_s);
          }
        }
      }
    }
    point.ttd_s = ttd;
    if (!ttd.empty()) {
      std::sort(ttd.begin(), ttd.end());
      point.min_ttd_s = ttd.front();
      point.max_ttd_s = ttd.back();
      point.median_ttd_s = quantile_sorted(ttd, 0.5);
      double sum = 0.0;
      for (const double t : ttd) sum += t;
      point.mean_ttd_s = sum / static_cast<double>(ttd.size());
    }
    point.detection_rate =
        point.attack_windows
            ? static_cast<double>(point.attack_flagged) /
                  static_cast<double>(point.attack_windows)
            : 0.0;
    point.false_alarm_rate =
        point.honest_windows
            ? static_cast<double>(point.honest_flagged) /
                  static_cast<double>(point.honest_windows)
            : 0.0;
    curve.points.push_back(std::move(point));
  }

  // AUC: trapezoid over the operating points by increasing false-alarm
  // rate (ties broken by detection rate), anchored at chance-line ends.
  std::vector<std::pair<double, double>> ops;
  ops.reserve(curve.points.size() + 2);
  ops.emplace_back(0.0, 0.0);
  for (const RocThresholdPoint& p : curve.points) {
    ops.emplace_back(p.false_alarm_rate, p.detection_rate);
  }
  ops.emplace_back(1.0, 1.0);
  std::sort(ops.begin(), ops.end());
  double auc = 0.0;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    auc += (ops[i].first - ops[i - 1].first) *
           (ops[i].second + ops[i - 1].second) * 0.5;
  }
  curve.auc = auc;
  return curve;
}

AttackerSpec attacker_spec_from_name(const std::string& name,
                                     const AttackerTuning& tuning) {
  AttackerSpec spec;
  spec.pm = tuning.pm;
  spec.group = tuning.group;
  spec.collude_phase_s = tuning.collude_phase_s;
  spec.probation_s = tuning.probation_s;
  spec.vigilance_s = tuning.vigilance_s;
  spec.suspect_monitor = tuning.suspect_monitor;
  spec.flood_pps = tuning.flood_pps;

  if (name == "honest") {
    spec.kind = AttackerKind::kNone;
    spec.pm = 0.0;
    return spec;
  }
  if (name == "colluding") {
    spec.kind = AttackerKind::kColluding;
    return spec;
  }
  if (name == "adaptive") {
    spec.kind = AttackerKind::kAdaptive;
    return spec;
  }
  if (name == "sybil") {
    spec.kind = AttackerKind::kSybil;
    return spec;
  }
  if (name == "rts_flood") {
    spec.kind = AttackerKind::kRtsFlood;
    return spec;
  }
  if (name.size() > 2 && name.compare(0, 2, "pm") == 0) {
    // Strict digits-only percent: "pm50" -> PM 50. No std::stod leniency.
    double percent = 0.0;
    for (std::size_t i = 2; i < name.size(); ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        throw util::ConfigError("bad attacker name '" + name +
                                "': pm<percent> takes digits only");
      }
      percent = percent * 10.0 + static_cast<double>(c - '0');
    }
    if (percent > 100.0) {
      throw util::ConfigError("bad attacker name '" + name +
                              "': percent must be <= 100");
    }
    spec.kind = AttackerKind::kPm;
    spec.pm = percent;
    return spec;
  }
  throw util::ConfigError(
      "unknown attacker '" + name +
      "' (expected honest, pm<percent>, colluding, adaptive, sybil, rts_flood)");
}

std::vector<std::string> default_attacker_names() {
  return {"pm50", "pm90", "colluding", "adaptive", "sybil", "rts_flood"};
}

namespace {

// Baseline blob layout: "MROC1" then little-endian fixed-width counts and
// windows. Doubles are raw IEEE754 so the round-trip is bit-exact.
constexpr char kBaselineMagic[5] = {'M', 'R', 'O', 'C', '1'};

void append_u32(std::string& out, std::uint32_t v) {
  char raw[4];
  std::memcpy(raw, &v, 4);
  out.append(raw, 4);
}

void append_window(std::string& out, const WindowResult& w) {
  char raw[8];
  std::memcpy(raw, &w.at, 8);
  out.append(raw, 8);
  std::memcpy(raw, &w.p_less, 8);
  out.append(raw, 8);
  out.push_back(w.statistical_flag ? 1 : 0);
  out.push_back(w.deterministic_flag ? 1 : 0);
}

class BaselineReader {
 public:
  explicit BaselineReader(const std::string& blob) : blob_(blob) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, blob_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  WindowResult window() {
    need(18);
    WindowResult w;
    std::memcpy(&w.at, blob_.data() + pos_, 8);
    std::memcpy(&w.p_less, blob_.data() + pos_ + 8, 8);
    w.statistical_flag = blob_[pos_ + 16] != 0;
    w.deterministic_flag = blob_[pos_ + 17] != 0;
    pos_ += 18;
    return w;
  }

  void expect_magic() {
    need(sizeof kBaselineMagic);
    if (std::memcmp(blob_.data(), kBaselineMagic, sizeof kBaselineMagic) != 0) {
      throw std::runtime_error("baseline blob: bad magic");
    }
    pos_ = sizeof kBaselineMagic;
  }

  void expect_done() const {
    if (pos_ != blob_.size()) {
      throw std::runtime_error("baseline blob: trailing bytes");
    }
  }

 private:
  void need(std::size_t n) const {
    if (n > blob_.size() - pos_) {
      throw std::runtime_error("baseline blob: truncated");
    }
  }

  const std::string& blob_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize_baseline(const std::vector<DetectionResult>& per_config) {
  std::string out(kBaselineMagic, sizeof kBaselineMagic);
  append_u32(out, static_cast<std::uint32_t>(per_config.size()));
  for (const DetectionResult& config : per_config) {
    append_u32(out, static_cast<std::uint32_t>(config.trial_logs.size()));
    for (const auto& trial : config.trial_logs) {
      append_u32(out, static_cast<std::uint32_t>(trial.size()));
      for (const WindowResult& w : trial) append_window(out, w);
    }
  }
  return out;
}

std::vector<DetectionResult> parse_baseline(const std::string& blob) {
  BaselineReader in(blob);
  in.expect_magic();
  std::vector<DetectionResult> per_config(in.u32());
  for (DetectionResult& config : per_config) {
    config.trial_logs.resize(in.u32());
    for (auto& trial : config.trial_logs) {
      trial.resize(in.u32());
      for (WindowResult& w : trial) w = in.window();
    }
  }
  in.expect_done();
  return per_config;
}

}  // namespace manet::detect
