#include "detect/monitor.hpp"

#include <cmath>
#include <numbers>

#include "detect/monitor_batch.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

namespace manet::detect {

PipelineImpl pipeline_from_name(const std::string& name) {
  if (name == "batch") return PipelineImpl::kBatch;
  if (name == "hub") return PipelineImpl::kHub;
  if (name == "reference") return PipelineImpl::kReference;
  throw util::ConfigError("'" + name +
                          "' is not a pipeline (batch, hub, reference)");
}

const char* pipeline_name(PipelineImpl impl) {
  switch (impl) {
    case PipelineImpl::kReference: return "reference";
    case PipelineImpl::kHub: return "hub";
    case PipelineImpl::kBatch: return "batch";
  }
  return "?";
}

Monitor::Monitor(ObservationHub& hub, NodeId tagged, const MonitorConfig& config)
    : hub_(hub),
      sim_(hub.simulator()),
      timeline_(hub.timeline()),
      tagged_(tagged),
      config_(config),
      tagged_prs_(tagged, hub.params()),
      model_(geom::RegionModel(config.separation_m, config.sensing_range_m)),
      ring_(&hub.frame_ring(*this, config.decoded_retention,
                            config.max_decoded_frames)),
      arma_(&hub.intensity_tracker(config.arma_alpha, config.arma_batch_slots)),
      density_(&hub.density(*this, config.density_window, config.tx_range_m)),
      seq_test_(make_sequential_test(config.detector, config.cusum, config.sprt)) {
  hub_.attach(this);
}

Monitor::Monitor(std::unique_ptr<ObservationHub> owned, NodeId tagged,
                 const MonitorConfig& config)
    : Monitor(*owned, tagged, config) {
  owned_hub_ = std::move(owned);
}

Monitor::Monitor(MonitorBatch& batch, NodeId tagged, const MonitorConfig& config)
    : hub_(batch.hub()),
      sim_(batch.hub().simulator()),
      timeline_(batch.hub().timeline()),
      tagged_(tagged),
      config_(config),
      batch_(&batch),
      lane_(batch.add_lane(tagged, config)),
      tagged_prs_(tagged, batch.hub().params()),
      model_(geom::RegionModel(config.separation_m, config.sensing_range_m)),
      // Borrow the lane's group components so the inline diagnostics
      // accessors (decoded_retained, traffic_intensity, current_state)
      // read the exact state the batch evaluates with. The facade never
      // attaches to the hub — the group is the HubView.
      ring_(&batch.lane_ring(lane_)),
      arma_(&batch.lane_tracker(lane_)),
      density_(&batch.lane_density(lane_)) {}

Monitor::~Monitor() {
  if (!batch_) hub_.detach(this);
}

void Monitor::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (batch_) {
    batch_->set_lane_active(lane_, active);
    return;
  }
  if (active_) {
    // Fresh start: discard the partial window and the stale anchor.
    xs_.clear();
    ys_.clear();
    window_deterministic_flag_ = false;
    if (seq_test_) {
      seq_test_->reset();
      seq_samples_ = 0;
    }
    anchor_.reset();
    own_cts_pending_ = false;
    last_seq_off_.reset();
    last_rts_heard_.reset();
    last_digest_.reset();
    last_attempt_ = 0;
  }
}

void accumulate_stats(MonitorStats& into, const MonitorStats& from) {
  into.rts_observed += from.rts_observed;
  into.samples += from.samples;
  into.windows += from.windows;
  into.flagged_windows += from.flagged_windows;
  into.seq_off_violations += from.seq_off_violations;
  into.attempt_violations += from.attempt_violations;
  into.impossible_backoff += from.impossible_backoff;
  into.skipped_no_anchor += from.skipped_no_anchor;
  into.skipped_long_window += from.skipped_long_window;
  into.skipped_queue_gap += from.skipped_queue_gap;
  into.seq_off_resyncs += from.seq_off_resyncs;
  into.frames_lost += from.frames_lost;
  into.windows_discarded_impaired += from.windows_discarded_impaired;
  if (from.first_flag_time < into.first_flag_time) {
    into.first_flag_time = from.first_flag_time;
    into.windows_to_first_flag = from.windows_to_first_flag;
  }
}

const MonitorStats& Monitor::stats() const {
  return batch_ ? batch_->lane_stats(lane_) : stats_;
}

const std::vector<WindowResult>& Monitor::windows() const {
  return batch_ ? batch_->lane_windows(lane_) : windows_;
}

const std::vector<Monitor::SampleRecord>& Monitor::sample_log() const {
  return batch_ ? batch_->lane_samples(lane_) : sample_log_;
}

double Monitor::flag_rate() const {
  const MonitorStats& st = stats();
  if (st.windows == 0) return 0.0;
  return static_cast<double>(st.flagged_windows) /
         static_cast<double>(st.windows);
}

SystemStateParams Monitor::current_state() const {
  SystemStateParams p;
  p.rho = arma_->filter().intensity();
  p.mapping = config_.mapping;

  const double dens = density_->density(sim_.now());
  const auto& areas = model_.regions().areas();
  p.k = config_.fixed_k.value_or(dens * areas.a1);
  p.n = config_.fixed_n.value_or(dens * areas.a2);
  p.m = config_.fixed_m.value_or(dens * areas.a4);
  p.j = config_.fixed_j.value_or(dens * areas.a5);

  if (config_.fixed_contenders) {
    p.contenders = *config_.fixed_contenders;
  } else {
    const double sensing_area = std::numbers::pi * config_.sensing_range_m *
                                config_.sensing_range_m;
    p.contenders = std::max(1.0, dens * sensing_area);
  }
  return p;
}

void Monitor::on_hub_frame(const mac::Frame& frame, SimTime start, SimTime end) {
  if (!active_) return;

  const bool from_tagged = frame.transmitter == tagged_;
  const bool to_tagged = frame.receiver == tagged_;
  if (!from_tagged && !to_tagged) return;

  const auto& params = hub_.params();
  switch (frame.type) {
    case mac::FrameType::kRts:
      if (from_tagged) {
        handle_tagged_rts(frame, start);
        // If the exchange dies here (no CTS), S's next back-off starts at
        // its CTS timeout; later frames of a live exchange override this.
        note_exchange_end(end + params.response_timeout(params.cts_airtime()));
      }
      break;
    case mac::FrameType::kCts:
      // The exchange is progressing; DATA/ACK rules will provide the real
      // end. Track our own CTS to S so a dead exchange is recognized.
      if (to_tagged && frame.transmitter == hub_.self()) own_cts_pending_ = true;
      break;
    case mac::FrameType::kData:
      if (from_tagged) {
        // DATA's duration field covers SIFS + ACK: the exchange ends then,
        // whether or not we can hear the ACK ourselves.
        own_cts_pending_ = false;
        note_exchange_end(end + frame.duration);
      }
      break;
    case mac::FrameType::kAck:
      if (to_tagged) {
        // Our own (or an overheard) ACK to S: exact exchange end.
        note_exchange_end(end);
      }
      break;
  }
}

void Monitor::note_exchange_end(SimTime at) { anchor_ = at; }

std::uint64_t Monitor::unwrap_seq_off(std::uint32_t announced) {
  const std::uint64_t modulo = hub_.params().seq_off_modulo;
  if (!last_seq_off_) return announced;
  const std::uint64_t base = *last_seq_off_;
  // Choose the smallest value >= base whose residue matches `announced`
  // (offsets only move forward).
  const std::uint64_t base_res = base % modulo;
  std::uint64_t candidate = base - base_res + announced;
  if (candidate < base) candidate += modulo;
  return candidate;
}

void Monitor::handle_tagged_rts(const mac::Frame& rts, SimTime start) {
  ++stats_.rts_observed;
  const auto& params = hub_.params();

  bool deterministic_violation = false;
  bool resynced = false;

  const std::uint64_t seq = unwrap_seq_off(rts.seq_off);
  if (config_.deterministic_checks && config_.prs_aware && last_seq_off_) {
    // SeqOff continuity: an honest stream advances by exactly one per RTS.
    if (seq <= *last_seq_off_) {
      // Replayed / non-advancing offset: blatant violation.
      ++stats_.seq_off_violations;
      deterministic_violation = true;
    } else if (const std::uint64_t gap = seq - *last_seq_off_ - 1; gap > 0) {
      // Offsets were consumed that we never decoded. A bounded gap — or
      // any gap across a recorded outage of our own radio — is lossy
      // observation, not evidence: resynchronize the PRS position and
      // write off the missed frames. Beyond the bound (with no outage to
      // blame) the sender is skipping ahead in its PRS, which only pays
      // off when cherry-picking small dictated values.
      const bool outage_spanned =
          last_rts_heard_ && timeline_.outage_time(*last_rts_heard_, start) > 0;
      if (gap <= config_.max_seq_off_gap || outage_spanned) {
        ++stats_.seq_off_resyncs;
        stats_.frames_lost += gap;
        resynced = true;
      } else {
        ++stats_.seq_off_violations;
        deterministic_violation = true;
      }
    }
  }
  if (config_.deterministic_checks && config_.prs_aware) {
    // Attempt/MD honesty: a retransmission of the same payload must
    // increment the attempt number. Digest equality proves it is the same
    // payload even across a gap; corrupted frames never get here (their
    // FCS fails at the PHY), so a mangled digest cannot frame the sender.
    if (last_digest_ && rts.data_digest == *last_digest_ &&
        rts.attempt <= last_attempt_) {
      ++stats_.attempt_violations;
      deterministic_violation = true;
    }
  }

  // Expected (dictated) back-off for the announced offset and attempt.
  const double expected = tagged_prs_.dictated_slots(seq, rts.attempt);

  // Bookkeeping for the next RTS (previous values feed the retry check).
  const std::optional<crypto::Md5Digest> prev_digest = last_digest_;
  const std::uint32_t prev_attempt = last_attempt_;
  const std::optional<SimTime> prev_rts_heard = last_rts_heard_;
  last_seq_off_ = seq;
  last_rts_heard_ = start;
  last_digest_ = rts.data_digest;
  last_attempt_ = rts.attempt;

  // Ambiguous anchor: we answered S's previous RTS with a CTS but never
  // saw the DATA — S's back-off start depends on which frame was lost.
  const bool ambiguous_anchor = own_cts_pending_;
  own_cts_pending_ = false;

  if (!anchor_ || *anchor_ >= start || ambiguous_anchor) {
    if (config_.rts_gap_bound && config_.deterministic_checks &&
        config_.prs_aware && prev_rts_heard) {
      // No anchor, but physics still bounds the countdown: even if S
      // started its back-off the instant its previous RTS left the air and
      // every slot since was idle, at most (gap - DIFS) / slot slots fit.
      // An RTS flood ignores back-off entirely, so its dictated values
      // routinely exceed the bound; honest senders never do (their real
      // elapsed time includes the dictated countdown plus timeouts).
      const SimTime prev_end = *prev_rts_heard + params.rts_airtime();
      const SimDuration gap = start > prev_end ? start - prev_end : 0;
      const double max_slots =
          gap > params.difs
              ? static_cast<double>(gap - params.difs) /
                    static_cast<double>(params.slot_time)
              : 0.0;
      if (expected > max_slots + 1.0) {
        ++stats_.impossible_backoff;
        // There may never be Wilcoxon samples to latch this onto (a pure
        // flood completes no exchanges): emit the verdict immediately.
        WindowResult result;
        result.at = sim_.now();
        result.p_less = 1.0;
        result.deterministic_flag = true;
        record_window(result, /*single_shot=*/true);
      }
    }
    ++stats_.skipped_no_anchor;
    if (resynced) anchor_.reset();
    if (deterministic_violation) window_deterministic_flag_ = true;
    return;
  }
  const SimTime window_start = *anchor_;
  const SimDuration window = start - window_start;

  if (resynced) {
    // The anchor predates exchanges we never decoded, so the window spans
    // S's unseen transmissions: as a Wilcoxon sample it is biased high and
    // must be discarded. The impossible-back-off lower bound survives the
    // bias — the whole window still caps how many slots S could have
    // counted for the current attempt, missed frames included.
    if (config_.deterministic_checks && config_.prs_aware) {
      const double max_slots = static_cast<double>(window - params.difs) /
                               static_cast<double>(params.slot_time);
      if (expected > max_slots + 1.0) {
        ++stats_.impossible_backoff;
        deterministic_violation = true;
      }
    }
    ++stats_.windows_discarded_impaired;
    anchor_.reset();
    if (deterministic_violation) window_deterministic_flag_ = true;
    return;
  }

  if (config_.max_window > 0 && window > config_.max_window) {
    ++stats_.skipped_long_window;
    if (deterministic_violation) window_deterministic_flag_ = true;
    return;
  }

  // A window overlapping an outage of our own radio measures deafness,
  // not back-off (the timeline records silence we did not actually
  // observe): discard it before any countdown accounting.
  if (timeline_.outage_time(window_start, start) > 0) {
    ++stats_.windows_discarded_impaired;
    if (deterministic_violation) window_deterministic_flag_ = true;
    return;
  }

  // Impossible-back-off check: even if S had counted every slot of the
  // window (minus one DIFS), the dictated value would not have finished.
  if (config_.deterministic_checks && config_.prs_aware) {
    const double max_slots =
        static_cast<double>(window - params.difs) /
        static_cast<double>(params.slot_time);
    if (expected > max_slots + 1.0) {
      ++stats_.impossible_backoff;
      deterministic_violation = true;
    }
  }

  // Translate our own view of the window into S's estimated countdown.
  // The hub's frame ring does the three-way split (memoized across the
  // node's views): certainly blocked / anonymous busy / free idle.
  const WindowAccounting& acct =
      ring_->window_accounting(window_start, start, tagged_);

  const double idle_slots = static_cast<double>(acct.countable_idle) /
                            static_cast<double>(params.slot_time);
  const double busy_slots = static_cast<double>(acct.uncertain_busy) /
                            static_cast<double>(params.slot_time);

  const SystemStateParams state = current_state();
  const ConditionalProbs& probs = model_.conditional_probs(state);
  const double idle_weight =
      config_.apply_idle_correction ? probs.p_idle_given_idle : 1.0;
  const double observed =
      idle_weight * idle_slots +
      config_.busy_credit_factor * probs.p_idle_given_busy * busy_slots;

  // Clean-window acceptance: only windows that plausibly contain no
  // queue-empty gap are comparable back-off samples (see MonitorConfig).
  // A retry is *proven* clean only when we decoded the immediately
  // preceding attempt of the same payload; otherwise the anchor may span a
  // missed transmission and the window gets the same plausibility test.
  const bool proven_retry = prev_digest && rts.data_digest == *prev_digest &&
                            rts.attempt == prev_attempt + 1;
  bool accepted = true;
  if (config_.clean_window_filter && !proven_retry) {
    const double cw = params.cw_for_attempt(rts.attempt);
    if (observed > cw + config_.queue_gap_slack_slots) accepted = false;
  }

  if (config_.record_samples) {
    SampleRecord rec;
    rec.expected = expected;
    rec.observed = observed;
    rec.idle_slots = idle_slots;
    rec.busy_unc_slots = busy_slots;
    rec.blocked_slots = static_cast<double>(acct.blocked) /
                        static_cast<double>(params.slot_time);
    rec.attempt = rts.attempt;
    rec.accepted = accepted;
    sample_log_.push_back(rec);
  }

  if (!accepted) {
    ++stats_.skipped_queue_gap;
    if (deterministic_violation) window_deterministic_flag_ = true;
    return;
  }

  // Samples are normalized by their contention window so first attempts
  // (CW 31) and deep retries (CW up to 1023) form one homogeneous
  // population: under H0 the normalized dictated value is uniform on
  // [0, 1) regardless of attempt.
  const double norm = static_cast<double>(params.cw_for_attempt(rts.attempt)) + 1.0;
  double expected_norm = expected / norm;
  if (!config_.prs_aware) {
    // Baseline: no dictated values — compare against evenly spaced uniform
    // quantiles, the protocol's marginal back-off distribution.
    const double k = static_cast<double>(stats_.samples % config_.sample_size);
    expected_norm = (k + 0.5) / static_cast<double>(config_.sample_size);
  }
  add_sample(expected_norm, observed / norm, deterministic_violation);
}

void Monitor::add_sample(double expected, double observed,
                         bool deterministic_violation) {
  ++stats_.samples;
  if (deterministic_violation) window_deterministic_flag_ = true;

  if (seq_test_) {
    // Sequential path: the running score absorbs the sample immediately;
    // the margin shift makes an honest deficit negative on average, the
    // same H0 the Wilcoxon path tests.
    const double deficit = expected - observed - config_.margin_fraction;
    const SequentialTest::Step step = seq_test_->update(deficit);
    ++seq_samples_;
    if (step.flag) {
      close_sequential(/*crossed=*/true, step.score);
      seq_test_->reset();
    } else if (seq_samples_ >= config_.sample_size) {
      // Checkpoint: an unflagged window carrying the current score, so
      // honest runs still produce ROC denominators and latched
      // deterministic flags surface no later than under Wilcoxon.
      close_sequential(/*crossed=*/false, step.score);
    }
    return;
  }

  xs_.push_back(expected);
  ys_.push_back(observed);
  if (xs_.size() >= config_.sample_size) close_window();
}

void Monitor::close_sequential(bool crossed, double score) {
  WindowResult result;
  result.at = sim_.now();
  result.deterministic_flag = window_deterministic_flag_;
  result.p_less = std::exp(-(score > 0.0 ? score : 0.0));
  result.statistical_flag = crossed;
  record_window(result);
  seq_samples_ = 0;
  window_deterministic_flag_ = false;
}

void Monitor::close_window() {
  WindowResult result;
  result.at = sim_.now();
  result.deterministic_flag = window_deterministic_flag_;

  // Shift the observed sample up by the permissible margin before the
  // one-sided test: only a deficit beyond the margin counts as evidence.
  // Samples are CW-normalized, so the margin is a plain fraction of the
  // contention window.
  shifted_.assign(ys_.begin(), ys_.end());
  for (double& v : shifted_) v += config_.margin_fraction;

  const RankSumResult test =
      wilcoxon_rank_sum(xs_, shifted_, config_.wilcoxon, wilcoxon_scratch_);
  result.p_less = test.p_less;
  result.statistical_flag = test.p_less < config_.alpha;

  record_window(result);

  xs_.clear();
  ys_.clear();
  window_deterministic_flag_ = false;
}

std::unique_ptr<Monitor> MonitorFactory::watch(NodeId tagged) const {
  if (batch_) return std::make_unique<Monitor>(*batch_, tagged, config_);
  if (hub_) return std::make_unique<Monitor>(*hub_, tagged, config_);
  auto owned = std::make_unique<ObservationHub>(*sim_, *mac_, *timeline_);
  return std::unique_ptr<Monitor>(
      new Monitor(std::move(owned), tagged, config_));
}

void Monitor::record_window(const WindowResult& result, bool single_shot) {
  ++stats_.windows;
  if (result.flagged()) {
    ++stats_.flagged_windows;
    if (stats_.first_flag_time == kTimeNever) {
      stats_.first_flag_time = result.at;
      // A single-shot rts_gap_bound verdict closes no sample window: its
      // position in the window sequence is an artifact of when unrelated
      // traffic anchored, so it gets no ordinal (stays 0; see report.hpp).
      stats_.windows_to_first_flag = single_shot ? 0 : stats_.windows;
    }
  }
  windows_.push_back(result);
}

}  // namespace manet::detect
