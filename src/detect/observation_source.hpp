// The detect <-> sim boundary: an explicit vocabulary for everything the
// detection pipeline consumes from a node's radio/MAC, and a pull-style
// source interface over it.
//
// Historically the ObservationHub was wired straight into simulator
// callbacks (mac::MacObserver for decoded frames, phy::RadioListener for
// the carrier-sense timeline), so detection could only run against a live
// sim::Network. The ObservationEvent enumeration makes every observation
// the pipeline depends on explicit:
//
//   * kFrame   — a frame the node's radio decoded, with air start/end and
//                the PRS announcement of the paper's modified RTS
//                (SeqOff#, Attempt#, MD5 digest) embedded; for non-RTS
//                frames those fields are zero, exactly as on the wire.
//   * kCarrier — a busy/idle transition of the node's carrier sense.
//   * kOutage  — a deaf/recovered transition of the node's own radio
//                (fault-injected outage; monitors discard windows that
//                overlap one).
//   * kMarker  — out-of-band annotations a recording harness embeds in
//                the stream (monitor activity toggles for mobile handoff,
//                end-of-trace). Markers never reach the hub's statistics;
//                replay harnesses interpret them.
//
// An ObservationSource yields these events in the order the node
// perceived them; ObservationHub::consume() drains a source and feeds the
// same ingestion code the live callbacks use, so one detector
// implementation serves both a live simulation and a recorded trace
// (src/detect/trace.hpp).
#pragma once

#include <cstdint>

#include "crypto/md5.hpp"
#include "mac/frame.hpp"
#include "util/types.hpp"

namespace manet::detect {

enum class ObservationKind : std::uint8_t {
  kFrame = 0,
  kCarrier = 1,
  kOutage = 2,
  kMarker = 3,
};

/// Marker codes (kMarker events). Values are part of the trace format.
enum class MarkerCode : std::uint32_t {
  /// Monitor-activity toggle on the recorded node (value: 0 = suspend,
  /// 1 = resume) — how mobile-handoff role changes appear in a trace.
  kActivity = 1,
  /// Last event of a trace; `at` is the end of the recorded run (value 0).
  kTraceEnd = 2,
};

struct ObservationEvent {
  ObservationKind kind = ObservationKind::kCarrier;
  /// Time the node perceived the event: decode end for frames, the
  /// transition instant for carrier/outage edges, emission time for
  /// markers. Sources yield events in non-decreasing `at` order.
  SimTime at = 0;

  // --- kFrame ---------------------------------------------------------------
  SimTime start = 0;  // air start (at == air end for frames)
  mac::FrameType type = mac::FrameType::kData;
  NodeId transmitter = kInvalidNode;
  NodeId receiver = kInvalidNode;
  SimDuration duration = 0;  // NAV field
  // PRS announcement (paper Fig. 2; zero for non-RTS frames).
  std::uint32_t seq_off = 0;
  std::uint8_t attempt = 0;
  crypto::Md5Digest digest{};

  // --- kCarrier / kOutage -----------------------------------------------------
  bool rising = false;  // carrier: busy; outage: went deaf

  // --- kMarker ---------------------------------------------------------------
  std::uint32_t marker_code = 0;
  std::uint64_t marker_value = 0;

  bool operator==(const ObservationEvent&) const = default;

  /// The decoded frame a kFrame event describes, reconstructed for the
  /// ingestion path. Only fields the detection pipeline reads survive the
  /// round trip (type, addresses, NAV duration, PRS announcement); payload
  /// identity and L3 headers are not observations and are not carried.
  mac::Frame to_frame() const {
    mac::Frame frame;
    frame.type = type;
    frame.transmitter = transmitter;
    frame.receiver = receiver;
    frame.duration = duration;
    frame.seq_off = seq_off;
    frame.attempt = attempt;
    frame.data_digest = digest;
    return frame;
  }

  static ObservationEvent from_frame(const mac::Frame& frame, SimTime start,
                                     SimTime end) {
    ObservationEvent ev;
    ev.kind = ObservationKind::kFrame;
    ev.at = end;
    ev.start = start;
    ev.type = frame.type;
    ev.transmitter = frame.transmitter;
    ev.receiver = frame.receiver;
    ev.duration = frame.duration;
    ev.seq_off = frame.seq_off;
    ev.attempt = frame.attempt;
    ev.digest = frame.data_digest;
    return ev;
  }
};

/// A stream of observation events in perception order. Implementations:
/// the trace readers (detect/trace.hpp); tests use ad-hoc vectors.
class ObservationSource {
 public:
  virtual ~ObservationSource() = default;
  /// Fills `event` with the next event and returns true, or returns false
  /// at end of stream.
  virtual bool next(ObservationEvent& event) = 0;
};

}  // namespace manet::detect
