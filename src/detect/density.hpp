// Online node-density estimation.
//
// The paper (following Bianchi & Tinnirello) has each monitor estimate the
// number of competing terminals in its vicinity at run time, then convert
// that count into a uniform spatial density: with n_c competing terminals
// heard within transmission range R, density = n_c / (pi R^2), and the
// expected node count in any region area A is density * A.
//
// Two estimators are provided:
//  * HeardTransmitterDensity — counts distinct transmitter addresses
//    decoded within a sliding window (direct, what monitors can actually
//    observe; our default).
//  * The analytical Bianchi-Tinnirello inversion from collision
//    probability is exposed via estimate_competitors_from_collisions for
//    the ablation bench.
#pragma once

#include <cstdint>
#include <deque>
#include <numbers>
#include <unordered_map>

#include "util/types.hpp"

namespace manet::detect {

class HeardTransmitterDensity {
 public:
  /// `window`: how long a heard transmitter stays counted; `tx_range_m`:
  /// radius of the disk the count is attributed to.
  HeardTransmitterDensity(SimDuration window, double tx_range_m)
      : window_(window), tx_range_m_(tx_range_m) {}

  /// Records that `who` was heard transmitting at `at`.
  void heard(NodeId who, SimTime at);

  /// Distinct transmitters heard within the window ending at `now`.
  std::size_t competitors(SimTime now) const;

  /// Nodes per square meter implied by the competitor count.
  double density(SimTime now) const {
    const double area = std::numbers::pi * tx_range_m_ * tx_range_m_;
    return static_cast<double>(competitors(now)) / area;
  }

 private:
  void prune(SimTime now) const;

  SimDuration window_;
  double tx_range_m_;
  mutable std::unordered_map<NodeId, SimTime> last_heard_;
};

/// Bianchi-Tinnirello style inversion: given the measured conditional
/// collision probability p seen on the channel and the 802.11 CWmin W,
/// estimates the number of competing terminals n from the fixed-point
/// relation p = 1 - (1 - tau(n))^(n-1), where tau is Bianchi's per-slot
/// transmission probability for saturated stations. Solved by scanning n.
std::size_t estimate_competitors_from_collisions(double collision_probability,
                                                 std::uint32_t cw_min,
                                                 std::size_t max_n = 64);

}  // namespace manet::detect
