#include "detect/density.hpp"

#include <cmath>

namespace manet::detect {

void HeardTransmitterDensity::heard(NodeId who, SimTime at) {
  auto [it, inserted] = last_heard_.emplace(who, at);
  if (!inserted && it->second < at) it->second = at;
  prune(at);
}

void HeardTransmitterDensity::prune(SimTime now) const {
  const SimTime horizon = now - window_;
  for (auto it = last_heard_.begin(); it != last_heard_.end();) {
    if (it->second < horizon) {
      it = last_heard_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t HeardTransmitterDensity::competitors(SimTime now) const {
  prune(now);
  return last_heard_.size();
}

namespace {
/// Bianchi's per-slot transmission probability for n saturated stations
/// with minimum window W and m doubling stages, evaluated together with the
/// induced collision probability. We fix m = 5 (CWmin 31 -> CWmax 1023).
double collision_probability_for(std::size_t n, std::uint32_t w) {
  if (n < 2) return 0.0;
  constexpr int kStages = 5;
  // Solve the Bianchi fixed point tau(p), p(tau) by iteration.
  double p = 0.1;
  double tau = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double denom =
        (1 - 2 * p) * (static_cast<double>(w) + 1) +
        p * static_cast<double>(w) * (1 - std::pow(2 * p, kStages));
    tau = 2 * (1 - 2 * p) / denom;
    const double p_new = 1 - std::pow(1 - tau, static_cast<double>(n - 1));
    if (std::abs(p_new - p) < 1e-12) {
      p = p_new;
      break;
    }
    p = 0.5 * (p + p_new);
  }
  return p;
}
}  // namespace

std::size_t estimate_competitors_from_collisions(double collision_probability,
                                                 std::uint32_t cw_min,
                                                 std::size_t max_n) {
  std::size_t best_n = 1;
  double best_err = 1e300;
  for (std::size_t n = 1; n <= max_n; ++n) {
    const double p = collision_probability_for(n, cw_min);
    const double err = std::abs(p - collision_probability);
    if (err < best_err) {
      best_err = err;
      best_n = n;
    }
  }
  return best_n;
}

}  // namespace manet::detect
