// The .mtrace binary observation-trace format: everything a monitor
// daemon would need to re-run detection offline, recorded from the
// existing observer plumbing.
//
// A trace captures ONE node's view of the air: every frame its radio
// decoded (with the PRS announcement of the paper's modified RTS), every
// carrier busy/idle transition, every radio outage edge, plus harness
// markers (monitor-activity toggles under mobile handoff). The header
// carries the protocol parameters, the monitored identities, and an exact
// snapshot of the node's carrier-sense timeline at recording start — so a
// replay reconstructs the monitor's world bit for bit even when recording
// begins mid-run (a handoff target's ARMA filter reads carrier history
// from before its attach instant).
//
// Layout (all integers little-endian, fixed width):
//
//   header block:  [u32 magic "MTRC"] [u32 payload_len] [u32 crc32] [payload]
//     payload: u16 version, u16 reserved, u32 node, i64 start_time,
//              DcfParams fields, target list, CsTimeline snapshot
//   event blocks:  [u32 payload_len] [u32 event_count] [u32 crc32] [payload]
//     payload: event_count serialized ObservationEvents (u8 kind + fields)
//   ... until end of stream. A writer flushes a block every kBlockEvents
//   events; the final block may be shorter. Truncated streams and CRC
//   mismatches raise TraceError at parse time, never at event delivery.
//
// The writer plugs into a live node as a mac::MacObserver (decoded
// frames) plus phy::RadioListener (carrier/outage edges) — register it
// AFTER the node's CsTimeline so the recorded order of carrier edges
// relative to frames matches what the hub observed. Readers implement
// ObservationSource for ObservationHub::consume().
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "detect/observation_source.hpp"
#include "mac/dcf.hpp"
#include "phy/cs_timeline.hpp"
#include "phy/radio.hpp"
#include "util/types.hpp"

namespace manet::detect {

class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kTraceMagic = 0x4352544Du;  // "MTRC" on disk
inline constexpr std::uint16_t kTraceVersion = 1;

struct TraceHeader {
  NodeId node = kInvalidNode;   // the recording monitor node (R)
  SimTime start_time = 0;       // recording start (monitor attach instant)
  mac::DcfParams params;        // protocol timing of the observed network
  std::vector<NodeId> targets;  // identities the recorded run monitored
  phy::CsTimelineSnapshot timeline;  // carrier-sense state at start_time

  bool operator==(const TraceHeader&) const = default;
};

/// CRC-32 (IEEE 802.3, reflected) over `len` bytes.
std::uint32_t trace_crc32(const std::uint8_t* data, std::size_t len);

class TraceWriter : public mac::MacObserver, public phy::RadioListener {
 public:
  /// Events per CRC'd block. Part of the format's canonical form: equal
  /// event streams serialize to equal bytes.
  static constexpr std::size_t kBlockEvents = 512;

  explicit TraceWriter(const TraceHeader& header);

  const TraceHeader& header() const { return header_; }
  std::uint64_t events_recorded() const { return events_; }

  /// Appends one event (must not decrease in `at`).
  void record(const ObservationEvent& event);
  /// Appends a kMarker event.
  void marker(MarkerCode code, std::uint64_t value, SimTime at);

  /// The serialized trace: header block, completed blocks, and the
  /// pending partial block flushed as the final block.
  std::vector<std::uint8_t> serialize() const;
  void write_file(const std::string& path) const;

  // mac::MacObserver (decoded frames):
  void on_frame(const mac::Frame& frame, SimTime start, SimTime end) override;

  // phy::RadioListener (carrier-sense and outage edges):
  void on_carrier(bool busy, SimTime at) override;
  void on_receive(const phy::Signal&) override {}
  void on_receive_error(const phy::Signal&) override {}
  void on_transmit_end(std::uint64_t) override {}
  void on_outage(bool deaf, SimTime at) override;

 private:
  void flush_block();

  TraceHeader header_;
  std::vector<std::uint8_t> buffer_;  // header block + completed event blocks
  std::vector<std::uint8_t> block_;   // payload of the accumulating block
  std::uint32_t block_events_ = 0;
  std::uint64_t events_ = 0;
};

/// Parses a serialized trace held in memory (validates magic, version,
/// framing, and every CRC up front) and yields its events in order.
class MemoryTraceReader : public ObservationSource {
 public:
  /// Throws TraceError on truncation, corruption, or version mismatch.
  explicit MemoryTraceReader(std::vector<std::uint8_t> bytes);

  const TraceHeader& header() const { return header_; }
  std::size_t event_count() const { return events_.size(); }
  const std::vector<ObservationEvent>& events() const { return events_; }

  void rewind() { cursor_ = 0; }

  // ObservationSource:
  bool next(ObservationEvent& event) override;

 private:
  TraceHeader header_;
  std::vector<ObservationEvent> events_;
  std::size_t cursor_ = 0;
};

/// MemoryTraceReader over the contents of a .mtrace file.
class FileTraceReader : public MemoryTraceReader {
 public:
  /// Throws TraceError when the file cannot be read or fails validation.
  explicit FileTraceReader(const std::string& path);
};

/// Recording harness handle for run_multi_detection_experiment: one
/// TraceWriter per monitoring node, in monitor-creation order (the order
/// replay must aggregate in to match the live readout). Outlives the
/// network it records — observer registrations cannot be undone, so the
/// writers must not be destroyed before the simulation ends.
class TraceRecorder {
 public:
  TraceWriter& add(const TraceHeader& header) {
    writers_.push_back(std::make_unique<TraceWriter>(header));
    return *writers_.back();
  }
  TraceWriter* find(NodeId node) {
    for (auto& w : writers_) {
      if (w->header().node == node) return w.get();
    }
    return nullptr;
  }
  const std::vector<std::unique_ptr<TraceWriter>>& writers() const {
    return writers_;
  }

 private:
  std::vector<std::unique_ptr<TraceWriter>> writers_;
};

}  // namespace manet::detect
