#include "detect/wilcoxon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace manet::detect {

namespace {

/// Exact permutation tail probabilities of the y rank sum given the
/// combined midranks. Midranks are multiples of 0.5, so doubling makes all
/// sums integral; the DP counts, for every (count, doubled-sum), the number
/// of ways to pick `count` of the N ranks with that sum.
RankSumResult exact_rank_sum(const std::vector<double>& ranks, std::size_t ny,
                             double w_y) {
  const std::size_t n = ranks.size();
  std::vector<long long> r2(n);
  long long total2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    r2[i] = std::llround(ranks[i] * 2.0);
    total2 += r2[i];
  }

  // dp[c][s] = #subsets of size c with doubled-rank sum s.
  const auto smax = static_cast<std::size_t>(total2);
  std::vector<std::vector<double>> dp(ny + 1, std::vector<double>(smax + 1, 0.0));
  dp[0][0] = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>(r2[i]);
    const std::size_t cmax = std::min(ny, i + 1);
    for (std::size_t c = cmax; c >= 1; --c) {
      auto& row = dp[c];
      const auto& prev = dp[c - 1];
      for (std::size_t s = smax; s >= r; --s) {
        if (prev[s - r] != 0.0) row[s] += prev[s - r];
      }
      if (r == 0) break;  // unreachable (ranks >= 1) but keeps loop safe
    }
  }

  double total_ways = 0.0;
  for (double ways : dp[ny]) total_ways += ways;

  const auto w2 = static_cast<long long>(std::llround(w_y * 2.0));
  double less_eq = 0.0, greater_eq = 0.0;
  for (std::size_t s = 0; s <= smax; ++s) {
    const double ways = dp[ny][s];
    if (ways == 0.0) continue;
    if (static_cast<long long>(s) <= w2) less_eq += ways;
    if (static_cast<long long>(s) >= w2) greater_eq += ways;
  }

  RankSumResult res;
  res.w_y = w_y;
  res.exact = true;
  res.p_less = less_eq / total_ways;
  res.p_greater = greater_eq / total_ways;
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_less, res.p_greater));
  return res;
}

RankSumResult approx_rank_sum(const std::vector<double>& combined, std::size_t nx,
                              std::size_t ny, double w_y) {
  const double n = static_cast<double>(nx + ny);
  const double mean = static_cast<double>(ny) * (n + 1.0) / 2.0;

  // Tie correction: subtract sum(t^3 - t) over tie groups.
  std::vector<double> sorted(combined);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double var = (static_cast<double>(nx) * static_cast<double>(ny) / 12.0) *
                     ((n + 1.0) - tie_term / (n * (n - 1.0)));

  RankSumResult res;
  res.w_y = w_y;
  res.exact = false;
  if (var <= 0.0) {
    // All observations identical: no evidence either way.
    res.p_less = res.p_greater = res.p_two_sided = 1.0;
    return res;
  }
  const double sd = std::sqrt(var);
  // Continuity correction of one half rank in each direction.
  const double z_less = (w_y + 0.5 - mean) / sd;
  const double z_greater = (w_y - 0.5 - mean) / sd;
  res.z = (w_y - mean) / sd;
  res.p_less = util::normal_cdf(z_less);
  res.p_greater = 1.0 - util::normal_cdf(z_greater);
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_less, res.p_greater));
  return res;
}

}  // namespace

RankSumResult wilcoxon_rank_sum(std::span<const double> x, std::span<const double> y,
                                const WilcoxonOptions& options) {
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("wilcoxon_rank_sum: empty sample");
  }

  std::vector<double> combined;
  combined.reserve(nx + ny);
  combined.insert(combined.end(), x.begin(), x.end());
  combined.insert(combined.end(), y.begin(), y.end());
  const std::vector<double> ranks = util::midranks(combined);

  double w_y = 0.0;
  for (std::size_t i = 0; i < ny; ++i) w_y += ranks[nx + i];

  if (nx + ny <= options.exact_max_total) {
    return exact_rank_sum(ranks, ny, w_y);
  }
  return approx_rank_sum(combined, nx, ny, w_y);
}

}  // namespace manet::detect
