#include "detect/wilcoxon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace manet::detect {

namespace {

/// Exact permutation tail probabilities of the y rank sum given the
/// combined midranks. Midranks are multiples of 0.5, so doubling makes all
/// sums integral; the DP counts, for every (count, doubled-sum), the number
/// of ways to pick `count` of the N ranks with that sum.
///
/// The table is one flat scratch-owned array (row stride smax + 1), and the
/// inner loop only walks the reachable support of the previous row:
/// dp[c][s] can be nonzero only for s between the smallest and largest
/// doubled-rank sums attainable by c of the items processed so far. Entries
/// outside those bounds are exactly the ones the reference implementation's
/// `!= 0.0` guard skipped, so pruning them performs the identical sequence
/// of additions and the result is bit-identical.
RankSumResult exact_rank_sum(WilcoxonScratch& s, std::size_t ny, double w_y) {
  const std::size_t n = s.ranks.size();
  s.doubled.resize(n);
  long long total2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s.doubled[i] = std::llround(s.ranks[i] * 2.0);
    total2 += s.doubled[i];
  }

  const auto smax = static_cast<std::size_t>(total2);
  const std::size_t stride = smax + 1;
  s.dp.assign((ny + 1) * stride, 0.0);
  s.dp[0] = 1.0;

  // max_sum[c] < 0 marks "no subset of size c over the processed items yet";
  // min_sum is only read when max_sum says the size is reachable.
  s.max_sum.assign(ny + 1, -1);
  s.min_sum.assign(ny + 1, 0);
  s.max_sum[0] = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const long long r = s.doubled[i];
    const std::size_t cmax = std::min(ny, i + 1);
    for (std::size_t c = cmax; c >= 1; --c) {
      if (s.max_sum[c - 1] < 0) continue;
      double* row = s.dp.data() + c * stride;
      const double* prev = s.dp.data() + (c - 1) * stride;
      const long long hi = std::min<long long>(static_cast<long long>(smax),
                                               s.max_sum[c - 1] + r);
      const long long lo = s.min_sum[c - 1] + r;
      for (long long sv = hi; sv >= lo; --sv) {
        if (prev[sv - r] != 0.0) row[sv] += prev[sv - r];
      }
    }
    // Fold item i into the bounds, descending so size c reads the
    // pre-item bounds of size c - 1.
    for (std::size_t c = cmax; c >= 1; --c) {
      if (s.max_sum[c - 1] < 0) continue;
      if (s.max_sum[c] < 0) {
        s.max_sum[c] = s.max_sum[c - 1] + r;
        s.min_sum[c] = s.min_sum[c - 1] + r;
      } else {
        s.max_sum[c] = std::max(s.max_sum[c], s.max_sum[c - 1] + r);
        s.min_sum[c] = std::min(s.min_sum[c], s.min_sum[c - 1] + r);
      }
    }
  }

  const double* last = s.dp.data() + ny * stride;
  double total_ways = 0.0;
  for (std::size_t sv = 0; sv <= smax; ++sv) total_ways += last[sv];

  const auto w2 = static_cast<long long>(std::llround(w_y * 2.0));
  double less_eq = 0.0, greater_eq = 0.0;
  for (std::size_t sv = 0; sv <= smax; ++sv) {
    const double ways = last[sv];
    if (ways == 0.0) continue;
    if (static_cast<long long>(sv) <= w2) less_eq += ways;
    if (static_cast<long long>(sv) >= w2) greater_eq += ways;
  }

  RankSumResult res;
  res.w_y = w_y;
  res.exact = true;
  res.p_less = less_eq / total_ways;
  res.p_greater = greater_eq / total_ways;
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_less, res.p_greater));
  return res;
}

/// Normal approximation; `tie_term` is sum(t^3 - t) over the tie groups of
/// the combined sample, produced by the same pass that assigned midranks.
RankSumResult approx_rank_sum(std::size_t nx, std::size_t ny, double w_y,
                              double tie_term) {
  const double n = static_cast<double>(nx + ny);
  const double mean = static_cast<double>(ny) * (n + 1.0) / 2.0;
  const double var = (static_cast<double>(nx) * static_cast<double>(ny) / 12.0) *
                     ((n + 1.0) - tie_term / (n * (n - 1.0)));

  RankSumResult res;
  res.w_y = w_y;
  res.exact = false;
  if (var <= 0.0) {
    // All observations identical: no evidence either way.
    res.p_less = res.p_greater = res.p_two_sided = 1.0;
    return res;
  }
  const double sd = std::sqrt(var);
  // Continuity correction of one half rank in each direction.
  const double z_less = (w_y + 0.5 - mean) / sd;
  const double z_greater = (w_y - 0.5 - mean) / sd;
  res.z = (w_y - mean) / sd;
  res.p_less = util::normal_cdf(z_less);
  res.p_greater = 1.0 - util::normal_cdf(z_greater);
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_less, res.p_greater));
  return res;
}

// --- Reference implementation (pre-optimization, verbatim) -------------------

RankSumResult exact_rank_sum_reference(const std::vector<double>& ranks,
                                       std::size_t ny, double w_y) {
  const std::size_t n = ranks.size();
  std::vector<long long> r2(n);
  long long total2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    r2[i] = std::llround(ranks[i] * 2.0);
    total2 += r2[i];
  }

  // dp[c][s] = #subsets of size c with doubled-rank sum s.
  const auto smax = static_cast<std::size_t>(total2);
  std::vector<std::vector<double>> dp(ny + 1, std::vector<double>(smax + 1, 0.0));
  dp[0][0] = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::size_t>(r2[i]);
    const std::size_t cmax = std::min(ny, i + 1);
    for (std::size_t c = cmax; c >= 1; --c) {
      auto& row = dp[c];
      const auto& prev = dp[c - 1];
      for (std::size_t s = smax; s >= r; --s) {
        if (prev[s - r] != 0.0) row[s] += prev[s - r];
      }
      if (r == 0) break;  // unreachable (ranks >= 1) but keeps loop safe
    }
  }

  double total_ways = 0.0;
  for (double ways : dp[ny]) total_ways += ways;

  const auto w2 = static_cast<long long>(std::llround(w_y * 2.0));
  double less_eq = 0.0, greater_eq = 0.0;
  for (std::size_t s = 0; s <= smax; ++s) {
    const double ways = dp[ny][s];
    if (ways == 0.0) continue;
    if (static_cast<long long>(s) <= w2) less_eq += ways;
    if (static_cast<long long>(s) >= w2) greater_eq += ways;
  }

  RankSumResult res;
  res.w_y = w_y;
  res.exact = true;
  res.p_less = less_eq / total_ways;
  res.p_greater = greater_eq / total_ways;
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_less, res.p_greater));
  return res;
}

RankSumResult approx_rank_sum_reference(const std::vector<double>& combined,
                                        std::size_t nx, std::size_t ny,
                                        double w_y) {
  const double n = static_cast<double>(nx + ny);
  const double mean = static_cast<double>(ny) * (n + 1.0) / 2.0;

  // Tie correction: subtract sum(t^3 - t) over tie groups.
  std::vector<double> sorted(combined);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double var = (static_cast<double>(nx) * static_cast<double>(ny) / 12.0) *
                     ((n + 1.0) - tie_term / (n * (n - 1.0)));

  RankSumResult res;
  res.w_y = w_y;
  res.exact = false;
  if (var <= 0.0) {
    res.p_less = res.p_greater = res.p_two_sided = 1.0;
    return res;
  }
  const double sd = std::sqrt(var);
  const double z_less = (w_y + 0.5 - mean) / sd;
  const double z_greater = (w_y - 0.5 - mean) / sd;
  res.z = (w_y - mean) / sd;
  res.p_less = util::normal_cdf(z_less);
  res.p_greater = 1.0 - util::normal_cdf(z_greater);
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_less, res.p_greater));
  return res;
}

}  // namespace

RankSumResult wilcoxon_rank_sum(std::span<const double> x, std::span<const double> y,
                                const WilcoxonOptions& options,
                                WilcoxonScratch& scratch) {
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("wilcoxon_rank_sum: empty sample");
  }

  scratch.combined.clear();
  scratch.combined.reserve(nx + ny);
  scratch.combined.insert(scratch.combined.end(), x.begin(), x.end());
  scratch.combined.insert(scratch.combined.end(), y.begin(), y.end());
  const double tie_term =
      util::midranks_into(scratch.combined, scratch.ranks, scratch.order);

  double w_y = 0.0;
  for (std::size_t i = 0; i < ny; ++i) w_y += scratch.ranks[nx + i];

  if (nx + ny <= options.exact_max_total) {
    return exact_rank_sum(scratch, ny, w_y);
  }
  return approx_rank_sum(nx, ny, w_y, tie_term);
}

RankSumResult wilcoxon_rank_sum(std::span<const double> x, std::span<const double> y,
                                const WilcoxonOptions& options) {
  WilcoxonScratch scratch;
  return wilcoxon_rank_sum(x, y, options, scratch);
}

void wilcoxon_rank_sum_batch(std::span<const WilcoxonBatchItem> items,
                             std::span<RankSumResult> results,
                             WilcoxonScratch& scratch) {
  assert(results.size() == items.size());

  // Schedule exact-path items first, smallest combined size first: the DP
  // table is assign()ed per call with size proportional to the squared
  // combined rank total, so ascending order keeps each assign a pure grow
  // over warm memory. Approx items run last in caller order. stable_sort
  // keeps equal-size exact items in caller order too — not needed for
  // correctness (items are independent) but it keeps scheduling
  // deterministic for profiling.
  scratch.schedule.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) scratch.schedule[i] = i;
  std::stable_sort(scratch.schedule.begin(), scratch.schedule.end(),
                   [&items](std::size_t a, std::size_t b) {
                     const std::size_t na = items[a].x.size() + items[a].y.size();
                     const std::size_t nb = items[b].x.size() + items[b].y.size();
                     const bool ea = na <= items[a].options.exact_max_total;
                     const bool eb = nb <= items[b].options.exact_max_total;
                     if (ea != eb) return ea;
                     return ea && na < nb;
                   });

  for (const std::size_t idx : scratch.schedule) {
    const WilcoxonBatchItem& item = items[idx];
    scratch.shifted.assign(item.y.begin(), item.y.end());
    for (double& v : scratch.shifted) v += item.shift;
    results[idx] =
        wilcoxon_rank_sum(item.x, scratch.shifted, item.options, scratch);
  }
}

RankSumResult wilcoxon_rank_sum_reference(std::span<const double> x,
                                          std::span<const double> y,
                                          const WilcoxonOptions& options) {
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("wilcoxon_rank_sum: empty sample");
  }

  std::vector<double> combined;
  combined.reserve(nx + ny);
  combined.insert(combined.end(), x.begin(), x.end());
  combined.insert(combined.end(), y.begin(), y.end());
  const std::vector<double> ranks = util::midranks(combined);

  double w_y = 0.0;
  for (std::size_t i = 0; i < ny; ++i) w_y += ranks[nx + i];

  if (nx + ny <= options.exact_max_total) {
    return exact_rank_sum_reference(ranks, ny, w_y);
  }
  return approx_rank_sum_reference(combined, nx, ny, w_y);
}

}  // namespace manet::detect
