// Sequential change detectors over the per-sample back-off deficit — the
// online alternative to the paper's fixed-size Wilcoxon window.
//
// Cao et al. ("Real-Time Misbehavior Detection in IEEE 802.11e Based
// WLANs", PAPERS.md) argue that batch tests are the wrong shape for online
// detection: a window must fill before it can flag, so time-to-detection
// is lower-bounded by the window length regardless of how blatant the
// cheat is. A sequential test instead updates a running score per sample
// and crosses a decision threshold as soon as the evidence suffices.
//
// Both detectors consume the same statistic the Wilcoxon path tests: the
// per-sample CW-normalized back-off deficit
//
//     d = x/(CW+1) - y/(CW+1) - margin
//
// where x is the dictated count, y the monitor's estimated countdown, and
// `margin` the permissible fraction (MonitorConfig::margin_fraction).
// Under H0 (honest sender, unbiased estimator) d has mean <= -margin; a
// cheater honoring only part of its dictated back-off shifts the mean up.
//
//  * CUSUM (Page's test):  S <- max(0, S + d - drift), flag at S >= h.
//    `drift` is the classical reference value k: it subtracts the
//    allowance per sample so honest noise cannot accumulate; h trades
//    detection delay against false alarms.
//
//  * Wald SPRT with Gaussian hypotheses d ~ N(mu0, sigma^2) vs
//    N(mu1, sigma^2): the log-likelihood ratio random walk
//        L <- L + (mu1 - mu0) * (2d - mu0 - mu1) / (2 sigma^2)
//    flags when L >= A = ln((1-beta)/alpha) and *accepts* H0 (restarting
//    the walk) when L <= B = ln(beta/(1-alpha)). Restart-on-accept turns
//    the one-shot SPRT into a repeated test with bounded memory, so a
//    late-onset cheat (adaptive attackers) is still caught.
//
// Scores map into the WindowResult decision stream as p_less =
// exp(-max(score, 0)): monotone in the evidence, 1.0 at zero score, and
// below any plausible p-value threshold once the native threshold is
// crossed — so the ROC scorer (detect/roc.hpp) sweeps sequential scores
// exactly like Wilcoxon p-values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace manet::detect {

/// Which statistical test closes a monitor's windows
/// (MonitorConfig::detector).
enum class DetectorKind : std::uint8_t { kWilcoxon, kCusum, kSprt };

/// Parse "wilcoxon" / "cusum" / "sprt" (throws util::ConfigError).
DetectorKind detector_from_name(const std::string& name);
const char* detector_name(DetectorKind kind);

struct CusumParams {
  /// Reference value k: per-sample allowance subtracted before
  /// accumulation. Half the smallest deficit worth detecting.
  double drift = 0.05;
  /// Decision threshold h on the accumulated deficit (in CW fractions).
  double threshold = 2.0;
};

struct SprtParams {
  /// Deficit mean under H0 (honest): the margin shift makes honest
  /// deficits negative on average.
  double mean_honest = -0.10;
  /// Deficit mean under H1 (the smallest cheat worth detecting).
  double mean_cheat = 0.15;
  /// Common standard deviation of the per-sample deficit.
  double sigma = 0.25;
  double alpha = 0.01;  // target false-alarm probability per test
  double beta = 0.05;   // target miss probability per test
};

/// One sequential test instance (per monitor; monitors own their score
/// state just like their Wilcoxon sample buffers).
class SequentialTest {
 public:
  struct Step {
    bool flag = false;    // decision threshold crossed on this sample
    double score = 0.0;   // running score after the sample
  };

  virtual ~SequentialTest() = default;
  /// Absorbs one deficit sample. When `flag` comes back true the caller
  /// is expected to emit a verdict and reset() for the next epoch.
  virtual Step update(double deficit) = 0;
  virtual void reset() = 0;
  virtual double score() const = 0;
};

class CusumTest : public SequentialTest {
 public:
  explicit CusumTest(const CusumParams& params) : params_(params) {}
  Step update(double deficit) override;
  void reset() override { score_ = 0.0; }
  double score() const override { return score_; }

 private:
  CusumParams params_;
  double score_ = 0.0;
};

class SprtTest : public SequentialTest {
 public:
  explicit SprtTest(const SprtParams& params);
  Step update(double deficit) override;
  void reset() override { llr_ = 0.0; }
  /// The clamped LLR: accepts reset the walk, so the reported score never
  /// goes negative (p_less = exp(-score) stays <= 1).
  double score() const override { return llr_ > 0.0 ? llr_ : 0.0; }

 private:
  double step_gain_ = 0.0;    // (mu1 - mu0) / sigma^2
  double step_center_ = 0.0;  // (mu0 + mu1) / 2
  double upper_ = 0.0;        // A = ln((1-beta)/alpha)
  double lower_ = 0.0;        // B = ln(beta/(1-alpha))
  double llr_ = 0.0;
};

/// Factory for MonitorConfig::detector; returns nullptr for kWilcoxon
/// (the batch path needs no per-sample state).
std::unique_ptr<SequentialTest> make_sequential_test(
    DetectorKind kind, const CusumParams& cusum, const SprtParams& sprt);

/// Struct-of-arrays bank of sequential detectors — the batched pipeline's
/// replacement for one heap-allocated CusumTest/SprtTest per monitor. Each
/// slot holds one detector's precomputed coefficients and running score in
/// flat parallel arrays; update(slot, d) replicates the scalar tests'
/// arithmetic operation-for-operation (same compound-assignment grouping),
/// so a bank slot's Step stream is bit-identical to the SequentialTest it
/// replaces. Slots are independent: update order across slots is
/// unobservable.
class SequentialBank {
 public:
  using Step = SequentialTest::Step;

  /// Appends a detector slot and returns its index. kWilcoxon has no
  /// per-sample state and is not a valid slot kind (throws
  /// util::ConfigError).
  std::size_t add(DetectorKind kind, const CusumParams& cusum,
                  const SprtParams& sprt);

  /// Absorbs one deficit sample into `slot` (CusumTest::update /
  /// SprtTest::update semantics, including the SPRT restart-on-accept).
  Step update(std::size_t slot, double deficit);

  void reset(std::size_t slot) { state_[slot] = 0.0; }
  /// The clamped running score (both scalar tests report max(score, 0)).
  double score(std::size_t slot) const {
    return state_[slot] > 0.0 ? state_[slot] : 0.0;
  }
  std::size_t size() const { return kind_.size(); }

 private:
  std::vector<DetectorKind> kind_;
  std::vector<double> state_;  // CUSUM score / SPRT log-likelihood ratio
  std::vector<double> a_;      // CUSUM drift / SPRT step gain
  std::vector<double> b_;      // CUSUM threshold / SPRT step center
  std::vector<double> upper_;  // SPRT accept-H1 bound (unused for CUSUM)
  std::vector<double> lower_;  // SPRT accept-H0 bound (unused for CUSUM)
};

}  // namespace manet::detect
