#include "exp/artifact_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "crypto/md5.hpp"

namespace manet::exp {

namespace {

/// RAII advisory lock on a dedicated lock file. `ok()` is false when the
/// lock file could not be created (store degrades to lock-free).
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) return std::nullopt;
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) bytes.append(buf, n);
  std::fclose(in);
  return bytes;
}

/// Writes `value` to `path` via unique temp + fsync + rename. Returns
/// false on any failure (caller treats the store as best-effort).
bool write_file_atomic(const std::string& path, const std::string& value) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (!out) return false;
  bool ok = value.empty() ||
            std::fwrite(value.data(), 1, value.size(), out) == value.size();
  ok = ok && std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

}  // namespace

bool atomic_file_update(
    const std::string& path,
    const std::function<std::string(const std::string&)>& update) {
  FileLock lock(path + ".lock");
  if (!lock.ok()) return false;
  const std::string current = read_file(path).value_or("");
  return write_file_atomic(path, update(current));
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    if (const char* env = std::getenv("MANET_ARTIFACTS")) dir_ = env;
  }
  if (!dir_.empty()) {
    ::mkdir(dir_.c_str(), 0755);  // one level, best-effort
    while (!dir_.empty() && dir_.back() == '/') dir_.pop_back();
  }
}

std::string ArtifactStore::entry_path(const std::string& key) const {
  if (dir_.empty()) return "";
  return dir_ + "/" + crypto::to_hex(crypto::Md5::hash(key)) + ".art";
}

std::optional<std::string> ArtifactStore::get(const std::string& key) const {
  if (dir_.empty()) return std::nullopt;
  return read_file(entry_path(key));
}

void ArtifactStore::put(const std::string& key, const std::string& value) const {
  if (dir_.empty()) return;
  write_file_atomic(entry_path(key), value);
}

std::string ArtifactStore::get_or_compute(
    const std::string& key, const std::function<std::string()>& compute) const {
  if (dir_.empty()) return compute();
  if (auto hit = get(key)) return *hit;
  FileLock lock(entry_path(key) + ".lock");
  // Re-check under the lock: another process may have computed while we
  // waited for it.
  if (lock.ok()) {
    if (auto hit = get(key)) return *hit;
  }
  std::string value = compute();
  put(key, value);
  return value;
}

}  // namespace manet::exp
