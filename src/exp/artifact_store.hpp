// Keyed, content-addressed artifact store shared across processes.
//
// Sharded sweeps repeat expensive derived computations per shard unless
// something dedupes them: load calibrations, the serialized honest-
// baseline trial logs ROC scoring needs, and anything else that is a pure
// function of a describable key. The store maps an arbitrary key string
// to an immutable byte blob in a directory ($MANET_ARTIFACTS or an
// explicit path): the entry file is named by the md5 of the key, written
// via temp file + fsync + atomic rename so readers never observe a
// partial entry, and get_or_compute() holds an advisory flock for the
// duration of the compute so N concurrent shards racing on a cold key
// run the computation ONCE while the rest block and then read the result.
//
// The store is best-effort by design: with no directory configured it
// degrades to compute-every-time, and I/O failures fall back to
// computing locally rather than failing the sweep.
#pragma once

#include <functional>
#include <optional>
#include <string>

namespace manet::exp {

/// Rewrites `path` atomically under an advisory lock: `update` receives
/// the current content ("" when absent) and returns the replacement,
/// which lands via temp file + fsync + rename. Concurrent callers
/// serialize on `path + ".lock"`, so read-modify-write cycles (e.g. the
/// rate cache merging a new entry) never lose each other's updates.
/// Returns false (without calling `update`) when the lock file cannot be
/// created.
bool atomic_file_update(
    const std::string& path,
    const std::function<std::string(const std::string&)>& update);

class ArtifactStore {
 public:
  /// `dir` empty means "use $MANET_ARTIFACTS if set, else disabled".
  /// The directory is created (one level) on first use.
  explicit ArtifactStore(std::string dir = "");

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Returns the stored blob for `key`, or nullopt on miss/disabled.
  std::optional<std::string> get(const std::string& key) const;

  /// Durably stores `value` under `key` (atomic; last writer wins, but
  /// entries are content-addressed by key so writers agree). Best-effort:
  /// failures are swallowed.
  void put(const std::string& key, const std::string& value) const;

  /// get() or — under an exclusive advisory lock keyed by `key` —
  /// compute, put, and return. The lock is held across `compute`, so
  /// concurrent processes racing on the same cold key run it once.
  /// With the store disabled, simply computes.
  std::string get_or_compute(const std::string& key,
                             const std::function<std::string()>& compute) const;

  /// Filesystem path an entry for `key` would live at ("" if disabled).
  std::string entry_path(const std::string& key) const;

 private:
  std::string dir_;
};

}  // namespace manet::exp
