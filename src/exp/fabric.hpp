// The distributed experiment fabric: one shard of a sweep, driven in
// crash-safe chunks.
//
// A bench flattens its sweep into CELLS (exp/shard.hpp) and hands the
// fabric the total count plus its shard spec; the fabric owns everything
// process-shaped around the science:
//
//   * partitioning — which contiguous cell range this process computes,
//   * sinks — the canonical JSON artifact and/or the binary columnar
//     artifact (exp/columnar.hpp), with each record stamped by cell,
//   * durability — after every chunk of cells the sinks are flushed,
//     fsync'd, and the checkpoint journal (exp/checkpoint.hpp) commits
//     {cells_done, sink_offset}; a killed shard resumes at the last
//     durable chunk boundary and reproduces the uninterrupted artifact
//     byte for byte.
//
// The bench stays in charge of HOW a chunk is computed (typically one
// Engine::map over the chunk's (cell, trial) pairs — the fabric never
// nests engine fan-outs): run() calls back with [first, last) cell
// ranges, the bench computes them and emits records via begin_cell() /
// record().
//
// Checkpointing requires the columnar sink and excludes the JSON sink:
// a JSON array cannot be truncated to a durable prefix and appended to,
// so a resumable run writes .mcol and derives the JSON artifact with
// tools/sweep_merge afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "exp/checkpoint.hpp"
#include "exp/columnar.hpp"
#include "exp/shard.hpp"
#include "exp/sink.hpp"

namespace manet::exp {

struct FabricConfig {
  std::uint64_t total_cells = 0;
  ShardSpec shard;
  /// Shard-independent sweep fingerprint (bench name + content flags);
  /// stamped into the columnar header and the checkpoint identity.
  std::string sweep_fingerprint;
  std::string bench;
  std::string json_path;        // "" = no JSON artifact
  std::string columnar_path;    // "" = no columnar artifact
  std::string checkpoint_path;  // "" = no checkpoint/resume
  /// Chunk size: cells per flush + fsync + journal commit.
  std::uint64_t checkpoint_cells = 16;
  /// JSON sink record-count flush trigger (0 = size-based only).
  std::size_t json_flush_records = 0;
};

class SweepFabric final : public ResultSink {
 public:
  /// Validates the config, opens sinks, and — when a checkpoint journal
  /// from a previous attempt exists — positions the run at the last
  /// durable chunk boundary. Throws util::ConfigError on config misuse
  /// and std::runtime_error on unusable journal/artifact state.
  explicit SweepFabric(FabricConfig config);
  ~SweepFabric() override;

  std::uint64_t cell_begin() const { return begin_; }
  std::uint64_t cell_end() const { return end_; }
  /// First cell run() will actually compute (> cell_begin after resume).
  std::uint64_t resume_cell() const { return begin_ + done_; }
  bool resumed() const { return done_ != 0; }

  /// Drives the shard: calls run_chunk(first, last) for consecutive
  /// chunk-sized cell ranges from resume_cell() to cell_end(), committing
  /// durability after each. On completion flushes sinks and deletes the
  /// journal.
  void run(const std::function<void(std::uint64_t first, std::uint64_t last)>&
               run_chunk);

  /// Record emission (called by the bench inside run_chunk).
  void begin_cell(std::uint64_t cell);
  void record(const Record& r) override;
  void flush() override;

 private:
  void commit_chunk();

  FabricConfig config_;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
  std::uint64_t done_ = 0;  // cells durably complete, relative to begin_
  std::unique_ptr<JsonFileSink> json_;
  std::unique_ptr<ColumnarFileSink> columnar_;
  std::unique_ptr<CheckpointJournal> journal_;
};

}  // namespace manet::exp
