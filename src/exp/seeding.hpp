// The engine's seeding contract.
//
// Every trial of a sweep draws its randomness from a seed that is a pure
// function of (base seed, trial index): seed(i) = base + i. This is exactly
// the seeding the old serial loops used (`++config.scenario.seed` between
// runs), so parallel trial fan-out reproduces historical serial results
// bit for bit, and any single trial can be re-run in isolation by seeding
// a scenario with trial_seed(base, i).
#pragma once

#include <cstdint>

namespace manet::exp {

/// Seed of trial `index` in a sweep anchored at `base`.
constexpr std::uint64_t trial_seed(std::uint64_t base, std::uint64_t index) {
  return base + index;
}

}  // namespace manet::exp
