#include "exp/columnar.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"

namespace manet::exp {

namespace {

constexpr std::uint8_t kKindHeader = 0;
constexpr std::uint8_t kKindSchema = 1;
constexpr std::uint8_t kKindData = 2;
constexpr std::uint32_t kVersion = 1;
constexpr char kMagic[4] = {'M', 'C', 'O', 'L'};

// Meta keys the merge tool consults; everything else in the header is
// free-form.
constexpr const char* kMetaSweep = "sweep";
constexpr const char* kMetaBench = "bench";
constexpr const char* kMetaShard = "shard";
constexpr const char* kMetaTotalCells = "total_cells";
constexpr const char* kMetaCellBegin = "cell_begin";
constexpr const char* kMetaCellEnd = "cell_end";

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_varu(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_vari(std::vector<std::uint8_t>& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varu(out, (u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varu(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  static_assert(sizeof d == 8);
  const std::size_t n = out.size();
  out.resize(n + 8);  // host order is little-endian on every target
  std::memcpy(out.data() + n, &d, 8);
}

/// Bounds-checked cursor over a parsed payload; every overrun throws.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size, std::string where)
      : data_(data), size_(size), where_(std::move(where)) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(where_ + ": " + what);
  }

  bool done() const { return pos_ == size_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                      static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                      static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                      static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t varu() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return v;
    }
    fail("varint longer than 64 bits");
  }

  std::int64_t vari() {
    const std::uint64_t u = varu();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  std::string str() {
    const std::uint64_t len = varu();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  double f64() {
    need(8);
    double d;
    std::memcpy(&d, data_ + pos_, 8);
    pos_ += 8;
    return d;
  }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_) fail("payload truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string where_;
};

std::string schema_signature(const Record& r) {
  std::string sig;
  for (const auto& f : r.fields()) {
    sig += static_cast<char>('0' + f.value.index());
    sig += f.key;
    sig += '\0';
  }
  return sig;
}

std::string meta_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

ColumnarFileSink::ColumnarFileSink(std::string path, ColumnarMeta meta)
    : path_(std::move(path)), meta_(std::move(meta)), cell_(meta_.cell_begin) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("cannot open columnar sink file: " + path_);
  }
  std::fwrite(kMagic, 1, 4, file_);
  write_header();
}

ColumnarFileSink::ColumnarFileSink(std::string path, ColumnarMeta meta,
                                   std::uint64_t resume_offset)
    : path_(std::move(path)), meta_(std::move(meta)), cell_(meta_.cell_begin) {
  // Validate the durable prefix, then reopen for appending at the offset.
  {
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    if (!in) {
      throw std::runtime_error("columnar resume: missing file: " + path_);
    }
    std::string bytes;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) bytes.append(buf, n);
    std::fclose(in);
    if (bytes.size() < resume_offset) {
      throw std::runtime_error("columnar resume: " + path_ + " is shorter (" +
                               std::to_string(bytes.size()) +
                               " bytes) than the journal offset " +
                               std::to_string(resume_offset));
    }
    bytes.resize(static_cast<std::size_t>(resume_offset));

    // Walk the prefix: magic, then whole blocks ending exactly at the
    // offset. CRCs are checked; schema blocks rebuild the registry.
    const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
    Cursor cur(data, bytes.size(), "columnar resume " + path_);
    char magic[4];
    for (char& c : magic) c = static_cast<char>(cur.u8());
    if (std::memcmp(magic, kMagic, 4) != 0) cur.fail("bad magic");
    bool saw_header = false;
    while (!cur.done()) {
      const std::uint8_t kind = cur.u8();
      const std::uint32_t len = cur.u32();
      const std::uint32_t crc = cur.u32();
      std::vector<std::uint8_t> payload(len);
      for (std::uint32_t i = 0; i < len; ++i) payload[i] = cur.u8();
      if (util::crc32(payload.data(), payload.size()) != crc) {
        cur.fail("CRC mismatch in durable prefix");
      }
      Cursor body(payload.data(), payload.size(),
                  "columnar resume " + path_ + " block");
      if (kind == kKindHeader) {
        if (body.u32() != kVersion) body.fail("unsupported version");
        const std::uint32_t count = body.u32();
        std::string sweep, bench, shard;
        std::uint64_t total = 0, begin = 0, end = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::string key = body.str();
          const std::string value = body.str();
          if (key == kMetaSweep) sweep = value;
          else if (key == kMetaBench) bench = value;
          else if (key == kMetaShard) shard = value;
          else if (key == kMetaTotalCells) total = std::stoull(value);
          else if (key == kMetaCellBegin) begin = std::stoull(value);
          else if (key == kMetaCellEnd) end = std::stoull(value);
        }
        if (sweep != meta_.sweep || bench != meta_.bench ||
            shard != meta_.shard || total != meta_.total_cells ||
            begin != meta_.cell_begin || end != meta_.cell_end) {
          body.fail("header disagrees with the resuming sweep (sweep/"
                    "bench/shard/cell-range mismatch)");
        }
        saw_header = true;
      } else if (kind == kKindSchema) {
        const std::uint32_t id = body.u32();
        const std::uint32_t fields = body.u32();
        std::string sig;
        for (std::uint32_t i = 0; i < fields; ++i) {
          const std::string key = body.str();
          const std::uint8_t type = body.u8();
          sig += static_cast<char>('0' + type);
          sig += key;
          sig += '\0';
        }
        if (id != schemas_.size()) body.fail("schema ids out of order");
        schemas_.emplace_back(std::move(sig), id);
      } else if (kind != kKindData) {
        cur.fail("unknown block kind " + std::to_string(kind));
      }
    }
    if (!saw_header) cur.fail("no header block in durable prefix");
  }

  file_ = std::fopen(path_.c_str(), "r+b");
  if (!file_) {
    throw std::runtime_error("cannot reopen columnar sink file: " + path_);
  }
  if (::ftruncate(::fileno(file_), static_cast<off_t>(resume_offset)) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("columnar resume: cannot truncate " + path_);
  }
  std::fseek(file_, 0, SEEK_END);
}

ColumnarFileSink::~ColumnarFileSink() {
  if (file_) {
    close_block();
    std::fclose(file_);
  }
}

void ColumnarFileSink::write_header() {
  std::vector<std::uint8_t> payload;
  put_u32(payload, kVersion);
  std::vector<std::pair<std::string, std::string>> meta;
  meta.emplace_back(kMetaSweep, meta_.sweep);
  meta.emplace_back(kMetaBench, meta_.bench);
  meta.emplace_back(kMetaShard, meta_.shard);
  meta.emplace_back(kMetaTotalCells, meta_u64(meta_.total_cells));
  meta.emplace_back(kMetaCellBegin, meta_u64(meta_.cell_begin));
  meta.emplace_back(kMetaCellEnd, meta_u64(meta_.cell_end));
  for (const auto& kv : meta_.extra) meta.push_back(kv);
  put_u32(payload, static_cast<std::uint32_t>(meta.size()));
  for (const auto& [k, v] : meta) {
    put_str(payload, k);
    put_str(payload, v);
  }
  write_block(kKindHeader, payload);
}

void ColumnarFileSink::ensure_schema(const Record& r) {
  const auto& fields = r.fields();
  // Fast path: the record matches the open block's schema.
  if (block_records_ != 0 || !schema_keys_.empty()) {
    bool same = fields.size() == schema_keys_.size();
    for (std::size_t i = 0; same && i < fields.size(); ++i) {
      same = fields[i].value.index() == schema_types_[i] &&
             fields[i].key == schema_keys_[i];
    }
    if (same) return;
    close_block();
  }

  // Register (or look up) the schema and start a fresh block for it.
  const std::string sig = schema_signature(r);
  std::uint32_t id = 0;
  bool found = false;
  for (const auto& [s, existing_id] : schemas_) {
    if (s == sig) {
      id = existing_id;
      found = true;
      break;
    }
  }
  if (!found) {
    id = static_cast<std::uint32_t>(schemas_.size());
    schemas_.emplace_back(sig, id);
    std::vector<std::uint8_t> payload;
    put_u32(payload, id);
    put_u32(payload, static_cast<std::uint32_t>(fields.size()));
    for (const auto& f : fields) {
      put_str(payload, f.key);
      payload.push_back(static_cast<std::uint8_t>(f.value.index()));
    }
    write_block(kKindSchema, payload);
  }

  block_schema_id_ = id;
  schema_keys_.clear();
  schema_types_.clear();
  for (const auto& f : fields) {
    schema_keys_.push_back(f.key);
    schema_types_.push_back(static_cast<std::uint8_t>(f.value.index()));
  }
  scalar_columns_.assign(fields.size(), {});
  string_columns_.assign(fields.size(), {});
  cells_.reserve(kBlockRecords);
  for (auto& c : scalar_columns_) c.reserve(kBlockRecords * 8);
}

void ColumnarFileSink::record(const Record& r) {
  if (r.fields().empty()) return;  // nothing to column-ize
  ensure_schema(r);
  cells_.push_back(cell_);
  const auto& fields = r.fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const Record::Value& v = fields[i].value;
    switch (v.index()) {
      case 0:
        put_f64(scalar_columns_[i], std::get<double>(v));
        break;
      case 1:
        put_vari(scalar_columns_[i], std::get<std::int64_t>(v));
        break;
      case 2:
        put_varu(scalar_columns_[i], std::get<std::uint64_t>(v));
        break;
      case 3:
        scalar_columns_[i].push_back(std::get<bool>(v) ? 1 : 0);
        break;
      default: {
        StringColumn& col = string_columns_[i];
        const std::string& s = std::get<std::string>(v);
        std::uint32_t ref = 0;
        bool found = false;
        for (std::uint32_t j = 0; j < col.dict.size(); ++j) {
          if (col.dict[j] == s) {
            ref = j;
            found = true;
            break;
          }
        }
        if (!found) {
          ref = static_cast<std::uint32_t>(col.dict.size());
          col.dict.push_back(s);
        }
        col.refs.push_back(ref);
      }
    }
  }
  if (++block_records_ >= kBlockRecords) close_block();
}

void ColumnarFileSink::close_block() {
  if (block_records_ == 0) return;
  std::vector<std::uint8_t> payload;
  put_u32(payload, block_schema_id_);
  put_u32(payload, static_cast<std::uint32_t>(block_records_));
  for (std::uint64_t c : cells_) put_varu(payload, c);
  for (std::size_t i = 0; i < schema_types_.size(); ++i) {
    if (schema_types_[i] == 4) {
      const StringColumn& col = string_columns_[i];
      put_varu(payload, col.dict.size());
      for (const std::string& s : col.dict) put_str(payload, s);
      for (std::uint32_t ref : col.refs) put_varu(payload, ref);
    } else {
      payload.insert(payload.end(), scalar_columns_[i].begin(),
                     scalar_columns_[i].end());
    }
  }
  write_block(kKindData, payload);

  cells_.clear();
  for (auto& c : scalar_columns_) c.clear();
  for (auto& c : string_columns_) {
    c.dict.clear();
    c.refs.clear();
  }
  block_records_ = 0;
}

void ColumnarFileSink::write_block(std::uint8_t kind,
                                   const std::vector<std::uint8_t>& payload) {
  std::uint8_t head[9];
  head[0] = kind;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  std::memcpy(head + 1, &len, 4);
  std::memcpy(head + 5, &crc, 4);
  std::fwrite(head, 1, sizeof head, file_);
  if (!payload.empty()) {
    std::fwrite(payload.data(), 1, payload.size(), file_);
  }
}

void ColumnarFileSink::flush() {
  close_block();
  std::fflush(file_);
}

std::uint64_t ColumnarFileSink::sync() {
  flush();
  ::fsync(::fileno(file_));
  const off_t pos = ::lseek(::fileno(file_), 0, SEEK_END);
  return static_cast<std::uint64_t>(pos);
}

ColumnarFile read_columnar_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) {
    throw std::runtime_error("cannot open columnar file: " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) bytes.append(buf, n);
  std::fclose(in);

  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  Cursor cur(data, bytes.size(), "columnar file " + path);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(cur.u8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    cur.fail("bad magic (not a .mcol file)");
  }

  ColumnarFile out;
  bool saw_header = false;
  // schema id -> ordered (key, type)
  std::vector<std::vector<std::pair<std::string, std::uint8_t>>> schemas;
  std::uint64_t last_cell = 0;
  bool any_cell = false;

  while (!cur.done()) {
    const std::uint8_t kind = cur.u8();
    const std::uint32_t len = cur.u32();
    const std::uint32_t crc = cur.u32();
    std::vector<std::uint8_t> payload(len);
    for (std::uint32_t i = 0; i < len; ++i) payload[i] = cur.u8();
    if (util::crc32(payload.data(), payload.size()) != crc) {
      cur.fail("CRC mismatch (corrupt block)");
    }
    Cursor body(payload.data(), payload.size(),
                "columnar file " + path + " block");

    if (kind == kKindHeader) {
      if (saw_header) body.fail("duplicate header block");
      if (body.u32() != kVersion) body.fail("unsupported version");
      const std::uint32_t count = body.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::string key = body.str();
        const std::string value = body.str();
        if (key == kMetaSweep) out.meta.sweep = value;
        else if (key == kMetaBench) out.meta.bench = value;
        else if (key == kMetaShard) out.meta.shard = value;
        else if (key == kMetaTotalCells) out.meta.total_cells = std::stoull(value);
        else if (key == kMetaCellBegin) out.meta.cell_begin = std::stoull(value);
        else if (key == kMetaCellEnd) out.meta.cell_end = std::stoull(value);
        else out.meta.extra.emplace_back(key, value);
      }
      if (!body.done()) body.fail("trailing bytes in header block");
      saw_header = true;
      continue;
    }
    if (!saw_header) cur.fail("first block is not a header");

    if (kind == kKindSchema) {
      const std::uint32_t id = body.u32();
      if (id != schemas.size()) body.fail("schema ids out of order");
      const std::uint32_t fields = body.u32();
      std::vector<std::pair<std::string, std::uint8_t>> schema;
      for (std::uint32_t i = 0; i < fields; ++i) {
        std::string key = body.str();
        const std::uint8_t type = body.u8();
        if (type > 4) body.fail("unknown field type " + std::to_string(type));
        schema.emplace_back(std::move(key), type);
      }
      if (!body.done()) body.fail("trailing bytes in schema block");
      schemas.push_back(std::move(schema));
      continue;
    }
    if (kind != kKindData) {
      cur.fail("unknown block kind " + std::to_string(kind));
    }

    const std::uint32_t schema_id = body.u32();
    if (schema_id >= schemas.size()) {
      body.fail("data block references unknown schema " +
                std::to_string(schema_id));
    }
    const auto& schema = schemas[schema_id];
    const std::uint32_t count = body.u32();
    if (count == 0) body.fail("empty data block");

    std::vector<std::uint64_t> cells(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      cells[i] = body.varu();
      if (cells[i] < out.meta.cell_begin || cells[i] >= out.meta.cell_end) {
        body.fail("cell " + std::to_string(cells[i]) +
                  " outside the declared range [" +
                  std::to_string(out.meta.cell_begin) + ", " +
                  std::to_string(out.meta.cell_end) + ")");
      }
      if (any_cell && cells[i] < last_cell) {
        body.fail("cell indices go backwards (" + std::to_string(cells[i]) +
                  " after " + std::to_string(last_cell) + ")");
      }
      last_cell = cells[i];
      any_cell = true;
    }

    const std::size_t base = out.records.size();
    out.records.resize(base + count);
    for (std::uint32_t i = 0; i < count; ++i) {
      out.records[base + i].first = cells[i];
    }
    for (const auto& [key, type] : schema) {
      switch (type) {
        case 0:
          for (std::uint32_t i = 0; i < count; ++i) {
            out.records[base + i].second.add(key, body.f64());
          }
          break;
        case 1:
          for (std::uint32_t i = 0; i < count; ++i) {
            out.records[base + i].second.add(key, body.vari());
          }
          break;
        case 2:
          for (std::uint32_t i = 0; i < count; ++i) {
            out.records[base + i].second.add(key, body.varu());
          }
          break;
        case 3:
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint8_t b = body.u8();
            if (b > 1) body.fail("bool column byte out of range");
            out.records[base + i].second.add(key, b == 1);
          }
          break;
        default: {
          const std::uint64_t dict_size = body.varu();
          std::vector<std::string> dict;
          dict.reserve(static_cast<std::size_t>(dict_size));
          for (std::uint64_t i = 0; i < dict_size; ++i) dict.push_back(body.str());
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t ref = body.varu();
            if (ref >= dict.size()) {
              body.fail("string dictionary ref out of range");
            }
            out.records[base + i].second.add(key, dict[ref]);
          }
        }
      }
    }
    if (!body.done()) body.fail("trailing bytes in data block");
  }

  if (!saw_header) cur.fail("missing header block (empty or truncated file)");
  return out;
}

}  // namespace manet::exp
