// Shared, thread-safe offered-load calibration.
//
// Historically every bench binary carried its own RateCache: a plain
// std::map that re-ran the (expensive) probe simulations per process and
// was unsafe to touch from the engine's worker threads. This version is
//  * concurrency-safe: per-load std::once_flag, so a load is calibrated
//    exactly once even under concurrent rate_for() calls (callers for the
//    same load block; different loads calibrate in parallel), and
//  * shareable across bench processes: an optional append-only cache file
//    (constructor argument, or $MANET_RATE_CACHE) keyed by a scenario
//    fingerprint + load, so bench/run_all.sh pays for each calibration
//    point once instead of once per bench.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/load.hpp"
#include "net/scenario.hpp"

namespace manet::exp {

/// Folds every scenario field that changes the load <-> rate mapping into
/// a single token (calibration probes depend on topology, traffic shape,
/// mobility, MAC timing and the seed of the probe run). Shared with the
/// fabric's artifact keys: anything derived from a scenario's simulations
/// is content-addressed by this fingerprint.
std::string scenario_fingerprint(const net::ScenarioConfig& s);

class RateCache {
 public:
  /// Probe hook (tests substitute a counting stub for the real simulations).
  using Calibrator =
      std::function<net::CalibrationResult(const net::ScenarioConfig&, double)>;

  /// `cache_file` empty means "use $MANET_RATE_CACHE if set, else no file".
  explicit RateCache(net::ScenarioConfig scenario, std::string cache_file = "",
                     Calibrator calibrate = {});

  /// Per-flow packet rate that produces `load` at the monitored pair.
  /// Calibrates at most once per load; safe to call from worker threads.
  double rate_for(double load);

  /// Identifies the scenario in the file cache: every field that changes
  /// the load <-> rate mapping is folded in.
  const std::string& fingerprint() const { return fingerprint_; }

 private:
  struct Slot {
    std::once_flag once;
    double rate = 0.0;
  };

  Slot& slot_for(double load);
  bool file_lookup(double load, double* rate) const;
  void file_store(double load, double rate) const;

  net::ScenarioConfig scenario_;
  std::string fingerprint_;
  std::string cache_file_;
  Calibrator calibrate_;
  std::mutex mutex_;  // guards slots_ (not the calibration itself)
  std::map<double, std::unique_ptr<Slot>> slots_;
};

}  // namespace manet::exp
