// Structured result sinks.
//
// Sweep benches historically printed human tables only; the engine adds a
// machine-readable channel: every sweep point produces one flat Record
// (config + measured rates + wall-clock) that is pushed into a pluggable
// ResultSink. Records store TYPED values (double / int64 / uint64 / bool /
// string) so sinks can pick their own encoding: the JSON sink renders the
// canonical text artifact (one object per record — the BENCH_*.json files
// collected by bench/run_all.sh), the columnar sink (exp/columnar.hpp)
// writes the same records as a compact CRC-framed binary. A record
// round-tripped through either sink renders the identical JSON.
//
// Sinks are thread-safe: trials may record from worker threads, although
// the benches record from the aggregation thread so the record order
// itself stays deterministic.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace manet::exp {

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(const std::string& text);

/// One flat record: an ordered list of key -> typed scalar fields.
class Record {
 public:
  /// Field value. The variant index is the stable on-disk type tag of the
  /// columnar format (exp/columnar.hpp) — append-only, never reorder.
  using Value =
      std::variant<double, std::int64_t, std::uint64_t, bool, std::string>;

  struct Field {
    std::string key;
    Value value;
  };

  Record& add(const std::string& key, double value);
  Record& add(const std::string& key, std::int64_t value);
  Record& add(const std::string& key, std::uint64_t value);
  Record& add(const std::string& key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  Record& add(const std::string& key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  Record& add(const std::string& key, bool value);
  Record& add(const std::string& key, const std::string& value);
  Record& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  Record& add_field(Field field);

  /// Renders {"key": value, ...} preserving insertion order. Non-finite
  /// doubles render as null (JSON has no NaN/Inf).
  std::string to_json() const;

  /// Renders one value as a JSON literal (shared with the merge tool).
  static std::string render_value(const Value& value);

  const std::vector<Field>& fields() const { return fields_; }
  bool empty() const { return fields_.empty(); }

 private:
  std::vector<Field> fields_;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void record(const Record& r) = 0;
  virtual void flush() {}
};

/// Swallows records (benches run with no --json flag).
class NullSink final : public ResultSink {
 public:
  void record(const Record&) override {}
};

/// Appends every record to an in-memory list (tests, ad-hoc tooling).
class MemorySink final : public ResultSink {
 public:
  void record(const Record& r) override;
  std::vector<Record> records() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Record> records_;
};

/// Writes a JSON array of record objects to a file, one object per line.
///
/// Writes are buffered: rendered records accumulate in memory and reach
/// the stream when the buffer passes ~64 KiB, when `flush_records` records
/// have been buffered since the last write (0 disables the count trigger),
/// or on an explicit flush(). flush() also fflushes the stream, so a
/// checkpointing driver that flushes at every durability point composes
/// with the buffering instead of fighting it.
class JsonFileSink final : public ResultSink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonFileSink(std::string path, std::size_t flush_records = 0);
  ~JsonFileSink() override;

  void record(const Record& r) override;
  void flush() override;

  const std::string& path() const { return path_; }

 private:
  void write_buffer_locked();

  std::mutex mutex_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::size_t flush_records_ = 0;
  std::size_t buffered_records_ = 0;
  bool first_ = true;
};

/// Fans every record out to several sinks (e.g. memory + JSON file).
class MultiSink final : public ResultSink {
 public:
  void add(std::shared_ptr<ResultSink> sink);
  void record(const Record& r) override;
  void flush() override;

 private:
  std::vector<std::shared_ptr<ResultSink>> sinks_;
};

}  // namespace manet::exp
