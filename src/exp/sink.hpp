// Structured result sinks.
//
// Sweep benches historically printed human tables only; the engine adds a
// machine-readable channel: every sweep point produces one flat Record
// (config + measured rates + wall-clock) that is pushed into a pluggable
// ResultSink. The JSON sink writes a single well-formed JSON array with
// one object per record — the BENCH_*.json artifacts collected by
// bench/run_all.sh. Sinks are thread-safe: trials may record from worker
// threads, although the benches record from the aggregation thread so the
// record order itself stays deterministic.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace manet::exp {

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(const std::string& text);

/// One flat record: an ordered list of key -> scalar fields.
class Record {
 public:
  Record& add(const std::string& key, double value);
  Record& add(const std::string& key, std::int64_t value);
  Record& add(const std::string& key, std::uint64_t value);
  Record& add(const std::string& key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  Record& add(const std::string& key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  Record& add(const std::string& key, bool value);
  Record& add(const std::string& key, const std::string& value);
  Record& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }

  /// Renders {"key": value, ...} preserving insertion order.
  std::string to_json() const;

  bool empty() const { return fields_.empty(); }

 private:
  // Values are stored pre-rendered as JSON literals.
  std::vector<std::pair<std::string, std::string>> fields_;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void record(const Record& r) = 0;
  virtual void flush() {}
};

/// Swallows records (benches run with no --json flag).
class NullSink final : public ResultSink {
 public:
  void record(const Record&) override {}
};

/// Appends every record to an in-memory list (tests, ad-hoc tooling).
class MemorySink final : public ResultSink {
 public:
  void record(const Record& r) override;
  std::vector<Record> records() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Record> records_;
};

/// Writes a JSON array of record objects to a file, one object per line.
class JsonFileSink final : public ResultSink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonFileSink(std::string path);
  ~JsonFileSink() override;

  void record(const Record& r) override;
  void flush() override;

  const std::string& path() const { return path_; }

 private:
  std::mutex mutex_;
  std::string path_;
  std::FILE* file_ = nullptr;
  bool first_ = true;
};

/// Fans every record out to several sinks (e.g. memory + JSON file).
class MultiSink final : public ResultSink {
 public:
  void add(std::shared_ptr<ResultSink> sink);
  void record(const Record& r) override;
  void flush() override;

 private:
  std::vector<std::shared_ptr<ResultSink>> sinks_;
};

}  // namespace manet::exp
