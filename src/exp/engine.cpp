#include "exp/engine.hpp"

#include <thread>

namespace manet::exp {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Engine::Engine(unsigned threads) : threads_(resolve_threads(threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

}  // namespace manet::exp
