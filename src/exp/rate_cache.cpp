#include "exp/rate_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/artifact_store.hpp"
#include "net/network.hpp"

namespace manet::exp {

namespace {

std::string format_load(double load) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", load);
  return buf;
}

/// The flow layout every detection bench calibrates against: one flow at
/// the monitored center pair plus the configured random background flows.
void default_setup(net::Network& net) {
  const NodeId s = net.center_node();
  const auto nbrs = net.neighbors(s, net.config().prop.tx_range_m, 0);
  if (!nbrs.empty()) net.add_flow(s, nbrs.front(), 1.0);
  net.build_random_flows();
}

}  // namespace

std::string scenario_fingerprint(const net::ScenarioConfig& s) {
  std::ostringstream out;
  out << "v1"
      << "|topo=" << static_cast<int>(s.topology) << ":" << s.grid_rows << "x"
      << s.grid_cols << ":" << s.grid_spacing_m << ":" << s.random_nodes << ":"
      << s.area_width_m << "x" << s.area_height_m
      << "|mob=" << static_cast<int>(s.mobility) << ":" << s.min_speed_mps << "-"
      << s.max_speed_mps << ":" << s.pause_s
      << "|tfc=" << static_cast<int>(s.traffic) << ":" << s.payload_bytes << ":"
      << s.num_flows
      << "|rt=" << static_cast<int>(s.routing) << ":"
      << static_cast<int>(s.flow_pattern)
      << "|seed=" << s.seed
      << "|mac=" << s.mac.slot_time << ":" << s.mac.cw_min << ":" << s.mac.cw_max
      << ":" << s.mac.queue_capacity << ":" << s.mac.data_rate_bps
      << "|phy=" << s.prop.tx_range_m << ":" << s.prop.cs_range_m << ":"
      << s.prop.shadowing_sigma_db
      << "|flt=" << s.faults.loss_probability << ":" << s.faults.corrupt_probability;
  return out.str();
}

RateCache::RateCache(net::ScenarioConfig scenario, std::string cache_file,
                     Calibrator calibrate)
    : scenario_(std::move(scenario)),
      fingerprint_(scenario_fingerprint(scenario_)),
      cache_file_(std::move(cache_file)),
      calibrate_(std::move(calibrate)) {
  if (cache_file_.empty()) {
    if (const char* env = std::getenv("MANET_RATE_CACHE")) cache_file_ = env;
  }
  if (!calibrate_) {
    calibrate_ = [](const net::ScenarioConfig& s, double load) {
      return net::calibrate_load(s, load, default_setup);
    };
  }
}

RateCache::Slot& RateCache::slot_for(double load) {
  std::lock_guard lock(mutex_);
  auto& slot = slots_[load];
  if (!slot) slot = std::make_unique<Slot>();
  return *slot;
}

double RateCache::rate_for(double load) {
  Slot& slot = slot_for(load);
  std::call_once(slot.once, [&] {
    double cached = 0.0;
    if (file_lookup(load, &cached)) {
      std::printf("# calibrated load %.2f -> %.2f pkt/s per flow (rate cache)\n",
                  load, cached);
      std::fflush(stdout);
      slot.rate = cached;
      return;
    }
    const net::CalibrationResult result = calibrate_(scenario_, load);
    std::printf("# calibrated load %.2f -> %.2f pkt/s per flow "
                "(measured busy fraction %.3f, %d probe runs)\n",
                load, result.packets_per_second, result.measured_busy_fraction,
                result.probe_runs);
    std::fflush(stdout);
    file_store(load, result.packets_per_second);
    slot.rate = result.packets_per_second;
  });
  return slot.rate;
}

bool RateCache::file_lookup(double load, double* rate) const {
  if (cache_file_.empty()) return false;
  std::ifstream in(cache_file_);
  if (!in) return false;
  const std::string want_load = format_load(load);
  std::string fp, load_text;
  double r = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    if (!(fields >> fp >> load_text >> r)) continue;
    if (fp == fingerprint_ && load_text == want_load) {
      *rate = r;
      return true;
    }
  }
  return false;
}

void RateCache::file_store(double load, double rate) const {
  if (cache_file_.empty()) return;
  // Concurrent bench processes (sharded sweeps!) may store entries at the
  // same time; a plain append can interleave partial lines. Rewrite the
  // file atomically under an advisory lock, merging our entry into
  // whatever the file holds by then — the cache is best-effort, so a
  // failure to lock or write just means this calibration is not shared.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", rate);
  const std::string entry =
      fingerprint_ + " " + format_load(load) + " " + buf + "\n";
  const std::string key_prefix = fingerprint_ + " " + format_load(load) + " ";
  atomic_file_update(cache_file_, [&](const std::string& current) {
    std::istringstream in(current);
    std::string line;
    while (std::getline(in, line)) {
      if (line.compare(0, key_prefix.size(), key_prefix) == 0) {
        return current;  // another process stored this load first
      }
    }
    return current + entry;
  });
}

}  // namespace manet::exp
