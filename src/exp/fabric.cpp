#include "exp/fabric.hpp"

#include <algorithm>
#include <cstdio>

#include "util/config.hpp"

namespace manet::exp {

SweepFabric::SweepFabric(FabricConfig config) : config_(std::move(config)) {
  if (!config_.checkpoint_path.empty()) {
    if (config_.columnar_path.empty()) {
      throw util::ConfigError(
          "--checkpoint requires --columnar: the journal records a durable "
          "byte offset into the columnar artifact");
    }
    if (!config_.json_path.empty()) {
      throw util::ConfigError(
          "--checkpoint cannot be combined with --json (a JSON array is not "
          "resumable; derive it from the .mcol with sweep_merge)");
    }
    if (config_.checkpoint_cells == 0) {
      throw util::ConfigError("--checkpoint-cells must be >= 1");
    }
  }

  begin_ = config_.shard.begin(config_.total_cells);
  end_ = config_.shard.end(config_.total_cells);

  // The checkpoint identity pins the journal to this exact (sweep, shard)
  // pair; the chunk size participates because resume assumes the previous
  // attempt flushed at the same cadence.
  if (!config_.checkpoint_path.empty()) {
    const std::string identity = config_.sweep_fingerprint + "|shard=" +
                                 config_.shard.str() + "|chunk=" +
                                 std::to_string(config_.checkpoint_cells);
    journal_ = std::make_unique<CheckpointJournal>(config_.checkpoint_path,
                                                   identity);
  }

  ColumnarMeta meta;
  meta.sweep = config_.sweep_fingerprint;
  meta.bench = config_.bench;
  meta.shard = config_.shard.str();
  meta.total_cells = config_.total_cells;
  meta.cell_begin = begin_;
  meta.cell_end = end_;

  std::optional<CheckpointJournal::State> state;
  if (journal_) state = journal_->load();
  if (state) {
    done_ = state->cells_done;
    if (begin_ + done_ > end_) {
      throw std::runtime_error(
          "checkpoint journal claims more cells than this shard owns: " +
          config_.checkpoint_path);
    }
    columnar_ = std::make_unique<ColumnarFileSink>(config_.columnar_path, meta,
                                                   state->sink_offset);
    std::printf("# fabric: shard %s owns cells [%llu, %llu) of %llu; "
                "resuming at cell %llu (%llu already durable)\n",
                config_.shard.str().c_str(),
                static_cast<unsigned long long>(begin_),
                static_cast<unsigned long long>(end_),
                static_cast<unsigned long long>(config_.total_cells),
                static_cast<unsigned long long>(begin_ + done_),
                static_cast<unsigned long long>(done_));
  } else {
    if (!config_.columnar_path.empty()) {
      columnar_ = std::make_unique<ColumnarFileSink>(config_.columnar_path, meta);
    }
    if (!config_.json_path.empty()) {
      json_ = std::make_unique<JsonFileSink>(config_.json_path,
                                             config_.json_flush_records);
    }
    if (!config_.shard.is_serial()) {
      std::printf("# fabric: shard %s owns cells [%llu, %llu) of %llu\n",
                  config_.shard.str().c_str(),
                  static_cast<unsigned long long>(begin_),
                  static_cast<unsigned long long>(end_),
                  static_cast<unsigned long long>(config_.total_cells));
    }
  }
  std::fflush(stdout);
}

SweepFabric::~SweepFabric() = default;

void SweepFabric::run(
    const std::function<void(std::uint64_t, std::uint64_t)>& run_chunk) {
  const std::uint64_t chunk =
      journal_ ? config_.checkpoint_cells : (end_ - begin_);
  std::uint64_t cursor = begin_ + done_;
  while (cursor < end_) {
    const std::uint64_t last = std::min(end_, cursor + std::max<std::uint64_t>(
                                                          chunk, 1));
    begin_cell(cursor);
    run_chunk(cursor, last);
    done_ += last - cursor;
    cursor = last;
    commit_chunk();
  }
  flush();
  if (journal_) {
    if (columnar_) columnar_->sync();
    journal_->remove();
  }
}

void SweepFabric::commit_chunk() {
  if (!journal_) return;
  // Sink durability FIRST, journal second: the journal must never claim
  // progress the artifact does not hold.
  const std::uint64_t offset = columnar_->sync();
  journal_->commit({done_, offset});
}

void SweepFabric::begin_cell(std::uint64_t cell) {
  if (columnar_) columnar_->begin_cell(cell);
}

void SweepFabric::record(const Record& r) {
  if (json_) json_->record(r);
  if (columnar_) columnar_->record(r);
}

void SweepFabric::flush() {
  if (json_) json_->flush();
  if (columnar_) columnar_->flush();
}

}  // namespace manet::exp
