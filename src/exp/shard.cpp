#include "exp/shard.hpp"

#include <algorithm>

#include "util/config.hpp"

namespace manet::exp {

ShardSpec ShardSpec::parse(const std::string& text) {
  const auto fail = [&text]() -> ShardSpec {
    throw util::ConfigError("'" + text +
                            "' is not a shard spec (expected i/N with "
                            "0 <= i < N, e.g. 0/4)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    return fail();
  }
  const std::string left = text.substr(0, slash);
  const std::string right = text.substr(slash + 1);
  for (const std::string& part : {left, right}) {
    if (part.empty() || part.size() > 9) return fail();
    for (char c : part) {
      if (c < '0' || c > '9') return fail();
    }
  }
  ShardSpec spec;
  spec.index = static_cast<std::uint32_t>(std::stoul(left));
  spec.count = static_cast<std::uint32_t>(std::stoul(right));
  if (spec.count == 0 || spec.index >= spec.count) return fail();
  return spec;
}

std::string ShardSpec::str() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::uint64_t ShardSpec::begin(std::uint64_t cells) const {
  const std::uint64_t base = cells / count;
  const std::uint64_t rem = cells % count;
  return static_cast<std::uint64_t>(index) * base +
         std::min<std::uint64_t>(index, rem);
}

std::uint64_t ShardSpec::end(std::uint64_t cells) const {
  const std::uint64_t base = cells / count;
  const std::uint64_t rem = cells % count;
  return begin(cells) + base + (index < rem ? 1 : 0);
}

}  // namespace manet::exp
