// Generic sweep: a grid of points × independent trials per point.
//
// All (point, trial) pairs share one work queue, so a sweep saturates the
// engine even when the per-point trial count is small (the common case:
// Fig. 5 runs 24 points × 2 seeds). Results come back grouped per point,
// trials in run order — combined with per-trial seeding (exp/seeding.hpp)
// the reduction a caller applies over them is bit-identical for any
// thread count.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "exp/engine.hpp"

namespace manet::exp {

/// Runs `runs` trials of every point through `fn(point, run_index)` and
/// returns, per point, the trial results in run order.
template <typename Point, typename Fn>
auto run_sweep(Engine& engine, const std::vector<Point>& points, int runs, Fn&& fn)
    -> std::vector<std::vector<std::invoke_result_t<Fn&, const Point&, int>>> {
  using R = std::invoke_result_t<Fn&, const Point&, int>;
  if (runs < 0) runs = 0;
  const std::size_t r = static_cast<std::size_t>(runs);
  std::vector<R> flat = engine.map(points.size() * r, [&](std::size_t i) {
    return fn(points[i / r], static_cast<int>(i % r));
  });
  std::vector<std::vector<R>> grouped(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    grouped[p].reserve(r);
    for (std::size_t k = 0; k < r; ++k) {
      grouped[p].push_back(std::move(flat[p * r + k]));
    }
  }
  return grouped;
}

}  // namespace manet::exp
