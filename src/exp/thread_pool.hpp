// A fixed-size work-queue thread pool.
//
// Workers pull std::function jobs off a single queue; `wait_idle` blocks
// until every submitted job has finished. The pool itself is intentionally
// dumb — determinism lives a layer up (exp::Engine), which assigns each
// job an index and aggregates results in index order, so scheduling and
// thread count never leak into experiment output.
//
// A pool of size 1 still runs jobs on a worker thread (uniform behavior);
// callers that want a truly inline serial path should bypass the pool —
// Engine does exactly that for threads == 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manet::exp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a job. Jobs must not submit to the pool they run on while a
  /// wait_idle() caller depends on them finishing (no nested fan-out).
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and no job is in flight.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace manet::exp
