// Deterministic parallel experiment engine.
//
// Engine::map(n, fn) evaluates fn(0) ... fn(n-1) — independent trials —
// across a work-queue thread pool and returns the results *in index
// order*. Because each trial derives all of its randomness from its index
// (see exp/seeding.hpp) and aggregation happens in index order on the
// caller's thread, the output is bit-identical for any thread count and
// any scheduling interleaving. Exceptions thrown by trials are captured
// and the lowest-index one is rethrown after all trials finish, so even
// failure is deterministic.
//
// threads == 1 runs trials inline on the calling thread (no pool), which
// keeps the serial path trivially equivalent to the historical loops.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/thread_pool.hpp"

namespace manet::exp {

/// Resolves a --threads style request: 0 means "all hardware threads".
unsigned resolve_threads(unsigned requested);

class Engine {
 public:
  /// `threads` workers; 0 picks std::thread::hardware_concurrency().
  explicit Engine(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs fn(index) for index in [0, n) and returns results in index order.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::optional<R>> slots(n);
    if (!pool_) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(i));
    } else {
      std::vector<std::exception_ptr> errors(n);
      for (std::size_t i = 0; i < n; ++i) {
        pool_->submit([&, i] {
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool_->wait_idle();
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }
    std::vector<R> results;
    results.reserve(n);
    for (std::optional<R>& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Runs fn(index) for index in [0, n) with no result collection.
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) {
    map(n, [&fn](std::size_t i) {
      fn(i);
      return 0;
    });
  }

 private:
  unsigned threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace manet::exp
