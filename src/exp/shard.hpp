// Sharding contract of the experiment fabric.
//
// A sweep is a flat sequence of CELLS (the unit a bench emits records
// for: one (load, PM) grid point, one attacker, ...), each evaluated as
// `runs` trials seeded by trial_seed(point_seed, run) — a pure function
// of the cell, never of which process runs it. A shard "i/N" therefore
// owns the i-th of N contiguous, balanced ranges of [0, cells):
//
//   |range_i| = cells/N + (i < cells%N),  range_i.end == range_{i+1}.begin
//
// so (a) any cell's results are bit-identical no matter which shard (or
// thread) computes it, and (b) concatenating the N shard artifacts in
// shard order reproduces the serial single-process artifact exactly —
// the property tools/sweep_merge validates and bench/perf_pr10.sh
// enforces byte-for-byte. N may exceed the cell count; trailing shards
// simply own empty ranges.
#pragma once

#include <cstdint>
#include <string>

namespace manet::exp {

struct ShardSpec {
  std::uint32_t index = 0;  // 0-based
  std::uint32_t count = 1;

  /// Parses "i/N" (0 <= i < N, N >= 1); throws util::ConfigError on
  /// anything else (strict, like the benches' numeric-list parsing).
  static ShardSpec parse(const std::string& text);

  std::string str() const;

  bool is_serial() const { return count == 1; }

  /// First cell this shard owns out of `cells` total.
  std::uint64_t begin(std::uint64_t cells) const;
  /// One past the last cell this shard owns.
  std::uint64_t end(std::uint64_t cells) const;

  bool operator==(const ShardSpec&) const = default;
};

}  // namespace manet::exp
