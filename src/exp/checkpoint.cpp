#include "exp/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "crypto/md5.hpp"

namespace manet::exp {

namespace {

constexpr const char* kTag = "MJRN1";

}  // namespace

CheckpointJournal::CheckpointJournal(std::string path,
                                     const std::string& identity)
    : path_(std::move(path)),
      identity_md5_(crypto::to_hex(crypto::Md5::hash(identity))) {}

std::optional<CheckpointJournal::State> CheckpointJournal::load() const {
  std::FILE* in = std::fopen(path_.c_str(), "r");
  if (!in) {
    if (errno == ENOENT) return std::nullopt;
    throw std::runtime_error("cannot open checkpoint journal: " + path_);
  }
  char tag[16] = {0};
  char fp[64] = {0};
  unsigned long long cells = 0;
  unsigned long long offset = 0;
  const int matched =
      std::fscanf(in, "%15s %63s %llu %llu", tag, fp, &cells, &offset);
  std::fclose(in);
  if (matched != 4 || std::strcmp(tag, kTag) != 0) {
    throw std::runtime_error("malformed checkpoint journal: " + path_);
  }
  if (identity_md5_ != fp) {
    throw std::runtime_error(
        "checkpoint journal " + path_ +
        " belongs to a different sweep or shard (fingerprint " +
        std::string(fp) + ", expected " + identity_md5_ +
        ") — delete it or pick a different --checkpoint path");
  }
  return State{cells, offset};
}

void CheckpointJournal::commit(const State& state) const {
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (!out) {
    throw std::runtime_error("cannot write checkpoint journal: " + tmp);
  }
  std::fprintf(out, "%s %s %llu %llu\n", kTag, identity_md5_.c_str(),
               static_cast<unsigned long long>(state.cells_done),
               static_cast<unsigned long long>(state.sink_offset));
  std::fflush(out);
  ::fsync(::fileno(out));
  std::fclose(out);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("cannot commit checkpoint journal: " + path_);
  }
}

void CheckpointJournal::remove() const {
  ::unlink(path_.c_str());
  ::unlink((path_ + ".tmp").c_str());
}

}  // namespace manet::exp
