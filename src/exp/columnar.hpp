// Binary columnar result artifacts (.mcol) — the fabric's high-rate sink.
//
// The JSON sink renders every field with snprintf and repeats every key in
// every record; at millions of (point, trial) cells the sink becomes the
// sweep bottleneck and the artifact dwarfs the data in it. The columnar
// sink writes the SAME exp::Record stream as a compact, CRC-framed,
// little-endian binary that round-trips records exactly: reconstructing
// the records and rendering them with Record::to_json reproduces the JSON
// artifact byte for byte (tools/sweep_merge does exactly that).
//
// Layout (all integers little-endian, "varu" = LEB128, "str" = varu length
// + bytes, "vari" = zigzag LEB128):
//
//   file   := [u32 magic 'MCOL'] block*
//   block  := [u8 kind] [u32 payload_len] [u32 crc32(payload)] payload
//   kind 0 := header: u32 version(=1), u32 meta_count,
//             meta_count x (str key, str value)
//   kind 1 := schema: u32 schema_id, u32 field_count,
//             field_count x (str key, u8 type)       -- type = Value index
//   kind 2 := data:   u32 schema_id, u32 record_count,
//             record_count x varu cell_index,
//             then one column per schema field, record-count entries each:
//               double -> raw 8-byte IEEE754 (exact round-trip)
//               int64  -> vari        uint64 -> varu       bool -> u8
//               string -> varu dict_size, dict_size x str, varu ref x N
//
// A schema block is emitted the first time a record shape (ordered keys +
// types) appears; data blocks hold up to kBlockRecords records of one
// schema and close early on a schema change or an explicit flush().
// Because flush points are a pure function of the record stream and the
// checkpoint cadence, a killed-and-resumed shard reproduces the
// uninterrupted shard's bytes exactly.
//
// The header meta identifies the shard for the merge tool: the
// shard-independent sweep fingerprint, total cell count, and this file's
// owned [cell_begin, cell_end) range. Readers validate magic, version,
// every CRC, schema references, and that cell indices are non-decreasing
// and inside the declared range; any violation throws with the defect
// named.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/sink.hpp"

namespace manet::exp {

struct ColumnarMeta {
  /// Shard-independent fingerprint of the generating sweep (bench name +
  /// every content-affecting flag); merge refuses to mix files that
  /// disagree.
  std::string sweep;
  std::string bench;
  std::string shard = "0/1";  // "i/N", informational
  std::uint64_t total_cells = 0;
  std::uint64_t cell_begin = 0;
  std::uint64_t cell_end = 0;
  /// Free-form extra key/value pairs (not consulted by the merge tool).
  std::vector<std::pair<std::string, std::string>> extra;
};

class ColumnarFileSink final : public ResultSink {
 public:
  static constexpr std::size_t kBlockRecords = 512;

  /// Opens (truncates) `path` and writes the header block.
  ColumnarFileSink(std::string path, ColumnarMeta meta);

  /// Reopens an existing shard artifact at a durable byte offset (from
  /// the checkpoint journal): validates the header matches `meta`,
  /// replays the blocks before `resume_offset` to rebuild the schema
  /// table, truncates everything past the offset, and appends. Throws
  /// std::runtime_error when the file is missing, shorter than the
  /// offset, CRC-corrupt, or disagrees with `meta`.
  ColumnarFileSink(std::string path, ColumnarMeta meta,
                   std::uint64_t resume_offset);

  ~ColumnarFileSink() override;

  /// Stamps subsequent records with this cell index (the fabric driver
  /// calls it before emitting a cell's records).
  void begin_cell(std::uint64_t cell) { cell_ = cell; }

  void record(const Record& r) override;
  void flush() override;  // closes the open data block, fflushes

  /// flush() + fsync; returns the durable byte size (the offset the
  /// checkpoint journal records).
  std::uint64_t sync();

  const std::string& path() const { return path_; }
  const ColumnarMeta& meta() const { return meta_; }

 private:
  void write_header();
  void ensure_schema(const Record& r);
  void close_block();
  void write_block(std::uint8_t kind, const std::vector<std::uint8_t>& payload);

  std::string path_;
  ColumnarMeta meta_;
  std::FILE* file_ = nullptr;
  std::uint64_t cell_ = 0;

  // Registered schemas: signature -> id, in registration order.
  std::vector<std::pair<std::string, std::uint32_t>> schemas_;

  // The open data block, encoded column-wise as records arrive.
  struct StringColumn {
    std::vector<std::string> dict;       // insertion order
    std::vector<std::uint32_t> refs;
  };
  std::uint32_t block_schema_id_ = 0;
  std::vector<std::string> schema_keys_;   // current schema, field order
  std::vector<std::uint8_t> schema_types_;
  std::vector<std::uint64_t> cells_;
  std::vector<std::vector<std::uint8_t>> scalar_columns_;  // raw/varint/bool
  std::vector<StringColumn> string_columns_;               // parallel, by field
  std::size_t block_records_ = 0;
};

/// A fully validated .mcol file: its meta and every (cell, record) pair
/// in file order.
struct ColumnarFile {
  ColumnarMeta meta;
  std::vector<std::pair<std::uint64_t, Record>> records;
};

/// Reads and fully validates `path` (magic, version, CRC framing, schema
/// references, declared cell range, cell monotonicity). Throws
/// std::runtime_error naming the defect on any violation.
ColumnarFile read_columnar_file(const std::string& path);

}  // namespace manet::exp
