#include "exp/sink.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace manet::exp {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Record& Record::add(const std::string& key, double value) {
  char buf[64];
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; null keeps the record parseable.
    fields_.emplace_back(key, "null");
    return *this;
  }
  std::snprintf(buf, sizeof buf, "%.17g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

Record& Record::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

Record& Record::add(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

Record& Record::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

Record& Record::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
  return *this;
}

std::string Record::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

void MemorySink::record(const Record& r) {
  std::lock_guard lock(mutex_);
  records_.push_back(r);
}

std::vector<Record> MemorySink::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

JsonFileSink::JsonFileSink(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "w");
  if (!file_) {
    throw std::runtime_error("cannot open JSON sink file: " + path_);
  }
  std::fputs("[\n", file_);
}

JsonFileSink::~JsonFileSink() {
  std::lock_guard lock(mutex_);
  if (file_) {
    std::fputs("\n]\n", file_);
    std::fclose(file_);
  }
}

void JsonFileSink::record(const Record& r) {
  std::lock_guard lock(mutex_);
  if (!first_) std::fputs(",\n", file_);
  first_ = false;
  std::fputs(r.to_json().c_str(), file_);
}

void JsonFileSink::flush() {
  std::lock_guard lock(mutex_);
  if (file_) std::fflush(file_);
}

void MultiSink::add(std::shared_ptr<ResultSink> sink) {
  sinks_.push_back(std::move(sink));
}

void MultiSink::record(const Record& r) {
  for (auto& s : sinks_) s->record(r);
}

void MultiSink::flush() {
  for (auto& s : sinks_) s->flush();
}

}  // namespace manet::exp
