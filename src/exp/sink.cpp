#include "exp/sink.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace manet::exp {

namespace {

// Buffered JSON writes hit the stream at this size even when no record
// count trigger is configured, bounding sink memory on huge sweeps.
constexpr std::size_t kJsonBufferBytes = 64 * 1024;

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Record& Record::add(const std::string& key, double value) {
  fields_.push_back(Field{key, Value{value}});
  return *this;
}

Record& Record::add(const std::string& key, std::int64_t value) {
  fields_.push_back(Field{key, Value{value}});
  return *this;
}

Record& Record::add(const std::string& key, std::uint64_t value) {
  fields_.push_back(Field{key, Value{value}});
  return *this;
}

Record& Record::add(const std::string& key, bool value) {
  fields_.push_back(Field{key, Value{value}});
  return *this;
}

Record& Record::add(const std::string& key, const std::string& value) {
  fields_.push_back(Field{key, Value{value}});
  return *this;
}

Record& Record::add_field(Field field) {
  fields_.push_back(std::move(field));
  return *this;
}

std::string Record::render_value(const Value& value) {
  switch (value.index()) {
    case 0: {
      const double d = std::get<double>(value);
      if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      return buf;
    }
    case 1:
      return std::to_string(std::get<std::int64_t>(value));
    case 2:
      return std::to_string(std::get<std::uint64_t>(value));
    case 3:
      return std::get<bool>(value) ? "true" : "false";
    default:
      return "\"" + json_escape(std::get<std::string>(value)) + "\"";
  }
}

std::string Record::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(fields_[i].key) + "\": " +
           render_value(fields_[i].value);
  }
  out += "}";
  return out;
}

void MemorySink::record(const Record& r) {
  std::lock_guard lock(mutex_);
  records_.push_back(r);
}

std::vector<Record> MemorySink::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

JsonFileSink::JsonFileSink(std::string path, std::size_t flush_records)
    : path_(std::move(path)), flush_records_(flush_records) {
  file_ = std::fopen(path_.c_str(), "w");
  if (!file_) {
    throw std::runtime_error("cannot open JSON sink file: " + path_);
  }
  buffer_ = "[\n";
}

JsonFileSink::~JsonFileSink() {
  std::lock_guard lock(mutex_);
  if (file_) {
    buffer_ += "\n]\n";
    write_buffer_locked();
    std::fclose(file_);
  }
}

void JsonFileSink::record(const Record& r) {
  std::lock_guard lock(mutex_);
  if (!first_) buffer_ += ",\n";
  first_ = false;
  buffer_ += r.to_json();
  ++buffered_records_;
  if (buffer_.size() >= kJsonBufferBytes ||
      (flush_records_ != 0 && buffered_records_ >= flush_records_)) {
    write_buffer_locked();
    if (flush_records_ != 0) std::fflush(file_);
  }
}

void JsonFileSink::flush() {
  std::lock_guard lock(mutex_);
  if (file_) {
    write_buffer_locked();
    std::fflush(file_);
  }
}

void JsonFileSink::write_buffer_locked() {
  if (!buffer_.empty()) {
    std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
  buffered_records_ = 0;
}

void MultiSink::add(std::shared_ptr<ResultSink> sink) {
  sinks_.push_back(std::move(sink));
}

void MultiSink::record(const Record& r) {
  for (auto& s : sinks_) s->record(r);
}

void MultiSink::flush() {
  for (auto& s : sinks_) s->flush();
}

}  // namespace manet::exp
