// Per-shard checkpoint journal: crash-safe progress for sharded sweeps.
//
// The fabric driver advances a shard in chunks of cells. After each chunk
// it (1) flushes + fsyncs the result sink, then (2) commits the journal —
// a single line
//
//   MJRN1 <md5(sweep fingerprint + shard)> <cells_done> <sink_offset>\n
//
// written to a temp file, fsync'd, and atomically renamed over the
// journal path. Ordering the sink sync BEFORE the journal commit keeps
// the invariant that the journal never claims more progress than the
// sink durably holds: a crash between the two steps only loses the
// journal update, and resume re-runs the last chunk from the previous
// durable state. On resume the driver truncates the sink to
// `sink_offset` (discarding any partially-written tail) and continues at
// cell `cells_done`, which — with the deterministic flush cadence of the
// columnar sink — reproduces the uninterrupted artifact byte for byte.
//
// The fingerprint field pins a journal to one (sweep, shard) identity so
// a stale journal from a different sweep or shard is rejected instead of
// silently corrupting a run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace manet::exp {

class CheckpointJournal {
 public:
  struct State {
    std::uint64_t cells_done = 0;   // cells durably sunk, from shard begin
    std::uint64_t sink_offset = 0;  // durable byte size of the sink file
  };

  /// `identity` is any string pinning this journal to one (sweep, shard)
  /// pair; it is md5-hashed into the journal line.
  CheckpointJournal(std::string path, const std::string& identity);

  /// Reads the journal if it exists. Returns nullopt when absent.
  /// Throws std::runtime_error when present but malformed or written by
  /// a different (sweep, shard) identity.
  std::optional<State> load() const;

  /// Durably commits `state`: temp file + fsync + atomic rename.
  void commit(const State& state) const;

  /// Deletes the journal (called after a shard completes).
  void remove() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string identity_md5_;
};

}  // namespace manet::exp
