#include "exp/thread_pool.hpp"

#include <utility>

namespace manet::exp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // exceptions are the submitter's contract (Engine catches them)
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace manet::exp
