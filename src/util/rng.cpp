#include "util/rng.hpp"

namespace manet::util {

std::uint64_t Xoshiro256ss::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of n representable in 64 bits.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Xoshiro256ss::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Xoshiro256ss::exponential(double rate) {
  // Avoid log(0): uniform() is in [0,1), so 1-u is in (0,1].
  return -std::log(1.0 - uniform()) / rate;
}

}  // namespace manet::util
