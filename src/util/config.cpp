#include "util/config.hpp"

#include <sstream>

namespace manet::util {

void Config::declare(const std::string& key, const std::string& default_value,
                     const std::string& description) {
  auto [it, inserted] = entries_.emplace(key, Entry{default_value, description});
  if (inserted) {
    order_.push_back(key);
  } else {
    it->second = Entry{default_value, description};
  }
}

void Config::set(const std::string& key, const std::string& value) {
  auto it = entries_.find(key);
  if (it == entries_.end()) throw ConfigError("unknown config key: " + key);
  it->second.value = value;
}

bool Config::has(const std::string& key) const { return entries_.count(key) != 0; }

const std::string& Config::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) throw ConfigError("unknown config key: " + key);
  return it->second.value;
}

double Config::get_double(const std::string& key) const {
  const std::string& v = get(key);
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw ConfigError("trailing characters in double for " + key);
    return d;
  } catch (const std::invalid_argument&) {
    throw ConfigError("not a double: " + key + "=" + v);
  }
}

long long Config::get_int(const std::string& key) const {
  const std::string& v = get(key);
  try {
    std::size_t pos = 0;
    const long long i = std::stoll(v, &pos);
    if (pos != v.size()) throw ConfigError("trailing characters in int for " + key);
    return i;
  } catch (const std::invalid_argument&) {
    throw ConfigError("not an int: " + key + "=" + v);
  }
}

bool Config::get_bool(const std::string& key) const {
  const std::string& v = get(key);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ConfigError("not a bool: " + key + "=" + v);
}

const std::string& Config::description(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) throw ConfigError("unknown config key: " + key);
  return it->second.description;
}

std::string Config::render() const {
  std::ostringstream out;
  for (const auto& key : order_) {
    const Entry& e = entries_.at(key);
    out << key << " = " << e.value;
    if (!e.description.empty()) out << "  # " << e.description;
    out << "\n";
  }
  return out.str();
}

}  // namespace manet::util
