#include "util/crc32.hpp"

#include <array>
#include <cstring>

namespace manet::util {

namespace {

// Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration with independent table lookups instead of a per-byte
// dependency chain. Bit-identical to the classic one-byte-at-a-time loop.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables make_crc_tables() {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t k = 1; k < 8; ++k) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const CrcTables t = make_crc_tables();
  std::uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    // Host order is little-endian on every supported target (the binary
    // formats in this repo already rely on that for raw f64 columns).
    std::uint32_t one;
    std::uint32_t two;
    std::memcpy(&one, data, 4);
    std::memcpy(&two, data + 4, 4);
    one ^= crc;
    crc = t[7][one & 0xFFu] ^ t[6][(one >> 8) & 0xFFu] ^
          t[5][(one >> 16) & 0xFFu] ^ t[4][one >> 24] ^ t[3][two & 0xFFu] ^
          t[2][(two >> 8) & 0xFFu] ^ t[1][(two >> 16) & 0xFFu] ^
          t[0][two >> 24];
    data += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    crc = t[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace manet::util
