// A small typed key/value configuration store.
//
// Benches and examples accept overrides on the command line
// (--key=value); ScenarioConfig (src/net) consumes them. The store keeps
// declared keys with defaults so `--help` can print the full table —
// this is also how bench/table1_parameters reproduces the paper's Table 1.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace manet::util {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  /// Declares a key with a default value and a human-readable description.
  void declare(const std::string& key, const std::string& default_value,
               const std::string& description);

  /// Sets a value; the key must have been declared.
  void set(const std::string& key, const std::string& value);

  /// True if the key was declared.
  bool has(const std::string& key) const;

  /// Raw string value (throws ConfigError for undeclared keys).
  const std::string& get(const std::string& key) const;

  double get_double(const std::string& key) const;
  long long get_int(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// All declared keys in declaration order.
  const std::vector<std::string>& keys() const { return order_; }

  const std::string& description(const std::string& key) const;

  /// Formats "key = value  # description" lines for every declared key.
  std::string render() const;

 private:
  struct Entry {
    std::string value;
    std::string description;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace manet::util
