// Half-open time-interval set with union/intersection/complement —
// the bookkeeping behind the monitor's observation-window accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace manet::util {

struct Interval {
  SimTime lo = 0;
  SimTime hi = 0;  // exclusive
  SimDuration length() const { return hi - lo; }
  bool operator==(const Interval&) const = default;
};

/// A set of half-open intervals, kept normalized (sorted, disjoint,
/// non-empty) lazily on query.
class IntervalSet {
 public:
  /// Adds [lo, hi); empty or inverted input is ignored.
  void add(SimTime lo, SimTime hi);

  /// Removes every interval but keeps the buffer's capacity, so one set can
  /// be reused across the monitor's per-window accounting without
  /// reallocating.
  void clear();

  bool empty() const;

  /// Sum of lengths of the (unioned) intervals.
  SimDuration total_length() const;

  /// Normalized intervals.
  const std::vector<Interval>& intervals() const;

  /// Restricts the set to [lo, hi).
  IntervalSet clamped(SimTime lo, SimTime hi) const;

  /// Restricts the set to [lo, hi) in place (no allocation).
  void clamp_to(SimTime lo, SimTime hi);

  /// Length of the intersection with `other`.
  SimDuration intersection_length(const IntervalSet& other) const;

  /// The gaps of this set within [lo, hi): maximal sub-intervals not
  /// covered by the set.
  std::vector<Interval> complement_within(SimTime lo, SimTime hi) const;

  /// complement_within into a caller-provided buffer (cleared first), so
  /// repeated window accounting reuses one allocation.
  void complement_within(SimTime lo, SimTime hi, std::vector<Interval>& out) const;

  /// Set union (mutating).
  void merge(const IntervalSet& other);

 private:
  void normalize() const;

  mutable std::vector<Interval> items_;
  mutable bool normalized_ = true;
};

}  // namespace manet::util
