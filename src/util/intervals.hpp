// Half-open time-interval set with union/intersection/complement —
// the bookkeeping behind the monitor's observation-window accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace manet::util {

struct Interval {
  SimTime lo = 0;
  SimTime hi = 0;  // exclusive
  SimDuration length() const { return hi - lo; }
  bool operator==(const Interval&) const = default;
};

/// A set of half-open intervals, kept normalized (sorted, disjoint,
/// non-empty) lazily on query.
class IntervalSet {
 public:
  /// Adds [lo, hi); empty or inverted input is ignored.
  void add(SimTime lo, SimTime hi);

  bool empty() const;

  /// Sum of lengths of the (unioned) intervals.
  SimDuration total_length() const;

  /// Normalized intervals.
  const std::vector<Interval>& intervals() const;

  /// Restricts the set to [lo, hi).
  IntervalSet clamped(SimTime lo, SimTime hi) const;

  /// Length of the intersection with `other`.
  SimDuration intersection_length(const IntervalSet& other) const;

  /// The gaps of this set within [lo, hi): maximal sub-intervals not
  /// covered by the set.
  std::vector<Interval> complement_within(SimTime lo, SimTime hi) const;

  /// Set union (mutating).
  void merge(const IntervalSet& other);

 private:
  void normalize() const;

  mutable std::vector<Interval> items_;
  mutable bool normalized_ = true;
};

}  // namespace manet::util
