// Streaming summary statistics and related helpers.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace manet::util {

/// Welford streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean. Zero for fewer than two samples.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Estimator for a Bernoulli proportion with its Wilson 95% interval —
/// used for detection / false-alarm probabilities in the benches.
class ProportionEstimator {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  std::size_t trials() const { return trials_; }
  std::size_t successes() const { return successes_; }
  double proportion() const {
    return trials_ ? static_cast<double>(successes_) / static_cast<double>(trials_) : 0.0;
  }

  /// Wilson score interval bounds at 95% confidence.
  double wilson_lower() const;
  double wilson_upper() const;

 private:
  double wilson_center() const;
  double wilson_halfwidth() const;

  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

/// Sample mean of a span (0 for empty).
double mean_of(std::span<const double> xs);

/// Unbiased sample variance of a span (0 for size < 2).
double variance_of(std::span<const double> xs);

/// Pearson correlation of two equally sized spans (0 if degenerate).
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Midranks of a sample: ties receive the average of the ranks they span.
/// Ranks are 1-based, matching statistical convention.
std::vector<double> midranks(std::span<const double> values);

/// Allocation-free midranks: writes the ranks into `ranks` (resized to
/// values.size()) using `order` as index scratch, and returns the tie
/// correction term sum(t^3 - t) over the tie groups — computed in the same
/// single pass that assigns the ranks, so Wilcoxon's normal-approximation
/// path needs no second sort over the combined sample. Buffers keep their
/// capacity across calls.
double midranks_into(std::span<const double> values, std::vector<double>& ranks,
                     std::vector<std::size_t>& order);

/// Standard normal CDF.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-8 over (0,1)).
double normal_quantile(double p);

}  // namespace manet::util
