// Command-line parsing: --key=value pairs feeding a Config.
#pragma once

#include <string>
#include <vector>

#include "util/config.hpp"

namespace manet::util {

struct ParsedFlags {
  bool help = false;
  /// Arguments that were not --key=value flags, in order.
  std::vector<std::string> positional;
};

/// Applies --key=value arguments to `config`. "--help"/"-h" sets help.
/// Throws ConfigError on undeclared keys or malformed flags.
ParsedFlags parse_flags(int argc, const char* const* argv, Config& config);

}  // namespace manet::util
