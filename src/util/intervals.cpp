#include "util/intervals.hpp"

#include <algorithm>

namespace manet::util {

void IntervalSet::add(SimTime lo, SimTime hi) {
  if (hi <= lo) return;
  items_.push_back(Interval{lo, hi});
  normalized_ = false;
}

void IntervalSet::clear() {
  items_.clear();
  normalized_ = true;
}

void IntervalSet::normalize() const {
  if (normalized_) return;
  std::sort(items_.begin(), items_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const Interval& iv : items_) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  items_ = std::move(merged);
  normalized_ = true;
}

bool IntervalSet::empty() const {
  normalize();
  return items_.empty();
}

SimDuration IntervalSet::total_length() const {
  normalize();
  SimDuration total = 0;
  for (const Interval& iv : items_) total += iv.length();
  return total;
}

const std::vector<Interval>& IntervalSet::intervals() const {
  normalize();
  return items_;
}

IntervalSet IntervalSet::clamped(SimTime lo, SimTime hi) const {
  normalize();
  IntervalSet out;
  for (const Interval& iv : items_) {
    out.add(std::max(iv.lo, lo), std::min(iv.hi, hi));
  }
  return out;
}

void IntervalSet::clamp_to(SimTime lo, SimTime hi) {
  normalize();
  // Clipping a normalized set keeps it sorted and disjoint; only emptied
  // intervals need removing.
  std::size_t out = 0;
  for (const Interval& iv : items_) {
    const SimTime a = std::max(iv.lo, lo);
    const SimTime b = std::min(iv.hi, hi);
    if (b > a) items_[out++] = Interval{a, b};
  }
  items_.resize(out);
}

SimDuration IntervalSet::intersection_length(const IntervalSet& other) const {
  normalize();
  other.normalize();
  SimDuration total = 0;
  std::size_t i = 0, j = 0;
  while (i < items_.size() && j < other.items_.size()) {
    const Interval& a = items_[i];
    const Interval& b = other.items_[j];
    const SimTime lo = std::max(a.lo, b.lo);
    const SimTime hi = std::min(a.hi, b.hi);
    if (hi > lo) total += hi - lo;
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::vector<Interval> IntervalSet::complement_within(SimTime lo, SimTime hi) const {
  std::vector<Interval> gaps;
  complement_within(lo, hi, gaps);
  return gaps;
}

void IntervalSet::complement_within(SimTime lo, SimTime hi,
                                    std::vector<Interval>& out) const {
  normalize();
  out.clear();
  SimTime cursor = lo;
  for (const Interval& iv : items_) {
    if (iv.hi <= lo) continue;
    if (iv.lo >= hi) break;
    const SimTime start = std::max(iv.lo, lo);
    if (start > cursor) out.push_back(Interval{cursor, start});
    cursor = std::max(cursor, std::min(iv.hi, hi));
  }
  if (cursor < hi) out.push_back(Interval{cursor, hi});
}

void IntervalSet::merge(const IntervalSet& other) {
  other.normalize();
  for (const Interval& iv : other.items_) add(iv.lo, iv.hi);
}

}  // namespace manet::util
