#include "util/flags.hpp"

namespace manet::util {

ParsedFlags parse_flags(int argc, const char* const* argv, Config& config) {
  ParsedFlags out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out.help = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        throw ConfigError("expected --key=value, got: " + arg);
      }
      config.set(arg.substr(2, eq - 2), arg.substr(eq + 1));
      continue;
    }
    out.positional.push_back(arg);
  }
  return out;
}

}  // namespace manet::util
