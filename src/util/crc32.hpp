// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320, table-driven).
//
// One shared checksum for every CRC-framed binary format in the repo: the
// .mtrace observation traces (detect/trace.hpp) and the .mcol columnar
// result artifacts (exp/columnar.hpp). Both formats frame each block as
// [length][crc32(payload)][payload] so truncation and corruption are
// detected eagerly at read time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace manet::util {

/// CRC-32 of `data`; crc32(nullptr, 0) == 0.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

}  // namespace manet::util
