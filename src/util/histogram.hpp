// Fixed-bin histogram for distribution diagnostics in tests and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace manet::util {

class Histogram {
 public:
  /// Creates a histogram over [lo, hi) with `bins` equal-width bins.
  /// Out-of-range samples are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Fraction of in-range samples in bin i (0 if empty).
  double bin_fraction(std::size_t i) const;

  /// Chi-square statistic against a uniform in-range expectation.
  double chi_square_uniform() const;

  /// Multi-line ASCII rendering (for example programs).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace manet::util
