#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace manet::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::bin_fraction(std::size_t i) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(in_range);
}

double Histogram::chi_square_uniform() const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  const double expected = static_cast<double>(in_range) / static_cast<double>(counts_.size());
  double chi2 = 0.0;
  for (std::size_t c : counts_) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const std::size_t max_count = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[i] * width / max_count;
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace manet::util
