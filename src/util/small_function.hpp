// Move-only callable wrapper with inline (small-buffer) storage.
//
// std::function heap-allocates almost every capturing lambda the simulator
// schedules (libstdc++ gives it 16 bytes of inline space); at millions of
// events per simulated second that allocation — plus the matching free at
// dispatch — dominates the event-kernel profile. SmallFunction stores
// callables up to `Capacity` bytes in place and falls back to the heap only
// for oversized ones, and being move-only it also accepts non-copyable
// captures (unique_ptr and friends), which std::function rejects.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace manet::util {

template <class Signature, std::size_t Capacity = 48>
class SmallFunction;

template <class R, class... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vtable_ = &inline_vtable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vtable_ = &heap_vtable<D>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { steal(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(buf_, std::forward<Args>(args)...);
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to);  // move-construct into `to`, destroy `from`
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static constexpr VTable inline_vtable = {
      [](void* p, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(p)))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        D* f = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <class D>
  static constexpr VTable heap_vtable = {
      [](void* p, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(p)))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        D** f = std::launder(reinterpret_cast<D**>(from));
        ::new (to) D*(*f);
        *f = nullptr;
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  void steal(SmallFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.buf_, buf_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace manet::util
