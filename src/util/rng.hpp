// Random number generation.
//
// Three generators with distinct roles:
//  * SplitMix64     — seeding / hashing primitive.
//  * Xoshiro256ss   — general-purpose simulation randomness (fast, high
//                     quality, 2^256 period). Every stochastic component
//                     (traffic, mobility, shadowing, ...) gets its own
//                     stream so that changing one component's draw count
//                     does not perturb the others.
//  * CounterRng     — the *verifiable* pseudo-random sequence (PRS) of the
//                     paper: a counter-based generator where value(i) is a
//                     pure function of (seed, i). A monitor that knows a
//                     neighbor's seed (its MAC address) and an announced
//                     sequence offset can compute the dictated back-off in
//                     O(1) without replaying generator state.
#pragma once

#include <cstdint>
#include <cmath>

namespace manet::util {

/// SplitMix64 step: returns the output for state `x` after advancing it.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single 64-bit value (used for hashing ids into seeds).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna. Public-domain algorithm, re-implemented.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0xC0FFEE123456789ULL) {
    // Seed the four words via SplitMix64 as recommended by the authors.
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal deviate (polar Box–Muller, cached second value).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential deviate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Counter-based verifiable generator: value(i) = mix(seed, i).
///
/// This realizes the paper's dictated pseudo-random sequence (PRS). All
/// nodes agree on the construction; the seed is the owner's MAC address, so
/// every neighbor can reproduce any element of the sequence on demand.
class CounterRng {
 public:
  constexpr explicit CounterRng(std::uint64_t seed) : seed_(mix64(seed)) {}

  /// The i-th 64-bit value of the sequence. Pure function of (seed, i).
  constexpr std::uint64_t value_at(std::uint64_t index) const {
    std::uint64_t s = seed_ ^ (0x9E3779B97F4A7C15ULL * (index + 1));
    return splitmix64(s);
  }

  /// The i-th value reduced to [0, n). n must be > 0. The tiny modulo bias
  /// (n <= 1024 in DCF) is acceptable and — critically — deterministic, so
  /// monitor and sender always agree.
  constexpr std::uint32_t uniform_at(std::uint64_t index, std::uint32_t n) const {
    return static_cast<std::uint32_t>(value_at(index) % n);
  }

  constexpr std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace manet::util
