// Minimal leveled logging for the simulator.
//
// Logging is global and off by default above WARN so hot paths stay cheap;
// a disabled level costs one branch. Messages are formatted only when the
// level is enabled.
#pragma once

#include <sstream>
#include <string>

namespace manet::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the current global log level.
LogLevel log_level();

/// Sets the global log level.
void set_log_level(LogLevel level);

/// True if `level` would be emitted.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// Emits a single log line (appends '\n'); used by the LOG macro.
void log_emit(LogLevel level, const std::string& message);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kWarn on
/// unknown input.
LogLevel parse_log_level(const std::string& name);

}  // namespace manet::util

// Usage: MANET_LOG(kDebug) << "node " << id << " started backoff " << slots;
#define MANET_LOG(level_enum)                                            \
  if (!::manet::util::log_enabled(::manet::util::LogLevel::level_enum)) \
    ;                                                                    \
  else                                                                   \
    ::manet::util::LogLine(::manet::util::LogLevel::level_enum).stream()

namespace manet::util {

/// RAII helper that buffers one log line and emits it at end of statement.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace manet::util
