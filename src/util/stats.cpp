#include "util/stats.hpp"

#include <algorithm>
#include <numeric>

namespace manet::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.959963985 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
constexpr double kZ95 = 1.959963985;
}

double ProportionEstimator::wilson_center() const {
  const double n = static_cast<double>(trials_);
  const double p = proportion();
  return (p + kZ95 * kZ95 / (2 * n)) / (1 + kZ95 * kZ95 / n);
}

double ProportionEstimator::wilson_halfwidth() const {
  const double n = static_cast<double>(trials_);
  const double p = proportion();
  const double z2 = kZ95 * kZ95;
  return (kZ95 / (1 + z2 / n)) * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n));
}

double ProportionEstimator::wilson_lower() const {
  if (trials_ == 0) return 0.0;
  return std::max(0.0, wilson_center() - wilson_halfwidth());
}

double ProportionEstimator::wilson_upper() const {
  if (trials_ == 0) return 1.0;
  return std::min(1.0, wilson_center() + wilson_halfwidth());
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> midranks(std::span<const double> values) {
  std::vector<double> ranks;
  std::vector<std::size_t> order;
  midranks_into(values, ranks, order);
  return ranks;
}

double midranks_into(std::span<const double> values, std::vector<double>& ranks,
                     std::vector<std::size_t>& order) {
  const std::size_t n = values.size();
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  ranks.assign(n, 0.0);
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) are tied; assign the average 1-based rank.
    const double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    // Tie groups surface in ascending-value order, exactly as a sorted scan
    // over the values would find them, so the accumulated correction term is
    // bit-identical to the one the pre-optimization Wilcoxon computed.
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  return tie_term;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  // Peter Acklam's algorithm.
  if (p <= 0.0) return -1e308;
  if (p >= 1.0) return 1e308;
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace manet::util
