// Fundamental scalar types shared across the library.
//
// Simulation time is an integer nanosecond count. Integer time makes event
// ordering exact and reproducible across platforms; all protocol constants
// (slot times, IFS durations, frame airtimes) are exact multiples of 1 us,
// so nanoseconds give ample headroom for derived quantities.
#pragma once

#include <cstdint>
#include <limits>

namespace manet {

/// Simulation time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// Duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Converts a floating-point second count to SimTime (rounding to nearest ns).
constexpr SimTime seconds_to_time(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

/// Converts SimTime to floating-point seconds (for reporting only).
constexpr double time_to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// A node identifier. Doubles as the IEEE MAC address in this library:
/// the paper seeds each node's verifiable back-off PRNG with its MAC
/// address, and a 64-bit id is a faithful stand-in for the 48-bit address.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// The broadcast MAC address: frames to it are delivered to every decoder
/// and are sent without RTS/CTS or ACK (802.11 group-addressed rules).
inline constexpr NodeId kBroadcastNode = static_cast<NodeId>(-2);

}  // namespace manet
