// MAC frame representation, including the paper's modified RTS fields.
//
// The modified RTS (paper Fig. 2) carries, beyond the standard fields:
//   * SeqOff#  — 13-bit offset into the sender's dictated pseudo-random
//                back-off sequence (commits the sender to the PRS),
//   * Attempt# — 3-bit retransmission attempt number (1 after a success,
//                incremented per failed attempt),
//   * MD       — MD5 digest of the DATA frame the RTS reserves the medium
//                for (lets monitors verify Attempt# honesty).
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/md5.hpp"
#include "mac/params.hpp"
#include "phy/signal.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::mac {

enum class FrameType : std::uint8_t { kRts, kCts, kData, kAck };

const char* frame_type_name(FrameType t);

/// Network-layer content of a DATA frame (the MAC carries it unchanged).
enum class L3Type : std::uint8_t { kRaw, kAodvRreq, kAodvRrep, kAodvRerr };

/// AODV control fields (subset of RFC 3561 sufficient for route discovery,
/// reply, and error propagation).
struct AodvInfo {
  std::uint32_t rreq_id = 0;
  std::uint32_t origin_seq = 0;
  std::uint32_t dest_seq = 0;
  std::uint32_t hop_count = 0;
};

struct Frame : phy::Payload {
  FrameType type = FrameType::kData;
  NodeId transmitter = kInvalidNode;  // TA
  NodeId receiver = kInvalidNode;     // RA

  /// NAV value: time the medium is reserved beyond the end of this frame.
  SimDuration duration = 0;

  // --- DATA fields ---
  std::uint32_t payload_bytes = 0;
  std::uint64_t payload_id = 0;   // identifies the payload contents

  // --- Network-layer header (multi-hop routing) ---
  L3Type l3 = L3Type::kRaw;
  NodeId net_source = kInvalidNode;       // originator of the L3 packet
  NodeId net_destination = kInvalidNode;  // final destination
  AodvInfo aodv;

  // --- Modified-RTS fields (paper Fig. 2) ---
  std::uint32_t seq_off = 0;      // 13-bit on the wire
  std::uint8_t attempt = 0;       // 3-bit on the wire, 1-based
  crypto::Md5Digest data_digest{};
};

using FramePtr = std::shared_ptr<const Frame>;

/// Digest of a DATA payload. Real hardware hashes the frame body; the
/// simulator synthesizes the body deterministically from its identity, so
/// equal (source, payload_id, size) means equal contents — exactly the
/// property the monitor's retransmission check relies on.
crypto::Md5Digest payload_digest(NodeId source, std::uint64_t payload_id,
                                 std::uint32_t payload_bytes);

/// Airtime of `frame` under `params`.
SimDuration frame_airtime(const Frame& frame, const DcfParams& params);

/// Builds the four frame types of an RTS/CTS/DATA/ACK exchange with
/// standard NAV chaining.
Frame make_rts(NodeId from, NodeId to, const Frame& data, std::uint32_t seq_off,
               std::uint8_t attempt, const DcfParams& params);
Frame make_cts(NodeId from, const Frame& rts, const DcfParams& params);
Frame make_data(NodeId from, NodeId to, std::uint32_t payload_bytes,
                std::uint64_t payload_id, const DcfParams& params);
Frame make_ack(NodeId from, const Frame& data);

/// Fault-injection corruptor (phy::FaultInjector::PayloadCorruptor): returns
/// a copy of an RTS payload with mangled verifiable fields (SeqOff#,
/// Attempt#, one digest byte). Non-RTS payloads are returned unchanged —
/// their verifiable content is the digest match, which the RTS already
/// covers. The result is always delivered with Signal::corrupted set, so
/// receivers drop it at the FCS and the mangled fields are never parsed.
phy::PayloadPtr corrupt_rts_fields(const phy::PayloadPtr& original,
                                   util::Xoshiro256ss& rng);

}  // namespace manet::mac
