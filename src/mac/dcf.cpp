#include "mac/dcf.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace manet::mac {

DcfMac::DcfMac(sim::Simulator& simulator, phy::Radio& radio, const DcfParams& params)
    : sim_(simulator),
      radio_(radio),
      params_(params),
      prs_(radio.id(), params_),
      backoff_policy_(std::make_unique<HonestBackoff>()),
      announce_policy_(std::make_unique<HonestAnnounce>()) {
  radio_.add_listener(this);
}

void DcfMac::set_backoff_policy(std::unique_ptr<BackoffPolicy> policy) {
  assert(policy);
  backoff_policy_ = std::move(policy);
}

void DcfMac::set_announce_policy(std::unique_ptr<AnnouncePolicy> policy) {
  assert(policy);
  announce_policy_ = std::move(policy);
}

void DcfMac::add_identity_alias(NodeId alias) {
  assert(alias != id() && alias != kBroadcastNode && alias != kInvalidNode);
  identity_aliases_.push_back(alias);
}

bool DcfMac::enqueue(NodeId dest, std::uint32_t payload_bytes,
                     std::uint64_t payload_id) {
  return enqueue_frame(make_data(id(), dest, payload_bytes, payload_id, params_));
}

bool DcfMac::enqueue_frame(Frame data) {
  assert(data.type == FrameType::kData);
  if (queue_.size() >= params_.queue_capacity) {
    ++stats_.queue_drops;
    return false;
  }
  ++stats_.enqueued;
  data.transmitter = id();
  queue_.push_back(std::move(data));
  if (phase_ == SenderPhase::kIdle) start_service();
  return true;
}

void DcfMac::start_service() {
  assert(phase_ == SenderPhase::kIdle);
  if (queue_.empty()) return;
  current_ = std::make_unique<Frame>(queue_.front());
  queue_.pop_front();
  attempt_ = 1;
  phase_ = SenderPhase::kContending;
  prepare_backoff();
}

void DcfMac::prepare_backoff() {
  assert(phase_ == SenderPhase::kContending);
  BackoffContext ctx;
  ctx.seq_index = seq_index_;
  ctx.attempt = attempt_;
  ctx.cw = params_.cw_for_attempt(attempt_);
  ctx.dictated_slots = prs_.dictated_slots(seq_index_, attempt_);
  ctx.raw_prs_value = prs_.raw_value(seq_index_);
  ctx.now = sim_.now();
  remaining_slots_ = backoff_policy_->used_slots(ctx);
  backoff_pending_ = true;
  counting_ = false;
  ++stats_.backoffs_started;
  stats_.backoff_slots_total += remaining_slots_;
  reevaluate();
}

bool DcfMac::medium_idle() const {
  const SimTime now = sim_.now();
  return !radio_.carrier_busy() && now >= nav_until_ && now >= eifs_until_;
}

void DcfMac::schedule_wake(SimTime at) {
  const SimTime now = sim_.now();
  if (at <= now) return;
  if (wake_event_ != sim::kInvalidEvent && sim_.pending(wake_event_) && wake_at_ <= at) {
    return;  // an earlier (or equal) wake is already armed
  }
  if (wake_event_ != sim::kInvalidEvent) sim_.cancel(wake_event_);
  wake_at_ = at;
  wake_event_ = sim_.at(at, [this] {
    wake_event_ = sim::kInvalidEvent;
    wake_at_ = kTimeNever;
    reevaluate();
  });
}

void DcfMac::reevaluate() {
  const SimTime now = sim_.now();
  const bool idle = medium_idle();

  if (counting_ && !idle) {
    freeze_countdown();
  } else if (!counting_ && idle && backoff_pending_ && !radio_.transmitting()) {
    counting_ = true;
    count_start_ = now;
    assert(finish_event_ == sim::kInvalidEvent || !sim_.pending(finish_event_));
    finish_event_ = sim_.at(
        now + params_.difs +
            static_cast<SimDuration>(remaining_slots_) * params_.slot_time,
        [this] {
          finish_event_ = sim::kInvalidEvent;
          backoff_complete();
        });
  }

  // If the medium is only virtually busy (NAV/EIFS) arrange to come back.
  if (!idle && !radio_.carrier_busy()) {
    const SimTime until = std::max(nav_until_, eifs_until_);
    if (until > now) schedule_wake(until);
  }
}

void DcfMac::freeze_countdown() {
  assert(counting_);
  counting_ = false;
  sim_.cancel(finish_event_);
  finish_event_ = sim::kInvalidEvent;

  const SimDuration elapsed = sim_.now() - count_start_;
  if (elapsed <= params_.difs) return;  // interrupted during DIFS: no decrement
  const auto slots_done = static_cast<std::uint64_t>(
      (elapsed - params_.difs) / params_.slot_time);
  if (slots_done >= remaining_slots_) {
    // The counter reached zero at the same instant the medium turned busy:
    // per the standard the station transmits (and collides).
    remaining_slots_ = 0;
    backoff_complete();
    return;
  }
  remaining_slots_ -= static_cast<std::uint32_t>(slots_done);
}

void DcfMac::backoff_complete() {
  assert(phase_ == SenderPhase::kContending);
  assert(current_);
  if (radio_.transmitting()) {
    // The shared radio is mid-transmission (an attached RtsFlooder bursts
    // outside our control). Keep the countdown pending; it completes once
    // the carrier drops and the post-busy DIFS elapses.
    counting_ = false;
    backoff_pending_ = true;
    remaining_slots_ = 0;
    reevaluate();
    return;
  }
  counting_ = false;
  backoff_pending_ = false;

  if (current_->receiver == kBroadcastNode) {
    // Group-addressed: transmit the DATA directly, no RTS/CTS, no ACK.
    // (The back-off was still drawn from the PRS; broadcasts do not
    // announce offsets, so the sequence index is not consumed.)
    phase_ = SenderPhase::kTxData;
    ++stats_.data_sent;
    ++stats_.broadcasts_sent;
    transmit_frame(*current_, OwnTxKind::kData);
    return;
  }

  AnnounceContext actx{seq_index_, attempt_};
  const AnnouncedFields fields = announce_policy_->announced(actx);
  ++seq_index_;  // the index is consumed whether or not it was announced honestly

  // A sybil announce policy substitutes a claimed identity: the DATA frame
  // (and thus the RTS digest), the RTS transmitter, and later the CTS/ACK
  // addresses all carry the alias, so the exchange is self-consistent from
  // any monitor's viewpoint.
  if (fields.claimed != kInvalidNode) current_->transmitter = fields.claimed;
  Frame rts = make_rts(current_->transmitter, current_->receiver, *current_,
                       static_cast<std::uint32_t>(fields.seq_off),
                       static_cast<std::uint8_t>(fields.attempt), params_);
  phase_ = SenderPhase::kTxRts;
  ++stats_.rts_sent;
  transmit_frame(rts, OwnTxKind::kRts);
}

void DcfMac::transmit_frame(const Frame& frame, OwnTxKind kind) {
  transmit_payload(std::make_shared<const Frame>(frame), kind);
}

void DcfMac::transmit_payload(FramePtr frame, OwnTxKind kind) {
  const SimDuration airtime = frame_airtime(*frame, params_);
  const SimTime start = sim_.now();
  const std::uint64_t signal_id = radio_.transmit(frame, airtime);
  assert(!own_tx_active_);
  own_tx_id_ = signal_id;
  own_tx_kind_ = kind;
  own_tx_active_ = true;
  // Observers (monitors) also see this node's own frames, with air times —
  // a monitor that is the tagged node's receiver brackets the tagged node's
  // back-off window with its own CTS/ACK transmissions. Capturing the
  // shared payload (not a Frame copy) keeps the closure inside the event
  // queue's inline buffer.
  if (!observers_.empty()) {
    sim_.at(start + airtime, [this, frame = std::move(frame), start] {
      for (auto* obs : observers_) obs->on_frame(*frame, start, sim_.now());
    });
  }
}

void DcfMac::schedule_response(const Frame& response, OwnTxKind kind) {
  sim_.after(params_.sifs,
             [this, frame = std::make_shared<const Frame>(response), kind]() mutable {
    if (radio_.transmitting()) return;  // should not happen; drop response
    switch (kind) {
      case OwnTxKind::kCts: ++stats_.cts_sent; break;
      case OwnTxKind::kAck: ++stats_.ack_sent; break;
      case OwnTxKind::kData: ++stats_.data_sent; break;
      case OwnTxKind::kRts: break;
    }
    transmit_payload(std::move(frame), kind);
  });
}

void DcfMac::on_transmit_end(std::uint64_t signal_id) {
  if (!own_tx_active_ || signal_id != own_tx_id_) {
    // A foreign transmission on our radio (an attached RtsFlooder shares
    // it) finished; our own sender state is untouched by it.
    reevaluate();
    return;
  }
  const OwnTxKind kind = own_tx_kind_;
  own_tx_active_ = false;

  switch (kind) {
    case OwnTxKind::kRts:
      assert(phase_ == SenderPhase::kTxRts);
      phase_ = SenderPhase::kWaitCts;
      timeout_event_ = sim_.after(
          params_.response_timeout(params_.cts_airtime()), [this] {
            timeout_event_ = sim::kInvalidEvent;
            handle_cts_timeout();
          });
      break;
    case OwnTxKind::kData:
      assert(phase_ == SenderPhase::kTxData);
      if (current_ && current_->receiver == kBroadcastNode) {
        // Group-addressed frames complete on transmission (no ACK).
        finish_success();
        break;
      }
      phase_ = SenderPhase::kWaitAck;
      timeout_event_ = sim_.after(
          params_.response_timeout(params_.ack_airtime()), [this] {
            timeout_event_ = sim::kInvalidEvent;
            handle_ack_timeout();
          });
      break;
    case OwnTxKind::kCts:
    case OwnTxKind::kAck:
      break;  // fire and forget
  }
  reevaluate();
}

void DcfMac::update_nav(SimTime until, bool from_rts) {
  if (until > nav_until_) {
    nav_until_ = until;
    nav_basis_rts_ = from_rts;
    ++nav_epoch_;
    if (from_rts) {
      // NAV-reset rule (802.11 9.2.5.4): if nothing follows the RTS within
      // the reset window, the reservation is void.
      const SimTime rts_end = sim_.now();
      const std::uint64_t epoch = nav_epoch_;
      sim_.at(rts_end + params_.nav_reset_delay(), [this, rts_end, epoch] {
        if (nav_epoch_ != epoch || !nav_basis_rts_) return;  // superseded
        if (last_busy_rise_ > rts_end || radio_.carrier_busy()) return;
        nav_until_ = sim_.now();
        reevaluate();
      });
    }
    reevaluate();
  }
}

void DcfMac::on_receive(const phy::Signal& signal) {
  const auto* frame = static_cast<const Frame*>(signal.payload.get());
  assert(frame != nullptr);
  ++stats_.frames_received;

  // A correct reception terminates any EIFS deferral (802.11 9.2.3.4).
  eifs_until_ = 0;

  for (auto* obs : observers_) obs->on_frame(*frame, signal.start, signal.end);

  if (frame->receiver == kBroadcastNode) {
    // Group-addressed DATA: deliver to the upper layer, no response.
    ++stats_.broadcasts_received;
    if (listener_) listener_->on_delivered(*frame, sim_.now());
    reevaluate();
    return;
  }

  if (!owns_address(frame->receiver)) {
    // Overheard: honor the NAV.
    update_nav(signal.end + frame->duration, frame->type == FrameType::kRts);
    reevaluate();
    return;
  }

  switch (frame->type) {
    case FrameType::kRts: {
      // Respond only if our virtual carrier (NAV) is clear, we are not in
      // the middle of an exchange we must answer (recipient obligation),
      // and our own sender sequence is not past contention.
      if (sim_.now() < nav_until_ || sim_.now() < busy_recipient_until_) break;
      if (phase_ != SenderPhase::kIdle && phase_ != SenderPhase::kContending) break;
      const Frame cts = make_cts(id(), *frame, params_);
      // The CTS duration covers the rest of the exchange; decline further
      // RTSes until it is over.
      busy_recipient_until_ =
          sim_.now() + params_.sifs + params_.cts_airtime() + cts.duration;
      schedule_response(cts, OwnTxKind::kCts);
      break;
    }
    case FrameType::kCts: {
      if (phase_ != SenderPhase::kWaitCts || !current_ ||
          frame->transmitter != current_->receiver) {
        break;
      }
      sim_.cancel(timeout_event_);
      timeout_event_ = sim::kInvalidEvent;
      phase_ = SenderPhase::kTxData;
      schedule_response(*current_, OwnTxKind::kData);
      break;
    }
    case FrameType::kData: {
      // ACK even duplicates; deliver only new payloads.
      auto [it, inserted] = delivered_from_.emplace(frame->transmitter, frame->payload_id);
      const bool duplicate = !inserted && it->second == frame->payload_id;
      if (!inserted) it->second = frame->payload_id;
      if (duplicate) {
        ++stats_.duplicate_data;
      } else {
        ++stats_.packets_delivered;
        if (listener_) listener_->on_delivered(*frame, sim_.now());
      }
      schedule_response(make_ack(id(), *frame), OwnTxKind::kAck);
      break;
    }
    case FrameType::kAck: {
      if (phase_ != SenderPhase::kWaitAck) break;
      sim_.cancel(timeout_event_);
      timeout_event_ = sim::kInvalidEvent;
      finish_success();
      break;
    }
  }
  reevaluate();
}

void DcfMac::on_receive_error(const phy::Signal&) {
  ++stats_.rx_errors;
  if (params_.use_eifs) {
    const SimTime until = sim_.now() + params_.eifs();
    if (until > eifs_until_) {
      eifs_until_ = until;
      reevaluate();
    }
  }
}

void DcfMac::on_carrier(bool busy, SimTime at) {
  if (busy) last_busy_rise_ = at;
  reevaluate();
}

void DcfMac::handle_cts_timeout() {
  assert(phase_ == SenderPhase::kWaitCts);
  handle_failure();
}

void DcfMac::handle_ack_timeout() {
  assert(phase_ == SenderPhase::kWaitAck);
  handle_failure();
}

void DcfMac::handle_failure() {
  assert(current_);
  ++attempt_;
  if (attempt_ > params_.retry_limit) {
    ++stats_.retry_drops;
    if (listener_) listener_->on_dropped(*current_, DropReason::kRetryLimit);
    current_.reset();
    attempt_ = 1;
    phase_ = SenderPhase::kIdle;
    start_service();
    return;
  }
  ++stats_.retries;
  phase_ = SenderPhase::kContending;
  prepare_backoff();
}

void DcfMac::finish_success() {
  assert(current_);
  ++stats_.packets_acked;
  if (listener_) listener_->on_sent(*current_, sim_.now());
  current_.reset();
  attempt_ = 1;
  phase_ = SenderPhase::kIdle;
  start_service();
}

}  // namespace manet::mac
