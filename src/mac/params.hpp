// IEEE 802.11 (DSSS PHY) timing and protocol constants, as used by ns-2's
// 802.11 model and the paper's Table 1.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace manet::mac {

struct DcfParams {
  SimDuration slot_time = 20 * kMicrosecond;   // aSlotTime (paper: 20 us)
  SimDuration sifs = 10 * kMicrosecond;        // aSIFSTime
  SimDuration difs = 50 * kMicrosecond;        // SIFS + 2 slots

  std::uint32_t cw_min = 31;                   // initial contention window
  std::uint32_t cw_max = 1023;                 // cap after doublings

  /// Maximum transmission attempts per packet (RTS retries; attempt is
  /// 1-based, so 7 means up to 6 retransmissions).
  std::uint32_t retry_limit = 7;

  double basic_rate_bps = 1e6;   // control frames (RTS/CTS/ACK)
  double data_rate_bps = 2e6;    // DATA frames
  SimDuration plcp_overhead = 192 * kMicrosecond;  // preamble + PLCP header

  std::uint32_t rts_bytes = 38;   // paper Fig. 2: 2+2+6+6+2+16+4
  std::uint32_t cts_bytes = 14;
  std::uint32_t ack_bytes = 14;
  std::uint32_t data_header_bytes = 28;

  std::uint32_t queue_capacity = 50;           // Table 1: queue length 50

  /// Defer EIFS after a corrupted reception (802.11 9.2.3.4). Off by
  /// default: the paper's monitoring model (like its analysis) has no EIFS
  /// concept, and a tagged node's EIFS deferrals are invisible to monitors
  /// (each one inflates the observed back-off by EIFS-DIFS ~ 16 slots).
  /// Enable to quantify the impact (bench/ablation_estimator).
  bool use_eifs = false;

  /// Modulo for the 13-bit sequence-offset field of the modified RTS.
  std::uint32_t seq_off_modulo = 1u << 13;

  bool operator==(const DcfParams&) const = default;

  /// Contention window (inclusive upper bound of the back-off draw) for a
  /// 1-based attempt number: CW = min((cw_min+1) * 2^(attempt-1), cw_max+1) - 1.
  std::uint32_t cw_for_attempt(std::uint32_t attempt) const {
    std::uint64_t size = static_cast<std::uint64_t>(cw_min) + 1;
    for (std::uint32_t i = 1; i < attempt && size <= cw_max; ++i) size <<= 1;
    if (size > static_cast<std::uint64_t>(cw_max) + 1) size = cw_max + 1;
    return static_cast<std::uint32_t>(size - 1);
  }

  /// Airtime of a frame of `bytes` at `rate_bps`, including PLCP overhead.
  SimDuration airtime(std::uint32_t bytes, double rate_bps) const {
    const double tx_ns = static_cast<double>(bytes) * 8.0 * 1e9 / rate_bps;
    return plcp_overhead + static_cast<SimDuration>(tx_ns + 0.5);
  }

  SimDuration rts_airtime() const { return airtime(rts_bytes, basic_rate_bps); }
  SimDuration cts_airtime() const { return airtime(cts_bytes, basic_rate_bps); }
  SimDuration ack_airtime() const { return airtime(ack_bytes, basic_rate_bps); }
  SimDuration data_airtime(std::uint32_t payload_bytes) const {
    return airtime(payload_bytes + data_header_bytes, data_rate_bps);
  }

  /// EIFS = SIFS + ACK airtime + DIFS (802.11 with DSSS).
  SimDuration eifs() const { return sifs + ack_airtime() + difs; }

  /// Timeout waiting for a CTS (or ACK) after our transmission ends.
  SimDuration response_timeout(SimDuration response_airtime) const {
    return sifs + response_airtime + 2 * slot_time;
  }

  /// NAV-reset window (802.11 9.2.5.4): a station whose NAV was most
  /// recently set by an RTS resets it if the medium shows no new activity
  /// within 2*SIFS + CTS time + 2 slots of the RTS end. Without this rule
  /// every collided RTS freezes all overhearers for a full exchange.
  SimDuration nav_reset_delay() const {
    return 2 * sifs + cts_airtime() + 2 * slot_time;
  }
};

}  // namespace manet::mac
