// Adversary zoo v2 — attacker models beyond the paper's solo stationary
// back-off cheat (ROADMAP item 3; threat models from Jamal et al.'s RTS
// flooding and the sybil/collusion idioms of VANET misbehavior work).
//
//  * ColludingBackoff — a coordinated group alternates aggressive/honest
//    phases (one member cheats at a time, rotating on a shared schedule),
//    so each member's per-monitor Wilcoxon sample is diluted with honest
//    behavior and stays under any single monitor's threshold for longer.
//  * AdaptiveBackoff — behaves honestly while it believes a monitor is
//    active: during a configurable probation window after startup, and for
//    a vigilance period after overhearing any frame from a suspected
//    monitor; cheats the rest of the time.
//  * SybilBackoff/SybilAnnounce — one radio, many claimed MAC identities.
//    Each packet is sent under the next fake identity with that identity's
//    own verifiable PRS (announced offsets stay continuous per identity),
//    so no single identity accumulates a flaggable Wilcoxon window at the
//    solo rate. The back-off cheat itself is PM-style against the claimed
//    identity's dictated value.
//  * RtsFlooder — MAC-layer DoS: saturates the channel with bogus RTS
//    frames (full-exchange NAV reservations, no DATA ever follows),
//    bypassing carrier sense and back-off entirely.
//
// All attackers are deterministic given their seeds and the simulated
// channel history: same scenario seed, same frame trace.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mac/backoff.hpp"
#include "mac/dcf.hpp"
#include "mac/frame.hpp"
#include "mac/params.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::mac {

/// Base of the fake-identity address space used by sybil attackers in the
/// experiment harnesses: far above any real node id, below the reserved
/// broadcast/invalid addresses.
inline constexpr NodeId kSybilAliasBase = 1u << 20;

// --- Colluding group ---------------------------------------------------------

/// Shared rotation schedule of a colluding group: at any instant exactly
/// one member (round-robin by phase) is in its aggressive phase. Pure
/// function of time — members need no runtime coordination channel, which
/// is exactly what makes collusion cheap to deploy.
struct CollusionSchedule {
  std::uint32_t group_size = 2;
  SimDuration phase = 2 * kSecond;  // length of one member's aggressive turn

  std::uint32_t cheater_at(SimTime now) const {
    if (group_size <= 1) return 0;
    if (now < 0) now = 0;
    const SimDuration p = phase > 0 ? phase : 1;
    return static_cast<std::uint32_t>((now / p) % group_size);
  }
};

/// PM-style cheat applied only during this member's aggressive phase of
/// the shared schedule; dictated (honest) back-off otherwise.
class ColludingBackoff : public BackoffPolicy {
 public:
  ColludingBackoff(std::shared_ptr<const CollusionSchedule> schedule,
                   std::uint32_t member, double percent)
      : schedule_(std::move(schedule)), member_(member), percent_(percent) {}

  std::uint32_t used_slots(const BackoffContext& ctx) override;
  std::string name() const override {
    return "colluding_" + std::to_string(member_) + "of" +
           std::to_string(schedule_->group_size);
  }

  bool aggressive_at(SimTime now) const {
    return schedule_->cheater_at(now) == member_;
  }

 private:
  std::shared_ptr<const CollusionSchedule> schedule_;
  std::uint32_t member_;
  double percent_;
};

// --- Adaptive cheater --------------------------------------------------------

/// Cheats PM-style only when it believes no monitor is watching. Register
/// the policy as a MacObserver on the same DcfMac (before handing over
/// ownership) so it overhears the air; any decoded frame transmitted by a
/// suspected monitor restarts the vigilance clock.
class AdaptiveBackoff : public BackoffPolicy, public MacObserver {
 public:
  /// Honest until `probation_until` (absolute sim time), and for
  /// `vigilance` after each frame heard from a node in `suspects`; cheats
  /// by `percent` otherwise.
  AdaptiveBackoff(double percent, SimTime probation_until, SimDuration vigilance,
                  std::vector<NodeId> suspects = {})
      : percent_(percent),
        probation_until_(probation_until),
        vigilance_(vigilance),
        suspects_(std::move(suspects)) {}

  std::uint32_t used_slots(const BackoffContext& ctx) override;
  std::string name() const override { return "adaptive"; }

  // MacObserver:
  void on_frame(const Frame& frame, SimTime start, SimTime end) override;

  /// True when the policy would behave honestly at `now`.
  bool lying_low(SimTime now) const {
    if (now < probation_until_) return true;
    return last_monitor_heard_ && vigilance_ > 0 &&
           now - *last_monitor_heard_ < vigilance_;
  }

 private:
  double percent_;
  SimTime probation_until_;
  SimDuration vigilance_;
  std::vector<NodeId> suspects_;
  std::optional<SimTime> last_monitor_heard_;
};

// --- Sybil identities --------------------------------------------------------

/// Shared state of a sybil attacker: the fake identities, each with its
/// own verifiable PRS (seeded by the fake MAC, exactly as an honest node
/// would be) and its own announced-offset counter. The back-off and
/// announce policies below both reference one SybilState so the announced
/// fields and the counted-down value describe the same claimed identity.
class SybilState {
 public:
  SybilState(std::vector<NodeId> aliases, const DcfParams& params);

  /// Positions the state for the RTS of `attempt` (1-based). A fresh
  /// packet (attempt 1) rotates to the next identity; every attempt
  /// consumes the current identity's next sequence offset, keeping the
  /// per-identity announced stream continuous. Idempotent until the
  /// matching announced() consumes the position.
  void begin_attempt(std::uint32_t attempt);

  /// Marks the current position consumed (called once per RTS).
  void consume() { positioned_ = false; }

  NodeId current_identity() const;
  std::uint64_t current_seq() const { return current_seq_; }
  std::uint32_t dictated_slots() const { return dictated_; }
  std::size_t identity_count() const { return identities_.size(); }

 private:
  struct Identity {
    NodeId id;
    VerifiableBackoff prs;
    std::uint64_t next_seq = 0;
  };
  std::vector<Identity> identities_;
  std::size_t current_ = 0;
  bool any_packet_ = false;
  bool positioned_ = false;
  std::uint64_t current_seq_ = 0;
  std::uint32_t dictated_ = 0;
};

/// PM-style cheat against the *claimed identity's* dictated value.
class SybilBackoff : public BackoffPolicy {
 public:
  SybilBackoff(std::shared_ptr<SybilState> state, double percent)
      : state_(std::move(state)), percent_(percent) {}

  std::uint32_t used_slots(const BackoffContext& ctx) override;
  std::string name() const override {
    return "sybil_" + std::to_string(state_->identity_count());
  }

 private:
  std::shared_ptr<SybilState> state_;
  double percent_;
};

/// Announces the claimed identity's (continuous) offset stream and stamps
/// the claimed MAC on the exchange.
class SybilAnnounce : public AnnouncePolicy {
 public:
  explicit SybilAnnounce(std::shared_ptr<SybilState> state)
      : state_(std::move(state)) {}

  AnnouncedFields announced(const AnnounceContext& ctx) override;
  std::string name() const override { return "sybil"; }

 private:
  std::shared_ptr<SybilState> state_;
};

// --- RTS flood DoS -----------------------------------------------------------

struct RtsFloodConfig {
  /// Mean bogus-RTS rate (exponential inter-arrivals). At the default the
  /// per-RTS full-exchange NAV (~3 ms at 512-byte payloads) overlaps the
  /// next RTS, keeping every overhearer's virtual carrier pinned busy.
  double rate_pps = 1000.0;
  /// Receiver address stamped on the bogus RTSes (a real neighbor makes
  /// the victim burn CTS responses too).
  NodeId victim = kInvalidNode;
  /// Payload size the NAV reservation pretends to cover.
  std::uint32_t data_bytes = 512;
  std::uint64_t seed = 1;
};

/// Saturates the channel with bogus RTS frames straight from the radio:
/// no carrier sense, no back-off, no DATA ever follows. Announced fields
/// are kept self-consistent (offsets advance by one, attempt 1, fresh
/// digest per RTS) so detection must come from timing, not bookkeeping.
/// Coexists with the node's DcfMac on the same radio; transmissions are
/// skipped (and rescheduled) while the radio is already sending.
class RtsFlooder {
 public:
  RtsFlooder(sim::Simulator& sim, phy::Radio& radio, const DcfParams& params,
             const RtsFloodConfig& config);

  /// Schedules flooding over [at, stop).
  void start(SimTime at, SimTime stop);

  std::uint64_t rts_sent() const { return sent_; }

 private:
  void fire();
  void schedule_next();

  sim::Simulator& sim_;
  phy::Radio& radio_;
  DcfParams params_;
  RtsFloodConfig config_;
  util::Xoshiro256ss rng_;
  SimTime stop_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t payload_id_ = 1;
  std::uint64_t sent_ = 0;
};

/// Shared PM scaling: slots actually counted for a dictated value under a
/// percentage-of-misbehavior cheat (0 = honest, 100 = never backs off).
inline std::uint32_t pm_scaled_slots(std::uint32_t dictated, double percent) {
  const double scaled = static_cast<double>(dictated) * (100.0 - percent) / 100.0;
  return static_cast<std::uint32_t>(scaled + 0.5);
}

}  // namespace manet::mac
