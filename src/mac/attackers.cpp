#include "mac/attackers.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace manet::mac {

// --- ColludingBackoff --------------------------------------------------------

std::uint32_t ColludingBackoff::used_slots(const BackoffContext& ctx) {
  if (!aggressive_at(ctx.now)) return ctx.dictated_slots;
  return pm_scaled_slots(ctx.dictated_slots, percent_);
}

// --- AdaptiveBackoff ---------------------------------------------------------

std::uint32_t AdaptiveBackoff::used_slots(const BackoffContext& ctx) {
  if (lying_low(ctx.now)) return ctx.dictated_slots;
  return pm_scaled_slots(ctx.dictated_slots, percent_);
}

void AdaptiveBackoff::on_frame(const Frame& frame, SimTime /*start*/, SimTime end) {
  if (suspects_.empty()) return;
  if (std::find(suspects_.begin(), suspects_.end(), frame.transmitter) ==
      suspects_.end()) {
    return;
  }
  if (!last_monitor_heard_ || end > *last_monitor_heard_) last_monitor_heard_ = end;
}

// --- Sybil -------------------------------------------------------------------

SybilState::SybilState(std::vector<NodeId> aliases, const DcfParams& params) {
  if (aliases.empty()) {
    throw std::invalid_argument("sybil attacker needs at least one identity");
  }
  identities_.reserve(aliases.size());
  for (NodeId a : aliases) {
    identities_.push_back(Identity{a, VerifiableBackoff(a, params), 0});
  }
}

void SybilState::begin_attempt(std::uint32_t attempt) {
  if (positioned_) return;  // back-off policy already positioned this attempt
  if (attempt <= 1) {
    // Fresh packet: rotate to the next claimed identity. Retries stay on
    // the packet's identity so the digest/attempt bookkeeping a monitor
    // checks remains self-consistent per identity.
    if (any_packet_) current_ = (current_ + 1) % identities_.size();
    any_packet_ = true;
  }
  Identity& identity = identities_[current_];
  current_seq_ = identity.next_seq++;
  dictated_ = identity.prs.dictated_slots(
      current_seq_, attempt == 0 ? 1u : attempt);
  positioned_ = true;
}

NodeId SybilState::current_identity() const {
  return identities_[current_].id;
}

std::uint32_t SybilBackoff::used_slots(const BackoffContext& ctx) {
  state_->begin_attempt(ctx.attempt);
  return pm_scaled_slots(state_->dictated_slots(), percent_);
}

AnnouncedFields SybilAnnounce::announced(const AnnounceContext& ctx) {
  // Normally SybilBackoff already positioned the state when the back-off
  // for this attempt was drawn; begin_attempt is idempotent so a
  // standalone announce policy (identity spreading without a timing
  // cheat) also works.
  state_->begin_attempt(ctx.attempt);
  AnnouncedFields fields;
  fields.seq_off = state_->current_seq();
  fields.attempt = ctx.attempt;
  fields.claimed = state_->current_identity();
  state_->consume();
  return fields;
}

// --- RtsFlooder --------------------------------------------------------------

RtsFlooder::RtsFlooder(sim::Simulator& sim, phy::Radio& radio,
                       const DcfParams& params, const RtsFloodConfig& config)
    : sim_(sim), radio_(radio), params_(params), config_(config),
      rng_(config.seed) {
  assert(config_.rate_pps > 0.0);
}

void RtsFlooder::start(SimTime at, SimTime stop) {
  stop_ = stop;
  sim_.at(at, [this] { fire(); });
}

void RtsFlooder::fire() {
  if (sim_.now() >= stop_) return;
  if (!radio_.transmitting()) {
    // A fresh bogus payload per RTS: the digest changes every time, so the
    // retransmission (MD/attempt) check never has a repeated digest to
    // bite on, and offsets advance by exactly one, so continuity holds.
    // Only the *timing* is wrong — the flood ignores back-off entirely.
    const Frame data = make_data(radio_.id(), config_.victim, config_.data_bytes,
                                 payload_id_++, params_);
    Frame rts = make_rts(radio_.id(), config_.victim, data,
                         static_cast<std::uint32_t>(seq_ % params_.seq_off_modulo),
                         /*attempt=*/1, params_);
    ++seq_;
    radio_.transmit(std::make_shared<const Frame>(rts), params_.rts_airtime());
    ++sent_;
  }
  schedule_next();
}

void RtsFlooder::schedule_next() {
  const double gap_s = rng_.exponential(config_.rate_pps);
  SimDuration gap = seconds_to_time(gap_s);
  if (gap < kMicrosecond) gap = kMicrosecond;  // keep the event queue sane
  sim_.after(gap, [this] { fire(); });
}

}  // namespace manet::mac
