// Intentionally empty: VerifiableBackoff and the policies are header-only,
// but the translation unit anchors the library and catches ODR issues.
#include "mac/backoff.hpp"
