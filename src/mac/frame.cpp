#include "mac/frame.hpp"

namespace manet::mac {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
  }
  return "?";
}

crypto::Md5Digest payload_digest(NodeId source, std::uint64_t payload_id,
                                 std::uint32_t payload_bytes) {
  std::uint8_t material[16];
  std::uint64_t words[2] = {
      (static_cast<std::uint64_t>(source) << 32) ^ payload_id,
      (static_cast<std::uint64_t>(payload_bytes) << 1) | 1u};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 8; ++i) {
      material[8 * w + i] = static_cast<std::uint8_t>((words[w] >> (8 * i)) & 0xFF);
    }
  }
  return crypto::Md5::hash(std::span<const std::uint8_t>(material, sizeof material));
}

SimDuration frame_airtime(const Frame& frame, const DcfParams& params) {
  switch (frame.type) {
    case FrameType::kRts: return params.rts_airtime();
    case FrameType::kCts: return params.cts_airtime();
    case FrameType::kAck: return params.ack_airtime();
    case FrameType::kData: return params.data_airtime(frame.payload_bytes);
  }
  return 0;
}

Frame make_rts(NodeId from, NodeId to, const Frame& data, std::uint32_t seq_off,
               std::uint8_t attempt, const DcfParams& params) {
  Frame rts;
  rts.type = FrameType::kRts;
  rts.transmitter = from;
  rts.receiver = to;
  rts.seq_off = seq_off % params.seq_off_modulo;
  rts.attempt = attempt;
  rts.data_digest = payload_digest(from, data.payload_id, data.payload_bytes);
  rts.payload_bytes = data.payload_bytes;
  rts.duration = 3 * params.sifs + params.cts_airtime() +
                 params.data_airtime(data.payload_bytes) + params.ack_airtime();
  return rts;
}

Frame make_cts(NodeId from, const Frame& rts, const DcfParams& params) {
  Frame cts;
  cts.type = FrameType::kCts;
  cts.transmitter = from;
  cts.receiver = rts.transmitter;
  cts.duration = rts.duration - params.sifs - params.cts_airtime();
  if (cts.duration < 0) cts.duration = 0;
  return cts;
}

Frame make_data(NodeId from, NodeId to, std::uint32_t payload_bytes,
                std::uint64_t payload_id, const DcfParams& params) {
  Frame data;
  data.type = FrameType::kData;
  data.transmitter = from;
  data.receiver = to;
  data.payload_bytes = payload_bytes;
  data.payload_id = payload_id;
  // Group-addressed frames are not acknowledged and reserve nothing.
  data.duration = to == kBroadcastNode ? 0 : params.sifs + params.ack_airtime();
  data.net_source = from;
  data.net_destination = to;
  return data;
}

Frame make_ack(NodeId from, const Frame& data) {
  Frame ack;
  ack.type = FrameType::kAck;
  ack.transmitter = from;
  ack.receiver = data.transmitter;
  ack.duration = 0;
  return ack;
}

phy::PayloadPtr corrupt_rts_fields(const phy::PayloadPtr& original,
                                   util::Xoshiro256ss& rng) {
  const auto* frame = dynamic_cast<const Frame*>(original.get());
  if (frame == nullptr || frame->type != FrameType::kRts) return original;
  auto mangled = std::make_shared<Frame>(*frame);
  // XOR with a nonzero delta guarantees the field actually changes; the
  // 13-bit / 3-bit widths match the wire format (paper Fig. 2).
  mangled->seq_off ^= static_cast<std::uint32_t>(1 + rng.uniform_int(8191));
  mangled->attempt ^= static_cast<std::uint8_t>(1 + rng.uniform_int(7));
  mangled->data_digest[rng.uniform_int(mangled->data_digest.size())] ^=
      static_cast<std::uint8_t>(1 + rng.uniform_int(255));
  return mangled;
}

}  // namespace manet::mac
