// Verifiable back-off sequences and back-off behavior policies.
//
// VerifiableBackoff is the paper's dictated pseudo-random sequence (PRS):
// seeded by the owner's MAC address, publicly recomputable by any neighbor.
// The dictated value for sequence index i at (1-based) attempt a is
//   prs(i) mod (CW(a) + 1),
// i.e. uniform over [0, CW(a)] with the protocol's exponential CW growth.
//
// BackoffPolicy is the seam where misbehavior is injected: it maps the
// dictated value to the value the node actually counts down. Honest nodes
// use the identity; the paper's "Percentage of Misbehavior" (PM) attacker
// counts down only (100-m)% of the dictated value.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "mac/params.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::mac {

class VerifiableBackoff {
 public:
  /// `mac_address` is the seed — the paper requires nodes to seed their
  /// PRNG with their MAC address so the sequence is publicly known.
  VerifiableBackoff(NodeId mac_address, const DcfParams& params)
      : prs_(mac_address), params_(&params) {}

  /// Dictated back-off (in slots) for sequence index `seq_index` at
  /// 1-based `attempt`. Pure function: monitors call this too. The PRS
  /// domain is the 13-bit SeqOff# ring, so sender-side counters and the
  /// wire offset always agree, no matter when a monitor starts listening.
  std::uint32_t dictated_slots(std::uint64_t seq_index, std::uint32_t attempt) const {
    const std::uint32_t cw = params_->cw_for_attempt(attempt);
    return prs_.uniform_at(seq_index % params_->seq_off_modulo, cw + 1);
  }

  /// Raw 64-bit PRS value (used by misbehavior policies that re-reduce it).
  std::uint64_t raw_value(std::uint64_t seq_index) const {
    return prs_.value_at(seq_index % params_->seq_off_modulo);
  }

 private:
  util::CounterRng prs_;
  const DcfParams* params_;
};

struct BackoffContext {
  std::uint32_t dictated_slots = 0;
  std::uint64_t raw_prs_value = 0;
  std::uint32_t attempt = 1;      // 1-based
  std::uint32_t cw = 31;          // contention window for this attempt
  std::uint64_t seq_index = 0;
  /// Simulation time the back-off is drawn at. Time-varying policies
  /// (colluding phase rotation, adaptive probation — mac/attackers.hpp)
  /// key their behavior off it; stationary policies ignore it.
  SimTime now = 0;
};

class BackoffPolicy {
 public:
  virtual ~BackoffPolicy() = default;
  /// Slots the node will actually count down.
  virtual std::uint32_t used_slots(const BackoffContext& ctx) = 0;
  virtual std::string name() const = 0;
};

/// Protocol-compliant behavior.
class HonestBackoff : public BackoffPolicy {
 public:
  std::uint32_t used_slots(const BackoffContext& ctx) override {
    return ctx.dictated_slots;
  }
  std::string name() const override { return "honest"; }
};

/// The paper's PM attacker: counts down to (100-m)% of the dictated value.
class PercentMisbehavior : public BackoffPolicy {
 public:
  /// `percent` in [0, 100]; 0 behaves honestly, 100 never backs off.
  explicit PercentMisbehavior(double percent) : percent_(percent) {}

  std::uint32_t used_slots(const BackoffContext& ctx) override {
    const double scaled =
        static_cast<double>(ctx.dictated_slots) * (100.0 - percent_) / 100.0;
    return static_cast<std::uint32_t>(scaled + 0.5);
  }
  std::string name() const override {
    return "pm_" + std::to_string(percent_);
  }
  double percent() const { return percent_; }

 private:
  double percent_;
};

/// Always uses a fixed small back-off, ignoring the PRS entirely.
class ConstantBackoff : public BackoffPolicy {
 public:
  explicit ConstantBackoff(std::uint32_t slots) : slots_(slots) {}
  std::uint32_t used_slots(const BackoffContext&) override { return slots_; }
  std::string name() const override { return "constant_" + std::to_string(slots_); }

 private:
  std::uint32_t slots_;
};

/// Follows the PRS but never doubles the contention window on retries —
/// the "different retransmission strategy" misbehavior of Section 1.
class NoExponentialBackoff : public BackoffPolicy {
 public:
  explicit NoExponentialBackoff(std::uint32_t cw_min) : cw_min_(cw_min) {}
  std::uint32_t used_slots(const BackoffContext& ctx) override {
    return static_cast<std::uint32_t>(ctx.raw_prs_value % (cw_min_ + 1));
  }
  std::string name() const override { return "no_exp_backoff"; }

 private:
  std::uint32_t cw_min_;
};

// --- Announcement (field) policies -----------------------------------------
//
// Orthogonal cheating axis: what the node *announces* in its RTS. Honest
// nodes announce the true sequence offset and attempt number; cheaters can
// freeze the attempt number to dodge CW doubling (caught by the MD check)
// or replay a sequence offset (caught by the continuity check).

struct AnnounceContext {
  std::uint64_t seq_index = 0;   // true PRS index being consumed
  std::uint32_t attempt = 1;     // true 1-based attempt
};

struct AnnouncedFields {
  std::uint64_t seq_off = 0;
  std::uint32_t attempt = 1;
  /// Transmitter address to stamp on the RTS and DATA frames of this
  /// exchange. kInvalidNode (the default) announces the node's true MAC;
  /// a sybil attacker substitutes one of its fake identities here (the
  /// DCF then answers CTS/ACK addressed to any identity it registered via
  /// DcfMac::add_identity_alias).
  NodeId claimed = kInvalidNode;
};

class AnnouncePolicy {
 public:
  virtual ~AnnouncePolicy() = default;
  virtual AnnouncedFields announced(const AnnounceContext& ctx) = 0;
  virtual std::string name() const = 0;
};

class HonestAnnounce : public AnnouncePolicy {
 public:
  AnnouncedFields announced(const AnnounceContext& ctx) override {
    return {ctx.seq_index, ctx.attempt};
  }
  std::string name() const override { return "honest"; }
};

/// Always announces attempt #1 (to be dictated the small CWmin window on
/// retries). Detected via the MD5/attempt retransmission check.
class StuckAttemptAnnounce : public AnnouncePolicy {
 public:
  AnnouncedFields announced(const AnnounceContext& ctx) override {
    return {ctx.seq_index, 1};
  }
  std::string name() const override { return "stuck_attempt"; }
};

/// Announces offsets ever further ahead of the true PRS position — the
/// cherry-picking cheat the bounded-gap continuity check exists for: a
/// cheater who may jump arbitrarily far could scan the public PRS for small
/// dictated values. Each RTS announces `jump` more than continuity allows;
/// jumps beyond MonitorConfig::max_seq_off_gap are deterministic
/// violations, smaller ones are (mis)read as lossy observation.
class SkipAheadAnnounce : public AnnouncePolicy {
 public:
  explicit SkipAheadAnnounce(std::uint64_t jump) : jump_(jump) {}
  AnnouncedFields announced(const AnnounceContext& ctx) override {
    cumulative_ += jump_;
    return {ctx.seq_index + cumulative_, ctx.attempt};
  }
  std::string name() const override { return "skip_ahead_" + std::to_string(jump_); }

 private:
  std::uint64_t jump_;
  std::uint64_t cumulative_ = 0;
};

/// Replays the same sequence offset forever (e.g. one known small value).
/// Detected via the SeqOff continuity check.
class FrozenSeqOffAnnounce : public AnnouncePolicy {
 public:
  explicit FrozenSeqOffAnnounce(std::uint64_t frozen) : frozen_(frozen) {}
  AnnouncedFields announced(const AnnounceContext& ctx) override {
    return {frozen_, ctx.attempt};
  }
  std::string name() const override { return "frozen_seq_off"; }

 private:
  std::uint64_t frozen_;
};

}  // namespace manet::mac
