// IEEE 802.11 DCF with the paper's verifiable-back-off modification.
//
// Implements CSMA/CA with RTS/CTS/DATA/ACK, NAV (virtual carrier sense),
// optional EIFS after corrupted receptions, binary-exponential contention
// windows, retry limits, and a drop-tail interface queue.
//
// Back-off values are dictated by the node's verifiable PRS (seeded with
// its MAC address). Every RTS announces the consumed sequence offset, the
// attempt number, and the MD5 digest of the DATA frame, per the paper's
// modified RTS. The actually-used back-off and the announced fields go
// through pluggable policies so misbehaving nodes are just configuration.
//
// Back-off countdown uses O(1) events per busy/idle transition: instead of
// an event per slot, the finish time is scheduled and the counter is
// reconciled when the medium goes busy (bulk decrement). A countdown that
// reaches zero exactly when the medium turns busy transmits anyway — the
// standard's simultaneous-transmission collision.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mac/backoff.hpp"
#include "mac/frame.hpp"
#include "mac/params.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace manet::mac {

enum class DropReason : std::uint8_t { kQueueFull, kRetryLimit };

/// Upper-layer callbacks.
class MacListener {
 public:
  virtual ~MacListener() = default;
  virtual void on_delivered(const Frame& data, SimTime at) = 0;   // receiver
  virtual void on_sent(const Frame& data, SimTime at) = 0;        // sender, ACKed
  virtual void on_dropped(const Frame& data, DropReason reason) = 0;
};

/// Promiscuous observation hook — how monitors see the air. Observers get
/// every frame this node's radio decoded (including frames addressed to
/// other nodes) with its air start/end times.
class MacObserver {
 public:
  virtual ~MacObserver() = default;
  virtual void on_frame(const Frame& frame, SimTime start, SimTime end) = 0;
};

struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t rts_sent = 0;
  std::uint64_t cts_sent = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t ack_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_drops = 0;
  std::uint64_t packets_acked = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t broadcasts_sent = 0;
  std::uint64_t broadcasts_received = 0;
  std::uint64_t duplicate_data = 0;
  std::uint64_t rx_errors = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t backoffs_started = 0;
  std::uint64_t backoff_slots_total = 0;
};

class DcfMac : public phy::RadioListener {
 public:
  DcfMac(sim::Simulator& simulator, phy::Radio& radio, const DcfParams& params);

  NodeId id() const { return radio_.id(); }
  const DcfParams& params() const { return params_; }
  const MacStats& stats() const { return stats_; }
  const VerifiableBackoff& prs() const { return prs_; }

  void set_listener(MacListener* listener) { listener_ = listener; }
  void add_observer(MacObserver* observer) { observers_.push_back(observer); }

  /// Replaces the back-off behavior (default: honest). Takes ownership.
  void set_backoff_policy(std::unique_ptr<BackoffPolicy> policy);
  /// Replaces the RTS announcement behavior (default: honest).
  void set_announce_policy(std::unique_ptr<AnnouncePolicy> policy);

  /// Registers a fake MAC identity this station also answers to (sybil
  /// attackers, mac/attackers.hpp): frames addressed to an alias are
  /// treated as addressed to this node. The announce policy picks which
  /// identity each exchange claims (AnnouncedFields::claimed).
  void add_identity_alias(NodeId alias);
  /// True for this node's own address or any registered alias.
  bool owns_address(NodeId address) const {
    if (address == id()) return true;
    for (NodeId a : identity_aliases_) {
      if (a == address) return true;
    }
    return false;
  }

  /// Queues a payload for `dest` (kBroadcastNode sends an unacknowledged
  /// group-addressed frame without RTS/CTS). Returns false (and counts a
  /// queue drop) when the interface queue is full.
  bool enqueue(NodeId dest, std::uint32_t payload_bytes, std::uint64_t payload_id);

  /// Queues a fully formed DATA frame (network layers use this to carry
  /// multi-hop headers). The frame's transmitter is overwritten with this
  /// node's address; type must be kData.
  bool enqueue_frame(Frame data);

  std::size_t queue_length() const { return queue_.size(); }
  bool busy_with_packet() const { return current_ != nullptr; }

  /// Next PRS index this node will consume (diagnostics / tests).
  std::uint64_t next_seq_index() const { return seq_index_; }

  // phy::RadioListener:
  void on_carrier(bool busy, SimTime at) override;
  void on_receive(const phy::Signal& signal) override;
  void on_receive_error(const phy::Signal& signal) override;
  void on_transmit_end(std::uint64_t signal_id) override;

 private:
  enum class SenderPhase : std::uint8_t {
    kIdle,        // no packet in service
    kContending,  // back-off pending or counting
    kTxRts,
    kWaitCts,
    kTxData,
    kWaitAck,
  };

  enum class OwnTxKind : std::uint8_t { kRts, kCts, kData, kAck };

  bool medium_idle() const;
  void start_service();                 // begin serving queue head
  void prepare_backoff();               // draw back-off for current attempt
  void reevaluate();                    // resume/freeze countdown
  void freeze_countdown();
  void backoff_complete();
  void transmit_frame(const Frame& frame, OwnTxKind kind);
  void transmit_payload(FramePtr frame, OwnTxKind kind);
  void schedule_response(const Frame& response, OwnTxKind kind);
  void handle_cts_timeout();
  void handle_ack_timeout();
  void handle_failure();                // shared retry/drop logic
  void finish_success();
  void schedule_wake(SimTime at);
  void update_nav(SimTime until, bool from_rts);

  sim::Simulator& sim_;
  phy::Radio& radio_;
  DcfParams params_;
  MacStats stats_;

  MacListener* listener_ = nullptr;
  std::vector<MacObserver*> observers_;

  VerifiableBackoff prs_;
  std::unique_ptr<BackoffPolicy> backoff_policy_;
  std::unique_ptr<AnnouncePolicy> announce_policy_;
  std::vector<NodeId> identity_aliases_;  // empty for every honest node

  std::deque<Frame> queue_;
  std::unique_ptr<Frame> current_;
  std::uint32_t attempt_ = 1;
  std::uint64_t seq_index_ = 0;

  SenderPhase phase_ = SenderPhase::kIdle;
  bool backoff_pending_ = false;   // a countdown remains to be completed
  bool counting_ = false;          // countdown in progress right now
  std::uint32_t remaining_slots_ = 0;
  SimTime count_start_ = 0;        // when the current idle countdown began
  sim::EventId finish_event_ = sim::kInvalidEvent;
  sim::EventId timeout_event_ = sim::kInvalidEvent;
  sim::EventId wake_event_ = sim::kInvalidEvent;
  SimTime wake_at_ = kTimeNever;

  SimTime nav_until_ = 0;
  SimTime eifs_until_ = 0;
  SimTime busy_recipient_until_ = 0;  // we owe CTS/DATA/ACK turns until then
  bool nav_basis_rts_ = false;     // NAV most recently set by an RTS
  std::uint64_t nav_epoch_ = 0;    // invalidates pending NAV-reset checks
  SimTime last_busy_rise_ = -1;    // most recent idle->busy edge

  // The half-duplex radio carries at most one own transmission at a time,
  // so a single inline slot tracks the in-flight signal's id and kind.
  std::uint64_t own_tx_id_ = 0;
  OwnTxKind own_tx_kind_ = OwnTxKind::kRts;
  bool own_tx_active_ = false;
  std::unordered_map<NodeId, std::uint64_t> delivered_from_;  // dedup cache
};

}  // namespace manet::mac
