// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper attaches an MD5 digest of the upcoming DATA frame to each RTS
// so monitors can verify that a retransmission really carries the same
// payload (and hence that the announced Attempt# is honest). MD5 is not
// collision-resistant by modern standards; it is used here exactly as the
// paper specifies, as a payload fingerprint.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace manet::crypto {

using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 context.
class Md5 {
 public:
  Md5();

  /// Absorbs `data` into the hash state.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalizes and returns the digest. The context must not be updated
  /// afterwards (reset() to reuse).
  Md5Digest finalize();

  /// Resets to the initial state.
  void reset();

  /// One-shot helpers.
  static Md5Digest hash(std::span<const std::uint8_t> data);
  static Md5Digest hash(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);
  Md5Digest digest_bytes() const;

  std::uint32_t state_[4];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// Lowercase hex rendering of a digest.
std::string to_hex(const Md5Digest& digest);

}  // namespace manet::crypto
