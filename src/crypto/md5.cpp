#include "crypto/md5.hpp"

#include <cstring>

namespace manet::crypto {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int c) {
  return (x << c) | (x >> (32 - c));
}

// Per-round shift amounts (RFC 1321 section 3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i+1))).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

}  // namespace

Md5::Md5() { reset(); }

void Md5::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[4 * i]) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  // Fully unrolled, the per-round branch chain folds away and kSine[i] /
  // kShift[i] / g become immediates — the digest is computed once per RTS,
  // which put this block at the top of the exchange profile.
#pragma GCC unroll 64
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(std::span<const std::uint8_t> data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }

  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }

  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, buffer_len_);
  }
}

void Md5::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Md5Digest Md5::digest_bytes() const {
  Md5Digest digest{};
  for (int i = 0; i < 4; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] & 0xFF);
    digest[4 * i + 1] = static_cast<std::uint8_t>((state_[i] >> 8) & 0xFF);
    digest[4 * i + 2] = static_cast<std::uint8_t>((state_[i] >> 16) & 0xFF);
    digest[4 * i + 3] = static_cast<std::uint8_t>((state_[i] >> 24) & 0xFF);
  }
  return digest;
}

Md5Digest Md5::finalize() {
  // Padding: a single 0x80 byte, zeros, then the 64-bit little-endian
  // bit count, aligning the total to a multiple of 64 bytes.
  const std::uint64_t bits = bit_count_;
  static constexpr std::uint8_t kPad[64] = {0x80};

  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  update(std::span<const std::uint8_t>(kPad, pad_len));

  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF);
  }
  update(std::span<const std::uint8_t>(length_bytes, 8));

  return digest_bytes();
}

Md5Digest Md5::hash(std::span<const std::uint8_t> data) {
  Md5 ctx;
  if (data.size() <= 55) {
    // Messages that pad into a single compression (the frame fingerprints
    // are 16 bytes) skip the incremental buffering entirely.
    std::uint8_t block[64] = {};
    if (!data.empty()) std::memcpy(block, data.data(), data.size());
    block[data.size()] = 0x80;
    const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
    for (int i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF);
    }
    ctx.process_block(block);
    return ctx.digest_bytes();
  }
  ctx.update(data);
  return ctx.finalize();
}

Md5Digest Md5::hash(std::string_view text) {
  Md5 ctx;
  ctx.update(text);
  return ctx.finalize();
}

std::string to_hex(const Md5Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace manet::crypto
