#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace manet::sim {

EventId Simulator::at(SimTime t, EventFn fn) {
  if (t < now_) throw std::invalid_argument("cannot schedule in the past");
  return queue_.schedule(t, std::move(fn));
}

std::uint64_t Simulator::loop(SimTime end) {
  std::uint64_t count = 0;
  while (!stopped_) {
    const SimTime t = queue_.next_time();
    if (t == kTimeNever || t > end) break;
    auto ev = queue_.pop();
    assert(ev.time >= now_ && "event queue yielded a past event");
    now_ = ev.time;
    ev.fn();
    ++count;
  }
  dispatched_ += count;
  return count;
}

std::uint64_t Simulator::run_until(SimTime end) {
  stopped_ = false;
  const std::uint64_t n = loop(end);
  if (!stopped_ && end > now_) now_ = end;
  return n;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  return loop(kTimeNever);
}

}  // namespace manet::sim
