// Pending-event set for the discrete-event kernel.
//
// A binary heap of small POD entries keyed by (time, sequence number). The
// sequence number makes dispatch order total and deterministic: events
// scheduled earlier run first among equal timestamps (FIFO), which is what
// protocol code expects.
//
// Callables live outside the heap in a slot table (reused via a free list)
// so heap sift operations move 24-byte PODs, not closures, and the
// small-buffer EventFn keeps typical MAC timers off the allocator entirely.
// An EventId encodes (slot, generation); the generation is bumped whenever
// a slot is cancelled or dispatched, so stale ids can never alias a reused
// slot — cancel() and pending() are O(1) with no hash table.
//
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// at pop time (detected by its stale generation). To bound memory under
// cancel-heavy back-off workloads, the heap is compacted in place whenever
// dead entries outnumber live ones, so heap size stays O(live events).
#pragma once

#include <cstdint>
#include <vector>

#include "util/small_function.hpp"
#include "util/types.hpp"

namespace manet::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// 48 bytes of inline storage covers every closure the simulator's hot
/// paths schedule (channel delivery fan-out, MAC timers); larger captures
/// fall back to one heap allocation, exactly like std::function always did.
using EventFn = util::SmallFunction<void(), 48>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a cancellable id (never
  /// kInvalidEvent).
  EventId schedule(SimTime t, EventFn fn);

  /// Cancels a pending event. Cancelling an already-dispatched, already-
  /// cancelled, or invalid id is a harmless no-op.
  void cancel(EventId id);

  /// True if `id` is scheduled and not yet dispatched or cancelled.
  bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].generation == generation_of(id);
  }

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  SimTime next_time();

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Dispatched {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Dispatched pop();

  /// Drops all pending events.
  void clear();

  /// Heap entries currently held, including lazily-cancelled (dead) ones.
  /// Compaction keeps this O(size()); exposed so tests can assert the
  /// bound under cancel-heavy workloads.
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  // An id packs the slot index (low 32 bits) and the slot's generation at
  // issue time (high 32 bits). Generations start at 1, so no id is ever 0.
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  struct Entry {  // 24-byte POD moved by heap sifts
    SimTime time;
    std::uint64_t seq;       // schedule order; total tie-break at equal times
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 1;  // bumped on cancel/dispatch; odd history fine
  };

  bool entry_live(const Entry& e) const {
    return slots_[e.slot].generation == e.generation;
  }
  void release_slot(std::uint32_t slot);
  void drop_dead_head();
  void compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace manet::sim
