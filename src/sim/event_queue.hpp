// Pending-event set for the discrete-event kernel.
//
// A binary heap keyed by (time, sequence number). The sequence number makes
// dispatch order total and deterministic: events scheduled earlier run
// first among equal timestamps (FIFO), which is what protocol code expects.
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// at pop time, keeping cancel() O(1) — MAC back-off logic cancels timers
// constantly. Liveness is tracked by a pending-id set, so cancelling an
// already-dispatched or never-issued id is a harmless no-op.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace manet::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a cancellable id (never
  /// kInvalidEvent).
  EventId schedule(SimTime t, EventFn fn);

  /// Cancels a pending event. Cancelling an already-dispatched, already-
  /// cancelled, or invalid id is a harmless no-op.
  void cancel(EventId id);

  /// True if `id` is scheduled and not yet dispatched or cancelled.
  bool pending(EventId id) const { return pending_.count(id) != 0; }

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of live events.
  std::size_t size() const { return pending_.size(); }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  SimTime next_time();

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Dispatched {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Dispatched pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void drop_dead_head();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace manet::sim
