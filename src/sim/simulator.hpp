// The discrete-event simulator: a clock plus the pending-event set.
//
// Single-threaded by design; determinism (given seeds) is a core property
// the test suite asserts. Components hold a Simulator& and schedule
// callbacks; there is no global singleton, so tests can run many
// simulations side by side.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace manet::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules at an absolute time (must be >= now()).
  EventId at(SimTime t, EventFn fn);

  /// Schedules after a non-negative delay.
  EventId after(SimDuration d, EventFn fn) { return at(now_ + d, std::move(fn)); }

  void cancel(EventId id) { queue_.cancel(id); }
  bool pending(EventId id) const { return queue_.pending(id); }

  /// Dispatches events with time <= `end`, then advances the clock to
  /// exactly `end`. Returns the number of events dispatched.
  std::uint64_t run_until(SimTime end);

  /// Dispatches until the event set is empty or stop() is called.
  std::uint64_t run();

  /// Makes run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  std::uint64_t loop(SimTime end);

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t dispatched_ = 0;
};

}  // namespace manet::sim
