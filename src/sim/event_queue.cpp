#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace manet::sim {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) { pending_.erase(id); }

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && pending_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_head();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Dispatched EventQueue::pop() {
  drop_dead_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return Dispatched{e.time, e.id, std::move(e.fn)};
}

void EventQueue::clear() {
  heap_.clear();
  pending_.clear();
}

}  // namespace manet::sim
