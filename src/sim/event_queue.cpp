#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace manet::sim {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(Entry{t, next_seq_++, slot, s.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return make_id(slot, s.generation);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.generation;            // invalidates the issued id and its heap entry
  if (s.generation == 0) ++s.generation;  // ids are never generation 0
  free_slots_.push_back(slot);
  --live_;
}

void EventQueue::cancel(EventId id) {
  if (!pending(id)) return;
  release_slot(slot_of(id));
  // Lazily-cancelled entries must not accumulate: a MAC that schedules and
  // cancels timers in a loop would otherwise grow the heap without bound.
  if (heap_.size() > 64 && heap_.size() > 2 * live_) compact();
}

void EventQueue::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !entry_live(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_head();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Dispatched EventQueue::pop() {
  drop_dead_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  Dispatched d{e.time, make_id(e.slot, e.generation), std::move(slots_[e.slot].fn)};
  release_slot(e.slot);
  return d;
}

void EventQueue::clear() {
  for (const Entry& e : heap_) {
    if (entry_live(e)) release_slot(e.slot);
  }
  heap_.clear();
  assert(live_ == 0);
}

}  // namespace manet::sim
