// Radio propagation: log-distance path loss with optional log-normal
// shadowing — the channel model of the paper (Table 1 / Section 5):
//
//   Pr(d) [dB] = Pr(d0) - 10 beta log10(d/d0) + X_sigma
//
// beta is the path-loss exponent and X_sigma a zero-mean Gaussian in dB.
// The paper's experiments use free space (beta = 2, sigma = 0), which makes
// the 250 m transmission range and 550 m sensing range deterministic disks;
// sigma > 0 reproduces ns-2's shadowing model, where a fresh deviate is
// drawn per reception.
//
// Reception/carrier-sense thresholds are expressed as the deterministic
// received power at the configured ranges, so configuring ranges *is*
// configuring thresholds.
#pragma once

#include "geom/vec2.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::phy {

struct PropagationParams {
  double tx_power_dbm = 15.0;
  double path_loss_exponent = 2.0;   // beta
  double shadowing_sigma_db = 0.0;   // sigma_dB (0 = free space, the paper's setting)
  double reference_distance_m = 1.0; // d0
  double reference_loss_db = 31.67;  // Friis loss at d0 for 914 MHz
  double tx_range_m = 250.0;         // decodable range (Table 1)
  double cs_range_m = 550.0;         // sensing/interference range (Table 1)
  /// Minimum power advantage for a frame to survive a concurrent arrival.
  double capture_threshold_db = 10.0;
};

class Propagation {
 public:
  Propagation(const PropagationParams& params, std::uint64_t shadowing_seed);

  /// Deterministic mean received power at distance d (dBm).
  double mean_rx_power_dbm(double distance_m) const;

  /// Received power for one transmission event, including a fresh shadowing
  /// deviate when sigma > 0 (matching ns-2, which redraws per reception).
  double rx_power_dbm(const geom::Vec2& tx, const geom::Vec2& rx);

  /// Power below which a signal is inaudible even as energy.
  double cs_threshold_dbm() const { return cs_threshold_dbm_; }

  /// Power at or above which a frame is decodable.
  double rx_threshold_dbm() const { return rx_threshold_dbm_; }

  const PropagationParams& params() const { return params_; }

 private:
  PropagationParams params_;
  double cs_threshold_dbm_;
  double rx_threshold_dbm_;
  util::Xoshiro256ss shadowing_rng_;
};

}  // namespace manet::phy
