// PHY fault injection: seeded, deterministic channel impairments.
//
// The paper's evaluation assumes a monitor decodes every RTS its tagged
// neighbor sends; real channels do not cooperate. A FaultInjector composed
// into Channel::transmit perturbs per-receiver deliveries three ways:
//
//  * decode failures — the frame arrives as anonymous energy (carrier sense
//    fires, nothing decodes), either i.i.d. per delivery or bursty via a
//    per-link Gilbert–Elliott chain;
//  * field corruption — the frame is delivered with mangled verifiable-RTS
//    fields and marked corrupted, so the locked reception ends in
//    on_receive_error (the FCS catches bit errors; receivers must never
//    interpret fields of a corrupted frame);
//  * radio outages — a node goes completely deaf for [start, stop): no
//    energy, no frames (models a sleeping/failed receiver).
//
// All decisions come from one dedicated RNG stream (independent from
// traffic/mobility/shadowing), so a fault schedule is a pure function of
// (plan, seed): identical across runs, and entirely absent — zero draws —
// when the plan is disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "phy/signal.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace manet::phy {

/// What happened to one per-receiver delivery of a decodable frame.
enum class DecodeFate : std::uint8_t { kIntact, kLost, kCorrupted };

/// Declarative impairment schedule (part of ScenarioConfig).
struct FaultPlan {
  /// I.i.d. per-delivery decode-failure probability.
  double loss_probability = 0.0;

  /// Gilbert–Elliott bursty decode failures, one chain per (tx, rx) link.
  /// The chain advances one step per delivered frame; expected burst length
  /// in the bad state is 1 / ge_p_bad_to_good frames.
  bool gilbert_elliott = false;
  double ge_p_good_to_bad = 0.05;
  double ge_p_bad_to_good = 0.25;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;

  /// Per-delivery probability that the frame decodes with corrupted
  /// contents (mangled fields + FCS failure) instead of intact.
  double corrupt_probability = 0.0;

  /// Scheduled receiver outages: `node` hears nothing during [start, stop).
  struct Outage {
    NodeId node = kInvalidNode;
    SimTime start = 0;
    SimTime stop = 0;
  };
  std::vector<Outage> outages;

  /// Extra stream selector mixed into the injector seed (lets one scenario
  /// seed host several independent fault schedules).
  std::uint64_t seed = 0;

  bool enabled() const {
    return loss_probability > 0.0 || gilbert_elliott ||
           corrupt_probability > 0.0 || !outages.empty();
  }
};

/// Draws per-delivery fates from the plan. One instance per Channel;
/// installed via Channel::install_faults (which also schedules the outage
/// toggles). Deliberately not copyable: the GE link states and the RNG
/// stream are the fault schedule.
class FaultInjector {
 public:
  /// Maps a payload to its corrupted replacement (higher layers install a
  /// frame-aware mangler; the PHY stays payload-agnostic).
  using PayloadCorruptor =
      std::function<PayloadPtr(const PayloadPtr&, util::Xoshiro256ss&)>;

  FaultInjector(const FaultPlan& plan, std::uint64_t seed)
      : plan_(plan), rng_(util::mix64(seed ^ plan.seed ^ 0xFA017EC7ULL)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  void set_corruptor(PayloadCorruptor corruptor) {
    corruptor_ = std::move(corruptor);
  }

  /// Fate of the next delivery on link tx -> rx. Advances the link's GE
  /// chain (when enabled) and the fault RNG stream.
  DecodeFate decode_fate(NodeId tx, NodeId rx);

  /// The corrupted replacement payload (original when no corruptor is set).
  PayloadPtr corrupt_payload(const PayloadPtr& original);

  /// Fate draws made so far (diagnostics: must stay 0 for a disabled plan).
  std::uint64_t decisions() const { return decisions_; }

 private:
  static std::uint64_t link_key(NodeId tx, NodeId rx) {
    return (static_cast<std::uint64_t>(tx) << 32) | rx;
  }

  FaultPlan plan_;
  util::Xoshiro256ss rng_;
  std::unordered_map<std::uint64_t, bool> link_bad_;  // GE state per link
  PayloadCorruptor corruptor_;
  std::uint64_t decisions_ = 0;
};

}  // namespace manet::phy
