#include "phy/joint_tracker.hpp"

namespace manet::phy {

JointBusyTracker::JointBusyTracker(Radio& s, Radio& r)
    : s_probe_(*this, /*is_s=*/true), r_probe_(*this, /*is_s=*/false) {
  s.add_listener(&s_probe_);
  r.add_listener(&r_probe_);
  s_busy_ = s.carrier_busy();
  r_busy_ = r.carrier_busy();
}

void JointBusyTracker::advance(SimTime to) {
  if (to > last_) {
    acc_[index(s_busy_, r_busy_)] += to - last_;
    last_ = to;
  }
}

void JointBusyTracker::flush(SimTime at) { advance(at); }

void JointBusyTracker::reset(SimTime at) {
  advance(at);
  acc_ = {};
}

double JointBusyTracker::p_s_busy_given_r_idle() const {
  const SimDuration r_idle = duration(false, false) + duration(true, false);
  if (r_idle == 0) return 0.0;
  return static_cast<double>(duration(true, false)) / static_cast<double>(r_idle);
}

double JointBusyTracker::p_s_idle_given_r_busy() const {
  const SimDuration r_busy = duration(false, true) + duration(true, true);
  if (r_busy == 0) return 0.0;
  return static_cast<double>(duration(false, true)) / static_cast<double>(r_busy);
}

double JointBusyTracker::r_busy_fraction() const {
  const SimDuration total = acc_[0] + acc_[1] + acc_[2] + acc_[3];
  if (total == 0) return 0.0;
  const SimDuration r_busy = duration(false, true) + duration(true, true);
  return static_cast<double>(r_busy) / static_cast<double>(total);
}

}  // namespace manet::phy
