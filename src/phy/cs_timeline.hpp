// Carrier-sense timeline: the record of busy/idle transitions one node's
// radio perceives, with slot-accounting queries.
//
// This is the monitor's raw material: the paper's monitor counts the idle
// (I) and busy (B) slots it observes between two transmissions of the
// tagged neighbor, and the ARMA filter consumes per-window busy fractions.
// History older than `retention` is pruned so memory stays bounded over
// 300 s runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "phy/radio.hpp"
#include "util/types.hpp"

namespace manet::phy {

/// Full internal state of a CsTimeline, for exact capture/restore. The
/// trace recorder (src/detect/trace.hpp) snapshots a node's timeline at
/// monitor-attach time so a replayed run sees the identical pre-attach
/// carrier history (the ARMA filter's first batches read back before the
/// attach instant).
struct CsTimelineSnapshot {
  SimDuration retention = 0;
  bool initial_busy = false;
  bool current_busy = false;
  bool in_outage = false;
  SimTime last_edge = 0;
  SimTime outage_start = 0;
  SimDuration cum_busy = 0;
  std::vector<std::pair<SimTime, bool>> transitions;      // (at, busy)
  std::vector<std::pair<SimTime, SimTime>> outages;       // completed spans

  bool operator==(const CsTimelineSnapshot&) const = default;
};

struct SlotCounts {
  std::int64_t idle = 0;
  std::int64_t busy = 0;
  /// Number of distinct idle periods in the window (each one costs the
  /// counting station a DIFS of deferral before countdown resumes).
  std::int64_t idle_periods = 0;

  std::int64_t total() const { return idle + busy; }
};

class CsTimeline : public RadioListener {
 public:
  /// Default hard caps. 2^18 transitions x 16 B = 4 MiB/node worst case —
  /// far above what any 10 s retention window accumulates at paper loads,
  /// so the caps are pure insurance; scale scenarios lower them explicitly
  /// (see ScenarioConfig::timeline_max_transitions).
  static constexpr std::size_t kDefaultMaxTransitions = std::size_t{1} << 18;
  static constexpr std::size_t kDefaultMaxOutages = std::size_t{1} << 12;

  /// Counters surfaced so memory-ceiling tests (and cache-stats readouts)
  /// can assert the budgets actually bound retention.
  struct BudgetStats {
    std::uint64_t compactions = 0;           // budget-forced fold-ins
    std::uint64_t dropped_transitions = 0;   // transitions folded by budget
    std::uint64_t dropped_outages = 0;       // outage spans dropped by budget
    std::size_t peak_transitions = 0;        // high-water retained count
    std::size_t peak_outages = 0;
  };

  explicit CsTimeline(SimDuration retention = 10 * kSecond,
                      std::size_t max_transitions = kDefaultMaxTransitions,
                      std::size_t max_outages = kDefaultMaxOutages)
      : retention_(retention),
        max_transitions_(std::max<std::size_t>(max_transitions, 2)),
        max_outages_(std::max<std::size_t>(max_outages, 1)) {}

  /// Attach to a radio: radio.add_listener(&timeline). Initial state is
  /// idle at time 0.

  // RadioListener:
  void on_carrier(bool busy, SimTime at) override;
  void on_receive(const Signal&) override {}
  void on_receive_error(const Signal&) override {}
  void on_transmit_end(std::uint64_t) override {}
  void on_outage(bool deaf, SimTime at) override;

  bool busy_at_end() const { return current_busy_; }

  /// Time within [from, to] the radio was deaf (fault-injected outage).
  /// The recorded timeline shows idle air during an outage; monitors use
  /// this query to discard observation windows that overlap one instead of
  /// mistaking deafness for countable idle time.
  SimDuration outage_time(SimTime from, SimTime to) const;

  bool in_outage() const { return in_outage_; }

  /// Busy time within [from, to] given the recorded transitions. `to` must
  /// not precede `from`; times beyond the last transition extend the
  /// current state.
  SimDuration busy_time(SimTime from, SimTime to) const;

  /// Classifies the window [from, to] into whole slots of length `slot`:
  /// a slot is busy if the channel was busy at any point inside it
  /// (conservative, matching how a station's countdown actually freezes).
  SlotCounts count_slots(SimTime from, SimTime to, SimDuration slot) const;

  /// Busy fraction of [from, to] (0 if empty window).
  double busy_fraction(SimTime from, SimTime to) const;

  /// Maximal busy intervals intersected with [from, to].
  std::vector<std::pair<SimTime, SimTime>> busy_intervals(SimTime from,
                                                          SimTime to) const;

  /// Allocation-free variant: clears and refills `out` (capacity is kept
  /// across calls) with the same intervals busy_intervals returns.
  void busy_intervals_into(SimTime from, SimTime to,
                           std::vector<std::pair<SimTime, SimTime>>& out) const;

  /// Cumulative busy time since t=0 up to `at` (which must be >= the last
  /// recorded transition). Unlike the windowed queries this survives
  /// pruning, so long-horizon busy fractions (a whole run's traffic
  /// intensity) stay exact: fraction = (cum(b) - cum(a)) / (b - a).
  SimDuration cumulative_busy(SimTime at) const;

  /// Total idle time within [from, to] that a deferring station could have
  /// spent counting down: each maximal idle period inside the window is
  /// charged one DIFS of deferral (802.11 resumes countdown only after the
  /// medium has been idle for DIFS). This is the monitor's denominator for
  /// converting observed idle time into candidate back-off slots.
  SimDuration countable_idle_time(SimTime from, SimTime to, SimDuration difs) const;

  // --- Reference oracle ------------------------------------------------------
  // Naive implementations retained verbatim from before the single-sweep
  // optimization. Property tests assert the optimized queries agree with
  // them on arbitrary transition histories; they are NOT meant for
  // production use (count_slots_reference is O(W log T) per window).
  SlotCounts count_slots_reference(SimTime from, SimTime to, SimDuration slot) const;
  SimDuration busy_time_reference(SimTime from, SimTime to) const;
  SimDuration countable_idle_time_reference(SimTime from, SimTime to,
                                            SimDuration difs) const;
  SimDuration outage_time_reference(SimTime from, SimTime to) const;

  std::size_t recorded_transitions() const { return transitions_.size(); }

  const BudgetStats& budget_stats() const { return budget_stats_; }
  std::size_t max_transitions() const { return max_transitions_; }

  /// Bytes retained by the transition and outage histories (the per-node
  /// quantity the memory-ceiling test bounds).
  std::size_t retained_memory_bytes() const {
    return transitions_.size() * sizeof(Transition) +
           outages_.size() * sizeof(OutageSpan);
  }

  /// Exact state capture / restore (see CsTimelineSnapshot). restore()
  /// replaces every field, including the retention horizon.
  CsTimelineSnapshot snapshot() const;
  void restore(const CsTimelineSnapshot& snap);

 private:
  void prune(SimTime now);
  /// Channel state at absolute time t (assumes t >= earliest retained).
  bool busy_at(SimTime t) const;

  /// One merged walk over the retained transitions: invokes
  /// `segment(seg_start, seg_end, busy)` for every maximal constant-state
  /// span intersected with [from, to], in order. All windowed queries share
  /// this cursor-based sweep (one upper_bound, then a linear scan), so each
  /// costs O(log T + transitions inside the window).
  template <class SegmentFn>
  void for_each_segment(SimTime from, SimTime to, SegmentFn&& segment) const {
    SimTime cursor = from;
    auto it = std::upper_bound(
        transitions_.begin(), transitions_.end(), from,
        [](SimTime v, const Transition& tr) { return v < tr.at; });
    bool state = it == transitions_.begin() ? initial_busy_ : std::prev(it)->busy;
    for (; it != transitions_.end() && it->at < to; ++it) {
      segment(cursor, it->at, state);
      cursor = it->at;
      state = it->busy;
    }
    segment(cursor, to, state);
  }

  struct Transition {
    SimTime at;
    bool busy;  // state from `at` onward
  };

  SimDuration retention_;
  std::size_t max_transitions_ = kDefaultMaxTransitions;
  std::size_t max_outages_ = kDefaultMaxOutages;
  std::uint32_t prune_tick_ = 0;  // amortizes retention pruning (every 32 edges)
  BudgetStats budget_stats_;
  std::deque<Transition> transitions_;  // sorted by time
  bool current_busy_ = false;
  bool initial_busy_ = false;  // state before the first retained transition
  SimTime last_edge_ = 0;      // time of the most recent transition
  SimDuration cum_busy_ = 0;   // busy time accumulated before last_edge_

  struct OutageSpan {
    SimTime start;
    SimTime stop;
  };
  std::deque<OutageSpan> outages_;  // completed spans, sorted, pruned by age
  bool in_outage_ = false;
  SimTime outage_start_ = 0;
};

}  // namespace manet::phy
