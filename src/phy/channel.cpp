#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "phy/impairments.hpp"
#include "phy/radio.hpp"

namespace manet::phy {

namespace {
// Below this many radios the grid's 3x3 cell probe costs more than simply
// walking every attach index; the link-budget cache applies either way.
constexpr std::size_t kDirectScanRadios = 16;
}  // namespace

Channel::Channel(sim::Simulator& simulator, Propagation& propagation,
                 const PositionProvider& positions)
    : sim_(simulator), prop_(propagation), positions_(positions) {
  // Slack sized so rebuilds stay rare (at 20 m/s a quarter of the 550 m
  // sensing range buys ~6.9 s between rebuilds) while keeping the candidate
  // neighborhood a 3x3 block of cells.
  slack_m_ = 0.25 * prop_.params().cs_range_m;
  cell_m_ = prop_.params().cs_range_m + slack_m_;
  const double limit = prop_.params().cs_range_m + slack_m_;
  prefilter_limit_sq_ = limit * limit;
}

void Channel::attach(Radio* radio) {
  if (by_id_.count(radio->id()) != 0) {
    throw std::invalid_argument("duplicate radio id attached to channel");
  }
  const auto index = static_cast<std::uint32_t>(radios_.size());
  by_id_.emplace(radio->id(), index);
  radio->set_channel_index(index);
  radios_.push_back(radio);
}

void Channel::install_faults(FaultInjector& faults) {
  faults_ = &faults;
  for (const FaultPlan::Outage& o : faults.plan().outages) {
    auto it = by_id_.find(o.node);
    if (it == by_id_.end()) {
      throw std::invalid_argument("fault outage names an unattached radio");
    }
    Radio* radio = radios_[it->second];
    sim_.at(o.start, [radio] { radio->set_outage(true); });
    sim_.at(o.stop, [radio] { radio->set_outage(false); });
  }
}

bool Channel::grid_usable() const {
  // Shadowing draws one RNG deviate per rx_power_dbm call and can lift a
  // node beyond cs_range above the threshold, so any pre-filtering would
  // change both the draw sequence and the audible set: full scan only.
  // An unbounded speed means recorded cells can go arbitrarily stale.
  return spatial_index_enabled_ && prop_.params().shadowing_sigma_db == 0.0 &&
         positions_.max_speed_mps() != kUnboundedSpeed;
}

void Channel::maybe_rebuild_grid(SimTime now) {
  if (grid_radios_ == radios_.size()) {
    const double max_speed = positions_.max_speed_mps();
    if (max_speed <= 0.0) return;  // static: never stale
    const double drift_m =
        time_to_seconds(now - grid_built_at_) * max_speed;
    if (drift_m <= slack_m_) return;  // recorded cells still conservative
  }
  grid_.clear();
  grid_pos_.resize(radios_.size());
  const double inv_cell = 1.0 / cell_m_;
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    const geom::Vec2 p = positions_.position(radios_[i]->id(), now);
    grid_pos_[i] = p;
    const auto cx = static_cast<std::int32_t>(std::floor(p.x * inv_cell));
    const auto cy = static_cast<std::int32_t>(std::floor(p.y * inv_cell));
    grid_[cell_key(cx, cy)].push_back(i);
  }
  grid_built_at_ = now;
  grid_radios_ = radios_.size();
  ++cache_stats_.grid_rebuilds;
}

void Channel::collect_candidates(const geom::Vec2& tx_pos,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  const double inv_cell = 1.0 / cell_m_;
  const auto cx = static_cast<std::int32_t>(std::floor(tx_pos.x * inv_cell));
  const auto cy = static_cast<std::int32_t>(std::floor(tx_pos.y * inv_cell));
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(cell_key(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      for (const std::uint32_t idx : it->second) {
        const geom::Vec2 d = grid_pos_[idx] - tx_pos;
        if (d.x * d.x + d.y * d.y <= prefilter_limit_sq_) {
          out.push_back(idx);
        }
      }
    }
  }
  // Attach order: the fault injector's RNG stream must be consumed in the
  // same receiver order as the reference full scan.
  std::sort(out.begin(), out.end());
}

double Channel::link_power(std::uint32_t tx_idx, std::uint32_t rx_idx,
                           std::uint64_t tx_epoch, const geom::Vec2& tx_pos,
                           SimTime at) {
  const std::size_t n = radios_.size();
  if (tx_epoch != kMovingEpoch) {
    const std::uint64_t rx_epoch =
        positions_.position_epoch(radios_[rx_idx]->id(), at);
    if (rx_epoch != kMovingEpoch) {
      if (link_cache_.size() != n * n) {
        link_cache_.assign(n * n, LinkCacheEntry{});
      }
      LinkCacheEntry& e = link_cache_[tx_idx * n + rx_idx];
      if (e.tx_epoch == tx_epoch && e.rx_epoch == rx_epoch) {
        ++cache_stats_.link_budget_hits;
        return e.power_dbm;
      }
      const double power = prop_.rx_power_dbm(
          tx_pos, positions_.position(radios_[rx_idx]->id(), at));
      ++cache_stats_.link_budget_misses;
      e = LinkCacheEntry{tx_epoch, rx_epoch, power};
      // Path loss depends only on distance: fill the reverse link too.
      link_cache_[static_cast<std::size_t>(rx_idx) * n + tx_idx] =
          LinkCacheEntry{rx_epoch, tx_epoch, power};
      return power;
    }
  }
  ++cache_stats_.link_budget_misses;
  return prop_.rx_power_dbm(tx_pos,
                            positions_.position(radios_[rx_idx]->id(), at));
}

std::uint64_t Channel::transmit(Radio* tx, PayloadPtr payload, SimDuration airtime) {
  const std::uint64_t id = next_signal_id_++;
  const NodeId tx_id = tx->id();
  const SimTime start = sim_.now();
  const SimTime end = start + airtime;
  const geom::Vec2 tx_pos = positions_.position(tx_id, start);
  // The fault RNG stream is consumed only for enabled plans, keeping
  // fault-free runs bit-identical to a build without the injector.
  const bool faulty = faults_ != nullptr && faults_->enabled();
  const double cs_threshold = prop_.cs_threshold_dbm();
  const double base_rx_threshold = prop_.rx_threshold_dbm();
  const double capture_db = prop_.params().capture_threshold_db;

  std::vector<Radio*> receivers;
  if (!receiver_pool_.empty()) {
    receivers = std::move(receiver_pool_.back());
    receiver_pool_.pop_back();
  }

  auto deliver = [&](Radio* rx, double power) {
    Signal signal{id, tx_id, payload, start, end, power};
    double rx_threshold = base_rx_threshold;
    if (faulty && power >= rx_threshold) {
      switch (faults_->decode_fate(tx_id, rx->id())) {
        case DecodeFate::kIntact:
          break;
        case DecodeFate::kLost:
          // Anonymous energy: audible for carrier sense, never decodable —
          // the monitor's undecodable-busy case, now on demand.
          rx_threshold = std::numeric_limits<double>::infinity();
          break;
        case DecodeFate::kCorrupted:
          signal.payload = faults_->corrupt_payload(payload);
          signal.corrupted = true;
          break;
      }
    }
    rx->signal_start(signal, rx_threshold, capture_db);
    receivers.push_back(rx);
  };

  if (grid_usable()) {
    // Take the scratch buffer: signal_start below can re-enter transmit(),
    // and the nested call must not rewrite the list this call iterates.
    std::vector<std::uint32_t> candidates = std::move(candidates_scratch_);
    candidates_scratch_ = {};
    if (radios_.size() <= kDirectScanRadios) {
      // Tiny topology: walking every radio is cheaper than the 3x3 cell
      // probe, and the per-pair budgets below still come from the cache.
      // "Every index, attach order" is trivially the grid's superset.
      for (std::uint32_t i = 0; i < radios_.size(); ++i) candidates.push_back(i);
    } else {
      maybe_rebuild_grid(start);
      collect_candidates(tx_pos, candidates);
    }
    receivers.reserve(candidates.size());
    const std::uint32_t tx_idx = tx->channel_index();
    const std::uint64_t tx_epoch = positions_.position_epoch(tx_id, start);
    for (const std::uint32_t rx_idx : candidates) {
      Radio* rx = radios_[rx_idx];
      if (rx_idx == tx_idx) continue;
      if (rx->in_outage()) continue;  // deaf: not even energy arrives
      const double power = link_power(tx_idx, rx_idx, tx_epoch, tx_pos, start);
      if (power < cs_threshold) continue;  // inaudible
      deliver(rx, power);
    }
    // Recycle the buffer (the innermost return wins; deeper buffers are
    // simply dropped — nesting is rare).
    candidates.clear();
    candidates_scratch_ = std::move(candidates);
  } else {
    // Reference path: exact original full scan (also the only correct path
    // under shadowing, where every delivery draws a shadowing deviate).
    ++cache_stats_.full_scans;
    receivers.reserve(radios_.size());
    for (Radio* rx : radios_) {
      if (rx == tx) continue;
      if (rx->in_outage()) continue;
      const geom::Vec2 rx_pos = positions_.position(rx->id(), start);
      const double power = prop_.rx_power_dbm(tx_pos, rx_pos);
      if (power < cs_threshold) continue;
      deliver(rx, power);
    }
  }

  // One end-of-air event finishes every delivery and the transmitter, in
  // the same relative order the per-receiver events used to run (they were
  // scheduled back-to-back at `end`, so no foreign event could interleave).
  // The emptied receiver list goes back to the pool afterwards.
  sim_.at(end, [this, tx, id, receivers = std::move(receivers)]() mutable {
    for (Radio* rx : receivers) rx->signal_end(id);
    tx->own_transmit_end(id);
    receivers.clear();
    if (receiver_pool_.size() < 64) receiver_pool_.push_back(std::move(receivers));
  });
  return id;
}

}  // namespace manet::phy
