#include "phy/channel.hpp"

#include <limits>
#include <stdexcept>

#include "phy/impairments.hpp"
#include "phy/radio.hpp"

namespace manet::phy {

Channel::Channel(sim::Simulator& simulator, Propagation& propagation,
                 const PositionProvider& positions)
    : sim_(simulator), prop_(propagation), positions_(positions) {}

void Channel::attach(Radio* radio) {
  if (by_id_.count(radio->id()) != 0) {
    throw std::invalid_argument("duplicate radio id attached to channel");
  }
  radios_.push_back(radio);
  by_id_.emplace(radio->id(), radio);
}

void Channel::install_faults(FaultInjector& faults) {
  faults_ = &faults;
  for (const FaultPlan::Outage& o : faults.plan().outages) {
    auto it = by_id_.find(o.node);
    if (it == by_id_.end()) {
      throw std::invalid_argument("fault outage names an unattached radio");
    }
    Radio* radio = it->second;
    sim_.at(o.start, [radio] { radio->set_outage(true); });
    sim_.at(o.stop, [radio] { radio->set_outage(false); });
  }
}

std::uint64_t Channel::transmit(NodeId tx, PayloadPtr payload, SimDuration airtime) {
  const std::uint64_t id = next_signal_id_++;
  const SimTime start = sim_.now();
  const SimTime end = start + airtime;
  const geom::Vec2 tx_pos = positions_.position(tx, start);
  // The fault RNG stream is consumed only for enabled plans, keeping
  // fault-free runs bit-identical to a build without the injector.
  const bool faulty = faults_ != nullptr && faults_->enabled();

  for (Radio* rx : radios_) {
    if (rx->id() == tx) continue;
    if (rx->in_outage()) continue;  // deaf: not even energy arrives
    const geom::Vec2 rx_pos = positions_.position(rx->id(), start);
    const double power = prop_.rx_power_dbm(tx_pos, rx_pos);
    if (power < prop_.cs_threshold_dbm()) continue;  // inaudible

    Signal signal{id, tx, payload, start, end, power};
    double rx_threshold = prop_.rx_threshold_dbm();
    if (faulty && power >= rx_threshold) {
      switch (faults_->decode_fate(tx, rx->id())) {
        case DecodeFate::kIntact:
          break;
        case DecodeFate::kLost:
          // Anonymous energy: audible for carrier sense, never decodable —
          // the monitor's undecodable-busy case, now on demand.
          rx_threshold = std::numeric_limits<double>::infinity();
          break;
        case DecodeFate::kCorrupted:
          signal.payload = faults_->corrupt_payload(payload);
          signal.corrupted = true;
          break;
      }
    }
    rx->signal_start(signal, rx_threshold, prop_.params().capture_threshold_db);
    sim_.at(end, [rx, signal] { rx->signal_end(signal); });
  }

  Radio* self = by_id_.at(tx);
  sim_.at(end, [self, id] { self->own_transmit_end(id); });
  return id;
}

}  // namespace manet::phy
