#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>

#include "phy/impairments.hpp"
#include "phy/radio.hpp"
#include "util/rng.hpp"

namespace manet::phy {

namespace {
// Below this many radios the grid's 3x3 cell probe costs more than simply
// walking every attach index; the link-budget cache applies either way.
constexpr std::size_t kDirectScanRadios = 16;

// Pad added to the carrier-sense range when sizing incremental cells and
// audibility windows. It absorbs every inexactness the incremental path
// tolerates — motion-prediction FP noise (~1e-9 m), deadline rounding
// (≤ 1 ns of travel) — with ~9 orders of magnitude to spare, so "outside
// the padded radius" always implies "strictly beyond cs_range", where the
// monotone path-loss model guarantees inaudibility.
constexpr double kCellPadM = 1.0;

// Pair-cache sizing: a power of two near 256 slots per radio — roughly 2x
// the live parked (tx, cs-candidate) pair population at the scale
// scenarios' density, which a direct-mapped cache needs to keep its hit
// rate high — floored so small topologies stay collision-free and capped
// so 10k nodes retain ~6 KB of pair cache per node (2^21 slots x 32 B =
// 64 MB total).
constexpr std::size_t kPairSlotsPerRadio = 256;
constexpr std::size_t kPairSlotsMin = 1u << 12;
constexpr std::size_t kPairSlotsMax = 1u << 21;

std::size_t pair_cache_capacity(std::size_t radios) {
  std::size_t want = radios * kPairSlotsPerRadio;
  want = std::max(want, kPairSlotsMin);
  want = std::min(want, kPairSlotsMax);
  std::size_t cap = 1;
  while (cap < want) cap <<= 1;
  return cap;
}
}  // namespace

Channel::IndexMode Channel::parse_index_mode(std::string_view name) {
  if (name == "auto") return IndexMode::kAuto;
  if (name == "incremental") return IndexMode::kIncremental;
  if (name == "rebuild") return IndexMode::kRebuild;
  if (name == "scan") return IndexMode::kFullScan;
  throw std::invalid_argument(
      "unknown channel index mode '" + std::string(name) +
      "' (expected auto|incremental|rebuild|scan)");
}

const char* Channel::index_mode_name(IndexMode mode) {
  switch (mode) {
    case IndexMode::kAuto: return "auto";
    case IndexMode::kIncremental: return "incremental";
    case IndexMode::kRebuild: return "rebuild";
    case IndexMode::kFullScan: return "scan";
  }
  return "?";
}

Channel::Channel(sim::Simulator& simulator, Propagation& propagation,
                 const PositionProvider& positions)
    : sim_(simulator), prop_(propagation), positions_(positions) {
  // kRebuild sizing: slack sized so rebuilds stay rare (at 20 m/s a quarter
  // of the 550 m sensing range buys ~6.9 s between rebuilds) while keeping
  // the candidate neighborhood a 3x3 block of cells.
  slack_m_ = 0.25 * prop_.params().cs_range_m;
  cell_m_ = prop_.params().cs_range_m + slack_m_;
  const double limit = prop_.params().cs_range_m + slack_m_;
  prefilter_limit_sq_ = limit * limit;
  // kIncremental sizing: cells only need to cover the padded sensing range
  // (staleness is handled by migration deadlines, not slack), so candidate
  // sets shrink ~(687.5/551)^2 vs the rebuild grid.
  inc_cell_m_ = prop_.params().cs_range_m + kCellPadM;
  // Candidate prefilter radius: 1 m of slack absorbs the FP rounding of a
  // predicted position (ref + v*dt vs the provider's own expression), so a
  // predicted distance beyond this limit proves the true distance exceeds
  // the padded sensing range — the exact claim the audibility window makes.
  const double predict_limit = inc_cell_m_ + 1.0;
  predict_limit_sq_ = predict_limit * predict_limit;
}

void Channel::attach(Radio* radio) {
  if (by_id_.count(radio->id()) != 0) {
    throw std::invalid_argument("duplicate radio id attached to channel");
  }
  const auto index = static_cast<std::uint32_t>(radios_.size());
  by_id_.emplace(radio->id(), index);
  radio->set_channel_index(index);
  radios_.push_back(radio);
}

void Channel::install_faults(FaultInjector& faults) {
  faults_ = &faults;
  for (const FaultPlan::Outage& o : faults.plan().outages) {
    auto it = by_id_.find(o.node);
    if (it == by_id_.end()) {
      throw std::invalid_argument("fault outage names an unattached radio");
    }
    Radio* radio = radios_[it->second];
    sim_.at(o.start, [radio] { radio->set_outage(true); });
    sim_.at(o.stop, [radio] { radio->set_outage(false); });
  }
}

Channel::IndexMode Channel::effective_mode() const {
  // Shadowing draws one RNG deviate per rx_power_dbm call and can lift a
  // node beyond cs_range above the threshold, so any pre-filtering would
  // change both the draw sequence and the audible set: full scan only.
  if (prop_.params().shadowing_sigma_db != 0.0) return IndexMode::kFullScan;
  switch (index_mode_) {
    case IndexMode::kFullScan:
      return IndexMode::kFullScan;
    case IndexMode::kRebuild:
      // An unbounded speed means recorded cells can go arbitrarily stale.
      return positions_.max_speed_mps() == kUnboundedSpeed
                 ? IndexMode::kFullScan
                 : IndexMode::kRebuild;
    case IndexMode::kIncremental:
      return positions_.piecewise_linear() ? IndexMode::kIncremental
                                           : IndexMode::kFullScan;
    case IndexMode::kAuto:
      break;
  }
  if (positions_.piecewise_linear() && radios_.size() > kDirectScanRadios) {
    return IndexMode::kIncremental;
  }
  if (positions_.max_speed_mps() != kUnboundedSpeed) return IndexMode::kRebuild;
  return IndexMode::kFullScan;
}

std::int32_t Channel::cell_coord(double v) const {
  const double c = std::floor(v / inc_cell_m_);
  if (!(c >= -2147483000.0 && c <= 2147483000.0)) {
    throw std::invalid_argument(
        "node position overflows spatial-index cell coordinates");
  }
  return static_cast<std::int32_t>(c);
}

// ---------------------------------------------------------------------------
// kRebuild path — retained PR-4 kernel, byte-for-byte.

void Channel::maybe_rebuild_grid(SimTime now) {
  if (grid_radios_ == radios_.size()) {
    const double max_speed = positions_.max_speed_mps();
    if (max_speed <= 0.0) return;  // static: never stale
    const double drift_m =
        time_to_seconds(now - grid_built_at_) * max_speed;
    if (drift_m <= slack_m_) return;  // recorded cells still conservative
  }
  grid_.clear();
  grid_pos_.resize(radios_.size());
  const double inv_cell = 1.0 / cell_m_;
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    const geom::Vec2 p = positions_.position(radios_[i]->id(), now);
    grid_pos_[i] = p;
    const auto cx = static_cast<std::int32_t>(std::floor(p.x * inv_cell));
    const auto cy = static_cast<std::int32_t>(std::floor(p.y * inv_cell));
    grid_[cell_key(cx, cy)].push_back(i);
  }
  grid_built_at_ = now;
  grid_radios_ = radios_.size();
  ++cache_stats_.grid_rebuilds;
}

void Channel::collect_candidates(const geom::Vec2& tx_pos,
                                 std::vector<std::uint32_t>& out) const {
  out.clear();
  const double inv_cell = 1.0 / cell_m_;
  const auto cx = static_cast<std::int32_t>(std::floor(tx_pos.x * inv_cell));
  const auto cy = static_cast<std::int32_t>(std::floor(tx_pos.y * inv_cell));
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(cell_key(cx + dx, cy + dy));
      if (it == grid_.end()) continue;
      for (const std::uint32_t idx : it->second) {
        const geom::Vec2 d = grid_pos_[idx] - tx_pos;
        if (d.x * d.x + d.y * d.y <= prefilter_limit_sq_) {
          out.push_back(idx);
        }
      }
    }
  }
  // Attach order: the fault injector's RNG stream must be consumed in the
  // same receiver order as the reference full scan.
  std::sort(out.begin(), out.end());
}

double Channel::link_power(std::uint32_t tx_idx, std::uint32_t rx_idx,
                           std::uint64_t tx_epoch, const geom::Vec2& tx_pos,
                           SimTime at) {
  const std::size_t n = radios_.size();
  if (tx_epoch != kMovingEpoch) {
    const std::uint64_t rx_epoch =
        positions_.position_epoch(radios_[rx_idx]->id(), at);
    if (rx_epoch != kMovingEpoch) {
      if (link_cache_.size() != n * n) {
        link_cache_.assign(n * n, LinkCacheEntry{});
      }
      LinkCacheEntry& e = link_cache_[tx_idx * n + rx_idx];
      if (e.tx_epoch == tx_epoch && e.rx_epoch == rx_epoch) {
        ++cache_stats_.link_budget_hits;
        return e.power_dbm;
      }
      const double power = prop_.rx_power_dbm(
          tx_pos, positions_.position(radios_[rx_idx]->id(), at));
      ++cache_stats_.link_budget_misses;
      e = LinkCacheEntry{tx_epoch, rx_epoch, power};
      // Path loss depends only on distance: fill the reverse link too.
      link_cache_[static_cast<std::size_t>(rx_idx) * n + tx_idx] =
          LinkCacheEntry{rx_epoch, tx_epoch, power};
      return power;
    }
  }
  ++cache_stats_.link_budget_misses;
  return prop_.rx_power_dbm(tx_pos,
                            positions_.position(radios_[rx_idx]->id(), at));
}

// ---------------------------------------------------------------------------
// kIncremental path.

void Channel::heap_push(SimTime due, std::uint32_t idx) {
  migrate_heap_.emplace_back(due, idx);
  std::push_heap(migrate_heap_.begin(), migrate_heap_.end(),
                 std::greater<>{});
}

SimTime Channel::next_due(const MotionState& m, std::int32_t cx,
                          std::int32_t cy, SimTime now) const {
  const bool parked = m.velocity_mps.x == 0.0 && m.velocity_mps.y == 0.0;
  SimTime due;
  if (parked) {
    due = m.until;  // kTimeNever for static radios: never re-checked
  } else {
    // Earliest time the segment's straight line exits the current cell.
    double exit_s = std::numeric_limits<double>::infinity();
    const double x0 = static_cast<double>(cx) * inc_cell_m_;
    const double y0 = static_cast<double>(cy) * inc_cell_m_;
    if (m.velocity_mps.x > 0.0) {
      exit_s = std::min(exit_s,
                        (x0 + inc_cell_m_ - m.position.x) / m.velocity_mps.x);
    } else if (m.velocity_mps.x < 0.0) {
      exit_s = std::min(exit_s, (x0 - m.position.x) / m.velocity_mps.x);
    }
    if (m.velocity_mps.y > 0.0) {
      exit_s = std::min(exit_s,
                        (y0 + inc_cell_m_ - m.position.y) / m.velocity_mps.y);
    } else if (m.velocity_mps.y < 0.0) {
      exit_s = std::min(exit_s, (y0 - m.position.y) / m.velocity_mps.y);
    }
    if (exit_s < 0.0) exit_s = 0.0;  // numeric edge exactly on a boundary
    // Truncation rounds the deadline *down*: the re-check fires while the
    // radio is still inside its recorded cell, never after it left.
    const double exit_ns = exit_s * 1e9;
    const SimTime exit_t = exit_ns < 8e18
                               ? now + static_cast<SimTime>(exit_ns)
                               : kTimeNever;
    due = std::min(exit_t, m.until);
  }
  if (due == kTimeNever) return kTimeNever;
  // Progress guarantee: a deadline in the past (boundary rounding) retries
  // one tick ahead; a crossing costs at most a couple of re-checks.
  return std::max(due, now + 1);
}

void Channel::rebucket(std::uint32_t idx, SimTime now, bool initial) {
  const MotionState m = positions_.motion(radios_[idx]->id(), now);
  RadioMotion& rm = cells_[idx];
  const std::int32_t cx = cell_coord(m.position.x);
  const std::int32_t cy = cell_coord(m.position.y);
  if (initial) {
    inc_grid_[cell_key(cx, cy)].push_back(idx);
  } else if (cx != rm.cx || cy != rm.cy) {
    std::vector<std::uint32_t>& old_cell = inc_grid_[cell_key(rm.cx, rm.cy)];
    const auto it = std::find(old_cell.begin(), old_cell.end(), idx);
    if (it != old_cell.end()) {
      *it = old_cell.back();
      old_cell.pop_back();
    }
    inc_grid_[cell_key(cx, cy)].push_back(idx);
    ++cache_stats_.cell_migrations;
  }
  rm.cx = cx;
  rm.cy = cy;
  rm.epoch = m.epoch;
  rm.velocity = m.velocity_mps;
  rm.ref_pos = m.position;
  rm.ref_t_s = time_to_seconds(now);
  rm.due = next_due(m, cx, cy, now);
  if (rm.due != kTimeNever) heap_push(rm.due, idx);
}

void Channel::ensure_incremental(SimTime now) {
  if (inc_radios_ == radios_.size()) return;
  inc_grid_.clear();
  migrate_heap_.clear();
  cells_.assign(radios_.size(), RadioMotion{});
  pair_cache_.assign(pair_cache_capacity(radios_.size()), PairEntry{});
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    rebucket(i, now, /*initial=*/true);
  }
  inc_radios_ = radios_.size();
}

void Channel::drain_migrations(SimTime now) {
  while (!migrate_heap_.empty() && migrate_heap_.front().first <= now) {
    std::pop_heap(migrate_heap_.begin(), migrate_heap_.end(),
                  std::greater<>{});
    const auto [due, idx] = migrate_heap_.back();
    migrate_heap_.pop_back();
    if (cells_[idx].due != due) continue;  // superseded entry
    ++cache_stats_.migration_checks;
    rebucket(idx, now, /*initial=*/false);
  }
}

void Channel::collect_candidates_incremental(
    const geom::Vec2& tx_pos, std::vector<std::uint32_t>& out) const {
  // Unsorted: transmit() orders the (much smaller) audible subset before
  // delivering, which is where attach order actually matters.
  out.clear();
  const std::int32_t cx = cell_coord(tx_pos.x);
  const std::int32_t cy = cell_coord(tx_pos.y);
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = inc_grid_.find(cell_key(cx + dx, cy + dy));
      if (it == inc_grid_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
}

bool Channel::pair_power(std::uint32_t tx_idx, std::uint32_t rx_idx,
                         const geom::Vec2& tx_pos, SimTime at,
                         double& power_dbm) {
  const std::uint32_t lo = std::min(tx_idx, rx_idx);
  const std::uint32_t hi = std::max(tx_idx, rx_idx);
  const RadioMotion& lm = cells_[lo];
  const RadioMotion& hm = cells_[hi];
  const bool parked = lm.epoch != kMovingEpoch && hm.epoch != kMovingEpoch &&
                      lm.velocity.x == 0.0 && lm.velocity.y == 0.0 &&
                      hm.velocity.x == 0.0 && hm.velocity.y == 0.0;
  if (!parked) {
    // A moving endpoint: the predicted-position prefilter in transmit()
    // already rejected the far pairs, so nearly every pair reaching here
    // needs its exact power anyway — a cache probe would be pure overhead.
    // Exact power from exact positions, like the reference scan.
    ++cache_stats_.link_budget_misses;
    power_dbm = prop_.rx_power_dbm(
        tx_pos, positions_.position(radios_[rx_idx]->id(), at));
    return true;
  }
  // Both endpoints parked: their positions are constant for the lifetime of
  // the (epoch, epoch) pair, so the cached power is exactly what a fresh
  // computation would produce — the identical doubles feed the identical
  // path-loss expression.
  const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
  PairEntry& e = pair_cache_[util::mix64(key) & (pair_cache_.size() - 1)];
  if (e.key == key && e.lo_epoch == lm.epoch && e.hi_epoch == hm.epoch) {
    ++cache_stats_.link_budget_hits;
    power_dbm = e.power_dbm;
    return true;
  }
  ++cache_stats_.link_budget_misses;
  const double power = prop_.rx_power_dbm(
      tx_pos, positions_.position(radios_[rx_idx]->id(), at));
  e = PairEntry{key, lm.epoch, hm.epoch, power};
  power_dbm = power;
  return true;
}

// ---------------------------------------------------------------------------

bool Channel::radios_within(NodeId center, double range_m, SimTime at,
                            std::vector<NodeId>& out) {
  out.clear();
  if (!positions_.piecewise_linear()) return false;
  if (at != sim_.now()) return false;  // migrations only move forward
  if (!(range_m >= 0.0) || range_m > inc_cell_m_) return false;  // 3x3 probe
  const auto center_it = by_id_.find(center);
  if (center_it == by_id_.end()) return false;
  ensure_incremental(at);
  drain_migrations(at);
  const geom::Vec2 center_pos = positions_.position(center, at);
  const std::int32_t cx = cell_coord(center_pos.x);
  const std::int32_t cy = cell_coord(center_pos.y);
  const double range_sq = range_m * range_m;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = inc_grid_.find(cell_key(cx + dx, cy + dy));
      if (it == inc_grid_.end()) continue;
      for (const std::uint32_t idx : it->second) {
        if (idx == center_it->second) continue;
        const NodeId id = radios_[idx]->id();
        const geom::Vec2 d = positions_.position(id, at) - center_pos;
        if (d.dot(d) <= range_sq) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return true;
}

std::size_t Channel::index_memory_bytes() const {
  std::size_t bytes = cells_.capacity() * sizeof(RadioMotion) +
                      migrate_heap_.capacity() * sizeof(migrate_heap_[0]) +
                      pair_cache_.capacity() * sizeof(PairEntry);
  for (const auto& [key, cell] : inc_grid_) {
    bytes += sizeof(key) + cell.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

std::uint64_t Channel::transmit(Radio* tx, PayloadPtr payload, SimDuration airtime) {
  const std::uint64_t id = next_signal_id_++;
  const NodeId tx_id = tx->id();
  const SimTime start = sim_.now();
  const SimTime end = start + airtime;
  const geom::Vec2 tx_pos = positions_.position(tx_id, start);
  // The fault RNG stream is consumed only for enabled plans, keeping
  // fault-free runs bit-identical to a build without the injector.
  const bool faulty = faults_ != nullptr && faults_->enabled();
  const double cs_threshold = prop_.cs_threshold_dbm();
  const double base_rx_threshold = prop_.rx_threshold_dbm();
  const double capture_db = prop_.params().capture_threshold_db;

  std::vector<Radio*> receivers;
  if (!receiver_pool_.empty()) {
    receivers = std::move(receiver_pool_.back());
    receiver_pool_.pop_back();
  }

  auto deliver = [&](Radio* rx, double power) {
    Signal signal{id, tx_id, payload, start, end, power};
    double rx_threshold = base_rx_threshold;
    if (faulty && power >= rx_threshold) {
      switch (faults_->decode_fate(tx_id, rx->id())) {
        case DecodeFate::kIntact:
          break;
        case DecodeFate::kLost:
          // Anonymous energy: audible for carrier sense, never decodable —
          // the monitor's undecodable-busy case, now on demand.
          rx_threshold = std::numeric_limits<double>::infinity();
          break;
        case DecodeFate::kCorrupted:
          signal.payload = faults_->corrupt_payload(payload);
          signal.corrupted = true;
          break;
      }
    }
    rx->signal_start(signal, rx_threshold, capture_db);
    receivers.push_back(rx);
  };

  const IndexMode mode = effective_mode();
  if (mode == IndexMode::kIncremental) {
    ensure_incremental(start);
    drain_migrations(start);
    // Take the scratch buffer: signal_start below can re-enter transmit(),
    // and the nested call must not rewrite the list this call iterates.
    std::vector<std::uint32_t> candidates = std::move(candidates_scratch_);
    candidates_scratch_ = {};
    collect_candidates_incremental(tx_pos, candidates);
    ++cache_stats_.candidate_sets;
    cache_stats_.candidates_seen += candidates.size();
    receivers.reserve(candidates.size());
    const std::uint32_t tx_idx = tx->channel_index();
    // Power evaluation draws no randomness, so candidate order is free;
    // only the audible subset must be delivered in attach order (the fault
    // RNG stream is consumed per delivery, like the reference full scan).
    std::vector<std::pair<std::uint32_t, double>> audible =
        std::move(audible_scratch_);
    audible_scratch_ = {};
    audible.clear();
    const double now_s = time_to_seconds(start);
    for (const std::uint32_t rx_idx : candidates) {
      if (rx_idx == tx_idx) continue;
      // Predicted-position prefilter: drain_migrations() above guarantees
      // every radio's recorded motion segment covers `start`, so ref + v*dt
      // is the candidate's position up to FP rounding. Beyond the slacked
      // limit the pair is provably inaudible without touching the radio,
      // the pair cache, or the position provider.
      const RadioMotion& rm = cells_[rx_idx];
      const double dt = now_s - rm.ref_t_s;
      const double px = rm.ref_pos.x + rm.velocity.x * dt - tx_pos.x;
      const double py = rm.ref_pos.y + rm.velocity.y * dt - tx_pos.y;
      if (px * px + py * py > predict_limit_sq_) {
        ++cache_stats_.prefilter_rejects;
        continue;
      }
      if (radios_[rx_idx]->in_outage()) continue;  // deaf: no energy arrives
      double power;
      if (!pair_power(tx_idx, rx_idx, tx_pos, start, power)) continue;
      if (power < cs_threshold) continue;  // inaudible
      audible.emplace_back(rx_idx, power);
    }
    std::sort(audible.begin(), audible.end());
    for (const auto& [rx_idx, power] : audible) {
      deliver(radios_[rx_idx], power);
    }
    audible.clear();
    audible_scratch_ = std::move(audible);
    candidates.clear();
    candidates_scratch_ = std::move(candidates);
  } else if (mode == IndexMode::kRebuild) {
    std::vector<std::uint32_t> candidates = std::move(candidates_scratch_);
    candidates_scratch_ = {};
    if (radios_.size() <= kDirectScanRadios) {
      // Tiny topology: walking every radio is cheaper than the 3x3 cell
      // probe, and the per-pair budgets below still come from the cache.
      // "Every index, attach order" is trivially the grid's superset.
      for (std::uint32_t i = 0; i < radios_.size(); ++i) candidates.push_back(i);
    } else {
      maybe_rebuild_grid(start);
      collect_candidates(tx_pos, candidates);
    }
    ++cache_stats_.candidate_sets;
    cache_stats_.candidates_seen += candidates.size();
    receivers.reserve(candidates.size());
    const std::uint32_t tx_idx = tx->channel_index();
    const std::uint64_t tx_epoch = positions_.position_epoch(tx_id, start);
    for (const std::uint32_t rx_idx : candidates) {
      Radio* rx = radios_[rx_idx];
      if (rx_idx == tx_idx) continue;
      if (rx->in_outage()) continue;  // deaf: not even energy arrives
      const double power = link_power(tx_idx, rx_idx, tx_epoch, tx_pos, start);
      if (power < cs_threshold) continue;  // inaudible
      deliver(rx, power);
    }
    // Recycle the buffer (the innermost return wins; deeper buffers are
    // simply dropped — nesting is rare).
    candidates.clear();
    candidates_scratch_ = std::move(candidates);
  } else {
    // Reference path: exact original full scan (also the only correct path
    // under shadowing, where every delivery draws a shadowing deviate).
    ++cache_stats_.full_scans;
    receivers.reserve(radios_.size());
    for (Radio* rx : radios_) {
      if (rx == tx) continue;
      if (rx->in_outage()) continue;
      const geom::Vec2 rx_pos = positions_.position(rx->id(), start);
      const double power = prop_.rx_power_dbm(tx_pos, rx_pos);
      if (power < cs_threshold) continue;
      deliver(rx, power);
    }
  }

  // One end-of-air event finishes every delivery and the transmitter, in
  // the same relative order the per-receiver events used to run (they were
  // scheduled back-to-back at `end`, so no foreign event could interleave).
  // The emptied receiver list goes back to the pool afterwards.
  sim_.at(end, [this, tx, id, receivers = std::move(receivers)]() mutable {
    for (Radio* rx : receivers) rx->signal_end(id);
    tx->own_transmit_end(id);
    receivers.clear();
    if (receiver_pool_.size() < 64) receiver_pool_.push_back(std::move(receivers));
  });
  return id;
}

}  // namespace manet::phy
