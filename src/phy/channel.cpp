#include "phy/channel.hpp"

#include <stdexcept>

#include "phy/radio.hpp"

namespace manet::phy {

Channel::Channel(sim::Simulator& simulator, Propagation& propagation,
                 const PositionProvider& positions)
    : sim_(simulator), prop_(propagation), positions_(positions) {}

void Channel::attach(Radio* radio) {
  if (by_id_.count(radio->id()) != 0) {
    throw std::invalid_argument("duplicate radio id attached to channel");
  }
  radios_.push_back(radio);
  by_id_.emplace(radio->id(), radio);
}

std::uint64_t Channel::transmit(NodeId tx, PayloadPtr payload, SimDuration airtime) {
  const std::uint64_t id = next_signal_id_++;
  const SimTime start = sim_.now();
  const SimTime end = start + airtime;
  const geom::Vec2 tx_pos = positions_.position(tx, start);

  for (Radio* rx : radios_) {
    if (rx->id() == tx) continue;
    const geom::Vec2 rx_pos = positions_.position(rx->id(), start);
    const double power = prop_.rx_power_dbm(tx_pos, rx_pos);
    if (power < prop_.cs_threshold_dbm()) continue;  // inaudible

    Signal signal{id, tx, payload, start, end, power};
    rx->signal_start(signal, prop_.rx_threshold_dbm(),
                     prop_.params().capture_threshold_db);
    sim_.at(end, [rx, signal] { rx->signal_end(signal); });
  }

  Radio* self = by_id_.at(tx);
  sim_.at(end, [self, id] { self->own_transmit_end(id); });
  return id;
}

}  // namespace manet::phy
