#include "phy/radio.hpp"

#include <cassert>

#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace manet::phy {

Radio::Radio(NodeId id, Channel& channel) : id_(id), channel_(channel) {
  incident_.reserve(8);
  channel.attach(this);
}

std::uint64_t Radio::transmit(PayloadPtr payload, SimDuration airtime) {
  assert(!transmitting_ && "half-duplex radio asked to transmit twice");
  transmitting_ = true;
  // Transmitting while locked onto a frame corrupts that reception.
  if (receiving_) rx_corrupted_ = true;
  notify_carrier_if_changed();
  return channel_.transmit(this, std::move(payload), airtime);
}

void Radio::set_outage(bool deaf) {
  if (deaf == outage_) return;
  outage_ = deaf;
  if (deaf) {
    // All audible energy vanishes; a locked frame is lost without a trace
    // (a deaf radio cannot even tell a reception was in progress).
    incident_.clear();
    receiving_ = false;
    rx_corrupted_ = false;
  }
  const SimTime at = channel_.simulator().now();
  for (auto* l : listeners_) l->on_outage(deaf, at);
  notify_carrier_if_changed();
}

void Radio::signal_start(const Signal& signal, double rx_threshold_dbm,
                         double capture_threshold_db) {
  if (outage_) return;  // deaf: not even energy
  incident_.push_back(signal);

  if (transmitting_) {
    // Half duplex: we cannot decode anything while transmitting; the energy
    // still counts toward carrier sense (trivially busy already).
    notify_carrier_if_changed();
    return;
  }

  if (receiving_) {
    // Concurrent arrival: corrupts the locked frame unless it is far weaker.
    if (signal.rx_power_dbm > rx_signal_.rx_power_dbm - capture_threshold_db) {
      rx_corrupted_ = true;
    }
  } else if (signal.rx_power_dbm >= rx_threshold_dbm) {
    // Lock onto this frame if no comparable interference is already present.
    bool blocked = false;
    for (const Signal& s : incident_) {
      if (s.id == signal.id) continue;
      if (s.rx_power_dbm > signal.rx_power_dbm - capture_threshold_db) {
        blocked = true;
        break;
      }
    }
    receiving_ = true;
    rx_signal_ = signal;
    rx_corrupted_ = blocked || signal.corrupted;
  }
  notify_carrier_if_changed();
}

void Radio::signal_end(std::uint64_t signal_id) {
  auto it = incident_.begin();
  for (; it != incident_.end(); ++it) {
    if (it->id == signal_id) break;
  }
  if (it == incident_.end()) return;  // outage wiped it; nothing to finish
  const Signal signal = std::move(*it);
  incident_.erase(it);

  if (receiving_ && signal.id == rx_signal_.id) {
    receiving_ = false;
    const bool ok = !rx_corrupted_ && !transmitting_;
    rx_corrupted_ = false;
    if (ok) {
      for (auto* l : listeners_) l->on_receive(signal);
    } else {
      for (auto* l : listeners_) l->on_receive_error(signal);
    }
  }
  notify_carrier_if_changed();
}

void Radio::own_transmit_end(std::uint64_t signal_id) {
  assert(transmitting_);
  transmitting_ = false;
  for (auto* l : listeners_) l->on_transmit_end(signal_id);
  notify_carrier_if_changed();
}

void Radio::notify_carrier_if_changed() {
  const bool busy = carrier_busy();
  if (busy == last_carrier_) return;
  last_carrier_ = busy;
  const SimTime at = channel_.simulator().now();
  for (auto* l : listeners_) l->on_carrier(busy, at);
}

}  // namespace manet::phy
