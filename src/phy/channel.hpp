// The shared wireless medium.
//
// On each transmission the channel computes the received power at every
// radio that could possibly hear it and delivers signal-start /
// signal-end notifications to radios whose received power clears the
// carrier-sense threshold. Propagation delay is not modeled (< 2 us across
// the 550 m sensing range, small against the 20 us slot); this matches the
// slot-synchronous abstraction of the paper's analysis.
//
// Two kernel optimizations keep per-transmission cost off the sweep
// critical path (see DESIGN.md §4e):
//
//  * a uniform spatial grid keyed by the carrier-sense range pre-filters
//    the O(N) radio scan down to the radios whose cells can clear the CS
//    threshold. Cells carry a slack margin sized so that nodes moving at
//    the provider's speed bound cannot escape the candidate neighborhood
//    between rebuilds; candidates are visited in attach order, so the
//    fault-injector RNG stream is consumed exactly as in a full scan;
//  * per-pair link budgets are cached under the provider's position
//    epochs: a static scenario computes each rx_power_dbm exactly once,
//    and waypoint pauses reuse budgets until a node moves again.
//
// Both paths are exact (never approximate): the grid is a conservative
// superset filter and the final audibility decision always uses the same
// power comparison as the full scan, so results are bit-identical. With
// shadowing enabled (sigma > 0) rx_power_dbm draws from the shadowing RNG
// per delivery, so both optimizations disable themselves to preserve the
// draw sequence.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"
#include "phy/propagation.hpp"
#include "phy/signal.hpp"
#include "sim/simulator.hpp"

namespace manet::phy {

class FaultInjector;
class Radio;

class Channel {
 public:
  Channel(sim::Simulator& simulator, Propagation& propagation,
          const PositionProvider& positions);

  /// Registers a radio. Radios must outlive the channel's use of them.
  void attach(Radio* radio);

  /// Composes a fault injector into every subsequent delivery and schedules
  /// its outage toggles. Call after all radios are attached (outage node
  /// ids must resolve); the injector must outlive the channel's use of it.
  void install_faults(FaultInjector& faults);

  /// Starts a transmission of `payload` lasting `airtime` from `tx` (an
  /// attached radio). Returns the signal id.
  std::uint64_t transmit(Radio* tx, PayloadPtr payload, SimDuration airtime);

  sim::Simulator& simulator() { return sim_; }
  const Propagation& propagation() const { return prop_; }

  /// Total transmissions started (diagnostics).
  std::uint64_t transmissions() const { return next_signal_id_ - 1; }

  /// Test hook: disables the spatial index + link-budget cache, forcing the
  /// reference full-scan delivery path. Determinism tests compare traces
  /// (and fault-RNG consumption) between the two paths.
  void set_spatial_index_enabled(bool enabled) { spatial_index_enabled_ = enabled; }

  struct CacheStats {
    std::uint64_t link_budget_hits = 0;
    std::uint64_t link_budget_misses = 0;
    std::uint64_t grid_rebuilds = 0;
    std::uint64_t full_scans = 0;  // transmissions served by the slow path
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

 private:
  struct LinkCacheEntry {
    std::uint64_t tx_epoch = kMovingEpoch;  // kMovingEpoch == invalid
    std::uint64_t rx_epoch = kMovingEpoch;
    double power_dbm = 0.0;
  };

  static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }

  bool grid_usable() const;
  void maybe_rebuild_grid(SimTime now);
  /// Fills `out` (sorted attach indices) with every radio within
  /// cs_range + slack of `tx_pos` according to the grid's recorded
  /// positions — a superset of the truly audible set.
  void collect_candidates(const geom::Vec2& tx_pos,
                          std::vector<std::uint32_t>& out) const;
  /// Received power tx -> rx through the epoch-keyed cache (symmetric: a
  /// miss fills both directions, as path loss depends only on distance).
  double link_power(std::uint32_t tx_idx, std::uint32_t rx_idx,
                    std::uint64_t tx_epoch, const geom::Vec2& tx_pos, SimTime at);

  sim::Simulator& sim_;
  Propagation& prop_;
  const PositionProvider& positions_;
  FaultInjector* faults_ = nullptr;
  std::vector<Radio*> radios_;                    // in attach order
  std::unordered_map<NodeId, std::uint32_t> by_id_;  // id -> attach index
  std::uint64_t next_signal_id_ = 1;

  // Spatial index (valid when grid_radios_ == radios_.size()).
  bool spatial_index_enabled_ = true;
  double cell_m_ = 0.0;
  double slack_m_ = 0.0;
  double prefilter_limit_sq_ = 0.0;
  SimTime grid_built_at_ = 0;
  std::size_t grid_radios_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  std::vector<geom::Vec2> grid_pos_;              // per radio, at rebuild time
  // Recycled candidate buffer. transmit() *takes* it (swap) rather than
  // iterating the member directly: delivering a signal can synchronously
  // re-enter transmit() (a MAC responding from a capture-induced receive
  // error), and a nested call must not clobber the list the outer call is
  // still walking. The nested call simply starts from an empty vector.
  std::vector<std::uint32_t> candidates_scratch_;
  // Recycled receiver lists: each transmission hands its audible-receiver
  // list to the end-of-air event, which returns the emptied vector here
  // instead of freeing it — one malloc/free pair per transmission saved.
  std::vector<std::vector<Radio*>> receiver_pool_;

  std::vector<LinkCacheEntry> link_cache_;        // N*N, row = tx attach index
  CacheStats cache_stats_;
};

}  // namespace manet::phy
