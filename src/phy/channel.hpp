// The shared wireless medium.
//
// On each transmission the channel computes the received power at every
// attached radio from the current node positions and delivers
// signal-start / signal-end notifications to radios whose received power
// clears the carrier-sense threshold. Propagation delay is not modeled
// (< 2 us across the 550 m sensing range, small against the 20 us slot);
// this matches the slot-synchronous abstraction of the paper's analysis.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/propagation.hpp"
#include "phy/signal.hpp"
#include "sim/simulator.hpp"

namespace manet::phy {

class FaultInjector;
class Radio;

class Channel {
 public:
  Channel(sim::Simulator& simulator, Propagation& propagation,
          const PositionProvider& positions);

  /// Registers a radio. Radios must outlive the channel's use of them.
  void attach(Radio* radio);

  /// Composes a fault injector into every subsequent delivery and schedules
  /// its outage toggles. Call after all radios are attached (outage node
  /// ids must resolve); the injector must outlive the channel's use of it.
  void install_faults(FaultInjector& faults);

  /// Starts a transmission of `payload` lasting `airtime` from `tx`.
  /// Returns the signal id.
  std::uint64_t transmit(NodeId tx, PayloadPtr payload, SimDuration airtime);

  sim::Simulator& simulator() { return sim_; }
  const Propagation& propagation() const { return prop_; }

  /// Total transmissions started (diagnostics).
  std::uint64_t transmissions() const { return next_signal_id_ - 1; }

 private:
  sim::Simulator& sim_;
  Propagation& prop_;
  const PositionProvider& positions_;
  FaultInjector* faults_ = nullptr;
  std::vector<Radio*> radios_;
  std::unordered_map<NodeId, Radio*> by_id_;
  std::uint64_t next_signal_id_ = 1;
};

}  // namespace manet::phy
