// The shared wireless medium.
//
// On each transmission the channel computes the received power at every
// radio that could possibly hear it and delivers signal-start /
// signal-end notifications to radios whose received power clears the
// carrier-sense threshold. Propagation delay is not modeled (< 2 us across
// the 550 m sensing range, small against the 20 us slot); this matches the
// slot-synchronous abstraction of the paper's analysis.
//
// Three delivery paths share the exact same audibility decision (see
// DESIGN.md §4e and §4j):
//
//  * kIncremental (the default at scale): a uniform grid whose cells are
//    maintained event-wise — each radio carries a migration deadline (the
//    time its current motion segment exits its cell, or the segment end),
//    kept in a min-heap that is drained at the head of every transmission.
//    Static radios never appear in the heap; a parked waypoint node costs
//    one re-check per pause. Candidates from the 3x3 cell probe are then
//    prefiltered by *predicted position*: each radio's motion segment is
//    pinned (position, time) at its last rebucket, so ref + v*dt places it
//    exactly (up to FP rounding, absorbed by 1 m of slack) without a
//    provider query — a far mover costs two fused multiply-adds. Pairs
//    with both endpoints parked go through a bounded direct-mapped cache
//    keyed by the endpoints' motion-segment epochs holding the exact link
//    budget (as the PR-4 N*N cache did, at O(cache) memory).
//  * kRebuild: the retained PR-4 path (staleness-bounded full grid
//    rebuilds + N*N epoch-keyed link cache), kept verbatim as the
//    measurable pre-PR-9 baseline and as the fast path for tiny
//    topologies.
//  * kFullScan: the original reference scan over every radio.
//
// All paths are exact (never approximate): grids and windows are
// conservative superset filters, and the final audibility decision always
// uses the same power comparison on the same position doubles, so results
// are bit-identical across paths — including the fault-injector RNG
// stream, which is consumed per audible delivery in attach order. With
// shadowing enabled (sigma > 0) rx_power_dbm draws from the shadowing RNG
// per delivery, so every optimization disables itself to preserve the
// draw sequence.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/vec2.hpp"
#include "phy/propagation.hpp"
#include "phy/signal.hpp"
#include "sim/simulator.hpp"

namespace manet::phy {

class FaultInjector;
class Radio;

class Channel {
 public:
  /// How transmissions find their audible receivers. kAuto picks
  /// kIncremental for piecewise-linear providers above the tiny-topology
  /// cutoff, kRebuild otherwise, and kFullScan when nothing can bound the
  /// motion. Shadowing always forces kFullScan regardless of the setting.
  enum class IndexMode : std::uint8_t { kAuto, kIncremental, kRebuild, kFullScan };

  /// Parses "auto" / "incremental" / "rebuild" / "scan"; throws
  /// std::invalid_argument on anything else.
  static IndexMode parse_index_mode(std::string_view name);
  static const char* index_mode_name(IndexMode mode);

  Channel(sim::Simulator& simulator, Propagation& propagation,
          const PositionProvider& positions);

  /// Registers a radio. Radios must outlive the channel's use of them.
  void attach(Radio* radio);

  /// Composes a fault injector into every subsequent delivery and schedules
  /// its outage toggles. Call after all radios are attached (outage node
  /// ids must resolve); the injector must outlive the channel's use of it.
  void install_faults(FaultInjector& faults);

  /// Starts a transmission of `payload` lasting `airtime` from `tx` (an
  /// attached radio). Returns the signal id.
  std::uint64_t transmit(Radio* tx, PayloadPtr payload, SimDuration airtime);

  sim::Simulator& simulator() { return sim_; }
  const Propagation& propagation() const { return prop_; }

  /// Total transmissions started (diagnostics).
  std::uint64_t transmissions() const { return next_signal_id_ - 1; }

  void set_index_mode(IndexMode mode) { index_mode_ = mode; }
  IndexMode index_mode() const { return index_mode_; }

  /// Test hook kept from PR 4: disabling the index forces the reference
  /// full-scan path; re-enabling restores automatic mode selection.
  void set_spatial_index_enabled(bool enabled) {
    index_mode_ = enabled ? IndexMode::kAuto : IndexMode::kFullScan;
  }

  /// Exact neighbor query off the incremental grid: fills `out` with the
  /// ids of attached radios (center excluded) whose positions lie within
  /// `range_m` of center's position, ascending by id — byte-identical to
  /// an O(N) scan. Serves only when the incremental index can (piecewise-
  /// linear provider, `at` == now, range within one cell); returns false
  /// otherwise and the caller falls back to scanning.
  bool radios_within(NodeId center, double range_m, SimTime at,
                     std::vector<NodeId>& out);

  struct CacheStats {
    std::uint64_t link_budget_hits = 0;    // exact cached power reused
    std::uint64_t link_budget_misses = 0;  // power computed from positions
    std::uint64_t grid_rebuilds = 0;       // kRebuild full passes
    std::uint64_t full_scans = 0;  // transmissions served by the slow path
    // Incremental index:
    std::uint64_t cell_migrations = 0;   // radio re-bucketed to a new cell
    std::uint64_t migration_checks = 0;  // deadline pops (incl. same-cell)
    std::uint64_t prefilter_rejects = 0; // candidates dropped by prediction
    std::uint64_t candidate_sets = 0;    // grid-served transmissions
    std::uint64_t candidates_seen = 0;   // sum of candidate-set sizes
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Retained bytes of the incremental index + pair cache (bounded by
  /// construction; the memory-ceiling test reads this).
  std::size_t index_memory_bytes() const;

 private:
  struct LinkCacheEntry {
    std::uint64_t tx_epoch = kMovingEpoch;  // kMovingEpoch == invalid
    std::uint64_t rx_epoch = kMovingEpoch;
    double power_dbm = 0.0;
  };

  /// Per-radio incremental-index state: current cell, current motion
  /// segment, and the next deadline at which the cell must be re-checked
  /// (kTimeNever for static radios — they never re-enter the heap).
  /// ref_pos/ref_t_s pin the segment's exact position at the last rebucket
  /// so transmit() can predict a candidate's position (ref + v*dt) without
  /// a provider query; the prediction differs from the provider's doubles
  /// only by FP rounding, absorbed by the prefilter's 1 m slack.
  struct RadioMotion {
    std::int32_t cx = 0;
    std::int32_t cy = 0;
    std::uint64_t epoch = kMovingEpoch;
    geom::Vec2 velocity{0.0, 0.0};
    geom::Vec2 ref_pos{0.0, 0.0};
    double ref_t_s = 0.0;
    SimTime due = kTimeNever;
  };

  /// One direct-mapped pair-cache slot: the exact link budget of a pair
  /// whose endpoints are both parked, valid while both motion-segment
  /// epochs match. Moving pairs never enter the cache — the predicted-
  /// position prefilter handles them.
  struct PairEntry {
    std::uint64_t key = ~std::uint64_t{0};  // (lo_idx << 32) | hi_idx
    std::uint64_t lo_epoch = kMovingEpoch;
    std::uint64_t hi_epoch = kMovingEpoch;
    double power_dbm = 0.0;
  };

  static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  /// Cell coordinate of one axis value; throws std::invalid_argument when
  /// the position would overflow 32-bit cell indexing.
  std::int32_t cell_coord(double v) const;

  IndexMode effective_mode() const;

  // --- kRebuild path (retained PR-4 kernel) ---
  void maybe_rebuild_grid(SimTime now);
  void collect_candidates(const geom::Vec2& tx_pos,
                          std::vector<std::uint32_t>& out) const;
  double link_power(std::uint32_t tx_idx, std::uint32_t rx_idx,
                    std::uint64_t tx_epoch, const geom::Vec2& tx_pos, SimTime at);

  // --- kIncremental path ---
  /// (Re)builds the incremental structures when the radio set changed.
  void ensure_incremental(SimTime now);
  /// Processes every migration deadline <= now, re-bucketing radios whose
  /// motion segment crossed a cell boundary or ended.
  void drain_migrations(SimTime now);
  void rebucket(std::uint32_t idx, SimTime now, bool initial);
  SimTime next_due(const MotionState& m, std::int32_t cx, std::int32_t cy,
                   SimTime now) const;
  void heap_push(SimTime due, std::uint32_t idx);
  void collect_candidates_incremental(const geom::Vec2& tx_pos,
                                      std::vector<std::uint32_t>& out) const;
  /// Decides pair audibility through the pair cache. Returns false when
  /// the pair is provably inaudible (no power computed); otherwise sets
  /// `power_dbm` to the exact received power (the caller still applies
  /// the carrier-sense threshold, as every path does).
  bool pair_power(std::uint32_t tx_idx, std::uint32_t rx_idx,
                  const geom::Vec2& tx_pos, SimTime at, double& power_dbm);

  sim::Simulator& sim_;
  Propagation& prop_;
  const PositionProvider& positions_;
  FaultInjector* faults_ = nullptr;
  std::vector<Radio*> radios_;                    // in attach order
  std::unordered_map<NodeId, std::uint32_t> by_id_;  // id -> attach index
  std::uint64_t next_signal_id_ = 1;
  IndexMode index_mode_ = IndexMode::kAuto;

  // kRebuild spatial index (valid when grid_radios_ == radios_.size()).
  double cell_m_ = 0.0;
  double slack_m_ = 0.0;
  double prefilter_limit_sq_ = 0.0;
  SimTime grid_built_at_ = 0;
  std::size_t grid_radios_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  std::vector<geom::Vec2> grid_pos_;              // per radio, at rebuild time
  std::vector<LinkCacheEntry> link_cache_;        // N*N, row = tx attach index

  // kIncremental spatial index (valid when inc_radios_ == radios_.size()).
  double inc_cell_m_ = 0.0;        // cs_range + pad: cell size
  double predict_limit_sq_ = 0.0;  // (inc_cell_m_ + 1 m FP slack)^2
  std::size_t inc_radios_ = 0;
  std::vector<RadioMotion> cells_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> inc_grid_;
  // Min-heap of (due, radio index): the activity set. Only radios whose
  // motion can invalidate their bucket carry an entry; each radio has at
  // most one live entry (rebucket pops before pushing).
  std::vector<std::pair<SimTime, std::uint32_t>> migrate_heap_;
  std::vector<PairEntry> pair_cache_;  // power-of-two, direct-mapped

  // Recycled candidate buffer. transmit() *takes* it (swap) rather than
  // iterating the member directly: delivering a signal can synchronously
  // re-enter transmit() (a MAC responding from a capture-induced receive
  // error), and a nested call must not clobber the list the outer call is
  // still walking. The nested call simply starts from an empty vector.
  std::vector<std::uint32_t> candidates_scratch_;
  // Recycled audible (rx index, power) buffer; same take-by-swap discipline
  // as candidates_scratch_.
  std::vector<std::pair<std::uint32_t, double>> audible_scratch_;
  // Recycled receiver lists: each transmission hands its audible-receiver
  // list to the end-of-air event, which returns the emptied vector here
  // instead of freeing it — one malloc/free pair per transmission saved.
  std::vector<std::vector<Radio*>> receiver_pool_;

  CacheStats cache_stats_;
};

}  // namespace manet::phy
