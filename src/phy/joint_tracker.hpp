// Joint busy/idle occupancy of two stations' carrier sense.
//
// Ground-truth instrument for the paper's Figures 3 and 4: accumulates the
// time both S and R spend in each of the four joint (busy, idle) states and
// reports the conditional probabilities
//   p(S busy | R idle)  and  p(S idle | R busy).
// Continuous-time occupancy gives the same ratios as the paper's slot
// sampling (slots are i.i.d. samples of the same stationary process).
#pragma once

#include <array>

#include "phy/radio.hpp"
#include "util/types.hpp"

namespace manet::phy {

class JointBusyTracker {
 public:
  /// Subscribes to both radios. The tracker must outlive the simulation.
  JointBusyTracker(Radio& s, Radio& r);

  /// Stops accumulating before `at` (idempotent); call at measurement end.
  void flush(SimTime at);

  /// Begin measuring at `at`, discarding earlier accumulation (warm-up).
  void reset(SimTime at);

  SimDuration duration(bool s_busy, bool r_busy) const {
    return acc_[index(s_busy, r_busy)];
  }

  /// p(S busy | R idle); 0 if R was never idle.
  double p_s_busy_given_r_idle() const;

  /// p(S idle | R busy); 0 if R was never busy.
  double p_s_idle_given_r_busy() const;

  /// Fraction of time R was busy (its traffic intensity by the paper's
  /// definition).
  double r_busy_fraction() const;

 private:
  static constexpr std::size_t index(bool s_busy, bool r_busy) {
    return (s_busy ? 2u : 0u) | (r_busy ? 1u : 0u);
  }

  class Probe : public RadioListener {
   public:
    Probe(JointBusyTracker& owner, bool is_s) : owner_(owner), is_s_(is_s) {}
    void on_carrier(bool busy, SimTime at) override {
      owner_.advance(at);
      (is_s_ ? owner_.s_busy_ : owner_.r_busy_) = busy;
    }
    void on_receive(const Signal&) override {}
    void on_receive_error(const Signal&) override {}
    void on_transmit_end(std::uint64_t) override {}

   private:
    JointBusyTracker& owner_;
    bool is_s_;
  };

  void advance(SimTime to);

  Probe s_probe_;
  Probe r_probe_;
  bool s_busy_ = false;
  bool r_busy_ = false;
  SimTime last_ = 0;
  std::array<SimDuration, 4> acc_{};
};

}  // namespace manet::phy
