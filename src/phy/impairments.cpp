#include "phy/impairments.hpp"

#include <algorithm>

namespace manet::phy {

DecodeFate FaultInjector::decode_fate(NodeId tx, NodeId rx) {
  ++decisions_;

  double p_loss = plan_.loss_probability;
  if (plan_.gilbert_elliott) {
    bool& bad = link_bad_[link_key(tx, rx)];
    // One chain step per frame: the sojourn in each state is geometric, so
    // bad-state bursts average 1 / ge_p_bad_to_good frames.
    bad = bad ? !rng_.bernoulli(plan_.ge_p_bad_to_good)
              : rng_.bernoulli(plan_.ge_p_good_to_bad);
    p_loss = std::max(p_loss, bad ? plan_.ge_loss_bad : plan_.ge_loss_good);
  }

  if (p_loss > 0.0 && rng_.bernoulli(p_loss)) return DecodeFate::kLost;
  if (plan_.corrupt_probability > 0.0 &&
      rng_.bernoulli(plan_.corrupt_probability)) {
    return DecodeFate::kCorrupted;
  }
  return DecodeFate::kIntact;
}

PayloadPtr FaultInjector::corrupt_payload(const PayloadPtr& original) {
  if (!corruptor_) return original;
  return corruptor_(original, rng_);
}

}  // namespace manet::phy
