#include "phy/cs_timeline.hpp"

#include <algorithm>
#include <cassert>

namespace manet::phy {

void CsTimeline::on_carrier(bool busy, SimTime at) {
  assert(transitions_.empty() || at >= transitions_.back().at);
  if (busy == current_busy_) return;
  if (current_busy_) cum_busy_ += at - last_edge_;
  last_edge_ = at;
  transitions_.push_back(Transition{at, busy});
  current_busy_ = busy;
  // Pruning is amortized: retention trimming is pure memory reclamation
  // (windowed queries never reach past it), so running it every 32nd edge
  // saves the deque walk on the busiest path in the simulator. The hard
  // budget still triggers immediately — retained size never exceeds the
  // configured cap.
  if (transitions_.size() >= max_transitions_ || (++prune_tick_ & 31u) == 0) {
    prune(at);
  }
}

void CsTimeline::prune(SimTime now) {
  const SimTime horizon = now - retention_;
  while (transitions_.size() > 1 && transitions_[1].at <= horizon) {
    initial_busy_ = transitions_.front().busy;
    transitions_.pop_front();
  }
  while (!outages_.empty() && outages_.front().stop <= horizon) {
    outages_.pop_front();
  }
  // Hard budgets: when age-based pruning alone can't keep the history under
  // the cap, compact by folding the oldest transitions into the initial
  // state, exactly as retention pruning does. Queries reaching back past
  // the compacted horizon see the folded state; everything younger stays
  // exact. Surfaced through budget_stats() so workloads that hit the caps
  // are visible rather than silently truncated.
  if (transitions_.size() > max_transitions_) {
    ++budget_stats_.compactions;
    do {
      initial_busy_ = transitions_.front().busy;
      transitions_.pop_front();
      ++budget_stats_.dropped_transitions;
    } while (transitions_.size() > max_transitions_);
  }
  while (outages_.size() > max_outages_) {
    outages_.pop_front();
    ++budget_stats_.dropped_outages;
  }
  // High-water marks after budget enforcement: what was actually retained,
  // never the one-edge transient the compaction just trimmed.
  budget_stats_.peak_transitions =
      std::max(budget_stats_.peak_transitions, transitions_.size());
  budget_stats_.peak_outages =
      std::max(budget_stats_.peak_outages, outages_.size());
}

void CsTimeline::on_outage(bool deaf, SimTime at) {
  if (deaf == in_outage_) return;
  if (deaf) {
    outage_start_ = at;
  } else if (at > outage_start_) {
    outages_.push_back(OutageSpan{outage_start_, at});
  }
  in_outage_ = deaf;
  if (outages_.size() >= max_outages_ || (++prune_tick_ & 31u) == 0) {
    prune(at);
  }
}

SimDuration CsTimeline::outage_time(SimTime from, SimTime to) const {
  assert(from <= to);
  SimDuration total = 0;
  // Completed spans are disjoint and sorted; skip everything that ended at
  // or before `from` instead of scanning the whole retained history.
  auto it = std::lower_bound(
      outages_.begin(), outages_.end(), from,
      [](const OutageSpan& o, SimTime v) { return o.stop <= v; });
  for (; it != outages_.end() && it->start < to; ++it) {
    const SimTime lo = std::max(from, it->start);
    const SimTime hi = std::min(to, it->stop);
    if (hi > lo) total += hi - lo;
  }
  if (in_outage_) {
    const SimTime lo = std::max(from, outage_start_);
    if (to > lo) total += to - lo;
  }
  return total;
}

SimDuration CsTimeline::cumulative_busy(SimTime at) const {
  assert(at >= last_edge_);
  return cum_busy_ + (current_busy_ ? at - last_edge_ : 0);
}

bool CsTimeline::busy_at(SimTime t) const {
  // Last transition at or before t determines the state.
  auto it = std::upper_bound(
      transitions_.begin(), transitions_.end(), t,
      [](SimTime v, const Transition& tr) { return v < tr.at; });
  if (it == transitions_.begin()) return initial_busy_;
  return std::prev(it)->busy;
}

SimDuration CsTimeline::busy_time(SimTime from, SimTime to) const {
  assert(from <= to);
  if (from == to) return 0;
  SimDuration busy = 0;
  for_each_segment(from, to, [&](SimTime a, SimTime b, bool state) {
    if (state) busy += b - a;
  });
  return busy;
}

SlotCounts CsTimeline::count_slots(SimTime from, SimTime to, SimDuration slot) const {
  assert(slot > 0);
  SlotCounts counts;
  if (from + slot > to) return counts;

  // One merged walk: the transition iterator advances monotonically across
  // all slots, so a window costs O(log T + transitions + slots) instead of
  // one binary search plus scan per slot.
  auto it = std::upper_bound(
      transitions_.begin(), transitions_.end(), from,
      [](SimTime v, const Transition& tr) { return v < tr.at; });
  bool state = it == transitions_.begin() ? initial_busy_ : std::prev(it)->busy;

  bool prev_slot_idle = false;
  for (SimTime t = from; t + slot <= to; t += slot) {
    const SimTime slot_end = t + slot;
    // A slot is busy iff some positive-length busy span intersects it —
    // the same predicate as busy_time(t, slot_end) > 0.
    bool slot_busy = false;
    SimTime cursor = t;
    for (; it != transitions_.end() && it->at < slot_end; ++it) {
      if (state && it->at > cursor) slot_busy = true;
      cursor = it->at;
      state = it->busy;
    }
    if (state && slot_end > cursor) slot_busy = true;

    if (slot_busy) {
      ++counts.busy;
      prev_slot_idle = false;
    } else {
      ++counts.idle;
      if (!prev_slot_idle) ++counts.idle_periods;
      prev_slot_idle = true;
    }
  }
  return counts;
}

std::vector<std::pair<SimTime, SimTime>> CsTimeline::busy_intervals(
    SimTime from, SimTime to) const {
  std::vector<std::pair<SimTime, SimTime>> out;
  busy_intervals_into(from, to, out);
  return out;
}

void CsTimeline::busy_intervals_into(
    SimTime from, SimTime to, std::vector<std::pair<SimTime, SimTime>>& out) const {
  out.clear();
  for_each_segment(from, to, [&](SimTime a, SimTime b, bool state) {
    if (state && b > a) out.emplace_back(a, b);
  });
}

SimDuration CsTimeline::countable_idle_time(SimTime from, SimTime to,
                                            SimDuration difs) const {
  assert(from <= to);
  SimDuration countable = 0;
  for_each_segment(from, to, [&](SimTime a, SimTime b, bool state) {
    if (!state && b - a > difs) countable += b - a - difs;
  });
  return countable;
}

double CsTimeline::busy_fraction(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  return static_cast<double>(busy_time(from, to)) / static_cast<double>(to - from);
}

// --- Reference oracle (pre-optimization implementations, kept verbatim) -----

SimDuration CsTimeline::busy_time_reference(SimTime from, SimTime to) const {
  assert(from <= to);
  if (from == to) return 0;

  SimDuration busy = 0;
  SimTime cursor = from;
  bool state = busy_at(from);

  auto it = std::upper_bound(
      transitions_.begin(), transitions_.end(), from,
      [](SimTime v, const Transition& tr) { return v < tr.at; });
  for (; it != transitions_.end() && it->at < to; ++it) {
    if (state) busy += it->at - cursor;
    cursor = it->at;
    state = it->busy;
  }
  if (state) busy += to - cursor;
  return busy;
}

SlotCounts CsTimeline::count_slots_reference(SimTime from, SimTime to,
                                             SimDuration slot) const {
  assert(slot > 0);
  SlotCounts counts;
  bool prev_slot_idle = false;
  for (SimTime t = from; t + slot <= to; t += slot) {
    const bool slot_busy = busy_time_reference(t, t + slot) > 0;
    if (slot_busy) {
      ++counts.busy;
      prev_slot_idle = false;
    } else {
      ++counts.idle;
      if (!prev_slot_idle) ++counts.idle_periods;
      prev_slot_idle = true;
    }
  }
  return counts;
}

SimDuration CsTimeline::countable_idle_time_reference(SimTime from, SimTime to,
                                                      SimDuration difs) const {
  assert(from <= to);
  SimDuration countable = 0;
  SimTime cursor = from;
  bool state = busy_at(from);

  auto close_idle_period = [&](SimTime end_at) {
    const SimDuration len = end_at - cursor;
    if (!state && len > difs) countable += len - difs;
  };

  auto it = std::upper_bound(
      transitions_.begin(), transitions_.end(), from,
      [](SimTime v, const Transition& tr) { return v < tr.at; });
  for (; it != transitions_.end() && it->at < to; ++it) {
    close_idle_period(it->at);
    cursor = it->at;
    state = it->busy;
  }
  close_idle_period(to);
  return countable;
}

SimDuration CsTimeline::outage_time_reference(SimTime from, SimTime to) const {
  assert(from <= to);
  SimDuration total = 0;
  for (const OutageSpan& o : outages_) {
    const SimTime lo = std::max(from, o.start);
    const SimTime hi = std::min(to, o.stop);
    if (hi > lo) total += hi - lo;
  }
  if (in_outage_) {
    const SimTime lo = std::max(from, outage_start_);
    if (to > lo) total += to - lo;
  }
  return total;
}

CsTimelineSnapshot CsTimeline::snapshot() const {
  CsTimelineSnapshot snap;
  snap.retention = retention_;
  snap.initial_busy = initial_busy_;
  snap.current_busy = current_busy_;
  snap.in_outage = in_outage_;
  snap.last_edge = last_edge_;
  snap.outage_start = outage_start_;
  snap.cum_busy = cum_busy_;
  snap.transitions.reserve(transitions_.size());
  for (const Transition& tr : transitions_) {
    snap.transitions.emplace_back(tr.at, tr.busy);
  }
  snap.outages.reserve(outages_.size());
  for (const OutageSpan& o : outages_) snap.outages.emplace_back(o.start, o.stop);
  return snap;
}

void CsTimeline::restore(const CsTimelineSnapshot& snap) {
  retention_ = snap.retention;
  initial_busy_ = snap.initial_busy;
  current_busy_ = snap.current_busy;
  in_outage_ = snap.in_outage;
  last_edge_ = snap.last_edge;
  outage_start_ = snap.outage_start;
  cum_busy_ = snap.cum_busy;
  transitions_.clear();
  for (const auto& [at, busy] : snap.transitions) {
    transitions_.push_back(Transition{at, busy});
  }
  outages_.clear();
  for (const auto& [start, stop] : snap.outages) {
    outages_.push_back(OutageSpan{start, stop});
  }
}

}  // namespace manet::phy
