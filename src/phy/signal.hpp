// In-flight signal representation and the opaque payload the PHY carries.
//
// The PHY is payload-agnostic: MAC frames derive from Payload and are
// recovered by the MAC with a static downcast. This keeps the dependency
// direction mac -> phy.
#pragma once

#include <cstdint>
#include <memory>

#include "geom/vec2.hpp"
#include "util/types.hpp"

namespace manet::phy {

/// Base class for anything the PHY can carry.
struct Payload {
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// One transmission as perceived by one receiver.
struct Signal {
  std::uint64_t id = 0;        // unique per transmission event
  NodeId transmitter = kInvalidNode;
  PayloadPtr payload;
  SimTime start = 0;
  SimTime end = 0;
  double rx_power_dbm = 0.0;   // at this receiver
  /// Fault injection marked this delivery's bits as damaged: a radio that
  /// locks onto it reports a reception error (the FCS fails), never a
  /// valid frame.
  bool corrupted = false;
};

/// Interface nodes use to expose their (possibly moving) positions.
class PositionProvider {
 public:
  virtual ~PositionProvider() = default;
  virtual geom::Vec2 position(NodeId node, SimTime at) const = 0;
};

}  // namespace manet::phy
