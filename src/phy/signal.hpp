// In-flight signal representation and the opaque payload the PHY carries.
//
// The PHY is payload-agnostic: MAC frames derive from Payload and are
// recovered by the MAC with a static downcast. This keeps the dependency
// direction mac -> phy.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "geom/vec2.hpp"
#include "util/types.hpp"

namespace manet::phy {

/// Base class for anything the PHY can carry.
struct Payload {
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// One transmission as perceived by one receiver.
struct Signal {
  std::uint64_t id = 0;        // unique per transmission event
  NodeId transmitter = kInvalidNode;
  PayloadPtr payload;
  SimTime start = 0;
  SimTime end = 0;
  double rx_power_dbm = 0.0;   // at this receiver
  /// Fault injection marked this delivery's bits as damaged: a radio that
  /// locks onto it reports a reception error (the FCS fails), never a
  /// valid frame.
  bool corrupted = false;
};

/// A node's position epoch value meaning "in motion right now": the
/// position may differ at the very next query, so nothing keyed by the
/// epoch may be cached.
inline constexpr std::uint64_t kMovingEpoch = ~std::uint64_t{0};

/// Speed bound meaning "unknown": the channel cannot bound how far nodes
/// drift between queries, so spatial pre-filtering is disabled.
inline constexpr double kUnboundedSpeed = std::numeric_limits<double>::infinity();

/// One piecewise-linear motion segment of a node: from the query instant
/// until `until`, the node's true position stays within floating-point
/// noise of position + velocity_mps * (t - query time). The channel's
/// incremental spatial index consumes these to schedule cell migrations at
/// exact boundary-crossing times and to bound pair distances over time; it
/// never reconstructs exact positions from a segment (exact positions
/// always come from position(), so cached-path results stay bit-identical
/// to a full scan).
struct MotionState {
  geom::Vec2 position;          // exact position at the query time
  geom::Vec2 velocity_mps;      // constant over [query time, until)
  SimTime until = 0;            // segment end; <= query time means "unknown"
  /// Distinct per segment (a waypoint leg's travel and pause phases get
  /// different epochs); kMovingEpoch when the provider cannot describe the
  /// motion. Two equal non-kMovingEpoch epochs identify the same segment.
  std::uint64_t epoch = kMovingEpoch;
};

/// Interface nodes use to expose their (possibly moving) positions.
class PositionProvider {
 public:
  virtual ~PositionProvider() = default;
  virtual geom::Vec2 position(NodeId node, SimTime at) const = 0;

  /// Identifies the span of time over which `node`'s position is constant:
  /// two queries returning the same (non-kMovingEpoch) epoch are guaranteed
  /// to see the same position, so per-pair link budgets may be cached under
  /// the epoch pair. Static providers return a constant; waypoint mobility
  /// returns a fresh value per pause and kMovingEpoch while traveling.
  /// Like position(), expected to be queried with non-decreasing `at`.
  virtual std::uint64_t position_epoch(NodeId /*node*/, SimTime /*at*/) const {
    return kMovingEpoch;
  }

  /// Upper bound on any node's speed in m/s (0 for static layouts). The
  /// channel's spatial index uses it to bound how stale its cells can be;
  /// kUnboundedSpeed (the conservative default) disables the index.
  virtual double max_speed_mps() const { return kUnboundedSpeed; }

  /// True when motion() describes every node's trajectory as piecewise-
  /// linear segments; required by the channel's incremental index. The
  /// default (false) keeps unknown providers on the rebuild/scan paths.
  virtual bool piecewise_linear() const { return false; }

  /// The motion segment containing `at`. Default: position only, nothing
  /// known beyond the instant. Like position(), expected to be queried
  /// with non-decreasing `at` per node.
  virtual MotionState motion(NodeId node, SimTime at) const {
    return MotionState{position(node, at), geom::Vec2{0.0, 0.0}, at, kMovingEpoch};
  }
};

}  // namespace manet::phy
