// Half-duplex radio transceiver.
//
// Tracks every audible in-flight signal, derives physical carrier sense
// (any audible energy, or own transmission), and decodes at most one frame
// at a time:
//   * an arriving signal with power >= rx threshold starts a reception if
//     the radio is idle (not transmitting, not locked onto another frame);
//   * a concurrent arrival within `capture_threshold_db` of the locked
//     frame corrupts it (collision); a weaker one is plain interference;
//   * receptions that overlap our own transmission are lost (half duplex).
// MAC-level listeners are notified of carrier transitions, completed
// receptions, and reception errors.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "phy/signal.hpp"
#include "util/types.hpp"

namespace manet::phy {

class Channel;

/// Callbacks a MAC (or tracker) registers with its radio.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// Physical carrier sense changed. Called only on edges.
  virtual void on_carrier(bool busy, SimTime at) = 0;
  /// A frame addressed through the air arrived intact.
  virtual void on_receive(const Signal& signal) = 0;
  /// A frame we had locked onto was corrupted (collision / own tx overlap).
  virtual void on_receive_error(const Signal& signal) = 0;
  /// Our own transmission finished.
  virtual void on_transmit_end(std::uint64_t signal_id) = 0;
  /// The radio entered (true) or left (false) a scheduled outage. Default
  /// no-op: most listeners only care about carrier edges, which fire too.
  virtual void on_outage(bool /*deaf*/, SimTime /*at*/) {}
};

class Radio {
 public:
  Radio(NodeId id, Channel& channel);

  NodeId id() const { return id_; }

  /// Adds a listener (MAC first, then any trackers). Not removable; the
  /// topology of a scenario is fixed at build time.
  void add_listener(RadioListener* listener) { listeners_.push_back(listener); }

  /// Begins transmitting. Precondition: not already transmitting.
  /// Returns the signal id.
  std::uint64_t transmit(PayloadPtr payload, SimDuration airtime);

  bool transmitting() const { return transmitting_; }

  /// Physical carrier sense: audible energy or own transmission.
  bool carrier_busy() const { return transmitting_ || !incident_.empty(); }

  /// Fault-injected receiver outage. While deaf the radio drops all
  /// incident energy (any in-progress reception is silently lost) and
  /// ignores new signals; transmission still works. Listeners see the
  /// carrier edge plus an on_outage notification.
  void set_outage(bool deaf);
  bool in_outage() const { return outage_; }

  // --- Channel-facing interface ---
  void signal_start(const Signal& signal, double rx_threshold_dbm,
                    double capture_threshold_db);
  void signal_end(const Signal& signal);
  void own_transmit_end(std::uint64_t signal_id);

 private:
  void notify_carrier_if_changed();

  NodeId id_;
  Channel& channel_;
  std::vector<RadioListener*> listeners_;

  std::unordered_map<std::uint64_t, Signal> incident_;  // audible signals
  bool transmitting_ = false;
  bool last_carrier_ = false;
  bool outage_ = false;

  // Reception lock state.
  bool receiving_ = false;
  Signal rx_signal_;
  bool rx_corrupted_ = false;
};

}  // namespace manet::phy
