// Half-duplex radio transceiver.
//
// Tracks every audible in-flight signal, derives physical carrier sense
// (any audible energy, or own transmission), and decodes at most one frame
// at a time:
//   * an arriving signal with power >= rx threshold starts a reception if
//     the radio is idle (not transmitting, not locked onto another frame);
//   * a concurrent arrival within `capture_threshold_db` of the locked
//     frame corrupts it (collision); a weaker one is plain interference;
//   * receptions that overlap our own transmission are lost (half duplex).
// MAC-level listeners are notified of carrier transitions, completed
// receptions, and reception errors.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/signal.hpp"
#include "util/types.hpp"

namespace manet::phy {

class Channel;

/// Callbacks a MAC (or tracker) registers with its radio.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// Physical carrier sense changed. Called only on edges.
  virtual void on_carrier(bool busy, SimTime at) = 0;
  /// A frame addressed through the air arrived intact.
  virtual void on_receive(const Signal& signal) = 0;
  /// A frame we had locked onto was corrupted (collision / own tx overlap).
  virtual void on_receive_error(const Signal& signal) = 0;
  /// Our own transmission finished.
  virtual void on_transmit_end(std::uint64_t signal_id) = 0;
  /// The radio entered (true) or left (false) a scheduled outage. Default
  /// no-op: most listeners only care about carrier edges, which fire too.
  virtual void on_outage(bool /*deaf*/, SimTime /*at*/) {}
};

class Radio {
 public:
  Radio(NodeId id, Channel& channel);

  NodeId id() const { return id_; }

  /// Adds a listener (MAC first, then any trackers). Not removable; the
  /// topology of a scenario is fixed at build time.
  void add_listener(RadioListener* listener) { listeners_.push_back(listener); }

  /// Begins transmitting. Precondition: not already transmitting.
  /// Returns the signal id.
  std::uint64_t transmit(PayloadPtr payload, SimDuration airtime);

  bool transmitting() const { return transmitting_; }

  /// Physical carrier sense: audible energy or own transmission.
  bool carrier_busy() const { return transmitting_ || !incident_.empty(); }

  /// Fault-injected receiver outage. While deaf the radio drops all
  /// incident energy (any in-progress reception is silently lost) and
  /// ignores new signals; transmission still works. Listeners see the
  /// carrier edge plus an on_outage notification.
  void set_outage(bool deaf);
  bool in_outage() const { return outage_; }

  // --- Channel-facing interface ---
  /// Attach-order index assigned by Channel::attach; lets the channel map
  /// a transmitting radio to its grid/cache row without a hash lookup.
  void set_channel_index(std::uint32_t index) { channel_index_ = index; }
  std::uint32_t channel_index() const { return channel_index_; }
  void signal_start(const Signal& signal, double rx_threshold_dbm,
                    double capture_threshold_db);
  /// Ends the previously-started signal `id`. The radio finishes with its
  /// own stored copy of the delivery (the channel does not need to retain
  /// per-receiver signals until end-of-air). A no-op when the signal is no
  /// longer tracked (an outage wiped it), matching the outage semantics:
  /// a deaf radio saw the energy vanish already.
  void signal_end(std::uint64_t signal_id);
  void own_transmit_end(std::uint64_t signal_id);

 private:
  void notify_carrier_if_changed();

  NodeId id_;
  Channel& channel_;
  std::uint32_t channel_index_ = 0;
  std::vector<RadioListener*> listeners_;

  // Audible signals. A flat vector: concurrent in-flight signals at one
  // receiver are few (bounded by simultaneous transmitters in CS range),
  // so linear scans beat a hash map and per-delivery rehashing.
  std::vector<Signal> incident_;
  bool transmitting_ = false;
  bool last_carrier_ = false;
  bool outage_ = false;

  // Reception lock state.
  bool receiving_ = false;
  Signal rx_signal_;
  bool rx_corrupted_ = false;
};

}  // namespace manet::phy
