#include "phy/propagation.hpp"

#include <cmath>
#include <stdexcept>

namespace manet::phy {

Propagation::Propagation(const PropagationParams& params, std::uint64_t shadowing_seed)
    : params_(params), shadowing_rng_(shadowing_seed) {
  if (params.tx_range_m <= 0 || params.cs_range_m < params.tx_range_m) {
    throw std::invalid_argument("require 0 < tx_range <= cs_range");
  }
  rx_threshold_dbm_ = mean_rx_power_dbm(params.tx_range_m);
  cs_threshold_dbm_ = mean_rx_power_dbm(params.cs_range_m);
}

double Propagation::mean_rx_power_dbm(double distance_m) const {
  const double d = std::max(distance_m, params_.reference_distance_m);
  return params_.tx_power_dbm - params_.reference_loss_db -
         10.0 * params_.path_loss_exponent *
             std::log10(d / params_.reference_distance_m);
}

double Propagation::rx_power_dbm(const geom::Vec2& tx, const geom::Vec2& rx) {
  double p = mean_rx_power_dbm(geom::distance(tx, rx));
  if (params_.shadowing_sigma_db > 0.0) {
    p += shadowing_rng_.normal(0.0, params_.shadowing_sigma_db);
  }
  return p;
}

}  // namespace manet::phy
