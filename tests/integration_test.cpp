// End-to-end tests of the full stack: Table-1 scenarios, the detection
// experiment harness, and the paper's headline claims at reduced scale
// (short runs, fixed seeds) so the suite stays fast.
#include <gtest/gtest.h>

#include "detect/experiment.hpp"
#include "net/load.hpp"

namespace manet::detect {
namespace {

net::ScenarioConfig fast_grid(double sim_seconds = 40) {
  net::ScenarioConfig cfg;  // paper defaults: 7x8 grid etc.
  cfg.sim_seconds = sim_seconds;
  cfg.num_flows = 30;
  cfg.seed = 21;
  return cfg;
}

MonitorConfig grid_monitor(std::size_t sample_size = 10) {
  MonitorConfig m;
  m.sample_size = sample_size;
  m.fixed_n = m.fixed_k = m.fixed_m = m.fixed_j = 5.0;  // paper Section 5
  m.fixed_contenders = 20.0;
  return m;
}

TEST(Integration, GridScenarioCarriesTraffic) {
  DetectionConfig cfg;
  cfg.scenario = fast_grid(20);
  cfg.rate_pps = 15;
  cfg.monitor = grid_monitor();
  const DetectionResult r = run_detection_experiment(cfg);
  EXPECT_GT(r.stats.rts_observed, 50u);
  EXPECT_GT(r.stats.samples, 20u);
  EXPECT_GT(r.measured_rho, 0.02);
  EXPECT_LT(r.measured_rho, 0.98);
}

TEST(Integration, HonestNetworkHasLowFalseAlarmRate) {
  DetectionConfig cfg;
  cfg.scenario = fast_grid(60);
  cfg.rate_pps = 15;
  cfg.pm = 0;
  cfg.monitor = grid_monitor(10);
  const DetectionResult r = run_detection_trials(cfg, 3);
  ASSERT_GT(r.windows, 20u);
  // Paper: misdiagnosis < 1%. Allow slack for the small trial count.
  EXPECT_LT(r.detection_rate, 0.05);
}

TEST(Integration, HeavyMisbehaviorIsDetectedReliably) {
  DetectionConfig cfg;
  cfg.scenario = fast_grid(40);
  cfg.rate_pps = 15;
  cfg.pm = 90;
  cfg.monitor = grid_monitor(10);
  const DetectionResult r = run_detection_experiment(cfg);
  ASSERT_GT(r.windows, 10u);
  EXPECT_GT(r.detection_rate, 0.75);
}

TEST(Integration, DetectionProbabilityIncreasesWithMisbehavior) {
  auto rate_for = [](double pm) {
    DetectionConfig cfg;
    cfg.scenario = fast_grid(40);
    cfg.rate_pps = 15;
    cfg.pm = pm;
    cfg.monitor = grid_monitor(10);
    const DetectionResult r = run_detection_experiment(cfg);
    return r.windows ? r.detection_rate : -1.0;
  };
  const double low = rate_for(20);
  const double high = rate_for(85);
  ASSERT_GE(low, 0.0);
  ASSERT_GE(high, 0.0);
  EXPECT_GE(high, low);
  EXPECT_GT(high, 0.7);
}

TEST(Integration, LargerSampleSizeDetectsSubtlerMisbehavior) {
  auto rate_for = [](std::size_t ss) {
    DetectionConfig cfg;
    cfg.scenario = fast_grid(90);
    cfg.rate_pps = 15;
    cfg.pm = 50;
    cfg.monitor = grid_monitor(ss);
    const DetectionResult r = run_detection_trials(cfg, 2);
    return r.windows ? r.detection_rate : -1.0;
  };
  const double small = rate_for(10);
  const double large = rate_for(50);
  ASSERT_GE(small, 0.0);
  ASSERT_GE(large, 0.0);
  EXPECT_GE(large + 0.05, small);  // allow small-sample noise
}

TEST(Integration, CondProbExperimentProducesConsistentProbabilities) {
  CondProbConfig cfg;
  cfg.scenario = fast_grid();
  cfg.rate_pps = 15;
  cfg.warmup_s = 2;
  cfg.measure_s = 20;
  cfg.monitor = grid_monitor();
  const CondProbResult r = run_cond_prob_experiment(cfg);
  EXPECT_GT(r.measured_rho, 0.0);
  EXPECT_LT(r.measured_rho, 1.0);
  EXPECT_GE(r.sim_p_busy_given_idle, 0.0);
  EXPECT_LE(r.sim_p_busy_given_idle, 1.0);
  EXPECT_GE(r.sim_p_idle_given_busy, 0.0);
  EXPECT_LE(r.sim_p_idle_given_busy, 1.0);
  EXPECT_GT(r.ana_p_busy_given_idle, 0.0);
  EXPECT_GT(r.ana_p_idle_given_busy, 0.0);
}

TEST(Integration, CondProbBusyGivenIdleGrowsWithLoad) {
  auto at_rate = [](double rate) {
    CondProbConfig cfg;
    cfg.scenario = fast_grid();
    cfg.rate_pps = rate;
    cfg.warmup_s = 2;
    cfg.measure_s = 20;
    cfg.monitor = grid_monitor();
    return run_cond_prob_experiment(cfg);
  };
  const auto lo = at_rate(4);
  const auto hi = at_rate(40);
  EXPECT_GT(hi.measured_rho, lo.measured_rho);
  EXPECT_GT(hi.sim_p_busy_given_idle, lo.sim_p_busy_given_idle);
  EXPECT_GT(hi.ana_p_busy_given_idle, lo.ana_p_busy_given_idle);
}

TEST(Integration, MobileScenarioStillDetects) {
  DetectionConfig cfg;
  cfg.scenario = fast_grid(60);
  cfg.scenario.mobility = net::MobilityKind::kRandomWaypoint;
  cfg.scenario.max_speed_mps = 20;
  cfg.rate_pps = 15;
  cfg.pm = 90;
  cfg.monitor = grid_monitor(10);
  cfg.mobile_handoff = true;
  const DetectionResult r = run_detection_experiment(cfg);
  ASSERT_GT(r.windows, 3u);
  EXPECT_GT(r.detection_rate, 0.6);
}

TEST(Integration, RandomTopologyScenarioRuns) {
  DetectionConfig cfg;
  cfg.scenario = fast_grid(20);
  cfg.scenario.topology = net::TopologyKind::kRandom;
  cfg.scenario.traffic = net::TrafficKind::kCbr;
  cfg.rate_pps = 15;
  cfg.pm = 0;
  MonitorConfig m;  // density-estimated counts for random layouts
  m.sample_size = 10;
  cfg.monitor = m;
  const DetectionResult r = run_detection_experiment(cfg);
  EXPECT_GT(r.stats.rts_observed, 10u);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run = [] {
    DetectionConfig cfg;
    cfg.scenario = fast_grid(20);
    cfg.rate_pps = 15;
    cfg.pm = 40;
    cfg.monitor = grid_monitor(10);
    const DetectionResult r = run_detection_experiment(cfg);
    return std::make_tuple(r.windows, r.flagged, r.stats.samples);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace manet::detect
