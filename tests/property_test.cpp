// Parameterized property suites: invariants swept across configuration
// space with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "detect/wilcoxon.hpp"
#include "geom/region_model.hpp"
#include "mac/backoff.hpp"
#include "mac/dcf.hpp"
#include "net/mobility.hpp"
#include "phy/channel.hpp"
#include "phy/cs_timeline.hpp"
#include "sim/simulator.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace manet {
namespace {

// --- Wilcoxon: validity and power across sample sizes -----------------------

class WilcoxonSampleSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WilcoxonSampleSize, PValueValidUnderNull) {
  const std::size_t n = GetParam();
  util::Xoshiro256ss rng(1000 + n);
  int rejections = 0;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> x(n), y(n);
    for (auto& v : x) v = rng.uniform();
    for (auto& v : y) v = rng.uniform();
    if (detect::wilcoxon_rank_sum(x, y).p_less <= 0.05) ++rejections;
  }
  // A valid (possibly conservative) test: rejection rate <= alpha + noise.
  EXPECT_LE(rejections / static_cast<double>(trials), 0.05 + 0.02);
}

TEST_P(WilcoxonSampleSize, DetectsAHalvedPopulation) {
  const std::size_t n = GetParam();
  util::Xoshiro256ss rng(2000 + n);
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> x(n), y(n);
    for (auto& v : x) v = rng.uniform();
    for (auto& v : y) v = rng.uniform() * 0.5;
    if (detect::wilcoxon_rank_sum(x, y).p_less <= 0.05) ++rejections;
  }
  // Power grows with n; even n=5 has nontrivial power against halving.
  const double power = rejections / static_cast<double>(trials);
  EXPECT_GT(power, n >= 25 ? 0.9 : 0.2) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, WilcoxonSampleSize,
                         ::testing::Values(5, 10, 25, 50, 100));

// --- Region model: invariants across separations ----------------------------

class RegionSeparation : public ::testing::TestWithParam<double> {};

TEST_P(RegionSeparation, AreasAndFractionsAreSane) {
  const double d = GetParam();
  const geom::RegionModel model(d, 550.0);
  const auto& a = model.areas();
  EXPECT_GT(a.a1, 0);
  EXPECT_GT(a.a2, 0);
  EXPECT_GT(a.a3, 0);
  EXPECT_GT(a.a4, 0);
  EXPECT_GT(a.a5, 0);
  EXPECT_NEAR(a.a2, a.a5, 1e-6);
  EXPECT_NEAR(model.p_tx_in_a1() + model.p_tx_in_a2(), 1.0, 1e-12);
  EXPECT_GT(model.p_tx_in_a5(), model.p_tx_in_a5_incl_a3());
  EXPECT_LT(model.p_tx_in_a5_incl_a3(), 1.0);
  // A2 + lens == full disk.
  EXPECT_NEAR(a.a2 + a.a3 + a.a4, 550 * 550 * 3.14159265358979, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Separations, RegionSeparation,
                         ::testing::Values(50.0, 120.0, 240.0, 400.0, 700.0,
                                           1000.0));

// --- PRS: uniformity for every attempt number -------------------------------

class PrsAttempt : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrsAttempt, DictatedValuesAreUniformOverTheAttemptWindow) {
  const std::uint32_t attempt = GetParam();
  mac::DcfParams params;
  const std::uint32_t cw = params.cw_for_attempt(attempt);
  mac::VerifiableBackoff prs(0xFACE + attempt, params);

  util::Histogram hist(0, cw + 1, 16);
  const std::uint64_t draws = 8000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    const auto v = prs.dictated_slots(i, attempt);
    ASSERT_LE(v, cw);
    hist.add(v);
  }
  // Chi-square, 15 dof, 99.9th percentile ~ 37.7.
  EXPECT_LT(hist.chi_square_uniform(), 37.7) << "attempt " << attempt;
}

INSTANTIATE_TEST_SUITE_P(Attempts, PrsAttempt,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- DCF: exchanges complete for every payload size -------------------------

struct PairPositions : phy::PositionProvider {
  geom::Vec2 position(NodeId node, SimTime) const override {
    return {node * 200.0, 0.0};
  }
};

class DcfPayload : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DcfPayload, RoundTripDeliversEveryPayloadSize) {
  const std::uint32_t payload = GetParam();
  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop(phy::PropagationParams{}, 1);
  PairPositions positions;
  phy::Channel channel(sim, prop, positions);
  phy::Radio r0(0, channel), r1(1, channel);
  mac::DcfMac m0(sim, r0, params), m1(sim, r1, params);

  for (int i = 0; i < 5; ++i) m0.enqueue(1, payload, 100 + i);
  sim.run_until(5 * kSecond);

  EXPECT_EQ(m1.stats().packets_delivered, 5u);
  EXPECT_EQ(m0.stats().retry_drops, 0u);
  // Airtime grows with payload.
  EXPECT_GT(params.data_airtime(payload + 100), params.data_airtime(payload));
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, DcfPayload,
                         ::testing::Values(64u, 256u, 512u, 1024u, 2048u));

// --- Random waypoint: bounds hold for every pause time ----------------------

class RwpPause : public ::testing::TestWithParam<double> {};

TEST_P(RwpPause, PositionsStayInFieldForPaperPauseTimes) {
  net::RandomWaypointParams params;
  params.width = 3000;
  params.height = 3000;
  params.pause = seconds_to_time(GetParam());
  net::RandomWaypoint rwp({{1500, 1500}, {10, 10}}, params, 99);
  for (int t = 0; t <= 300; t += 3) {
    for (NodeId n = 0; n < 2; ++n) {
      const geom::Vec2 p = rwp.position(n, t * kSecond);
      EXPECT_GE(p.x, 0);
      EXPECT_LE(p.x, 3000);
      EXPECT_GE(p.y, 0);
      EXPECT_LE(p.y, 3000);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperPauseTimes, RwpPause,
                         ::testing::Values(0.0, 50.0, 100.0, 200.0, 300.0));

// --- Misbehavior policies: monotone gain in channel access ------------------

class PmSweep : public ::testing::TestWithParam<double> {};

TEST_P(PmSweep, UsedSlotsNeverExceedDictated) {
  const double pm = GetParam();
  mac::PercentMisbehavior policy(pm);
  mac::DcfParams params;
  mac::VerifiableBackoff prs(5, params);
  for (std::uint64_t i = 0; i < 500; ++i) {
    mac::BackoffContext ctx;
    ctx.dictated_slots = prs.dictated_slots(i, 1 + (i % 7));
    const auto used = policy.used_slots(ctx);
    EXPECT_LE(used, ctx.dictated_slots);
    // Within rounding of the definition: used ~= dictated * (100-pm)/100.
    EXPECT_NEAR(used, ctx.dictated_slots * (100.0 - pm) / 100.0, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(PmValues, PmSweep,
                         ::testing::Values(10.0, 25.0, 50.0, 65.0, 80.0, 90.0,
                                           100.0));

// --- CsTimeline: single-sweep queries agree with the reference oracle --------
//
// The optimized busy_time / countable_idle_time / count_slots / outage_time
// share one merged cursor walk; the *_reference methods are the verbatim
// pre-optimization implementations. Random transition histories — redundant
// edges, outage overlap, short retention so windows straddle the pruning
// horizon — must produce identical answers from both.

class CsTimelineOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsTimelineOracle, SweepQueriesMatchReference) {
  util::Xoshiro256ss rng(GetParam());
  phy::CsTimeline tl(2 * kSecond);  // short retention exercises pruning
  SimTime t = 0;
  bool busy = false;
  bool deaf = false;
  int queries = 0;
  for (int step = 0; step < 6000; ++step) {
    t += 1 + static_cast<SimTime>(rng.uniform_int(3 * kMillisecond));
    const double r = rng.uniform();
    if (r < 0.40) {
      busy = !busy;
      tl.on_carrier(busy, t);
    } else if (r < 0.50) {
      deaf = !deaf;
      tl.on_outage(deaf, t);
    } else if (r < 0.58) {
      tl.on_carrier(busy, t);  // redundant edge: must be a no-op
    } else {
      // Query windows deliberately straddle the pruning horizon, the live
      // edge, and empty ranges.
      SimTime from = t > 3 * kSecond ? t - 3 * kSecond : 0;
      from += static_cast<SimTime>(rng.uniform_int(3 * kSecond));
      const SimTime to = from + static_cast<SimTime>(rng.uniform_int(60 * kMillisecond));
      EXPECT_EQ(tl.busy_time(from, to), tl.busy_time_reference(from, to));
      EXPECT_EQ(tl.outage_time(from, to), tl.outage_time_reference(from, to));
      const SimDuration difs = 10 + static_cast<SimDuration>(rng.uniform_int(100));
      EXPECT_EQ(tl.countable_idle_time(from, to, difs),
                tl.countable_idle_time_reference(from, to, difs));
      const SimDuration slot = 20 * (1 + static_cast<SimDuration>(rng.uniform_int(1000)));
      const phy::SlotCounts a = tl.count_slots(from, to, slot);
      const phy::SlotCounts b = tl.count_slots_reference(from, to, slot);
      EXPECT_EQ(a.busy, b.busy) << "from=" << from << " to=" << to << " slot=" << slot;
      EXPECT_EQ(a.idle, b.idle);
      EXPECT_EQ(a.idle_periods, b.idle_periods);
      ++queries;
    }
  }
  EXPECT_GT(queries, 1000);  // the trial actually exercised the queries
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsTimelineOracle,
                         ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace manet
