// Tests for the experiment engine layer (src/exp/): thread pool, the
// deterministic Engine::map contract, seeding, result sinks, the shared
// rate cache, and the benches' strict numeric-list parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_common.hpp"
#include "exp/engine.hpp"
#include "exp/rate_cache.hpp"
#include "exp/seeding.hpp"
#include "exp/sink.hpp"
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"

namespace manet::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(Engine, ResolveThreadsNeverReturnsZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
}

TEST(Engine, MapReturnsResultsInIndexOrder) {
  for (unsigned threads : {1u, 4u}) {
    Engine engine(threads);
    const auto out =
        engine.map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(Engine, MapRethrowsTheLowestIndexException) {
  Engine engine(4);
  try {
    engine.map(10, [](std::size_t i) -> int {
      if (i >= 3) throw std::runtime_error(std::to_string(i));
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");  // deterministic: lowest failing index
  }
}

TEST(Engine, SerialEngineRunsInline) {
  // threads == 1 must execute on the calling thread (no pool).
  Engine engine(1);
  const auto caller = std::this_thread::get_id();
  engine.for_each(3, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(Seeding, TrialSeedMatchesSerialIncrement) {
  // The historical loops did `++seed` between runs.
  std::uint64_t seed = 42;
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(trial_seed(42, i), seed);
    ++seed;
  }
}

TEST(Sweep, GroupsTrialsByPointInRunOrder) {
  Engine engine(4);
  const std::vector<int> points = {10, 20, 30};
  const auto grouped = run_sweep(engine, points, 3, [](int point, int run) {
    return point + run;
  });
  ASSERT_EQ(grouped.size(), 3u);
  for (std::size_t p = 0; p < points.size(); ++p) {
    ASSERT_EQ(grouped[p].size(), 3u);
    for (int run = 0; run < 3; ++run) {
      EXPECT_EQ(grouped[p][static_cast<std::size_t>(run)], points[p] + run);
    }
  }
}

TEST(Record, RendersTypedFieldsInInsertionOrder) {
  Record r;
  r.add("name", "fig5").add("load", 0.5).add("windows", std::uint64_t{7})
      .add("runs", 2).add("ok", true);
  EXPECT_EQ(r.to_json(),
            "{\"name\": \"fig5\", \"load\": 0.5, \"windows\": 7, "
            "\"runs\": 2, \"ok\": true}");
}

TEST(Record, NonFiniteDoublesBecomeNull) {
  Record r;
  r.add("nan", std::nan("")).add("inf", HUGE_VAL);
  EXPECT_EQ(r.to_json(), "{\"nan\": null, \"inf\": null}");
}

TEST(Record, EscapesStrings) {
  Record r;
  r.add("s", "a\"b\\c\nd");
  EXPECT_EQ(r.to_json(), "{\"s\": \"a\\\"b\\\\c\\nd\"}");
}

TEST(MemorySink, KeepsEveryRecord) {
  MemorySink sink;
  Engine engine(4);
  engine.for_each(50, [&](std::size_t i) {
    Record r;
    r.add("i", static_cast<std::uint64_t>(i));
    sink.record(r);
  });
  EXPECT_EQ(sink.records().size(), 50u);
}

TEST(JsonFileSink, WritesAValidArray) {
  const std::string path = testing::TempDir() + "exp_test_sink.json";
  {
    JsonFileSink sink(path);
    Record a, b;
    a.add("x", 1);
    b.add("x", 2);
    sink.record(a);
    sink.record(b);
    sink.flush();
  }  // destructor closes the array
  const std::string text = slurp(path);
  EXPECT_EQ(text, "[\n{\"x\": 1},\n{\"x\": 2}\n]\n");
  std::remove(path.c_str());
}

TEST(JsonFileSink, EmptySweepStillYieldsAnArray) {
  const std::string path = testing::TempDir() + "exp_test_empty.json";
  { JsonFileSink sink(path); }
  EXPECT_EQ(slurp(path), "[\n\n]\n");
  std::remove(path.c_str());
}

TEST(JsonFileSink, UnwritablePathThrows) {
  EXPECT_THROW(JsonFileSink("/nonexistent-dir/out.json"), std::runtime_error);
}

TEST(RateCache, CalibratesEachLoadExactlyOnceUnderConcurrency) {
  std::atomic<int> probes{0};
  net::ScenarioConfig scenario;
  RateCache cache(scenario, "/nonexistent-dir/never-used",
                  [&probes](const net::ScenarioConfig&, double load) {
                    probes.fetch_add(1, std::memory_order_relaxed);
                    net::CalibrationResult r;
                    r.packets_per_second = 10.0 * load;
                    r.measured_busy_fraction = load;
                    return r;
                  });
  Engine engine(8);
  engine.for_each(32, [&](std::size_t i) {
    const double load = (i % 2 == 0) ? 0.3 : 0.6;
    EXPECT_DOUBLE_EQ(cache.rate_for(load), 10.0 * load);
  });
  EXPECT_EQ(probes.load(), 2);  // one calibration per distinct load
}

TEST(RateCache, FileCacheSharesCalibrationsAcrossInstances) {
  const std::string path = testing::TempDir() + "exp_test_rates.cache";
  std::remove(path.c_str());
  net::ScenarioConfig scenario;

  std::atomic<int> first_probes{0};
  RateCache first(scenario, path,
                  [&first_probes](const net::ScenarioConfig&, double load) {
                    ++first_probes;
                    net::CalibrationResult r;
                    r.packets_per_second = 7.5 * load;
                    return r;
                  });
  EXPECT_DOUBLE_EQ(first.rate_for(0.6), 4.5);
  EXPECT_EQ(first_probes.load(), 1);

  // A fresh instance (same scenario fingerprint) must hit the file, not
  // its calibrator.
  std::atomic<int> second_probes{0};
  RateCache second(scenario, path,
                   [&second_probes](const net::ScenarioConfig&, double) {
                     ++second_probes;
                     return net::CalibrationResult{};
                   });
  EXPECT_DOUBLE_EQ(second.rate_for(0.6), 4.5);
  EXPECT_EQ(second_probes.load(), 0);

  // A different scenario must NOT reuse the entry.
  net::ScenarioConfig other = scenario;
  other.seed += 1;
  std::atomic<int> other_probes{0};
  RateCache third(other, path,
                  [&other_probes](const net::ScenarioConfig&, double load) {
                    ++other_probes;
                    net::CalibrationResult r;
                    r.packets_per_second = 9.0 * load;
                    return r;
                  });
  EXPECT_DOUBLE_EQ(third.rate_for(0.6), 5.4);
  EXPECT_EQ(other_probes.load(), 1);
  std::remove(path.c_str());
}

TEST(ParseDoubleList, ParsesWellFormedLists) {
  const auto v = bench::parse_double_list(" 0.3, 0.6 ,0.9 ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.3);
  EXPECT_DOUBLE_EQ(v[1], 0.6);
  EXPECT_DOUBLE_EQ(v[2], 0.9);
  EXPECT_TRUE(bench::parse_double_list("").empty());
  EXPECT_TRUE(bench::parse_double_list(",,").empty());
}

TEST(ParseDoubleList, RejectsMalformedTokensWithConfigError) {
  // Regression: "--loads=0.3,x" used to terminate via an uncaught
  // std::invalid_argument out of std::stod.
  EXPECT_THROW(bench::parse_double_list("0.3,x"), util::ConfigError);
  EXPECT_THROW(bench::parse_double_list("1.2.3"), util::ConfigError);
  EXPECT_THROW(bench::parse_double_list("0.5junk"), util::ConfigError);
}

}  // namespace
}  // namespace manet::exp
