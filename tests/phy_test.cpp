#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/channel.hpp"
#include "phy/cs_timeline.hpp"
#include "phy/joint_tracker.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace manet::phy {
namespace {

struct DummyPayload : Payload {};

PayloadPtr payload() { return std::make_shared<const DummyPayload>(); }

/// Records radio callbacks for assertions.
struct Recorder : RadioListener {
  std::vector<std::pair<bool, SimTime>> carrier;
  std::vector<Signal> received;
  int errors = 0;
  int tx_ends = 0;

  void on_carrier(bool busy, SimTime at) override { carrier.push_back({busy, at}); }
  void on_receive(const Signal& s) override { received.push_back(s); }
  void on_receive_error(const Signal&) override { ++errors; }
  void on_transmit_end(std::uint64_t) override { ++tx_ends; }
};

/// Fixed positions for a handful of radios.
struct FixedPositions : PositionProvider {
  explicit FixedPositions(std::vector<geom::Vec2> p) : pos(std::move(p)) {}
  std::vector<geom::Vec2> pos;
  geom::Vec2 position(NodeId node, SimTime) const override { return pos.at(node); }
};

struct PhyFixture {
  explicit PhyFixture(std::vector<geom::Vec2> layout,
                      PropagationParams params = {})
      : prop(params, /*shadowing_seed=*/7), positions{std::move(layout)},
        channel(sim, prop, positions) {
    for (NodeId i = 0; i < positions.pos.size(); ++i) {
      radios.push_back(std::make_unique<Radio>(i, channel));
      recorders.push_back(std::make_unique<Recorder>());
      radios.back()->add_listener(recorders.back().get());
    }
  }

  sim::Simulator sim;
  Propagation prop;
  FixedPositions positions;
  Channel channel;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(Propagation, ThresholdsMatchConfiguredRanges) {
  PropagationParams p;  // free space, 250 / 550 m
  Propagation prop(p, 1);
  EXPECT_NEAR(prop.mean_rx_power_dbm(250), prop.rx_threshold_dbm(), 1e-9);
  EXPECT_NEAR(prop.mean_rx_power_dbm(550), prop.cs_threshold_dbm(), 1e-9);
  // Decodable strictly inside, inaudible strictly outside.
  EXPECT_GT(prop.mean_rx_power_dbm(249), prop.rx_threshold_dbm());
  EXPECT_LT(prop.mean_rx_power_dbm(251), prop.rx_threshold_dbm());
  EXPECT_GT(prop.mean_rx_power_dbm(549), prop.cs_threshold_dbm());
  EXPECT_LT(prop.mean_rx_power_dbm(551), prop.cs_threshold_dbm());
}

TEST(Propagation, PowerDecaysWithDistanceAndExponent) {
  PropagationParams p;
  Propagation prop(p, 1);
  EXPECT_GT(prop.mean_rx_power_dbm(10), prop.mean_rx_power_dbm(100));
  // Free space: -20 dB per decade.
  EXPECT_NEAR(prop.mean_rx_power_dbm(10) - prop.mean_rx_power_dbm(100), 20.0, 1e-9);

  PropagationParams p4 = p;
  p4.path_loss_exponent = 4.0;
  Propagation prop4(p4, 1);
  EXPECT_NEAR(prop4.mean_rx_power_dbm(10) - prop4.mean_rx_power_dbm(100), 40.0, 1e-9);
}

TEST(Propagation, ShadowingAddsVariance) {
  PropagationParams p;
  p.shadowing_sigma_db = 6.0;
  Propagation prop(p, 42);
  util::RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(prop.rx_power_dbm({0, 0}, {100, 0}));
  }
  EXPECT_NEAR(stats.mean(), prop.mean_rx_power_dbm(100), 0.3);
  EXPECT_NEAR(stats.stddev(), 6.0, 0.3);
}

TEST(Propagation, RejectsInvertedRanges) {
  PropagationParams p;
  p.tx_range_m = 600;
  p.cs_range_m = 300;
  EXPECT_THROW(Propagation(p, 1), std::invalid_argument);
}

TEST(Channel, DeliversWithinTxRangeOnly) {
  // Node 1 at 200 m (decodable), node 2 at 400 m (energy only),
  // node 3 at 600 m (inaudible).
  PhyFixture f({{0, 0}, {200, 0}, {400, 0}, {600, 0}});
  f.radios[0]->transmit(payload(), 100 * kMicrosecond);
  f.sim.run();

  EXPECT_EQ(f.recorders[1]->received.size(), 1u);
  EXPECT_EQ(f.recorders[2]->received.size(), 0u);
  EXPECT_EQ(f.recorders[3]->received.size(), 0u);
  // Energy seen (carrier busy edge) at 1 and 2, not at 3.
  EXPECT_FALSE(f.recorders[1]->carrier.empty());
  EXPECT_FALSE(f.recorders[2]->carrier.empty());
  EXPECT_TRUE(f.recorders[3]->carrier.empty());
  EXPECT_EQ(f.recorders[0]->tx_ends, 1);
}

TEST(Channel, CarrierBusyWindowMatchesAirtime) {
  PhyFixture f({{0, 0}, {200, 0}});
  f.sim.at(1000, [&] { f.radios[0]->transmit(payload(), 100 * kMicrosecond); });
  f.sim.run();
  ASSERT_EQ(f.recorders[1]->carrier.size(), 2u);
  EXPECT_EQ(f.recorders[1]->carrier[0], std::make_pair(true, SimTime{1000}));
  EXPECT_EQ(f.recorders[1]->carrier[1],
            std::make_pair(false, SimTime{1000 + 100 * kMicrosecond}));
}

TEST(Radio, SelfTransmissionSetsCarrierAndBlocksReception) {
  PhyFixture f({{0, 0}, {200, 0}});
  f.radios[0]->transmit(payload(), 100 * kMicrosecond);
  EXPECT_TRUE(f.radios[0]->carrier_busy());
  EXPECT_TRUE(f.radios[0]->transmitting());
  // Node 1 transmits while 0 is still on air: 0 must not decode it.
  f.sim.at(10 * kMicrosecond,
           [&] { f.radios[1]->transmit(payload(), 20 * kMicrosecond); });
  f.sim.run();
  EXPECT_EQ(f.recorders[0]->received.size(), 0u);
  EXPECT_FALSE(f.radios[0]->carrier_busy());
}

TEST(Radio, CollisionCorruptsBothFrames) {
  // Two senders equidistant from the middle receiver, overlapping in time.
  PhyFixture f({{0, 0}, {200, 0}, {400, 0}});
  f.radios[0]->transmit(payload(), 100 * kMicrosecond);
  f.sim.at(50 * kMicrosecond,
           [&] { f.radios[2]->transmit(payload(), 100 * kMicrosecond); });
  f.sim.run();
  EXPECT_EQ(f.recorders[1]->received.size(), 0u);
  EXPECT_GE(f.recorders[1]->errors, 1);
}

TEST(Radio, CaptureLetsMuchStrongerFrameSurvive) {
  // Interferer at 520 m (>10 dB weaker than the 50 m signal).
  PhyFixture f({{0, 0}, {50, 0}, {520, 0}});
  f.radios[2]->transmit(payload(), 100 * kMicrosecond);
  f.sim.at(10 * kMicrosecond,
           [&] { f.radios[0]->transmit(payload(), 50 * kMicrosecond); });
  f.sim.run();
  // Node 1 locks onto node 0's strong frame despite the ongoing interference.
  ASSERT_EQ(f.recorders[1]->received.size(), 1u);
  EXPECT_EQ(f.recorders[1]->received[0].transmitter, 0u);
}

TEST(Radio, WeakerConcurrentArrivalIsInterferenceNotLock) {
  // Strong frame first, weak frame second: strong survives.
  PhyFixture f({{0, 0}, {50, 0}, {520, 0}});
  f.radios[0]->transmit(payload(), 100 * kMicrosecond);
  f.sim.at(10 * kMicrosecond,
           [&] { f.radios[2]->transmit(payload(), 50 * kMicrosecond); });
  f.sim.run();
  ASSERT_EQ(f.recorders[1]->received.size(), 1u);
  EXPECT_EQ(f.recorders[1]->received[0].transmitter, 0u);
}

TEST(CsTimeline, BusyTimeAndSlotAccounting) {
  CsTimeline tl;
  tl.on_carrier(true, 100 * kMicrosecond);
  tl.on_carrier(false, 200 * kMicrosecond);
  tl.on_carrier(true, 400 * kMicrosecond);
  tl.on_carrier(false, 500 * kMicrosecond);

  EXPECT_EQ(tl.busy_time(0, 600 * kMicrosecond), 200 * kMicrosecond);
  EXPECT_EQ(tl.busy_time(150 * kMicrosecond, 450 * kMicrosecond),
            100 * kMicrosecond);
  EXPECT_DOUBLE_EQ(tl.busy_fraction(0, 600 * kMicrosecond), 200.0 / 600.0);

  const SlotCounts slots = tl.count_slots(0, 600 * kMicrosecond, 20 * kMicrosecond);
  EXPECT_EQ(slots.total(), 30);
  EXPECT_EQ(slots.busy, 10);
  EXPECT_EQ(slots.idle, 20);
  EXPECT_EQ(slots.idle_periods, 3);
}

TEST(CsTimeline, CountableIdleSubtractsDifsPerIdlePeriod) {
  CsTimeline tl;
  const SimDuration difs = 50 * kMicrosecond;
  tl.on_carrier(true, 1 * kMillisecond);
  tl.on_carrier(false, 2 * kMillisecond);
  // Window [0, 3ms]: idle [0,1ms) loses DIFS, busy [1,2), idle [2,3) loses DIFS.
  EXPECT_EQ(tl.countable_idle_time(0, 3 * kMillisecond, difs),
            2 * kMillisecond - 2 * difs);
  // Idle period shorter than DIFS contributes nothing.
  EXPECT_EQ(tl.countable_idle_time(0, 40 * kMicrosecond, difs), 0);
}

TEST(CsTimeline, RedundantEdgesAreIgnored) {
  CsTimeline tl;
  tl.on_carrier(false, 10);  // already idle
  tl.on_carrier(true, 100);
  tl.on_carrier(true, 200);  // redundant
  tl.on_carrier(false, 300);
  EXPECT_EQ(tl.recorded_transitions(), 2u);
  EXPECT_EQ(tl.busy_time(0, 400), 200);
}

TEST(CsTimeline, PruneKeepsRecentWindowQueryable) {
  CsTimeline tl(1 * kSecond);  // short retention
  for (int i = 0; i < 1000; ++i) {
    tl.on_carrier(true, i * 10 * kMillisecond);
    tl.on_carrier(false, i * 10 * kMillisecond + 5 * kMillisecond);
  }
  // Old history pruned, recent queries still exact.
  EXPECT_LT(tl.recorded_transitions(), 300u);
  const SimTime t0 = 9900 * kMillisecond;
  EXPECT_EQ(tl.busy_time(t0, t0 + 10 * kMillisecond), 5 * kMillisecond);
}

TEST(JointTracker, AccumulatesJointDurations) {
  PhyFixture f({{0, 0}, {200, 0}, {400, 0}});
  JointBusyTracker tracker(*f.radios[0], *f.radios[1]);
  // Node 2 at 400 m of node 1 and node 0: audible by 1 (200 m away? no —
  // dist(1,2)=200 decodable; dist(0,2)=400 energy-only). Both hear it.
  f.sim.at(0, [&] { f.radios[2]->transmit(payload(), 1 * kMillisecond); });
  f.sim.run_until(2 * kMillisecond);
  tracker.flush(2 * kMillisecond);
  EXPECT_EQ(tracker.duration(true, true), 1 * kMillisecond);
  EXPECT_EQ(tracker.duration(false, false), 1 * kMillisecond);
  EXPECT_DOUBLE_EQ(tracker.r_busy_fraction(), 0.5);
}

TEST(JointTracker, ConditionalProbabilities) {
  PhyFixture f({{0, 0}, {200, 0}, {140, 480}});
  // Node 2 is 500 m from node 0 (energy) and ~520 m from node 1 (energy):
  // both busy when 2 transmits. Instead use node 0 transmitting: S=0 is
  // "busy" (own tx), R=1 busy (hears it).
  JointBusyTracker tracker(*f.radios[0], *f.radios[1]);
  f.sim.at(0, [&] { f.radios[0]->transmit(payload(), 1 * kMillisecond); });
  f.sim.run_until(4 * kMillisecond);
  tracker.flush(4 * kMillisecond);
  // R busy 25% of the window, S busy exactly when R busy.
  EXPECT_DOUBLE_EQ(tracker.r_busy_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(tracker.p_s_busy_given_r_idle(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.p_s_idle_given_r_busy(), 0.0);
}


TEST(CsTimeline, CumulativeBusySurvivesPruning) {
  CsTimeline tl(1 * kSecond);  // aggressive pruning
  SimDuration expected = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime t0 = i * 20 * kMillisecond;
    tl.on_carrier(true, t0);
    tl.on_carrier(false, t0 + 7 * kMillisecond);
    expected += 7 * kMillisecond;
  }
  const SimTime end = 500 * 20 * kMillisecond;
  EXPECT_EQ(tl.cumulative_busy(end), expected);
  // Long-horizon busy fraction derived from the counter is exact.
  EXPECT_NEAR(static_cast<double>(tl.cumulative_busy(end)) /
                  static_cast<double>(end),
              0.35, 1e-9);
}

TEST(CsTimeline, CumulativeBusyExtendsCurrentBusyState) {
  CsTimeline tl;
  tl.on_carrier(true, 100);
  EXPECT_EQ(tl.cumulative_busy(150), 50);
  tl.on_carrier(false, 200);
  EXPECT_EQ(tl.cumulative_busy(500), 100);
}

TEST(CsTimeline, BusyIntervalsMatchBusyTime) {
  CsTimeline tl;
  tl.on_carrier(true, 100);
  tl.on_carrier(false, 250);
  tl.on_carrier(true, 400);
  tl.on_carrier(false, 460);

  const auto iv = tl.busy_intervals(0, 1000);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], std::make_pair(SimTime{100}, SimTime{250}));
  EXPECT_EQ(iv[1], std::make_pair(SimTime{400}, SimTime{460}));

  // Clipping at window edges.
  const auto clipped = tl.busy_intervals(150, 420);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped[0], std::make_pair(SimTime{150}, SimTime{250}));
  EXPECT_EQ(clipped[1], std::make_pair(SimTime{400}, SimTime{420}));

  SimDuration total = 0;
  for (const auto& [a, b] : clipped) total += b - a;
  EXPECT_EQ(total, tl.busy_time(150, 420));
}

}  // namespace
}  // namespace manet::phy
