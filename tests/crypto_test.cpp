#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/md5.hpp"

namespace manet::crypto {
namespace {

std::string md5_hex(std::string_view s) { return to_hex(Md5::hash(s)); }

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321TestVectors) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      md5_hex("123456789012345678901234567890123456789012345678901234567890123456"
              "78901234567890"),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalUpdatesMatchOneShot) {
  const std::string text = "The quick brown fox jumps over the lazy dog";
  const auto oneshot = Md5::hash(text);
  for (std::size_t split = 0; split <= text.size(); ++split) {
    Md5 ctx;
    ctx.update(std::string_view(text).substr(0, split));
    ctx.update(std::string_view(text).substr(split));
    EXPECT_EQ(ctx.finalize(), oneshot) << "split at " << split;
  }
}

TEST(Md5, BlockBoundaryLengths) {
  // Lengths around the 56-byte padding threshold and the 64-byte block.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string s(len, 'x');
    Md5 a;
    a.update(s);
    const auto whole = a.finalize();

    Md5 b;
    for (char ch : s) b.update(std::string_view(&ch, 1));
    EXPECT_EQ(b.finalize(), whole) << "length " << len;
  }
}

TEST(Md5, ResetRestartsCleanly) {
  Md5 ctx;
  ctx.update("garbage");
  (void)ctx.finalize();
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(to_hex(ctx.finalize()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::hash("aaaa"), Md5::hash("aaab"));
  EXPECT_NE(Md5::hash(""), Md5::hash(std::string(1, '\0')));
}

TEST(Md5, LargeInput) {
  // A 1 MiB input exercises the streaming path; value cross-checked with
  // coreutils md5sum.
  const std::string big(1 << 20, 'A');
  EXPECT_EQ(to_hex(Md5::hash(big)), "e6065c4aa2ab1603008fc18410f579d4");
}

TEST(ToHex, FormatsAllNibbles) {
  Md5Digest d{};
  d[0] = 0x01;
  d[1] = 0x23;
  d[15] = 0xef;
  const std::string hex = to_hex(d);
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.substr(0, 4), "0123");
  EXPECT_EQ(hex.substr(30, 2), "ef");
}

}  // namespace
}  // namespace manet::crypto
