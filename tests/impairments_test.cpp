// Fault-injection layer + monitor degradation under impaired observation.
//
// Covers the FaultInjector itself (determinism, i.i.d. rate, Gilbert–Elliott
// burst structure), the channel/radio integration (loss, corruption,
// outages), and the monitor's resynchronization semantics: misses resync,
// outages discard, and only genuine PRS jumps violate.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "detect/monitor.hpp"
#include "mac/backoff.hpp"
#include "mac/dcf.hpp"
#include "net/mobility.hpp"
#include "net/scenario.hpp"
#include "phy/channel.hpp"
#include "phy/cs_timeline.hpp"
#include "phy/impairments.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

using namespace manet;
using detect::Monitor;
using detect::MonitorConfig;
using detect::MonitorStats;

namespace {

// --- FaultInjector in isolation ----------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  phy::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.loss_probability = 0.1;
  EXPECT_TRUE(plan.enabled());

  phy::FaultPlan ge;
  ge.gilbert_elliott = true;
  EXPECT_TRUE(ge.enabled());

  phy::FaultPlan outage;
  outage.outages.push_back({0, kSecond, 2 * kSecond});
  EXPECT_TRUE(outage.enabled());
}

TEST(FaultInjector, IidLossMatchesProbability) {
  phy::FaultPlan plan;
  plan.loss_probability = 0.2;
  phy::FaultInjector inj(plan, 7);
  const int n = 50000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (inj.decode_fate(0, 1) == phy::DecodeFate::kLost) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.01);
  EXPECT_EQ(inj.decisions(), static_cast<std::uint64_t>(n));
}

TEST(FaultInjector, SameSeedSameFateSequence) {
  phy::FaultPlan plan;
  plan.loss_probability = 0.3;
  plan.corrupt_probability = 0.1;
  phy::FaultInjector a(plan, 42), b(plan, 42), c(plan, 43);
  bool any_differs_c = false;
  for (int i = 0; i < 2000; ++i) {
    const auto fa = a.decode_fate(0, 1);
    EXPECT_EQ(fa, b.decode_fate(0, 1));
    if (fa != c.decode_fate(0, 1)) any_differs_c = true;
  }
  EXPECT_TRUE(any_differs_c);  // a different seed is a different schedule
}

TEST(FaultInjector, GilbertElliottBurstLength) {
  phy::FaultPlan plan;
  plan.gilbert_elliott = true;
  plan.ge_p_good_to_bad = 0.05;
  plan.ge_p_bad_to_good = 0.25;
  plan.ge_loss_good = 0.0;
  plan.ge_loss_bad = 1.0;
  phy::FaultInjector inj(plan, 11);

  // Losses come only from the bad state, so loss runs are bad-state
  // sojourns: geometric with mean 1 / p_bad_to_good = 4.
  int bursts = 0;
  long long burst_frames = 0;
  int current = 0;
  for (int i = 0; i < 200000; ++i) {
    if (inj.decode_fate(3, 4) == phy::DecodeFate::kLost) {
      ++current;
    } else if (current > 0) {
      ++bursts;
      burst_frames += current;
      current = 0;
    }
  }
  ASSERT_GT(bursts, 500);
  const double mean_burst = static_cast<double>(burst_frames) / bursts;
  EXPECT_NEAR(mean_burst, 4.0, 0.5);
}

TEST(FaultInjector, GilbertElliottChainsArePerLink) {
  phy::FaultPlan plan;
  plan.gilbert_elliott = true;
  plan.ge_p_good_to_bad = 1.0;  // link enters the bad state on first use
  plan.ge_p_bad_to_good = 0.0;  // and stays there
  plan.ge_loss_bad = 1.0;
  phy::FaultInjector inj(plan, 5);
  EXPECT_EQ(inj.decode_fate(0, 1), phy::DecodeFate::kLost);
  EXPECT_EQ(inj.decode_fate(9, 8), phy::DecodeFate::kLost);  // fresh chain
  EXPECT_EQ(inj.decode_fate(0, 1), phy::DecodeFate::kLost);
}

TEST(FaultInjector, CorruptorPassthroughWithoutHook) {
  phy::FaultPlan plan;
  plan.corrupt_probability = 1.0;
  phy::FaultInjector inj(plan, 1);
  ASSERT_EQ(inj.decode_fate(0, 1), phy::DecodeFate::kCorrupted);
  const auto payload = std::make_shared<const mac::Frame>();
  EXPECT_EQ(inj.corrupt_payload(payload), payload);  // no corruptor installed
}

TEST(CorruptRtsFields, ManglesOnlyRts) {
  util::Xoshiro256ss rng(9);
  mac::Frame rts;
  rts.type = mac::FrameType::kRts;
  rts.seq_off = 100;
  rts.attempt = 2;
  const auto original = std::make_shared<const mac::Frame>(rts);
  const auto mangled = std::dynamic_pointer_cast<const mac::Frame>(
      mac::corrupt_rts_fields(original, rng));
  ASSERT_NE(mangled, nullptr);
  EXPECT_NE(mangled, original);
  EXPECT_NE(mangled->seq_off, original->seq_off);
  EXPECT_NE(mangled->attempt, original->attempt);
  EXPECT_NE(mangled->data_digest, original->data_digest);

  mac::Frame data;
  data.type = mac::FrameType::kData;
  const auto data_ptr = std::make_shared<const mac::Frame>(data);
  EXPECT_EQ(mac::corrupt_rts_fields(data_ptr, rng), data_ptr);
}

// --- Config plumbing ---------------------------------------------------------

TEST(ScenarioFaults, OutageStringParses) {
  const auto outages = net::parse_outages("3:10:12,7:100.5:105");
  ASSERT_EQ(outages.size(), 2u);
  EXPECT_EQ(outages[0].node, 3u);
  EXPECT_EQ(outages[0].start, seconds_to_time(10));
  EXPECT_EQ(outages[0].stop, seconds_to_time(12));
  EXPECT_EQ(outages[1].node, 7u);
  EXPECT_EQ(outages[1].stop, seconds_to_time(105));

  EXPECT_TRUE(net::parse_outages("").empty());
  EXPECT_THROW(net::parse_outages("3:10"), std::invalid_argument);
  EXPECT_THROW(net::parse_outages("3:12:10"), std::invalid_argument);
  EXPECT_THROW(net::parse_outages("x:1:2"), std::invalid_argument);
}

TEST(ScenarioFaults, DeclaredDefaultsDisableThePlan) {
  util::Config c;
  net::ScenarioConfig::declare(c);
  const auto s = net::ScenarioConfig::from_config(c);
  EXPECT_FALSE(s.faults.enabled());
}

// --- End-to-end: lossy observation of an honest sender -----------------------

struct FixedPositions : phy::PositionProvider {
  explicit FixedPositions(std::vector<geom::Vec2> p) : pos(std::move(p)) {}
  std::vector<geom::Vec2> pos;
  geom::Vec2 position(NodeId node, SimTime) const override { return pos.at(node); }
};

struct LossyFixture {
  // S at node 0, monitor R at node 1, 200 m apart; faults installed only
  // when the plan is enabled (mirrors net::Network).
  explicit LossyFixture(const phy::FaultPlan& plan, std::uint64_t seed = 3)
      : prop(phy::PropagationParams{}, 3),
        positions({{0, 0}, {200, 0}}),
        channel(sim, prop, positions),
        faults(plan, seed) {
    for (NodeId i = 0; i < 2; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(i, channel));
      macs.push_back(std::make_unique<mac::DcfMac>(sim, *radios.back(), params));
      timelines.push_back(std::make_unique<phy::CsTimeline>());
      radios.back()->add_listener(timelines.back().get());
    }
    faults.set_corruptor(mac::corrupt_rts_fields);
    if (faults.enabled()) channel.install_faults(faults);
  }

  Monitor& attach_monitor(MonitorConfig cfg) {
    cfg.separation_m = 200;
    monitor = detect::MonitorFactory(sim, *macs[1], *timelines[1]).watch(0, cfg);
    return *monitor;
  }

  void run_saturated(SimTime until) {
    feeder = [this, until] {
      for (int i = 0; i < 10; ++i) macs[0]->enqueue(1, 512, next_id++);
      if (sim.now() < until) sim.after(100 * kMillisecond, feeder);
    };
    sim.at(0, feeder);
    sim.run_until(until);
  }

  sim::Simulator sim;
  mac::DcfParams params;
  phy::Propagation prop;
  FixedPositions positions;
  phy::Channel channel;
  phy::FaultInjector faults;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac::DcfMac>> macs;
  std::vector<std::unique_ptr<phy::CsTimeline>> timelines;
  std::unique_ptr<Monitor> monitor;
  std::function<void()> feeder;
  std::uint64_t next_id = 1;
};

TEST(LossyMonitor, HonestSenderResyncsInsteadOfViolating) {
  phy::FaultPlan plan;
  plan.loss_probability = 0.18;
  LossyFixture f(plan);
  Monitor& mon = f.attach_monitor(MonitorConfig{});
  f.run_saturated(20 * kSecond);

  const MonitorStats& st = mon.stats();
  EXPECT_GT(st.rts_observed, 100u);
  EXPECT_GT(st.seq_off_resyncs, 10u);     // misses were noticed...
  EXPECT_GT(st.frames_lost, 10u);         // ...and written off
  EXPECT_EQ(st.seq_off_violations, 0u);   // never blamed on the sender
  EXPECT_EQ(st.attempt_violations, 0u);
  EXPECT_EQ(st.impossible_backoff, 0u);
  for (const auto& w : mon.windows()) EXPECT_FALSE(w.deterministic_flag);
}

TEST(LossyMonitor, CorruptedRtsNeverFramesTheSender) {
  phy::FaultPlan plan;
  plan.corrupt_probability = 0.25;
  LossyFixture f(plan);
  Monitor& mon = f.attach_monitor(MonitorConfig{});
  f.run_saturated(20 * kSecond);

  // Corrupted deliveries fail the FCS: the monitor's MAC records reception
  // errors and the mangled SeqOff/Attempt/digest fields are never parsed.
  EXPECT_GT(f.macs[1]->stats().rx_errors, 20u);
  EXPECT_EQ(mon.stats().seq_off_violations, 0u);
  EXPECT_EQ(mon.stats().attempt_violations, 0u);
  EXPECT_GT(mon.stats().seq_off_resyncs, 10u);
}

TEST(LossyMonitor, LossyRunsAreDeterministic) {
  phy::FaultPlan plan;
  plan.loss_probability = 0.15;
  plan.corrupt_probability = 0.05;

  const auto run = [&plan] {
    LossyFixture f(plan);
    Monitor& mon = f.attach_monitor(MonitorConfig{});
    f.run_saturated(10 * kSecond);
    return mon.stats();
  };
  const MonitorStats a = run();
  const MonitorStats b = run();
  EXPECT_EQ(a.rts_observed, b.rts_observed);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.flagged_windows, b.flagged_windows);
  EXPECT_EQ(a.seq_off_resyncs, b.seq_off_resyncs);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.windows_discarded_impaired, b.windows_discarded_impaired);
}

TEST(LossyMonitor, DisabledPlanDrawsNothingAndChangesNothing) {
  const auto stats_with = [](bool install) {
    phy::FaultPlan plan;  // disabled
    LossyFixture f(plan);
    EXPECT_FALSE(f.faults.enabled());
    if (install) f.channel.install_faults(f.faults);
    Monitor& mon = f.attach_monitor(MonitorConfig{});
    f.run_saturated(10 * kSecond);
    EXPECT_EQ(f.faults.decisions(), 0u);
    return mon.stats();
  };
  const MonitorStats plain = stats_with(false);
  const MonitorStats installed = stats_with(true);
  EXPECT_EQ(plain.rts_observed, installed.rts_observed);
  EXPECT_EQ(plain.samples, installed.samples);
  EXPECT_EQ(plain.windows, installed.windows);
  EXPECT_EQ(plain.flagged_windows, installed.flagged_windows);
  EXPECT_EQ(plain.seq_off_resyncs, 0u);
  EXPECT_EQ(installed.seq_off_resyncs, 0u);
}

TEST(LossyMonitor, OutageDiscardsWindowsInsteadOfFlagging) {
  phy::FaultPlan plan;
  plan.outages.push_back({1, 3 * kSecond, 5 * kSecond});  // monitor goes deaf
  LossyFixture f(plan);
  Monitor& mon = f.attach_monitor(MonitorConfig{});
  f.run_saturated(10 * kSecond);

  // The timeline recorded the deaf interval...
  EXPECT_EQ(f.timelines[1]->outage_time(3 * kSecond, 5 * kSecond),
            2 * kSecond);
  EXPECT_EQ(f.timelines[1]->outage_time(6 * kSecond, 7 * kSecond), 0);

  // ...and the monitor blamed itself, not the sender: the two seconds of
  // unheard RTSs resync the PRS (the gap may exceed max_seq_off_gap) and
  // the spanning window is discarded.
  const MonitorStats& st = mon.stats();
  EXPECT_GT(st.seq_off_resyncs, 0u);
  EXPECT_EQ(st.seq_off_violations, 0u);
  EXPECT_EQ(st.attempt_violations, 0u);
  EXPECT_EQ(st.impossible_backoff, 0u);
  for (const auto& w : mon.windows()) EXPECT_FALSE(w.deterministic_flag);
  EXPECT_EQ(mon.stats().flagged_windows, 0u);
}

TEST(LossyMonitor, OutageForgivesArbitrarilyLargeGaps) {
  phy::FaultPlan plan;
  plan.outages.push_back({1, 2 * kSecond, 12 * kSecond});  // very long sleep
  LossyFixture f(plan);
  MonitorConfig cfg;
  cfg.max_seq_off_gap = 4;  // tiny bound: only the outage can excuse the gap
  Monitor& mon = f.attach_monitor(cfg);
  f.run_saturated(20 * kSecond);

  EXPECT_GT(mon.stats().rts_observed, 50u);
  EXPECT_EQ(mon.stats().seq_off_violations, 0u);
  EXPECT_GT(mon.stats().seq_off_resyncs, 0u);
}

// --- The violation side of the bounded-gap rule ------------------------------

TEST(Monitor, SkipAheadBeyondGapBoundIsViolation) {
  phy::FaultPlan plan;  // clean channel: every gap is the cheater's doing
  LossyFixture f(plan);
  f.macs[0]->set_announce_policy(std::make_unique<mac::SkipAheadAnnounce>(500));
  Monitor& mon = f.attach_monitor(MonitorConfig{});  // max_seq_off_gap = 64
  f.run_saturated(5 * kSecond);

  EXPECT_GT(mon.stats().rts_observed, 20u);
  EXPECT_GT(mon.stats().seq_off_violations, 10u);
  EXPECT_EQ(mon.stats().seq_off_resyncs, 0u);
}

TEST(Monitor, SkipAheadWithinGapBoundResyncs) {
  phy::FaultPlan plan;
  LossyFixture f(plan);
  f.macs[0]->set_announce_policy(std::make_unique<mac::SkipAheadAnnounce>(8));
  Monitor& mon = f.attach_monitor(MonitorConfig{});
  f.run_saturated(5 * kSecond);

  // Small jumps are indistinguishable from losses: tolerated (resync), but
  // every spanning window is discarded, so the cheat buys nothing.
  EXPECT_EQ(mon.stats().seq_off_violations, 0u);
  EXPECT_GT(mon.stats().seq_off_resyncs, 10u);
  EXPECT_EQ(mon.stats().samples, 0u);
}

// --- Memory bounds -----------------------------------------------------------

TEST(Monitor, DecodedHistoryStaysBounded) {
  phy::FaultPlan plan;
  LossyFixture f(plan);
  MonitorConfig cfg;
  cfg.max_decoded_frames = 64;
  ASSERT_FALSE(cfg.record_samples);  // default off: no sample log growth
  Monitor& mon = f.attach_monitor(cfg);

  std::size_t peak = 0;
  std::function<void()> probe = [&] {
    peak = std::max(peak, mon.decoded_retained());
    if (f.sim.now() < 120 * kSecond) f.sim.after(kSecond, probe);
  };
  f.sim.at(0, probe);
  f.run_saturated(120 * kSecond);

  EXPECT_GT(mon.stats().samples, 1000u);
  EXPECT_LE(std::max(peak, mon.decoded_retained()), 64u);
  EXPECT_TRUE(mon.sample_log().empty());
}

// --- Spatial index: bit-identical to the reference full scan -----------------
//
// Channel::transmit's grid prefilter and link-budget cache must be invisible:
// same deliveries, same per-receiver order (the fault injector draws one RNG
// decision per delivered frame, so any reordering or dropped receiver shifts
// the whole fault schedule), same carrier edges. We run the identical
// impaired scenario with the index on and off and require identical traces
// and identical fault-RNG consumption.

struct DeliveryTrace : phy::RadioListener {
  // (time, kind, signal id): kind 0=carrier-off 1=carrier-on 2=rx 3=rx-error.
  std::vector<std::tuple<SimTime, int, std::uint64_t>> events;
  void on_carrier(bool busy, SimTime at) override {
    events.emplace_back(at, busy ? 1 : 0, 0);
  }
  void on_receive(const phy::Signal& s) override { events.emplace_back(s.end, 2, s.id); }
  void on_receive_error(const phy::Signal& s) override {
    events.emplace_back(s.end, 3, s.id);
  }
  void on_transmit_end(std::uint64_t) override {}
};

struct GridRunResult {
  std::vector<std::tuple<SimTime, int, std::uint64_t>> trace;  // all nodes, merged
  std::uint64_t fault_decisions = 0;
  phy::Channel::CacheStats stats;
};

GridRunResult run_grid_scenario(phy::Channel::IndexMode mode, bool mobile,
                                std::uint64_t seed = 5,
                                SimDuration pause = 5 * kSecond) {
  sim::Simulator sim;
  phy::Propagation prop(phy::PropagationParams{}, /*shadowing_seed=*/1);

  // 5x5 grid, 300 m spacing: multiple grid cells at the 687.5 m cell size,
  // several audible neighbors per node, some beyond sensing range.
  std::vector<geom::Vec2> layout;
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x) layout.push_back({x * 300.0, y * 300.0});

  std::unique_ptr<phy::PositionProvider> positions;
  if (mobile) {
    // Compressed-time waypoint motion: fast legs and long pauses so the run
    // actually contains waypoint arrivals, simultaneous pauses (epoch-cache
    // hits), and enough drift to force grid rebuilds. pause = 0 keeps every
    // node continuously in motion instead.
    net::RandomWaypointParams rwp;
    rwp.width = 600.0;
    rwp.height = 600.0;
    rwp.min_speed = 100.0;
    rwp.max_speed = 200.0;
    rwp.pause = pause;
    positions = std::make_unique<net::RandomWaypoint>(layout, rwp, seed);
  } else {
    positions = std::make_unique<net::StaticMobility>(layout);
  }

  phy::Channel channel(sim, prop, *positions);
  channel.set_index_mode(mode);

  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<DeliveryTrace>> traces;
  for (NodeId i = 0; i < layout.size(); ++i) {
    radios.push_back(std::make_unique<phy::Radio>(i, channel));
    traces.push_back(std::make_unique<DeliveryTrace>());
    radios.back()->add_listener(traces.back().get());
  }

  phy::FaultPlan plan;
  plan.loss_probability = 0.3;
  plan.corrupt_probability = 0.2;
  plan.outages.push_back({7, 2 * kSecond, 5 * kSecond});
  phy::FaultInjector injector(plan, 9);
  channel.install_faults(injector);

  // Staggered pairs of near-simultaneous transmissions from rotating
  // sources: overlapping airtimes produce collisions, captures, and busy
  // carriers. The mobile run is spread over ~80 s so legs complete and
  // pauses overlap; the static one packs the same count into ~8 s.
  const SimTime spacing = (mobile ? 130 : 13) * kMillisecond;
  const auto payload = std::make_shared<const mac::Frame>();
  auto fire = [&radios](NodeId src, phy::PayloadPtr p) {
    if (!radios[src]->transmitting()) {
      radios[src]->transmit(std::move(p), 500 * kMicrosecond);
    }
  };
  for (std::size_t k = 0; k < 600; ++k) {
    const NodeId a = static_cast<NodeId>(k % layout.size());
    const NodeId b = static_cast<NodeId>((k * 7 + 3) % layout.size());
    const SimTime at = static_cast<SimTime>(k) * spacing;
    sim.at(at, [&fire, a, payload] { fire(a, payload); });
    sim.at(at + 200 * kMicrosecond, [&fire, b, payload] { fire(b, payload); });
  }
  sim.run();

  GridRunResult out;
  out.fault_decisions = injector.decisions();
  out.stats = channel.cache_stats();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (const auto& e : traces[i]->events) {
      out.trace.emplace_back(std::get<0>(e), std::get<1>(e) + 10 * static_cast<int>(i),
                             std::get<2>(e));
    }
  }
  return out;
}

TEST(SpatialIndex, StaticScenarioMatchesFullScanExactly) {
  const GridRunResult fast =
      run_grid_scenario(phy::Channel::IndexMode::kRebuild, /*mobile=*/false);
  const GridRunResult ref =
      run_grid_scenario(phy::Channel::IndexMode::kFullScan, /*mobile=*/false);
  EXPECT_EQ(fast.trace, ref.trace);
  // Identical fault-RNG consumption proves candidates were visited in
  // attach order — any other order permutes per-receiver fates.
  EXPECT_EQ(fast.fault_decisions, ref.fault_decisions);
  // The fast run actually took the fast path, and static link budgets were
  // computed once: every repeat delivery is a cache hit.
  EXPECT_EQ(fast.stats.full_scans, 0u);
  EXPECT_EQ(fast.stats.grid_rebuilds, 1u);
  EXPECT_GT(fast.stats.link_budget_hits, fast.stats.link_budget_misses);
  EXPECT_GT(ref.stats.full_scans, 0u);
}

TEST(SpatialIndex, MobileScenarioMatchesFullScanExactly) {
  const GridRunResult fast =
      run_grid_scenario(phy::Channel::IndexMode::kRebuild, /*mobile=*/true);
  const GridRunResult ref =
      run_grid_scenario(phy::Channel::IndexMode::kFullScan, /*mobile=*/true);
  EXPECT_EQ(fast.trace, ref.trace);
  EXPECT_EQ(fast.fault_decisions, ref.fault_decisions);
  EXPECT_EQ(fast.stats.full_scans, 0u);
  // Movement invalidates the grid: it must have been rebuilt along the way.
  EXPECT_GT(fast.stats.grid_rebuilds, 1u);
  // Long pauses make some links cacheable even under mobility.
  EXPECT_GT(fast.stats.link_budget_hits, 0u);
}

TEST(SpatialIndex, IncrementalStaticMatchesReferenceExactly) {
  const GridRunResult inc = run_grid_scenario(
      phy::Channel::IndexMode::kIncremental, /*mobile=*/false);
  const GridRunResult ref =
      run_grid_scenario(phy::Channel::IndexMode::kFullScan, /*mobile=*/false);
  EXPECT_EQ(inc.trace, ref.trace);
  EXPECT_EQ(inc.fault_decisions, ref.fault_decisions);
  EXPECT_EQ(inc.stats.full_scans, 0u);
  EXPECT_EQ(inc.stats.grid_rebuilds, 0u);
  // Static radios never carry migration deadlines.
  EXPECT_EQ(inc.stats.cell_migrations, 0u);
  EXPECT_EQ(inc.stats.migration_checks, 0u);
  // Parked pairs cache their exact budgets, like the rebuild path.
  EXPECT_GT(inc.stats.link_budget_hits, inc.stats.link_budget_misses);
}

// The mobility-epoch caching satellite: seed-swept equality of delivery
// traces and fault decisions (and thus every link-budget comparison)
// between the incremental index and the retained references, for
// pausing-waypoint and continuously-moving radios.
TEST(SpatialIndex, IncrementalMobileMatchesReferenceSeedSwept) {
  for (const std::uint64_t seed : {5ull, 11ull, 23ull}) {
    for (const SimDuration pause : {5 * kSecond, SimDuration{0}}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " pause=" + std::to_string(pause));
      const GridRunResult inc = run_grid_scenario(
          phy::Channel::IndexMode::kIncremental, /*mobile=*/true, seed, pause);
      const GridRunResult ref = run_grid_scenario(
          phy::Channel::IndexMode::kFullScan, /*mobile=*/true, seed, pause);
      const GridRunResult reb = run_grid_scenario(
          phy::Channel::IndexMode::kRebuild, /*mobile=*/true, seed, pause);
      EXPECT_EQ(inc.trace, ref.trace);
      EXPECT_EQ(inc.fault_decisions, ref.fault_decisions);
      EXPECT_EQ(reb.trace, ref.trace);
      EXPECT_EQ(reb.fault_decisions, ref.fault_decisions);
      EXPECT_EQ(inc.stats.full_scans, 0u);
      EXPECT_EQ(inc.stats.grid_rebuilds, 0u);
      // Fast legs across 600 m cross the 551 m cells: migrations happened.
      EXPECT_GT(inc.stats.cell_migrations, 0u);
      // Far moving pairs were rejected by the predicted-position prefilter.
      EXPECT_GT(inc.stats.prefilter_rejects, 0u);
      if (pause > 0) {
        // Overlapping pauses make parked pairs exactly cacheable.
        EXPECT_GT(inc.stats.link_budget_hits, 0u);
      }
    }
  }
}

}  // namespace
